#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from the prose template and results/*.csv.

Usage: python3 scripts/render_experiments.py
Reads  scripts/EXPERIMENTS.template.md, replaces each line of the form
`{{csv:NAME}}` with the contents of results/NAME.csv rendered as a
markdown table, and writes EXPERIMENTS.md at the repo root.
"""
import csv
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
TEMPLATE = ROOT / "scripts" / "EXPERIMENTS.template.md"
RESULTS = ROOT / "results"
OUT = ROOT / "EXPERIMENTS.md"


def md_table(path: pathlib.Path) -> str:
    with open(path, newline="") as fh:
        rows = list(csv.reader(fh))
    if not rows:
        return f"*(empty: {path.name})*"
    out = ["| " + " | ".join(rows[0]) + " |",
           "|" + "|".join("---" for _ in rows[0]) + "|"]
    for row in rows[1:]:
        out.append("| " + " | ".join(row) + " |")
    return "\n".join(out)


def main() -> int:
    text = TEMPLATE.read_text()
    missing = []
    lines = []
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("{{csv:") and stripped.endswith("}}"):
            name = stripped[len("{{csv:"):-2]
            path = RESULTS / f"{name}.csv"
            if path.exists():
                lines.append(md_table(path))
            else:
                missing.append(name)
                lines.append(f"*(pending: run the `{name}` binary)*")
        else:
            lines.append(line)
    OUT.write_text("\n".join(lines) + "\n")
    if missing:
        print(f"WARNING: missing results for: {', '.join(missing)}")
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
