#!/usr/bin/env bash
# Full local CI gate: formatting, lints, build, tests, and a bounded
# smoke run of the telemetry binary. Run from the repository root:
#
#   ./scripts/ci.sh
#
# Everything is offline (vendored dev-dependencies) and deterministic.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> rotind-lint --self-check (the linter gates its own crate first)"
cargo run -q -p rotind-lint -- --self-check

echo "==> rotind-lint (project rules, ratcheted against lint-baseline.json)"
# In SARIF mode the document goes to stdout and the gate verdict to
# stderr, so results/lint.sarif is a clean artifact and set -e still
# fails the script on any new finding.
mkdir -p results
cargo run -q -p rotind-lint -- --format sarif > results/lint.sarif
python3 - <<'PY'
import json
doc = json.load(open("results/lint.sarif"))
assert doc["version"] == "2.1.0", doc["version"]
run = doc["runs"][0]
declared = {r["id"] for r in run["tool"]["driver"]["rules"]}
results = run["results"]
for r in results:
    assert r["ruleId"] in declared, f"undeclared rule {r['ruleId']}"
    loc = r["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] and loc["region"]["startLine"] >= 1
print(f"results/lint.sarif: SARIF {doc['version']}, {len(declared)} rule(s), "
      f"{len(results)} result(s)")
PY

echo "==> availability certification (panic-freedom + blocking hazards on the serve roots)"
# The seeded fixture violations must fail the gate with composed
# multi-file codeFlow witnesses; the burned-down twins must certify
# clean. Exit codes are the contract, so each leg is asserted explicitly.
FIXTURES=crates/rotind-lint/tests/fixtures
AVAIL_SARIF="$(mktemp)"
for pair in no_panic_reachable_bad:no-panic-reachable \
            no_blocking_in_worker_bad:no-blocking-in-worker; do
    dir="${pair%%:*}" rule="${pair##*:}"
    if cargo run -q -p rotind-lint -- --format sarif "$FIXTURES/$dir" \
        > "$AVAIL_SARIF" 2>/dev/null; then
        echo "$dir: seeded violation did not fail the gate" >&2
        exit 1
    fi
    python3 - "$AVAIL_SARIF" "$rule" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
rule = sys.argv[2]
hits = [r for r in doc["runs"][0]["results"] if r["ruleId"] == rule]
assert hits, f"no {rule} results in fixture SARIF"
files = {s["location"]["physicalLocation"]["artifactLocation"]["uri"]
         for r in hits for cf in r.get("codeFlows", [])
         for tf in cf["threadFlows"] for s in tf["locations"]}
assert len(files) >= 2, f"{rule} witness does not span files: {files}"
print(f"{rule}: seeded finding witnessed across "
      f"{sorted(f.rsplit('/', 1)[-1] for f in files)}")
PY
done
rm -f "$AVAIL_SARIF"
for dir in no_panic_reachable_good no_blocking_in_worker_good; do
    cargo run -q -p rotind-lint -- "$FIXTURES/$dir" >/dev/null
    echo "$dir: certifies clean"
done

echo "==> baseline schema migration self-test (v1-v3 files still parse, v4 round-trips)"
cargo test -q -p rotind-lint --lib baseline:: >/dev/null
echo "baseline v1..v4 migrations: PASS"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> loom model tests (CAS-min best-so-far + SharedBudget, vendored scheduler)"
cargo test -q -p rotind-index --features loom-tests --test loom_model

echo "==> miri smoke (rotind-obs atomics; skipped when miri is unavailable)"
# The offline container has no miri component; a real CI host with
# `rustup component add miri` runs the rotind-obs budget/atomic suites
# under the interpreter. The lane degrades to a loud skip, not a fail.
if cargo miri --version >/dev/null 2>&1; then
    MIRIFLAGS="${MIRIFLAGS:--Zmiri-strict-provenance}" \
        cargo miri test -p rotind-obs
else
    echo "cargo miri not installed; skipping (offline container)"
fi

echo "==> exactness + parallel suites under ROTIND_THREADS=1"
ROTIND_THREADS=1 cargo test -q --test exactness --test parallel

echo "==> exactness + parallel suites under ROTIND_THREADS=4"
ROTIND_THREADS=4 cargo test -q --test exactness --test parallel

# Every cascade tier in isolation, then the full cascade: each
# configuration must return the brute-force answers (exactness only —
# single-tier configurations are deliberately not step-competitive).
for c in kim reduced keogh improved all; do
    echo "==> exactness + cascade suites under ROTIND_CASCADE=$c"
    ROTIND_CASCADE=$c cargo test -q --test exactness --test cascade
done

echo "==> profiling suite under ROTIND_THREADS=4"
ROTIND_THREADS=4 cargo test -q --test profiling

echo "==> std::simd kernel lane (nightly only; skipped when nightly is unavailable)"
# The default chunked backend is bit-identical to the std::simd one and
# is already covered above, so on stable this lane degrades to a loud
# skip, not a fail. On nightly it re-runs the kernel identity suite,
# the end-to-end exactness suite (sequential and 4 threads), and the
# full-cascade config with the simd engine selected.
if cargo +nightly --version >/dev/null 2>&1; then
    cargo +nightly test -q --features simd --test kernels_identity
    ROTIND_THREADS=1 cargo +nightly test -q --features simd --test exactness --test parallel
    ROTIND_THREADS=4 cargo +nightly test -q --features simd --test exactness --test parallel
    ROTIND_CASCADE=all cargo +nightly test -q --features simd --test cascade
else
    echo "nightly toolchain not installed; skipping std::simd lane (chunked default is bit-identical)"
fi

# Smoke runs go to a throwaway dir: results/ is git-tracked with
# full-scale artifacts and a quick run would clobber them.
SMOKE="$(mktemp -d)"

echo "==> trace smoke run (chrome trace + folded stacks validated)"
ROTIND_QUICK=1 ROTIND_RESULTS="$SMOKE" \
    cargo run -p rotind-bench --release --bin trace >/dev/null
python3 - "$SMOKE" <<'PY'
import json, sys
doc = json.load(open(f"{sys.argv[1]}/trace_profile.json"))
n = len(doc["traceEvents"])
assert n > 0, "empty chrome trace"
print(f"trace_profile.json: chrome trace, {n} event(s)")
PY

echo "==> cascade ablation smoke run"
ROTIND_QUICK=1 ROTIND_RESULTS="$SMOKE" \
    cargo run -p rotind-bench --release --bin cascade >/dev/null

echo "==> kernel bench smoke run (seq vs chunked throughput, schema check)"
ROTIND_QUICK=1 ROTIND_RESULTS="$SMOKE" \
    cargo run -p rotind-bench --release --bin kernels >/dev/null
python3 - "$SMOKE" <<'PY'
import json, sys
doc = json.load(open(f"{sys.argv[1]}/bench_kernels.json"))
assert isinstance(doc["quick"], bool), doc
assert doc["lanes"] >= 2, doc
assert isinstance(doc["simd_compiled"], bool), doc
entries = doc["entries"]
assert entries, "no kernel bench entries"
cells = {}
for e in entries:
    for key in ("kernel", "n", "backend", "ns_per_call", "speedup_vs_scalar"):
        assert key in e, f"entry missing {key}: {e}"
    assert e["backend"] in ("seq", "chunked", "simd"), e
    assert e["ns_per_call"] > 0, e
    assert e["speedup_vs_scalar"] > 0, e
    cells.setdefault((e["kernel"], e["n"]), set()).add(e["backend"])
for (k, n), backends in cells.items():
    assert {"seq", "chunked"} <= backends, f"{k}@{n} missing a backend: {backends}"
print(f"bench_kernels.json: {len(entries)} cells over {len(cells)} kernel/size pairs")
PY

echo "==> serve smoke lane (start server, open-loop load, schema check)"
# The serve integration tests (bit-identical to the library path,
# backpressure, budget partials) already ran in the workspace suite;
# this lane exercises the real binary end to end: server start,
# open-loop load, clean shutdown (nonzero exit on any failure), and a
# schema-valid artifact.
ROTIND_QUICK=1 ROTIND_RESULTS="$SMOKE" \
    cargo run -p rotind-bench --release --bin serve_load >/dev/null
python3 - "$SMOKE" <<'PY'
import json, sys
doc = json.load(open(f"{sys.argv[1]}/bench_serve.json"))
workload = doc["workload"]
assert workload["mode"] == "open-loop", workload
for key in ("m", "n", "clients", "offered_per_second", "workers",
            "queue_depth", "batch", "seconds"):
    assert key in workload, f"workload missing {key}"
requests = doc["requests"]
for key in ("sent", "complete", "exhausted", "overloaded", "errors",
            "late", "per_second"):
    assert key in requests, f"requests missing {key}"
assert requests["sent"] > 0, "no requests completed"
assert requests["errors"] == 0, f"load run saw errors: {requests}"
latency = doc["latency_ms"]
for key in ("p50", "p95", "p99", "mean"):
    assert key in latency, f"latency_ms missing {key}"
assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"], latency
server = doc["server"]
assert server["rotind_serve_requests_total"] >= requests["sent"]
print(f"bench_serve.json: {requests['sent']} requests, "
      f"p50 {latency['p50']} ms, p99 {latency['p99']} ms")
PY

echo "==> regression gate (steps vs results/bench_baseline.json)"
ROTIND_QUICK=1 \
    cargo run -p rotind-bench --release --bin regress -- \
    --baseline results/bench_baseline.json
echo "==> regression gate self-test (a 20% synthetic slowdown must fail)"
if ROTIND_QUICK=1 ROTIND_REGRESS_INJECT=1.2 \
    cargo run -q -p rotind-bench --release --bin regress -- \
    --baseline results/bench_baseline.json >/dev/null 2>&1; then
    echo "regress gate did NOT flag an injected 20% slowdown" >&2
    exit 1
fi

echo "==> CI green"
