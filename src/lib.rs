//! # rotind — exact rotation-invariant shape indexing with LB_Keogh
//!
//! A production-quality Rust reproduction of
//!
//! > E. Keogh, L. Wei, X. Xi, M. Vlachos, S.-H. Lee, P. Protopapas.
//! > *LB_Keogh Supports Exact Indexing of Shapes under Rotation Invariance
//! > with Arbitrary Representations and Distance Measures.* VLDB 2006.
//!
//! This façade crate re-exports the workspace's subsystem crates under one
//! roof. See the repository `README.md` for a guided tour, `DESIGN.md` for
//! the system inventory, and `EXPERIMENTS.md` for the paper-vs-measured
//! record of every table and figure.
//!
//! ## Quick start
//!
//! ```
//! use rotind::prelude::*;
//!
//! // A tiny database of closed-boundary "shapes" as centroid-distance
//! // series, plus a rotated query.
//! let db: Vec<Vec<f64>> = (0..16)
//!     .map(|k| (0..64).map(|i| ((i + k) as f64 * 0.3).sin()).collect())
//!     .collect();
//! let query = rotind::ts::rotate::rotated(&db[7], 19);
//!
//! // Exact rotation-invariant 1-NN with wedge-accelerated search.
//! let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
//! let hit = engine.nearest(&db).unwrap();
//! assert_eq!(hit.index, 7);
//! assert!(hit.distance < 1e-9);
//! ```

#![forbid(unsafe_code)]

pub use rotind_cluster as cluster;
pub use rotind_distance as distance;
pub use rotind_envelope as envelope;
pub use rotind_eval as eval;
pub use rotind_fft as fft;
pub use rotind_index as index;
pub use rotind_lightcurve as lightcurve;
pub use rotind_obs as obs;
pub use rotind_serve as serve;
pub use rotind_shape as shape;
pub use rotind_ts as ts;

/// Convenient re-exports of the most frequently used items.
pub mod prelude {
    pub use rotind_distance::dtw::DtwParams;
    pub use rotind_distance::measure::Measure;
    pub use rotind_envelope::wedge::Wedge;
    pub use rotind_index::engine::{Invariance, Neighbor, RotationQuery};
    pub use rotind_index::parallel::{default_threads, nearest_batch, ParallelReport};
    pub use rotind_index::snapshot::{IndexSnapshot, QueryKind, QuerySpec};
    pub use rotind_obs::{
        BudgetOutcome, BudgetReason, Exhausted, ForkJoinObserver, ManualClock, NoopObserver,
        Profiler, QueryBudget, QueryTrace, SearchObserver,
    };
    pub use rotind_ts::{StepCounter, TimeSeries};
}
