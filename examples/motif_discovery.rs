//! Shape motif discovery (the paper's conclusion: clustering,
//! classification and *motif discovery* as data-mining subroutines).
//!
//! ```sh
//! cargo run --release --example motif_discovery
//! ```
//!
//! An archaeologist's question: in a tray of projectile points — each
//! photographed at an arbitrary orientation — which two specimens are
//! most alike (struck from the same template)? The answer is the
//! rotation-invariant closest pair; threading one global best-so-far
//! through H-Merge keeps the O(m²) scan fast.

use rotind::distance::Measure;
use rotind::index::motif::{closest_pair, top_motifs};
use rotind::shape::dataset::projectile_points;
use rotind::ts::rotate::rotated;
use rotind::ts::StepCounter;

fn main() {
    let n = 128;
    let ds = projectile_points(60, n, 2024);
    let mut tray = ds.items.clone();
    // Two points struck from the same template: specimen 41 is specimen
    // 17 re-photographed at another orientation, with wear.
    tray[41] = rotated(&tray[17], 77)
        .iter()
        .enumerate()
        .map(|(i, v)| v + 0.02 * (i as f64 * 0.9).sin())
        .collect();

    let mut steps = StepCounter::new();
    let motif = closest_pair(&tray, Measure::Euclidean, &mut steps).expect("enough specimens");
    println!(
        "closest pair: specimens {} and {} at distance {:.4} (rotation {} samples)",
        motif.a, motif.b, motif.distance, motif.rotation.shift
    );
    assert_eq!((motif.a, motif.b), (17, 41));

    let pairs = tray.len() * (tray.len() - 1) / 2;
    let exhaustive = pairs as u64 * (n * n) as u64;
    println!(
        "steps: {} vs exhaustive {} ({:.0}x less work over {} pairs)\n",
        steps.steps(),
        exhaustive,
        exhaustive as f64 / steps.steps() as f64,
        pairs
    );
    assert!(steps.steps() < exhaustive);

    // The top-3 motifs, with class labels for context.
    let mut steps3 = StepCounter::new();
    let motifs = top_motifs(&tray, 3, Measure::Euclidean, &mut steps3).expect("enough specimens");
    println!("top motifs:");
    for m in &motifs {
        println!(
            "  {:>2} ({:<13}) ↔ {:>2} ({:<13}) distance {:.4}",
            m.a, ds.class_names[ds.labels[m.a]], m.b, ds.class_names[ds.labels[m.b]], m.distance
        );
    }
    // Motifs after the planted pair should join same-class specimens.
    assert!(motifs[1].distance >= motifs[0].distance && motifs[2].distance >= motifs[1].distance);
}
