//! Star light-curve search (Section 2.4 of the paper).
//!
//! ```sh
//! cargo run --release --example lightcurve_search
//! ```
//!
//! A phase-folded periodic light curve has no natural starting point, so
//! finding similar stars requires comparing every circular shift — the
//! rotation-invariance problem verbatim. This example searches a
//! synthetic survey three ways: brute force (steps counted
//! analytically), the wedge engine in main memory, and the
//! Fourier/VP-tree disk index, reporting steps and disk accesses.

use rotind::distance::Measure;
use rotind::index::disk::{IndexedDatabase, ReducedRepr};
use rotind::index::engine::{Invariance, RotationQuery};
use rotind::lightcurve::dataset::light_curves;
use rotind::ts::StepCounter;

fn main() {
    let n = 512;
    let survey = light_curves(600, n, 7);
    let database: Vec<Vec<f64>> = survey.items[..599].to_vec();
    let query = survey.items[599].clone();
    let query_class = survey.labels[599];
    println!(
        "survey: {} curves of length {n}; query is a fresh {}\n",
        database.len(),
        survey.class_names[query_class]
    );

    // Main-memory wedge search.
    let engine = RotationQuery::new(&query, Invariance::Rotation).expect("valid query");
    let mut steps = StepCounter::new();
    let hit = engine
        .nearest_with_steps(&database, &mut steps)
        .expect("non-empty");
    let brute = rotind::eval::speedup::brute_force_steps(database.len(), n, n, Measure::Euclidean);
    println!(
        "wedge search : star {} ({}) at distance {:.4}",
        hit.index, survey.class_names[survey.labels[hit.index]], hit.distance
    );
    println!(
        "               {} steps vs {} brute force ({:.0}x faster)",
        steps.steps(),
        brute,
        brute as f64 / steps.steps() as f64
    );
    assert_eq!(
        survey.labels[hit.index], query_class,
        "the nearest star should share the query's variability class"
    );

    // The convolution trick (what the astronomy community uses): exact
    // but Euclidean-only and O(n log n) per star regardless of pruning.
    let (conv_d, conv_shift) =
        rotind::fft::convolution::min_shift_euclidean(&database[hit.index], &query);
    println!("convolution  : confirms distance {conv_d:.4} at phase shift {conv_shift} ✓");
    assert!((conv_d - hit.distance).abs() < 1e-6);

    // Disk-based search: only 16 Fourier magnitudes per star live in the
    // index; full curves are fetched only when the bound fails.
    let index = IndexedDatabase::build(database.clone(), 16, ReducedRepr::FourierMagnitude)
        .expect("valid database");
    let (disk_hit, stats) = index
        .nearest(&query, Measure::Euclidean)
        .expect("valid query");
    println!(
        "disk index   : star {} at {:.4}; retrieved {}/{} curves ({:.1}% of the survey)",
        disk_hit.index,
        disk_hit.distance,
        stats.retrieved,
        stats.total,
        100.0 * stats.fraction()
    );
    assert_eq!(disk_hit.index, hit.index);

    // DTW handles stars whose folded curves are locally distorted
    // (period error, asymmetric cycles).
    let dtw_engine = RotationQuery::with_measure(
        &query,
        Invariance::Rotation,
        Measure::Dtw(rotind::distance::DtwParams::new(5)),
    )
    .expect("valid query");
    let mut dtw_steps = StepCounter::new();
    let dtw_hit = dtw_engine
        .nearest_with_steps(&database, &mut dtw_steps)
        .expect("non-empty");
    let dtw_brute = rotind::eval::speedup::brute_force_steps(
        database.len(),
        n,
        n,
        Measure::Dtw(rotind::distance::DtwParams::new(5)),
    );
    println!(
        "DTW (R=5)    : star {} at {:.4}; {} steps vs {} brute ({:.0}x faster)",
        dtw_hit.index,
        dtw_hit.distance,
        dtw_steps.steps(),
        dtw_brute,
        dtw_brute as f64 / dtw_steps.steps() as f64
    );
}
