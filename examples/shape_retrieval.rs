//! Shape retrieval with mirror-image and rotation-limited invariance.
//!
//! ```sh
//! cargo run --release --example shape_retrieval
//! ```
//!
//! Demonstrates the two query refinements of Section 3 of the paper:
//!
//! * **mirror-image invariance** — a skull photographed facing the other
//!   way should still match ("d" vs "b" should NOT, so it is opt-in);
//! * **rotation-limited queries** — *"find the best match to this shape
//!   allowing a maximum rotation of 15 degrees"*: retrieving a "6"
//!   without retrieving a "9".

use rotind::distance::Measure;
use rotind::index::engine::{Invariance, RotationQuery};
use rotind::shape::bitmap::Bitmap;
use rotind::shape::centroid::shape_to_series;
use rotind::ts::normalize::z_normalize_lossy;
use rotind::ts::rotate::{mirror, rotated};

/// Rasterise a "6"-like glyph: a circle with an ascending stroke. The
/// stroke breaks the symmetry so a "9" is the same bitmap upside-down.
fn glyph_six(size: usize) -> Bitmap {
    let c = size as f64 / 2.0;
    let r_body = size as f64 * 0.22;
    Bitmap::from_fn(size, size, |x, y| {
        let (xf, yf) = (x as f64, y as f64);
        // Body: a filled circle low in the canvas.
        let (bx, by) = (c, c + size as f64 * 0.12);
        let body = (xf - bx).powi(2) + (yf - by).powi(2) <= r_body * r_body;
        // Ascender: a thick arc up the right side.
        let dx = xf - (c + size as f64 * 0.10);
        let dy = yf - (c - size as f64 * 0.18);
        let asc = dx.abs() < size as f64 * 0.07 && dy.abs() < size as f64 * 0.22;
        body || asc
    })
}

fn flipped(b: &Bitmap) -> Bitmap {
    Bitmap::from_fn(b.width(), b.height(), |x, y| {
        b.get((b.width() - 1 - x) as isize, (b.height() - 1 - y) as isize)
    })
}

fn main() {
    let n = 128;
    // Convert glyph bitmaps to centroid-distance series (Figure 2).
    let six = z_normalize_lossy(&shape_to_series(&glyph_six(96), n).expect("non-empty glyph"));
    let nine =
        z_normalize_lossy(&shape_to_series(&flipped(&glyph_six(96)), n).expect("non-empty glyph"));
    println!("glyphs rasterised: '6' and '9' (the same shape rotated 180°)\n");

    // Distractor shapes plus the two glyphs, at random-ish rotations.
    let mut database: Vec<Vec<f64>> = (0..30)
        .map(|k| {
            let profile = rotind::shape::generators::superformula(
                3.0 + (k % 5) as f64,
                1.0 + 0.2 * (k % 7) as f64,
                2.0,
                2.0,
                n,
            );
            rotated(&z_normalize_lossy(&profile), (k * 13) % n)
        })
        .collect();
    let six_at = database.len();
    database.push(rotated(&six, 5));
    let nine_at = database.len();
    database.push(rotated(&nine, 3));

    // 1. Full rotation invariance cannot tell 6 from 9: both are
    //    essentially zero distance from a "6" query.
    let full = RotationQuery::new(&six, Invariance::Rotation).expect("valid");
    let d6 = full.distance_to(&database[six_at]).expect("len");
    let d9 = full.distance_to(&database[nine_at]).expect("len");
    println!("full invariance : d(6,'6') = {d6:.4}   d(6,'9') = {d9:.4}  (indistinguishable)");

    // 2. Rotation-limited to ±15°: the 9 (a 180° rotation) is excluded.
    let max_shift = n * 15 / 360; // 15° in samples
    let limited =
        RotationQuery::new(&six, Invariance::RotationLimited { max_shift }).expect("valid");
    let d6l = limited.distance_to(&database[six_at]).expect("len");
    let d9l = limited.distance_to(&database[nine_at]).expect("len");
    println!("±15° limited    : d(6,'6') = {d6l:.4}   d(6,'9') = {d9l:.4}  (the 9 is now far)");
    assert!(d9l > d6l + 0.5, "limited query must separate 6 from 9");
    let hit = limited.nearest(&database).expect("non-empty");
    assert_eq!(hit.index, six_at);
    println!("±15° 1-NN       : item {} (the '6') ✓\n", hit.index);

    // 3. Mirror invariance: a mirrored specimen only matches when asked.
    let specimen = rotind::shape::generators::superformula(5.0, 0.8, 2.4, 1.4, n);
    let specimen = z_normalize_lossy(&specimen);
    let mirrored_copy = rotated(&mirror(&specimen), 40);
    let mut db2 = database.clone();
    let mirror_at = db2.len();
    db2.push(mirrored_copy);

    let plain = RotationQuery::new(&specimen, Invariance::Rotation).expect("valid");
    let with_mirror = RotationQuery::new(&specimen, Invariance::RotationMirror).expect("valid");
    let d_plain = plain.distance_to(&db2[mirror_at]).expect("len");
    let hit_m = with_mirror.nearest(&db2).expect("non-empty");
    println!("mirror specimen : plain distance {d_plain:.4} (no match)");
    println!(
        "                  with mirror rows: item {} at {:.6}, mirrored = {}",
        hit_m.index, hit_m.distance, hit_m.rotation.mirrored
    );
    assert_eq!(hit_m.index, mirror_at);
    assert!(hit_m.rotation.mirrored);

    // 4. The same engine under DTW — arbitrary measures, one API.
    let dtw = RotationQuery::with_measure(
        &six,
        Invariance::Rotation,
        Measure::Dtw(rotind::distance::DtwParams::new(3)),
    )
    .expect("valid");
    let hit_dtw = dtw.nearest(&database).expect("non-empty");
    println!(
        "\nDTW(R=3) 1-NN   : item {} at {:.4} (6 and 9 tie under full invariance)",
        hit_dtw.index, hit_dtw.distance
    );
}
