//! Streaming pattern monitoring with wedges ("Atomic Wedgie").
//!
//! ```sh
//! cargo run --release --example stream_monitoring
//! ```
//!
//! The paper's wedge machinery powers more than shape search: merging a
//! set of *monitored patterns* into hierarchical wedges lets a live
//! stream be filtered against all of them at once — one early-abandoning
//! LB_Keogh pass per window usually dismisses every pattern. This
//! example watches a synthetic telemetry stream for three fault
//! signatures and reports steps used versus the naive per-pattern scan.

use rotind::distance::{DtwParams, Measure};
use rotind::index::stream::StreamFilter;
use rotind::ts::StepCounter;

fn main() {
    let n = 64;
    // Three "fault signatures": a spike train, a dropout, an oscillation.
    let spike: Vec<f64> = (0..n)
        .map(|i| if i % 16 == 8 { 3.0 } else { 0.0 })
        .collect();
    let dropout: Vec<f64> = (0..n)
        .map(|i| if (24..40).contains(&i) { -2.0 } else { 0.0 })
        .collect();
    let oscillation: Vec<f64> = (0..n).map(|i| 1.5 * (i as f64 * 0.8).sin()).collect();
    let patterns = vec![spike.clone(), dropout.clone(), oscillation.clone()];
    let names = ["spike-train", "dropout", "oscillation"];

    let mut filter = StreamFilter::new(
        patterns.clone(),
        vec![2.0, 2.0, 2.0],
        Measure::Dtw(DtwParams::new(2)),
    )
    .expect("valid patterns");

    // Telemetry idles at a 1.8-unit operating level with gentle drift;
    // during a fault the sensor drops into the signature regime. The
    // dropout fires at t = 500 and a slightly time-warped spike train at
    // t = 1500. (Idle windows are far from every signature — the
    // situation wedge filtering exploits: one partial LB pass per window
    // dismisses all patterns.)
    let mut stream: Vec<f64> = (0..2500)
        .map(|t| 1.8 + 0.2 * (t as f64 * 0.01).sin() + 0.05 * (t as f64 * 0.13).cos())
        .collect();
    for (i, v) in dropout.iter().enumerate() {
        stream[500 + i] = v + 0.02 * (i as f64 * 0.9).sin();
    }
    for i in 0..n {
        let i: usize = i;
        // warp: every fourth sample lags by one position
        let src = i.saturating_sub(usize::from(i % 4 == 3));
        stream[1500 + i] = spike[src] + 0.02 * (i as f64 * 1.3).cos();
    }

    let mut steps = StepCounter::new();
    let matches = filter.scan(&stream, &mut steps);

    println!(
        "monitored {} patterns of length {n} over {} samples\n",
        filter.num_patterns(),
        stream.len()
    );
    let mut first_per_pattern = std::collections::BTreeMap::new();
    for m in &matches {
        first_per_pattern.entry(m.pattern).or_insert(*m);
    }
    for (pattern, m) in &first_per_pattern {
        println!(
            "detected {:<12} window ending at t = {:>4}, distance {:.3}",
            names[*pattern], m.end_position, m.distance
        );
    }
    assert!(
        first_per_pattern.contains_key(&0),
        "warped spike train must fire under DTW"
    );
    assert!(first_per_pattern.contains_key(&1), "dropout must fire");

    // Naive cost floor: every window against every pattern.
    let windows = stream.len() - n + 1;
    let naive = (windows * patterns.len() * n) as u64;
    println!(
        "\nsteps: {} vs naive floor {} ({:.1}x less work)",
        steps.steps(),
        naive,
        naive as f64 / steps.steps() as f64
    );
    assert!(steps.steps() < naive);
}
