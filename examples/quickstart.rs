//! Quickstart: exact rotation-invariant nearest-neighbour search.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small database of synthetic shape boundaries (as
//! centroid-distance time series), rotates one of them to act as the
//! query, and retrieves it — exactly — with the wedge-accelerated
//! engine, comparing the step cost against the brute-force scan.

use rotind::index::engine::{Invariance, RotationQuery};
use rotind::shape::dataset::projectile_points;
use rotind::ts::rotate::rotated;
use rotind::ts::StepCounter;

fn main() {
    // 200 projectile-point outlines, length 128, four morphological
    // classes, each at a random rotation.
    let n = 128;
    let dataset = projectile_points(200, n, 42);
    let mut database = dataset.items.clone();

    // Take one item, rotate it by 100 samples (≈ 281°) and perturb it a
    // little: this is "the same shape photographed at a different
    // orientation".
    let target = 137usize;
    let query: Vec<f64> = rotated(&database[target], 100)
        .iter()
        .enumerate()
        .map(|(i, v)| v + 0.01 * ((i as f64) * 0.7).sin())
        .collect();
    println!("query = item {target} rotated by 100 samples + noise\n");

    // The engine expands the query into all n rotations, clusters them
    // into hierarchical wedges (O(n²) once), then scans.
    let engine = RotationQuery::new(&query, Invariance::Rotation).expect("valid query");
    let mut steps = StepCounter::new();
    let hit = engine
        .nearest_with_steps(&database, &mut steps)
        .expect("non-empty database");

    println!("best match : item {}", hit.index);
    println!("distance   : {:.4}", hit.distance);
    println!("rotation   : shift {} of {n}", hit.rotation.shift);
    println!("steps used : {}", steps.steps());

    let brute = rotind::eval::speedup::brute_force_steps(
        database.len(),
        n,
        n,
        rotind::distance::Measure::Euclidean,
    );
    println!(
        "brute force: {brute} steps  ({:.1}x more)\n",
        brute as f64 / steps.steps() as f64
    );
    assert_eq!(hit.index, target);

    // k-NN and range queries come for free.
    let top3 = engine.k_nearest(&database, 3).expect("valid database");
    println!("top-3 neighbours:");
    for nb in &top3 {
        println!(
            "  item {:>3}  class {:<13} distance {:.4}",
            nb.index, dataset.class_names[dataset.labels[nb.index]], nb.distance
        );
    }

    let within = engine
        .range(&database, top3[2].distance)
        .expect("valid database");
    println!("\nitems within {:.4}: {}", top3[2].distance, within.len());

    // Exactness is not probabilistic: delete the planted match and the
    // engine still returns precisely the brute-force answer.
    database.remove(target);
    let oracle = rotind::distance::rotation::search_database(
        &rotind::ts::rotate::RotationMatrix::full(&query).expect("valid"),
        &database,
        rotind::distance::Measure::Euclidean,
        &mut StepCounter::new(),
    )
    .expect("non-empty");
    let hit2 = engine.nearest(&database).expect("non-empty");
    assert_eq!(hit2.index, oracle.index);
    println!(
        "\nafter removing the planted match, engine == brute force: item {} at {:.4}",
        hit2.index, hit2.distance
    );
}
