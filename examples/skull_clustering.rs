//! Hierarchical clustering of skull profiles (Figures 3 and 16).
//!
//! ```sh
//! cargo run --release --example skull_clustering
//! ```
//!
//! Reproduces the paper's morphology "sanity check": eight primate skull
//! profiles, presented at random rotations, are clustered with
//! group-average linkage under (a) major-axis landmarking — the brittle
//! domain-independent alignment of Section 2.1 — and (b) exact
//! best-rotation distances from the wedge engine. Conspecific pairs
//! should be siblings under (b).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rotind::cluster::linkage::{cluster, cluster_series, Linkage};
use rotind::cluster::matrix::DistanceMatrix;
use rotind::index::engine::{Invariance, RotationQuery};
use rotind::shape::centroid::{align_to_major_axis, radial_profile_to_series};
use rotind::shape::generators::skull::{skull_profile, PRIMATES};
use rotind::ts::normalize::z_normalize_lossy;
use rotind::ts::rotate::rotated;

fn main() {
    let n = 128;
    let mut rng = StdRng::seed_from_u64(2006);

    // Generate one profile per specimen and present it at a random
    // rotation (as a photographed skull would be).
    let series: Vec<Vec<f64>> = PRIMATES
        .iter()
        .map(|sp| {
            let profile = skull_profile(&sp.params, 4 * n, 0.25, &mut rng);
            let s = z_normalize_lossy(&radial_profile_to_series(&profile, n).expect("non-empty"));
            rotated(&s, rng.random_range(0..n))
        })
        .collect();
    let names: Vec<&str> = PRIMATES.iter().map(|sp| sp.name).collect();

    // (a) Landmark alignment: rotate to the major axis, then plain ED.
    let landmarked: Vec<Vec<f64>> = series.iter().map(|s| align_to_major_axis(s)).collect();
    let landmark = cluster_series(&landmarked, Linkage::Average);
    println!("— major-axis landmark alignment —");
    println!("{}", landmark.render(&names));

    // (b) Best-rotation distances via the wedge engine (exact).
    let engines: Vec<RotationQuery> = series
        .iter()
        .map(|s| RotationQuery::new(s, Invariance::Rotation).expect("valid"))
        .collect();
    let matrix = DistanceMatrix::from_fn(series.len(), |i, j| {
        engines[i].distance_to(&series[j]).expect("equal lengths")
    });
    let best = cluster(&matrix, Linkage::Average);
    println!("— best rotation alignment —");
    println!("{}", best.render(&names));

    // Score both methods: how many of the four conspecific pairs are
    // siblings in the dendrogram?
    let pairs = [(0usize, 1usize), (2, 3), (4, 5), (6, 7)];
    let score = |d: &rotind::cluster::Dendrogram| {
        pairs
            .iter()
            .filter(|&&(a, b)| {
                d.merges()
                    .iter()
                    .any(|m| (m.left == a && m.right == b) || (m.left == b && m.right == a))
            })
            .count()
    };
    let (s_landmark, s_best) = (score(&landmark), score(&best));
    println!("conspecific pairs correctly joined:");
    println!("  landmark alignment : {s_landmark}/4");
    println!("  best rotation      : {s_best}/4");
    assert!(
        s_best >= s_landmark,
        "exact rotation invariance must not lose to landmarking"
    );
    assert!(s_best >= 3, "best-rotation clustering should pair the taxa");
}
