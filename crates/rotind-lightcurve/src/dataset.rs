//! Labelled light-curve collections.

use crate::models::{add_observational_noise, model_curve, LightCurveClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rotind_shape::Dataset;
use rotind_ts::normalize::z_normalize_lossy;
use rotind_ts::rotate::rotated;

/// Canonical light-curve classification length (the Table-8 row); the
/// indexing experiments (Figures 22/23) use length 1,024 like the paper.
pub const LIGHTCURVE_CLASSIFICATION_LEN: usize = 128;

/// Generate `m` phase-folded light curves of length `n`: classes cycle
/// (eclipsing binary / Cepheid / RR Lyrae), each instance gets
/// photometric noise, and — the crux of Section 2.4 — a uniformly random
/// phase origin, which is exactly a random rotation of the series.
pub fn light_curves(m: usize, n: usize, seed: u64) -> Dataset {
    light_curves_with_noise(m, n, seed, 0.02)
}

/// [`light_curves`] with an explicit photometric noise level σ (relative
/// to the ≈1 model amplitude). The classification set uses a heavier σ
/// to mirror the survey-quality photometry behind the paper's
/// Light-Curve error rates; the indexing figures use clean σ = 0.02.
pub fn light_curves_with_noise(m: usize, n: usize, seed: u64, sigma: f64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut items = Vec::with_capacity(m);
    let mut labels = Vec::with_capacity(m);
    for i in 0..m {
        let class = LightCurveClass::ALL[i % LightCurveClass::ALL.len()];
        let mut curve = model_curve(class, n, &mut rng);
        add_observational_noise(&mut curve, sigma, &mut rng);
        let normalized = z_normalize_lossy(&curve);
        let shift = rng.random_range(0..n);
        items.push(rotated(&normalized, shift));
        labels.push(i % LightCurveClass::ALL.len());
    }
    Dataset {
        name: "LightCurve".to_string(),
        items,
        labels,
        class_names: LightCurveClass::ALL
            .iter()
            .map(|c| c.name().to_string())
            .collect(),
    }
}

/// The Table-8 light-curve classification set: 3 classes, 477 curves
/// (paper: 954 — subsampled 2×), length 128.
pub fn classification_set(seed: u64) -> Dataset {
    light_curves_with_noise(477, LIGHTCURVE_CLASSIFICATION_LEN, seed, 0.13)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_validity() {
        let ds = light_curves(30, 256, 1);
        assert!(ds.validate());
        assert_eq!(ds.len(), 30);
        assert_eq!(ds.series_len(), 256);
        assert_eq!(ds.num_classes(), 3);
        assert_eq!(ds.labels[0], 0);
        assert_eq!(ds.labels[4], 1);
    }

    #[test]
    fn classification_set_matches_design() {
        let ds = classification_set(2);
        assert_eq!(ds.len(), 477);
        assert_eq!(ds.series_len(), LIGHTCURVE_CLASSIFICATION_LEN);
        assert_eq!(ds.num_classes(), 3);
    }

    #[test]
    fn normalised_and_deterministic() {
        let a = light_curves(10, 64, 7);
        let b = light_curves(10, 64, 7);
        assert_eq!(a.items, b.items);
        for s in &a.items {
            assert!(rotind_ts::stats::mean(s).abs() < 1e-9);
        }
    }

    #[test]
    fn random_phase_hides_the_eclipse_position() {
        // Across many eclipsing binaries, the minimum's position should
        // be spread over the whole phase range.
        let ds = light_curves(90, 64, 11);
        let mut positions = Vec::new();
        for (s, &l) in ds.items.iter().zip(&ds.labels) {
            if l == 0 {
                let argmin = s
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .unwrap()
                    .0;
                positions.push(argmin);
            }
        }
        let spread = positions.iter().max().unwrap() - positions.iter().min().unwrap();
        assert!(
            spread > 32,
            "eclipse positions should be scattered: {spread}"
        );
    }
}
