//! # rotind-lightcurve — synthetic star light curves
//!
//! Section 2.4 of the paper: a star light curve is the brightness of a
//! celestial object as a function of time; after folding a periodic
//! variable at its period, *"there is no natural starting point"*, so
//! comparing two light curves requires testing every circular shift —
//! **exactly** the rotation-invariant matching problem, with no
//! modification to the machinery. The paper indexes labelled curves from
//! the Harvard Time Series Center / OGLE (Figures 22 and 23, the
//! Light-Curve row of Table 8); this crate synthesises phase-folded
//! curves from the three classic variability classes used there.
//!
//! * [`models`] — eclipsing binaries, Cepheid-like sawtooth pulsators,
//!   RR-Lyrae-like pulsators;
//! * [`dataset`] — labelled, noisy, randomly phased (= rotated)
//!   collections in the shared [`rotind_shape::Dataset`] format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod models;

pub use dataset::light_curves;
pub use models::LightCurveClass;
