//! Phase-folded light-curve models for the three variability classes.
//!
//! Brightness is modelled in (arbitrary, later z-normalised) flux units
//! over one period, phase ∈ [0, 1). The classes:
//!
//! * **Eclipsing binary** — flat out-of-eclipse flux with a deep primary
//!   eclipse and a shallower secondary half a period later;
//! * **Cepheid** — the classic asymmetric sawtooth: rapid brightening,
//!   slow exponential-ish decline;
//! * **RR Lyrae** — a sharper, shorter-period analogue with a steeper
//!   rise and a descending-branch bump.

use rand::Rng;
use std::f64::consts::TAU;

/// The variability class of a periodic star.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LightCurveClass {
    /// Detached eclipsing binary.
    EclipsingBinary,
    /// Classical Cepheid pulsator.
    Cepheid,
    /// RR Lyrae pulsator.
    RrLyrae,
}

impl LightCurveClass {
    /// All classes, in label order.
    pub const ALL: [LightCurveClass; 3] = [
        LightCurveClass::EclipsingBinary,
        LightCurveClass::Cepheid,
        LightCurveClass::RrLyrae,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            LightCurveClass::EclipsingBinary => "eclipsing-binary",
            LightCurveClass::Cepheid => "cepheid",
            LightCurveClass::RrLyrae => "rr-lyrae",
        }
    }
}

/// A smooth eclipse dip: a squared-cosine notch of the given fractional
/// `width` centred at `center` (phase units).
fn eclipse(phase: f64, center: f64, width: f64, depth: f64) -> f64 {
    let mut d = phase - center;
    if d > 0.5 {
        d -= 1.0;
    }
    if d < -0.5 {
        d += 1.0;
    }
    if d.abs() >= width / 2.0 {
        return 0.0;
    }
    let t = d / (width / 2.0);
    -depth * (0.5 + 0.5 * (std::f64::consts::PI * t).cos())
}

/// One phase-folded light curve of `class` with `n` samples; `rng`
/// jitters the physical parameters within the class.
pub fn model_curve(class: LightCurveClass, n: usize, rng: &mut impl Rng) -> Vec<f64> {
    match class {
        LightCurveClass::EclipsingBinary => {
            let primary_depth = rng.random_range(0.5..1.0);
            let secondary_depth = primary_depth * rng.random_range(0.25..0.7);
            let width = rng.random_range(0.06..0.14);
            let separation = rng.random_range(0.45..0.55);
            (0..n)
                .map(|i| {
                    let phase = i as f64 / n as f64;
                    1.0 + eclipse(phase, 0.0, width, primary_depth)
                        + eclipse(phase, separation, width * 1.1, secondary_depth)
                })
                .collect()
        }
        LightCurveClass::Cepheid => {
            let rise = rng.random_range(0.12..0.22); // fraction of period spent rising
            let amp = rng.random_range(0.6..1.0);
            let curvature = rng.random_range(1.4..2.2);
            (0..n)
                .map(|i| {
                    let phase = i as f64 / n as f64;
                    if phase < rise {
                        amp * (phase / rise)
                    } else {
                        let t = (phase - rise) / (1.0 - rise);
                        amp * (1.0 - t.powf(1.0 / curvature))
                    }
                })
                .collect()
        }
        LightCurveClass::RrLyrae => {
            let rise = rng.random_range(0.05..0.12); // steeper rise than a Cepheid
            let amp = rng.random_range(0.7..1.1);
            let bump_height = rng.random_range(0.05..0.15);
            let bump_pos = rng.random_range(0.55..0.75);
            (0..n)
                .map(|i| {
                    let phase = i as f64 / n as f64;
                    let base = if phase < rise {
                        amp * (phase / rise)
                    } else {
                        let t = (phase - rise) / (1.0 - rise);
                        amp * (1.0 - t.powf(0.45))
                    };
                    // Descending-branch bump.
                    base + bump_height * (-((phase - bump_pos) / 0.06).powi(2)).exp()
                })
                .collect()
        }
    }
}

/// Observational noise model: Gaussian photometric error plus a slow
/// sinusoidal systematic (airmass-like trend folded into phase).
pub fn add_observational_noise(curve: &mut [f64], sigma: f64, rng: &mut impl Rng) {
    let n = curve.len();
    let trend_amp = sigma * rng.random_range(0.0..2.0);
    let trend_phase = rng.random_range(0.0..TAU);
    for (i, v) in curve.iter_mut().enumerate() {
        let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        let g = (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos();
        let phi = TAU * i as f64 / n as f64;
        *v += sigma * g + trend_amp * (phi + trend_phase).sin();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn curves_are_finite_and_sized() {
        for class in LightCurveClass::ALL {
            let c = model_curve(class, 256, &mut rng(1));
            assert_eq!(c.len(), 256);
            assert!(c.iter().all(|v| v.is_finite()), "{class:?}");
        }
    }

    #[test]
    fn eclipsing_binary_has_two_dips() {
        let c = model_curve(LightCurveClass::EclipsingBinary, 512, &mut rng(2));
        // Out-of-eclipse flux ≈ 1; count contiguous below-0.9 regions.
        let mut dips = 0;
        let mut inside = false;
        for (i, &v) in c.iter().enumerate() {
            let below = v < 0.9;
            if below && !inside {
                dips += 1;
            }
            inside = below;
            let _ = i;
        }
        // Wrap-around: the primary eclipse straddles phase 0.
        if c[0] < 0.9 && c[c.len() - 1] < 0.9 {
            dips -= 1;
        }
        assert_eq!(dips, 2, "expected primary + secondary eclipse");
        // Primary (at phase 0) deeper than secondary (at ~0.5).
        let min_near_zero = c[..32]
            .iter()
            .chain(&c[480..])
            .copied()
            .fold(f64::MAX, f64::min);
        let min_near_half = c[224..288].iter().copied().fold(f64::MAX, f64::min);
        assert!(min_near_zero < min_near_half);
    }

    #[test]
    fn cepheid_rises_fast_decays_slow() {
        let mut r = rng(3);
        let c = model_curve(LightCurveClass::Cepheid, 1000, &mut r);
        let peak = c
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(peak < 250, "peak at {peak} should come early (fast rise)");
        // Monotone decline after the peak until near the period end.
        for w in c[peak..900].windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
    }

    #[test]
    fn rr_lyrae_rises_steeper_than_cepheid() {
        let mut r1 = rng(4);
        let mut r2 = rng(4);
        let rr = model_curve(LightCurveClass::RrLyrae, 1000, &mut r1);
        let ceph = model_curve(LightCurveClass::Cepheid, 1000, &mut r2);
        let peak_pos = |c: &[f64]| {
            c.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0
        };
        assert!(peak_pos(&rr) <= peak_pos(&ceph));
    }

    #[test]
    fn noise_perturbs_without_destroying_scale() {
        let mut r = rng(5);
        let mut c = model_curve(LightCurveClass::Cepheid, 256, &mut r);
        let clean = c.clone();
        add_observational_noise(&mut c, 0.03, &mut r);
        let rms: f64 = (clean
            .iter()
            .zip(&c)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / 256.0)
            .sqrt();
        assert!(rms > 0.005 && rms < 0.2, "rms {rms}");
    }

    #[test]
    fn classes_are_mutually_distinguishable() {
        // Between-class distance exceeds within-class distance on clean
        // curves (at best phase alignment).
        let best_shift_dist = |a: &[f64], b: &[f64]| -> f64 {
            let n = a.len();
            (0..n)
                .map(|s| {
                    let rot = rotind_ts::rotate::rotated(b, s);
                    a.iter()
                        .zip(&rot)
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum::<f64>()
                        .sqrt()
                })
                .fold(f64::INFINITY, f64::min)
        };
        let norm = |c: Vec<f64>| rotind_ts::normalize::z_normalize_lossy(&c);
        let mut r = rng(6);
        let eb1 = norm(model_curve(LightCurveClass::EclipsingBinary, 128, &mut r));
        let eb2 = norm(model_curve(LightCurveClass::EclipsingBinary, 128, &mut r));
        let ce = norm(model_curve(LightCurveClass::Cepheid, 128, &mut r));
        assert!(best_shift_dist(&eb1, &eb2) < best_shift_dist(&eb1, &ce));
    }
}
