//! Call-graph totality: every resolved edge points at a real symbol,
//! and unresolved sites are explicitly bucketed, never dropped.
//!
//! Proven two ways, mirroring `parser_spans.rs`: deterministically over
//! every `.rs` file the workspace scan loads (the distribution that
//! matters — the graph the interprocedural rules actually reason
//! about), and property-style over randomly generated call webs where
//! some callees deliberately do not exist.

use proptest::prelude::*;
use rotind_lint::callgraph::CallGraph;
use rotind_lint::source::{FileKind, SourceFile};
use rotind_lint::{walker, workspace_root};

#[test]
fn call_graph_is_total_over_the_whole_workspace() {
    let files = walker::load_workspace(workspace_root()).expect("workspace walk");
    assert!(files.len() > 100, "workspace should have >100 .rs files");
    let g = CallGraph::build(&files);
    g.validate_totality(&files)
        .unwrap_or_else(|e| panic!("totality invariant broken: {e}"));
    let (resolved, unresolved) = g.site_counts();
    assert_eq!(resolved + unresolved, g.sites.len());
    assert!(resolved > 0, "a real workspace resolves some edges");
    assert!(
        unresolved > 0,
        "std/vendored calls must stay bucketed, not silently dropped"
    );
    // Every resolved edge points at a symbol with the called name.
    for s in &g.sites {
        for &t in &s.targets {
            let node = g.index.nodes.get(t).expect("target id in range");
            assert_eq!(
                node.decl.name, s.name,
                "edge `{}` (line {}) resolved to `{}`",
                s.name, s.line, node.decl.name
            );
        }
    }
}

/// A random call web: `N_FNS` functions whose bodies call a mix of
/// defined fns, undefined fns and methods, driven by the picks.
const N_FNS: usize = 6;

fn program(picks: &[usize]) -> String {
    let mut bodies: Vec<String> = vec![String::new(); N_FNS];
    for (k, p) in picks.iter().enumerate() {
        let caller = p % N_FNS;
        // Callee indices beyond N_FNS-1 name functions that do not
        // exist — those sites must bucket as unresolved.
        let callee = (p / N_FNS) % (N_FNS + 3);
        let stmt = match k % 3 {
            0 => format!("    v.m{callee}();\n"),
            1 => format!("    f{callee}(v);\n"),
            _ => format!("    let _ = f{callee}(v);\n"),
        };
        if let Some(b) = bodies.get_mut(caller) {
            b.push_str(&stmt);
        }
    }
    let mut src = String::new();
    for (i, b) in bodies.iter().enumerate() {
        src.push_str(&format!("fn f{i}(v: &V) {{\n{b}}}\n"));
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_call_webs_are_total(picks in prop::collection::vec(0usize..1000, 0..40)) {
        let src = program(&picks);
        let files = vec![SourceFile::parse("crates/x/src/gen.rs", &src, FileKind::Library)];
        let g = CallGraph::build(&files);
        prop_assert!(g.validate_totality(&files).is_ok(), "totality broken on:\n{src}");
        let (resolved, unresolved) = g.site_counts();
        prop_assert!(resolved + unresolved == g.sites.len());
        for s in &g.sites {
            // Defined callees (f0..f5, plain calls) must resolve;
            // undefined ones and all method calls must bucket.
            for &t in &s.targets {
                let node = g.index.nodes.get(t).expect("target id in range");
                prop_assert!(node.decl.name == s.name, "edge `{}` mis-resolved on:\n{src}", s.name);
            }
            if !s.is_method && s.name.strip_prefix('f')
                .and_then(|n| n.parse::<usize>().ok())
                .is_some_and(|n| n < N_FNS)
            {
                prop_assert!(!s.targets.is_empty(), "defined callee `{}` unresolved on:\n{src}", s.name);
            }
        }
    }
}
