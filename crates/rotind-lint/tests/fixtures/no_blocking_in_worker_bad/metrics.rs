//! A surprise mutex on the worker hot path, with no
//! `// lint: blocking-allowed(…)` to vouch for it.

pub fn observe(s: &Shared) {
    let _g = s.counts.lock();
}
