//! Seeded violation: the worker loop looks lock-free here — the mutex
//! hides two calls down, in `metrics.rs`.

pub fn worker_loop(s: &Shared) {
    run_job(s);
}

fn run_job(s: &Shared) {
    observe(s);
}
