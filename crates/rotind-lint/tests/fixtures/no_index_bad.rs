// Fixture: panicking index expressions the no-index rule must catch.
pub fn gather(xs: &[f64], idx: &[usize]) -> f64 {
    let mut acc = xs[0];
    for &i in idx {
        acc += xs[i];
    }
    acc + xs[1..].len() as f64
}
