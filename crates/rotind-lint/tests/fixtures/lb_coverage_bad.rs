// Fixture: a public lower-bound entry point no soundness test references.
pub fn lb_orphan(q: &[f64], c: &[f64]) -> f64 {
    q.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unrelated() {
        assert!(true);
    }
}
