// Fixture: every work marker carries a tracking reference, and ordinary
// words containing the letters are not markers.
// TODO(#42): tighten this bound once the wedge split lands
pub fn bound() -> f64 {
    // FIXME: see issues/rotind/17 for the derivation
    // Mastodons are not markers.
    0.5
}
