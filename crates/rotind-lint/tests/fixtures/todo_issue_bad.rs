// Fixture: work markers with no tracking reference.
// TODO tighten this bound
pub fn bound() -> f64 {
    // FIXME the constant is a guess
    // HACK copied from the prototype
    0.5
}
