// Fixture: direct terminal I/O from library code.
pub fn report(hits: usize) {
    println!("hits: {hits}");
    eprintln!("done");
    let _ = std::io::stdout();
}
