//! The bad half of the UFCS pair: a fully-qualified call to a
//! *non*-bound helper is parsed as a call but is not a witness — the
//! bound-named fn still owes its own `debug_assert` or exemption.

pub struct Wedge {
    lo: f64,
}

trait Estimate {
    fn midpoint(&self, q: &[f64]) -> f64;
}

impl Estimate for Wedge {
    fn midpoint(&self, q: &[f64]) -> f64 {
        if q.is_empty() {
            0.0
        } else {
            self.lo
        }
    }
}

fn lb_guess(w: &Wedge, q: &[f64]) -> f64 {
    <Wedge as Estimate>::midpoint(w, q)
}
