// Fixture: crate root carrying the required attribute.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub fn noop() {}
