// Fixture: tolerance-based comparison and total order, no exact float ==.
const EPS: f64 = 1e-9;

pub fn classify(x: f64, a: f64, b: f64) -> bool {
    if (x - 0.5).abs() < EPS {
        return true;
    }
    if (x - 1.0).abs() >= EPS {
        return false;
    }
    a.total_cmp(&b) == std::cmp::Ordering::Less
}

pub fn int_eq_is_fine(n: usize) -> bool {
    n == 3
}
