// Fixture: library code returns strings and lets the caller decide where
// output goes; format! alone is not terminal I/O.
pub fn report(hits: usize) -> String {
    format!("hits: {hits}")
}
