// Fixture: every panic-family construct the no-panic rule must catch.
pub fn first(xs: &[f64]) -> f64 {
    let head = xs.first().unwrap();
    let tail = xs.last().expect("non-empty");
    if head > tail {
        panic!("descending");
    }
    *head
}

pub fn unfinished() {
    unreachable!("never");
}
