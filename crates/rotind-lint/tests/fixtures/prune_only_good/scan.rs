//! The good half, file 2 of 2: the bound is used the one way a bound
//! may be used — a strict dismissal comparison. The comparison is a
//! taint cut, so nothing bound-tainted escapes.

fn should_prune(q: &[f64], radius: f64) -> bool {
    paa_tier_bound(q) > radius
}
