//! The good half of the interprocedural pair, file 1 of 2: the same
//! delegation shape, but honestly named as a cascade tier — callers
//! know the contract from the name, and the delegation to `lb_kim`
//! doubles as the admissibility witness.

fn paa_tier_bound(q: &[f64]) -> f64 {
    lb_kim(q)
}
