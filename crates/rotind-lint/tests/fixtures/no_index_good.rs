// Fixture: the same access patterns written without panicking indexing —
// iterators, `get`, full-range slices, plus non-index bracket forms
// (array literals, types, attributes, macros) that must not be flagged.
#[derive(Clone)]
pub struct Window {
    pub lo: [f64; 2],
}

pub fn gather(xs: &[f64], idx: &[usize]) -> f64 {
    let mut acc = xs.first().copied().unwrap_or(0.0);
    for &i in idx {
        acc += xs.get(i).copied().unwrap_or(0.0);
    }
    let whole: &[f64] = &xs[..];
    let _v = vec![0.0; 2];
    acc + whole.iter().skip(1).count() as f64
}
