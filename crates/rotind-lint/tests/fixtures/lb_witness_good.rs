// Fixture: the three legitimate shapes — a direct debug_assert witness,
// delegation to a witnessed bound, and a reasoned exemption.
fn lb_direct(q: &[f64], upper: &[f64], true_distance: f64) -> f64 {
    let lb = q
        .iter()
        .zip(upper)
        .map(|(x, u)| if x > u { (x - u) * (x - u) } else { 0.0 })
        .sum::<f64>()
        .sqrt();
    debug_assert!(
        lb <= true_distance + 1e-6,
        "bound exceeds the true distance"
    );
    lb
}

fn lb_delegating(q: &[f64], upper: &[f64], true_distance: f64) -> f64 {
    lb_direct(q, upper, true_distance)
}

// lint: witness-exempt(accessor: returns a bound computed and witnessed by lb_direct)
fn lb_cached(stash: &f64) -> f64 {
    *stash
}

fn caller(q: &[f64], upper: &[f64], radius: f64) -> bool {
    let d = 10.0;
    // Bounds prune; they are never returned as distances (prune-only).
    lb_delegating(q, upper, d) + lb_cached(&d) > radius
}
