// Fixture: fallible paths via Option, one documented invariant behind an
// allow escape, and test-module panics (exempt).
pub fn first(xs: &[f64]) -> Option<f64> {
    xs.first().copied()
}

pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    // Invariant: the guard above rules out the empty case.
    // rotind-lint: allow(no-panic)
    let head = xs.first().expect("guarded non-empty");
    head + xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        assert!(std::panic::catch_unwind(|| Option::<u8>::None.unwrap()).is_err());
    }
}
