//! The good half of the trait-default pair: the public default
//! lower-bound method is exercised by a test, so `lb-coverage` passes —
//! and the witness inside the default body satisfies `lb-witness`.

pub trait Bound {
    fn lb_default(&self, q: &[f64]) -> f64 {
        let lb = if q.is_empty() { 0.0 } else { 1.0 };
        debug_assert!(lb <= 1.0);
        lb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Unit;
    impl Bound for Unit {}

    #[test]
    fn lb_default_is_admissible() {
        assert!(Unit.lb_default(&[0.5]) <= 1.0);
    }
}
