// Fixture: raw counter arithmetic that can overflow or silently wrap.
pub struct Telemetry {
    pub step_count: u64,
    pub tick: u64,
}

impl Telemetry {
    pub fn record(&mut self, steps: u64) {
        self.step_count += steps;
        self.tick -= 1;
        self.step_count = self.step_count.wrapping_add(steps);
    }
}
