// Fixture: raw counter arithmetic that can overflow or silently wrap.
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Telemetry {
    pub step_count: u64,
    pub tick: u64,
}

impl Telemetry {
    pub fn record(&mut self, steps: u64) {
        self.step_count += steps;
        self.tick -= 1;
        self.step_count = self.step_count.wrapping_add(steps);
    }
}

pub fn record_shared(step_count: &AtomicU64) {
    step_count.fetch_add(1, Ordering::Relaxed);
}
