// Fixture: matches on `Invariance` hiding variants — a `_` catch-all and
// a match missing a named variant.
pub enum Invariance {
    Rotation,
    RotationMirror,
    RotationLimited { max_shift: usize },
    RotationLimitedMirror { max_shift: usize },
}

fn matrix_rows(v: &Invariance) -> usize {
    match v {
        Invariance::Rotation => 1,
        _ => 2,
    }
}

fn mirrored(v: &Invariance) -> bool {
    match v {
        Invariance::RotationMirror => true,
        Invariance::RotationLimitedMirror { .. } => true,
        Invariance::Rotation => false,
    }
}
