//! UFCS regression fixture: `<Type as Trait>::method(args)` must parse
//! as a call, so delegation through the fully-qualified form counts as
//! an admissibility witness (`lb-witness`) and joins the call graph.
//! Before the parser learned the form, this file false-positived.

pub struct Wedge {
    lo: f64,
    hi: f64,
}

trait Bound {
    fn lb_keogh(&self, q: &[f64]) -> f64;
}

impl Bound for Wedge {
    fn lb_keogh(&self, q: &[f64]) -> f64 {
        let lb = if q.is_empty() { 0.0 } else { self.lo };
        debug_assert!(lb <= self.hi);
        lb
    }
}

pub fn lb_envelope(w: &Wedge, q: &[f64]) -> f64 {
    <Wedge as Bound>::lb_keogh(w, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lb_envelope_is_admissible() {
        let w = Wedge { lo: 0.0, hi: 1.0 };
        assert!(lb_envelope(&w, &[0.5]) <= w.hi);
    }
}
