// Fixture: counters use saturating arithmetic; non-counter names may use +=.
pub struct Telemetry {
    pub step_count: u64,
    pub tick: u64,
}

impl Telemetry {
    pub fn record(&mut self, steps: u64) {
        self.step_count = self.step_count.saturating_add(steps);
        self.tick = self.tick.saturating_sub(1);
    }
}

pub fn accumulate(xs: &[f64]) -> f64 {
    let mut total = 0.0;
    for x in xs {
        total += x;
    }
    total
}

// Atomic arithmetic on non-counter state is allowed; shared counters
// instead merge per-thread saturating values after the scan.
pub fn bump_generation(generation: &std::sync::atomic::AtomicU64) {
    generation.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}
