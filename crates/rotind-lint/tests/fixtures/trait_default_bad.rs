//! Trait default bodies inherit the trait's visibility: a lower-bound
//! default method in a `pub` trait is API surface and owes test
//! coverage (`lb-coverage`), even though its `fn` carries no `pub`
//! token of its own. This file defines one and never tests it.

pub trait Bound {
    fn lb_default(&self, q: &[f64]) -> f64 {
        let lb = if q.is_empty() { 0.0 } else { 1.0 };
        debug_assert!(lb <= 1.0);
        lb
    }
}
