//! `Self::method(args)` regression fixture: qualified-self calls must
//! parse as calls, so delegation through `Self::` counts as an
//! admissibility witness (`lb-witness`) and resolves in the call graph.
//! Before the parser learned the form, this file false-positived.

pub struct Paa {
    floor: f64,
}

impl Paa {
    fn lb_floor(&self, q: &[f64]) -> f64 {
        let lb = if q.is_empty() { 0.0 } else { self.floor };
        debug_assert!(lb <= self.floor + 1.0);
        lb
    }

    fn lb_paa(&self, q: &[f64]) -> f64 {
        Self::lb_floor(self, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lb_paa_is_admissible() {
        let p = Paa { floor: 0.0 };
        assert!(p.lb_paa(&[0.5]) <= 1.0);
    }
}
