//! Injected `prune-only` violation, file 1 of 2: a helper that launders
//! a lower bound across the file boundary. `paa_estimate` is not
//! bound-named, yet it returns the value `lb_kim` produced — the
//! interprocedural analysis must summarise it as bound-returning.

fn paa_estimate(q: &[f64]) -> f64 {
    lb_kim(q)
}
