//! Injected `prune-only` violation, file 2 of 2: the laundered bound
//! comes back as a "distance". The finding here must carry a witness
//! path that reaches back into `bounds.rs` — the whole point of the
//! whole-workspace analysis.

fn query_distance(q: &[f64]) -> f64 {
    let d = paa_estimate(q);
    d
}
