// Fixture: the correct protocol — Acquire loads for dismissal decisions,
// AcqRel/Acquire CAS for tightening — and a Relaxed generation stamp
// whose value never reaches a comparison.
use std::sync::atomic::{AtomicU64, Ordering};

fn prune(shared_radius: &AtomicU64, lb_bits: u64) -> bool {
    let snapshot = shared_radius.load(Ordering::Acquire);
    lb_bits > snapshot
}

fn tighten(shared_radius: &AtomicU64, new_bits: u64) {
    let _ = shared_radius.compare_exchange_weak(
        0,
        new_bits,
        Ordering::AcqRel,
        Ordering::Acquire,
    );
}

fn stamp(generation: &AtomicU64) -> u64 {
    generation.fetch_add(1, Ordering::Relaxed);
    generation.load(Ordering::Relaxed)
}
