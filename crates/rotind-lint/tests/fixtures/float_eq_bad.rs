// Fixture: exact float comparisons and panicking partial_cmp.
pub fn classify(x: f64, a: f64, b: f64) -> bool {
    if x == 0.5 {
        return true;
    }
    if x != 1.0 {
        return false;
    }
    a.partial_cmp(&b).unwrap() == std::cmp::Ordering::Less
}
