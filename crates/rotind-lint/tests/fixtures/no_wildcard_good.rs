// Fixture: named re-exports; private glob imports are fine.
pub mod inner {
    pub struct Wedge;
    pub struct Envelope;
}

pub use inner::{Envelope, Wedge};
use std::collections::*;

pub fn touch() -> (Wedge, BTreeMap<u8, u8>) {
    (Wedge, BTreeMap::new())
}
