//! Bounded access (`first` + `unwrap_or`) plus a reasoned exemption on
//! the hot kernel: both escapes the certificate honours.

pub fn estimate(v: &[f64]) -> f64 {
    kernel(v) + hot_kernel(v, 8)
}

pub fn kernel(v: &[f64]) -> f64 {
    v.first().copied().unwrap_or(0.0)
}

// lint: panic-exempt(the divisor is clamped to at least one on the line above the division)
pub fn hot_kernel(v: &[f64], chunk: usize) -> f64 {
    let chunk = chunk.max(1);
    (v.len() / chunk) as f64
}
