//! The burned-down twin of `no_panic_reachable_bad`: same call shape,
//! but the kernel bounds its access, so the serve root certifies clean.

pub fn worker_loop(v: &[f64]) -> f64 {
    estimate(v)
}
