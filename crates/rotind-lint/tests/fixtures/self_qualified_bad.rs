//! The bad half of the `Self::` pair: qualified delegation to a
//! non-bound helper is a call, not a witness.

pub struct Paa {
    floor: f64,
}

impl Paa {
    fn midpoint(&self, q: &[f64]) -> f64 {
        if q.is_empty() {
            0.0
        } else {
            self.floor
        }
    }

    fn lb_paa(&self, q: &[f64]) -> f64 {
        Self::midpoint(self, q)
    }
}
