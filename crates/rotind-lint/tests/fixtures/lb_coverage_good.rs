// Fixture: the public lower bound is exercised by a test, and crate-private
// helpers are exempt from the coverage requirement.
pub fn lb_covered(q: &[f64], c: &[f64]) -> f64 {
    let lb: f64 = q.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
    debug_assert!(lb >= 0.0, "a sum of squares cannot be negative");
    lb
}

// lint: witness-exempt(fixture helper: a plain prefix sum, not an envelope bound)
pub(crate) fn lb_internal_helper(q: &[f64]) -> f64 {
    q.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::lb_covered;

    #[test]
    fn never_exceeds_true_distance() {
        let q = [0.0, 1.0];
        let c = [0.0, 1.0];
        assert!(lb_covered(&q, &c) <= 1e-12);
    }
}
