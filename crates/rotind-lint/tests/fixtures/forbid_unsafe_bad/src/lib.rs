// Fixture: crate root missing the forbid(unsafe_code) attribute.
#![warn(missing_docs)]

pub fn noop() {}
