// Fixture: Relaxed loads feeding dismissal comparisons (inline and via a
// let binding) and a Relaxed CAS on the shared radius.
use std::sync::atomic::{AtomicU64, Ordering};

fn prune_inline(shared_radius: &AtomicU64, lb_bits: u64) -> bool {
    lb_bits > shared_radius.load(Ordering::Relaxed)
}

fn prune_via_binding(shared_radius: &AtomicU64, lb_bits: u64) -> bool {
    let snapshot = shared_radius.load(Ordering::Relaxed);
    lb_bits > snapshot
}

fn tighten(shared_radius: &AtomicU64, new_bits: u64) {
    let _ = shared_radius.compare_exchange_weak(
        0,
        new_bits,
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
}
