// Fixture: lower bounds with no admissibility witness — one bare, one
// hiding behind an exemption that gives no reason.
fn lb_unwitnessed(q: &[f64], upper: &[f64]) -> f64 {
    q.iter()
        .zip(upper)
        .map(|(x, u)| if x > u { (x - u) * (x - u) } else { 0.0 })
        .sum::<f64>()
        .sqrt()
}

// lint: witness-exempt()
fn lb_unjustified(q: &[f64]) -> f64 {
    q.iter().sum()
}

fn caller(q: &[f64], upper: &[f64]) -> f64 {
    lb_unwitnessed(q, upper) + lb_unjustified(q)
}
