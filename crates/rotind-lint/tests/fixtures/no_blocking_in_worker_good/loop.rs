//! The burned-down twin: the designed admission wait carries a reasoned
//! allowlist comment; the metrics path switched to `try_lock`.

pub fn worker_loop(s: &Shared) {
    // lint: blocking-allowed(idle wait for the next admitted job is the designed parking point)
    let job = s.rx.recv();
    run_job(s, job);
}

fn run_job(s: &Shared, _job: Job) {
    observe(s);
}
