//! Non-blocking observation: a missed sample beats an unbounded wait.

pub fn observe(s: &Shared) {
    let _g = s.counts.try_lock();
}
