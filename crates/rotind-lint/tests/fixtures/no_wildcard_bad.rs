// Fixture: wildcard re-exports that hide the public surface.
pub mod inner {
    pub struct Wedge;
}

pub use inner::*;
pub(crate) use self::inner::*;
