// Fixture: every match on `Invariance` names all four variants (guard
// duplicates are fine); matches on other enums keep their wildcards.
pub enum Invariance {
    Rotation,
    RotationMirror,
    RotationLimited { max_shift: usize },
    RotationLimitedMirror { max_shift: usize },
}

fn matrix_rows(v: &Invariance) -> usize {
    match v {
        Invariance::Rotation => 1,
        Invariance::RotationMirror => 2,
        Invariance::RotationLimited { max_shift } if *max_shift == 0 => 1,
        Invariance::RotationLimited { .. } => 1,
        Invariance::RotationLimitedMirror { .. } => 2,
    }
}

fn unrelated(o: Option<usize>) -> usize {
    match o {
        Some(n) => n,
        _ => 0,
    }
}
