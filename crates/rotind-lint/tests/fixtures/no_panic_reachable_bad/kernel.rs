//! The panic is laundered through `estimate` so only the composed
//! call chain — not any single file — reveals it.

pub fn estimate(v: &[f64]) -> f64 {
    kernel(v)
}

pub fn kernel(v: &[f64]) -> f64 {
    v[0]
}
