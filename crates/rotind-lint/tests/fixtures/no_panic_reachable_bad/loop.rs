//! Seeded violation: the serve root only *calls* helpers — the panic
//! it certifies against lives two hops away in `kernel.rs`.

pub fn worker_loop(v: &[f64]) -> f64 {
    estimate(v)
}
