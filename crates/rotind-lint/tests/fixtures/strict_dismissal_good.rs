// Fixture: the PR 3 convention — strict dismissal (`>`), inclusive
// admission (`<=`). A candidate at exactly distance `r` survives both.
fn scan(lbs: &[f64], r: f64) -> usize {
    let mut admitted = 0;
    for lb in lbs {
        if *lb > r {
            continue;
        }
        admitted += 1;
    }
    admitted
}

enum Verdict {
    Admitted,
    Pruned,
}

fn verdict(lb: f64, r: f64) -> Verdict {
    if lb <= r {
        Verdict::Admitted
    } else {
        Verdict::Pruned
    }
}
