// Fixture: inclusive dismissal — `>=`/`<=` against the radius or
// best-so-far guarding a branch that throws the candidate away. Both
// shapes drop candidates at exactly the boundary distance.
fn scan(lbs: &[f64], r: f64) -> usize {
    let mut admitted = 0;
    for lb in lbs {
        if *lb >= r {
            continue;
        }
        admitted += 1;
    }
    admitted
}

fn verify(d: f64, best_so_far: f64) -> Option<f64> {
    if best_so_far <= d {
        return None;
    }
    Some(d)
}
