//! Span round-trip guarantees for the AST parser.
//!
//! The span invariant ([`rotind_lint::ast::validate_spans`]): top-level
//! items exactly partition the token stream, siblings are ordered and
//! disjoint, and every child nests inside its parent — so each AST node
//! covers exactly its source tokens. Verified two ways: deterministically
//! over every `.rs` file the workspace scan loads (real code, the
//! distribution that matters), and property-style over random token soup
//! (the parser is total — junk must still produce a valid partition).

use proptest::prelude::*;
use rotind_lint::ast::{parse, validate_spans};
use rotind_lint::lexer::lex;
use rotind_lint::{walker, workspace_root};

/// Parse one source string and check the span invariant.
fn spans_hold(src: &str) -> Result<(), String> {
    let lexed = lex(src);
    let file = parse(&lexed.tokens);
    validate_spans(&file)
}

#[test]
fn every_workspace_file_round_trips() {
    let files = walker::load_workspace(workspace_root()).expect("workspace walk");
    assert!(files.len() > 100, "workspace should have >100 .rs files");
    for f in &files {
        validate_spans(&f.ast)
            .unwrap_or_else(|e| panic!("span invariant broken in {}: {e}", f.path));
        assert_eq!(
            f.ast.n_tokens,
            f.tokens().len(),
            "{}: AST token count drifted from the lexer",
            f.path
        );
    }
}

#[test]
fn fixture_files_round_trip() {
    let root = workspace_root();
    let fixtures = root.join("crates/rotind-lint/tests/fixtures");
    let files = walker::load_paths(root, &[fixtures]).expect("fixture walk");
    assert!(!files.is_empty());
    for f in &files {
        validate_spans(&f.ast)
            .unwrap_or_else(|e| panic!("span invariant broken in {}: {e}", f.path));
    }
}

/// Vocabulary for random token soup: enough structure to reach every
/// parser path (items, blocks, exprs, generics, macros) and enough junk
/// to exercise the `Other`/`Opaque` fallbacks.
const VOCAB: &[&str] = &[
    "fn",
    "pub",
    "enum",
    "struct",
    "impl",
    "mod",
    "match",
    "if",
    "else",
    "while",
    "for",
    "in",
    "let",
    "return",
    "break",
    "continue",
    "loop",
    "where",
    "unsafe",
    "trait",
    "use",
    "crate",
    "f",
    "g",
    "x",
    "y",
    "Invariance",
    "Rotation",
    "Some",
    "None",
    "self",
    "Self",
    "u64",
    "f64",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    "<",
    ">",
    "::",
    ":",
    ";",
    ",",
    ".",
    "=>",
    "->",
    "=",
    "==",
    "<=",
    ">=",
    "&&",
    "||",
    "!",
    "&",
    "*",
    "+",
    "-",
    "/",
    "#",
    "'a",
    "0",
    "1",
    "2.5",
    "\"s\"",
    "..",
    "..=",
    "|",
    "_",
    "?",
    "@",
    "$",
];

fn soup(max_len: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..VOCAB.len(), 0..max_len).prop_map(|picks| {
        let words: Vec<&str> = picks
            .into_iter()
            .filter_map(|i| VOCAB.get(i).copied())
            .collect();
        words.join(" ")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_token_soup_is_totally_parsed_with_valid_spans(src in soup(120)) {
        prop_assert!(spans_hold(&src).is_ok(), "invariant broken on: {src}");
    }

    #[test]
    fn soup_inside_a_fn_body_keeps_the_invariant(src in soup(60)) {
        let wrapped = format!("pub fn lb_f(q: &[f64]) -> f64 {{ {src} }}\nfn g() {{}}\n");
        prop_assert!(spans_hold(&wrapped).is_ok(), "invariant broken on: {wrapped}");
    }

    #[test]
    fn soup_in_match_arms_keeps_the_invariant(src in soup(40)) {
        let wrapped = format!(
            "fn f(v: Invariance) -> usize {{ match v {{ Invariance::Rotation => 1, _ => {{ {src} }} }} }}"
        );
        prop_assert!(spans_hold(&wrapped).is_ok(), "invariant broken on: {wrapped}");
    }
}
