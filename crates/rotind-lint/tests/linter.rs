//! Integration tests for the linter: every rule against its bad/good
//! fixture pair, the ratchet baseline against a fresh workspace scan, and
//! the CLI binary's exit codes.

use rotind_lint::baseline;
use rotind_lint::effects::RootSet;
use rotind_lint::findings::{count_by_rule_and_file, witness_hashes, Finding};
use rotind_lint::rules::ALL_RULES;
use rotind_lint::{lint_paths, lint_workspace, scan_workspace, workspace_root};
use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint_fixture(name: &str) -> Vec<Finding> {
    let path = fixture(name);
    assert!(path.exists(), "missing fixture {}", path.display());
    lint_paths(workspace_root(), &[path]).expect("fixture lint must not fail on I/O")
}

/// Each bad fixture must trip its own rule; each good fixture must be
/// completely clean under *all* rules, so the fixtures double as a
/// false-positive regression corpus.
fn assert_pair(rule: &str, bad: &str, good: &str) {
    let bad_findings = lint_fixture(bad);
    assert!(
        bad_findings.iter().any(|f| f.rule == rule),
        "{bad} should trip `{rule}`, got: {bad_findings:?}"
    );
    let good_findings = lint_fixture(good);
    assert!(
        good_findings.is_empty(),
        "{good} should be clean under every rule, got: {good_findings:?}"
    );
}

#[test]
fn no_panic_fixture_pair() {
    let findings = lint_fixture("no_panic_bad.rs");
    // unwrap, expect, panic!, unreachable! — all four call sites.
    assert_eq!(findings.iter().filter(|f| f.rule == "no-panic").count(), 4);
    assert_pair("no-panic", "no_panic_bad.rs", "no_panic_good.rs");
}

#[test]
fn no_index_fixture_pair() {
    let findings = lint_fixture("no_index_bad.rs");
    // xs[0], xs[i], xs[1..] — range-from indexing still panics.
    assert_eq!(findings.iter().filter(|f| f.rule == "no-index").count(), 3);
    assert_pair("no-index", "no_index_bad.rs", "no_index_good.rs");
}

#[test]
fn float_eq_fixture_pair() {
    assert_pair("float-eq", "float_eq_bad.rs", "float_eq_good.rs");
}

#[test]
fn counter_arith_fixture_pair() {
    let findings = lint_fixture("counter_arith_bad.rs");
    // step_count +=, tick -=, wrapping_add and fetch_add on counters.
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.rule == "counter-arith")
            .count(),
        4
    );
    assert_pair(
        "counter-arith",
        "counter_arith_bad.rs",
        "counter_arith_good.rs",
    );
}

#[test]
fn no_print_fixture_pair() {
    assert_pair("no-print", "no_print_bad.rs", "no_print_good.rs");
}

#[test]
fn todo_issue_fixture_pair() {
    let findings = lint_fixture("todo_issue_bad.rs");
    assert_eq!(
        findings.iter().filter(|f| f.rule == "todo-issue").count(),
        3
    );
    assert_pair("todo-issue", "todo_issue_bad.rs", "todo_issue_good.rs");
}

#[test]
fn no_wildcard_fixture_pair() {
    let findings = lint_fixture("no_wildcard_bad.rs");
    // `pub use …::*` and `pub(crate) use …::*`.
    assert_eq!(
        findings.iter().filter(|f| f.rule == "no-wildcard").count(),
        2
    );
    assert_pair("no-wildcard", "no_wildcard_bad.rs", "no_wildcard_good.rs");
}

#[test]
fn forbid_unsafe_fixture_pair() {
    assert_pair(
        "forbid-unsafe",
        "forbid_unsafe_bad/src/lib.rs",
        "forbid_unsafe_good/src/lib.rs",
    );
}

#[test]
fn lb_coverage_fixture_pair() {
    let findings = lint_fixture("lb_coverage_bad.rs");
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "lb-coverage")
        .collect();
    assert_eq!(hits.len(), 1, "only lb_orphan is uncovered: {hits:?}");
    assert!(hits[0].message.contains("lb_orphan"));
    assert_pair("lb-coverage", "lb_coverage_bad.rs", "lb_coverage_good.rs");
}

#[test]
fn lb_witness_fixture_pair() {
    let findings = lint_fixture("lb_witness_bad.rs");
    let hits: Vec<_> = findings.iter().filter(|f| f.rule == "lb-witness").collect();
    assert_eq!(hits.len(), 2, "bare fn + empty exemption: {hits:?}");
    assert!(hits.iter().any(|f| f.message.contains("lb_unwitnessed")));
    assert!(hits.iter().any(|f| f.message.contains("no reason")));
    assert_pair("lb-witness", "lb_witness_bad.rs", "lb_witness_good.rs");
}

#[test]
fn atomic_ordering_fixture_pair() {
    let findings = lint_fixture("atomic_ordering_bad.rs");
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "atomic-ordering")
        .collect();
    assert_eq!(hits.len(), 3, "two loads + one CAS: {hits:?}");
    assert!(
        hits.iter().any(|f| f.message.contains("via `let snapshot")),
        "the binding-mediated load must name its binding: {hits:?}"
    );
    assert_pair(
        "atomic-ordering",
        "atomic_ordering_bad.rs",
        "atomic_ordering_good.rs",
    );
}

#[test]
fn strict_dismissal_fixture_pair() {
    let findings = lint_fixture("strict_dismissal_bad.rs");
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "strict-dismissal")
        .collect();
    assert_eq!(hits.len(), 2, ">= r and best_so_far <=: {hits:?}");
    assert_pair(
        "strict-dismissal",
        "strict_dismissal_bad.rs",
        "strict_dismissal_good.rs",
    );
}

#[test]
fn exhaustive_invariance_fixture_pair() {
    let findings = lint_fixture("exhaustive_invariance_bad.rs");
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "exhaustive-invariance")
        .collect();
    assert_eq!(hits.len(), 2, "catch-all + missing variant: {hits:?}");
    assert!(
        hits.iter().any(|f| f.message.contains("RotationLimited")),
        "the missing variant must be named: {hits:?}"
    );
    assert_pair(
        "exhaustive-invariance",
        "exhaustive_invariance_bad.rs",
        "exhaustive_invariance_good.rs",
    );
}

/// The three parser false-positive regressions (`Self::` calls, UFCS
/// `<T as Trait>::f`, trait-default bodies): each good fixture used to
/// trip a rule purely because the parser could not see the form.
#[test]
fn ufcs_fixture_pair() {
    assert_pair("lb-witness", "ufcs_bad.rs", "ufcs_good.rs");
}

#[test]
fn self_qualified_fixture_pair() {
    assert_pair(
        "lb-witness",
        "self_qualified_bad.rs",
        "self_qualified_good.rs",
    );
}

#[test]
fn trait_default_fixture_pair() {
    assert_pair(
        "lb-coverage",
        "trait_default_bad.rs",
        "trait_default_good.rs",
    );
}

/// The interprocedural pair is a two-file fixture *crate*: the bound is
/// produced in `bounds.rs` and leaked in `scan.rs`, so the finding must
/// carry a witness path that crosses the file boundary.
#[test]
fn prune_only_interprocedural_fixture_pair() {
    let findings = lint_fixture("prune_only_bad");
    let hits: Vec<_> = findings.iter().filter(|f| f.rule == "prune-only").collect();
    assert!(
        hits.iter().any(|f| {
            f.path.ends_with("scan.rs")
                && !f.witness.is_empty()
                && f.witness.iter().any(|w| w.path.ends_with("bounds.rs"))
        }),
        "the scan.rs finding must witness back into bounds.rs: {hits:?}"
    );
    assert_pair("prune-only", "prune_only_bad", "prune_only_good");
}

/// The panic-certificate pair is a two-file fixture crate: a fn named
/// like a serve root launders an index through two helpers, the second
/// in a different file — the finding must compose the cross-file chain.
#[test]
fn no_panic_reachable_fixture_pair() {
    let findings = lint_fixture("no_panic_reachable_bad");
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "no-panic-reachable")
        .collect();
    assert!(
        hits.iter().any(|f| {
            f.path.ends_with("kernel.rs")
                && !f.witness.is_empty()
                && f.witness.iter().any(|w| w.path.ends_with("loop.rs"))
        }),
        "the kernel.rs finding must witness back into loop.rs: {hits:?}"
    );
    assert_pair(
        "no-panic-reachable",
        "no_panic_reachable_bad",
        "no_panic_reachable_good",
    );
}

/// The worker-blocking pair: a mutex taken two calls below the worker
/// loop, in a different file, with no allowlist comment.
#[test]
fn no_blocking_in_worker_fixture_pair() {
    let findings = lint_fixture("no_blocking_in_worker_bad");
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "no-blocking-in-worker")
        .collect();
    assert!(
        hits.iter().any(|f| {
            f.path.ends_with("metrics.rs")
                && !f.witness.is_empty()
                && f.witness.iter().any(|w| w.path.ends_with("loop.rs"))
        }),
        "the metrics.rs finding must witness back into loop.rs: {hits:?}"
    );
    assert_pair(
        "no-blocking-in-worker",
        "no_blocking_in_worker_bad",
        "no_blocking_in_worker_good",
    );
}

/// Acceptance check for the SARIF surface: the injected violation shows
/// up as a result with a `codeFlow` whose locations span both files.
#[test]
fn sarif_reports_a_multi_file_witness_path() {
    let out = Command::new(env!("CARGO_BIN_EXE_rotind-lint"))
        .args(["--format", "sarif"])
        .arg(fixture("prune_only_bad"))
        .output()
        .expect("spawn rotind-lint");
    assert_eq!(out.status.code(), Some(1), "injected violation must fail");
    let sarif = String::from_utf8_lossy(&out.stdout);
    assert!(sarif.contains("\"ruleId\": \"prune-only\""), "{sarif}");
    assert!(sarif.contains("\"codeFlows\""), "{sarif}");
    assert!(
        sarif.contains("prune_only_bad/bounds.rs") && sarif.contains("prune_only_bad/scan.rs"),
        "witness locations must span both files:\n{sarif}"
    );
}

/// Both availability rules must surface their composed root→site chain
/// as SARIF `codeFlows` spanning the fixture crate's files.
#[test]
fn sarif_code_flows_for_availability_rules_span_files() {
    for (fix, rule) in [
        ("no_panic_reachable_bad", "no-panic-reachable"),
        ("no_blocking_in_worker_bad", "no-blocking-in-worker"),
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_rotind-lint"))
            .args(["--format", "sarif"])
            .arg(fixture(fix))
            .output()
            .expect("spawn rotind-lint");
        assert_eq!(out.status.code(), Some(1), "{fix} must fail the gate");
        let sarif = String::from_utf8_lossy(&out.stdout);
        assert!(
            sarif.contains(&format!("\"ruleId\": \"{rule}\"")),
            "{sarif}"
        );
        assert!(sarif.contains("\"codeFlows\""), "{sarif}");
        assert!(
            sarif.contains(&format!("{fix}/loop.rs")),
            "codeFlow must reach back into the root file:\n{sarif}"
        );
    }
}

/// The committed ratchet file must be exactly what a fresh scan of the
/// workspace produces in canonical form — no stale counts, no hand edits.
/// (`--write-baseline` regenerates it; this test is what keeps it honest.)
#[test]
fn committed_baseline_matches_fresh_workspace_scan() {
    let root = workspace_root();
    let scan = scan_workspace(root, &RootSet::serve_default())
        .expect("workspace scan must not fail on I/O");
    let fresh = baseline::to_json(
        &count_by_rule_and_file(&scan.findings),
        &witness_hashes(&scan.findings),
        &scan.exempted,
    );
    let committed = std::fs::read_to_string(root.join(baseline::BASELINE_FILE))
        .expect("lint-baseline.json must be committed at the workspace root");
    assert_eq!(
        committed, fresh,
        "lint-baseline.json is stale; run `cargo run -p rotind-lint -- --write-baseline`"
    );
    // And the committed bytes must round-trip through the parser.
    let parsed = baseline::from_json(&committed).expect("committed baseline must parse");
    assert_eq!(parsed, count_by_rule_and_file(&scan.findings));
}

/// Deliberately rule-violating fixture crates (the `_bad` trees under
/// `tests/fixtures/`) must never leak into the workspace scan — the
/// walker's single skip predicate is what keeps the baseline describing
/// rotind code only.
#[test]
fn bad_fixture_crates_never_leak_into_the_workspace_baseline() {
    let findings = lint_workspace(workspace_root()).expect("workspace scan");
    assert!(
        findings.iter().all(|f| !f.path.contains("fixtures")),
        "fixture findings leaked into the workspace scan"
    );
    let committed =
        std::fs::read_to_string(workspace_root().join(baseline::BASELINE_FILE)).expect("baseline");
    assert!(
        !committed.contains("fixtures"),
        "fixture paths leaked into the committed baseline"
    );
}

/// Workspace findings must all sit inside rules the baseline knows about,
/// and the burn-down satellites hold: no panic-family findings remain in
/// the three core crates, and the total stays far below the seed's count.
#[test]
fn burned_down_crates_stay_clean() {
    let findings = lint_workspace(workspace_root()).expect("workspace scan");
    for f in &findings {
        if f.rule != "no-panic" {
            continue;
        }
        for crate_dir in ["crates/rotind-ts/", "crates/rotind-envelope/"] {
            assert!(
                !f.path.starts_with(crate_dir),
                "no-panic regression in burned-down crate: {f:?}"
            );
        }
    }
    let panics = findings.iter().filter(|f| f.rule == "no-panic").count();
    assert!(panics < 238, "no-panic count crept back up: {panics}");
}

#[test]
fn binary_fails_on_bad_fixture_and_passes_on_good() {
    let bad = Command::new(env!("CARGO_BIN_EXE_rotind-lint"))
        .arg(fixture("no_panic_bad.rs"))
        .output()
        .expect("spawn rotind-lint");
    assert_eq!(bad.status.code(), Some(1), "bad fixture must exit 1");
    let good = Command::new(env!("CARGO_BIN_EXE_rotind-lint"))
        .arg(fixture("no_panic_good.rs"))
        .output()
        .expect("spawn rotind-lint");
    assert_eq!(good.status.code(), Some(0), "good fixture must exit 0");
}

#[test]
fn binary_workspace_gate_passes_against_committed_baseline() {
    let out = Command::new(env!("CARGO_BIN_EXE_rotind-lint"))
        .output()
        .expect("spawn rotind-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace gate must pass: {stdout}"
    );
    assert!(stdout.contains("lint gate: PASS"), "unexpected: {stdout}");
}

#[test]
fn binary_lists_every_rule() {
    let out = Command::new(env!("CARGO_BIN_EXE_rotind-lint"))
        .arg("--list")
        .output()
        .expect("spawn rotind-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in ALL_RULES {
        assert!(stdout.contains(rule.id), "--list missing {}", rule.id);
    }
    assert_eq!(ALL_RULES.len(), 18);
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_rotind-lint"))
        .arg("--bogus")
        .output()
        .expect("spawn rotind-lint");
    assert_eq!(out.status.code(), Some(2));
}
