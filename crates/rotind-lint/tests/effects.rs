//! Properties of the interprocedural effect fixpoint (`effects.rs`):
//! over randomly generated call webs with randomly seeded panic sites,
//! the may-panic summaries must equal the reference transitive closure
//! (least fixpoint — no over- or under-approximation), must grow
//! monotonically as sites or edges are added, and must converge within
//! the `nodes + 1` round bound the boolean lattice guarantees.

use proptest::prelude::*;
use rotind_lint::callgraph::CallGraph;
use rotind_lint::effects;
use rotind_lint::source::{FileKind, SourceFile};

/// A random call web over `N_FNS` functions; bit `i` of `panics` plants
/// an intrinsic panic site (raw indexing) in `f{i}`'s body.
const N_FNS: usize = 6;

fn program(picks: &[usize], panics: u32) -> String {
    let mut bodies: Vec<String> = vec![String::new(); N_FNS];
    for p in picks {
        let caller = p % N_FNS;
        let callee = (p / N_FNS) % N_FNS;
        if let Some(b) = bodies.get_mut(caller) {
            b.push_str(&format!("    f{callee}(v);\n"));
        }
    }
    let mut src = String::new();
    for (i, b) in bodies.iter().enumerate() {
        let site = if panics & (1 << i) != 0 {
            "    let _ = v[0];\n"
        } else {
            ""
        };
        src.push_str(&format!(
            "fn f{i}(v: &[f64]) -> f64 {{\n{site}{b}    0.0\n}}\n"
        ));
    }
    src
}

/// may-panic flags in `f0..fN` order, plus the rounds the fixpoint took
/// and the node count.
fn summaries(src: &str) -> (Vec<bool>, Vec<bool>, usize, usize) {
    let files = vec![SourceFile::parse(
        "crates/x/src/gen.rs",
        src,
        FileKind::Library,
    )];
    let g = CallGraph::build(&files);
    let fx = effects::analyze(&g, &files);
    let n = g.index.nodes.len();
    // Reference: iterate `own ∨ successor` to its own fixpoint, naively.
    let own: Vec<bool> = (0..n)
        .map(|i| fx.fns.get(i).is_some_and(|f| f.panic_site.is_some()))
        .collect();
    let mut expect = own;
    loop {
        let mut changed = false;
        for i in 0..n {
            if expect[i] {
                continue;
            }
            let hit = g.sites_of.get(i).into_iter().flatten().any(|&s| {
                g.sites
                    .get(s)
                    .is_some_and(|site| site.targets.iter().any(|&t| expect[t]))
            });
            if hit {
                expect[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Reorder both vectors into f0..fN name order for stable comparison.
    let by_name = |flags: &[bool]| -> Vec<bool> {
        (0..N_FNS)
            .map(|i| {
                let name = format!("f{i}");
                g.index
                    .nodes
                    .iter()
                    .find(|node| node.decl.name == name)
                    .is_some_and(|node| flags[node.id])
            })
            .collect()
    };
    let got: Vec<bool> = (0..n).map(|i| fx.fns[i].may_panic).collect();
    (by_name(&got), by_name(&expect), fx.rounds, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The analysis computes exactly the reference closure: neither an
    /// unreachable panic smuggled in nor a reachable one dropped.
    #[test]
    fn panic_summaries_equal_the_reference_closure(
        picks in prop::collection::vec(0usize..1000, 0..40),
        panics in 0u32..(1 << N_FNS),
    ) {
        let src = program(&picks, panics);
        let (got, expect, _, _) = summaries(&src);
        prop_assert_eq!(&got, &expect, "fixpoint deviates from closure on:\n{}", src);
    }

    /// Adding a panic site, or adding call edges, can only ever *grow*
    /// the may-panic set — the transfer function is monotone.
    #[test]
    fn panic_summaries_are_monotone(
        picks in prop::collection::vec(0usize..1000, 0..40),
        panics in 0u32..(1 << N_FNS),
        extra_bit in 0u32..N_FNS as u32,
        cut in 0usize..40,
    ) {
        let (base, _, _, _) = summaries(&program(&picks, panics));
        // More sites, same edges.
        let (more_sites, _, _, _) = summaries(&program(&picks, panics | (1 << extra_bit)));
        for (i, (b, m)) in base.iter().zip(&more_sites).enumerate() {
            prop_assert!(!b || *m, "adding a site shrank may_panic(f{i})");
        }
        // Same sites, fewer edges (prefix of the picks).
        let cut = cut.min(picks.len());
        let (fewer_edges, _, _, _) = summaries(&program(&picks[..cut], panics));
        for (i, (f, b)) in fewer_edges.iter().zip(&base).enumerate() {
            prop_assert!(!f || *b, "removing an edge grew may_panic(f{i})");
        }
    }

    /// The boolean lattice has height 1 per function, so the round-based
    /// fixpoint must converge in at most `nodes + 1` sweeps.
    #[test]
    fn fixpoint_terminates_within_the_lattice_bound(
        picks in prop::collection::vec(0usize..1000, 0..40),
        panics in 0u32..(1 << N_FNS),
    ) {
        let src = program(&picks, panics);
        let (_, _, rounds, nodes) = summaries(&src);
        prop_assert!(rounds <= nodes + 1, "{rounds} rounds for {nodes} nodes on:\n{src}");
    }
}
