//! A hand-rolled Rust lexer — just enough of the language to drive the
//! rule engine without pulling `syn`/`proc-macro2` into the offline
//! vendored build.
//!
//! The token stream deliberately stays flat (no expression trees): every
//! rule in [`crate::rules`] is expressible as a pattern over tokens plus
//! brace/paren matching, and a flat stream keeps the lexer auditable —
//! important for a tool whose whole purpose is enforcing invariants.
//!
//! What it gets right that a naive regex pass would not:
//!
//! * string literals (including raw strings `r#"…"#` with any number of
//!   hashes, byte strings, and escapes) never produce code tokens, so an
//!   error message containing `"unwrap()"` does not trip the no-panic rule;
//! * doc comments (`///`, `//!`, `/** */`) are comments, so doctest
//!   examples — where `unwrap()` is idiomatic — are exempt by construction;
//! * char literals are distinguished from lifetimes (`'a'` vs `'a`);
//! * nested block comments terminate where rustc says they do;
//! * float literals are distinguished from integer + range (`1.5` vs
//!   `0..n`) and from tuple field access (`x.0`).

/// Classification of a single lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the rules do not need to distinguish).
    Ident,
    /// Integer literal, any base.
    Int,
    /// Float literal (has a fractional part, an exponent, or an `f32`/
    /// `f64` suffix).
    Float,
    /// String, raw-string, byte-string or char literal.
    Str,
    /// A lifetime such as `'a`.
    Lifetime,
    /// Punctuation / operator; multi-character operators (`==`, `+=`,
    /// `::`, `..=`, …) lex as a single token.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The raw text of the token (for `Str` the quotes are included).
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: usize,
}

/// A comment captured out-of-band of the token stream (rules for
/// allow-escapes and to-do hygiene look at comments, code rules do not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` sigils.
    pub text: String,
    /// 1-based line on which the comment starts.
    pub line: usize,
    /// 1-based line on which the comment ends (== `line` for `//`).
    pub end_line: usize,
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`).
    pub doc: bool,
}

/// Result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens and comments. The lexer is total: unexpected
/// bytes lex as single-character `Punct` tokens rather than failing, so
/// a syntactically broken fixture still produces a usable stream.
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    out: Lexed,
}

/// Multi-character operators, longest first so greedy matching is correct.
const OPERATORS: &[&str] = &[
    "..=", "<<=", ">>=", "...", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "^=", "&=",
    "|=", "&&", "||", "::", "->", "=>", "..", "<<", ">>",
];

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        b
    }

    fn take_while(&mut self, f: impl Fn(u8) -> bool) -> String {
        let start = self.pos;
        while self.pos < self.src.len() && f(self.peek(0)) {
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn push(&mut self, kind: TokKind, text: String, line: usize) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while self.pos < self.src.len() {
            let line = self.line;
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string(line, String::new()),
                b'b' if self.peek(1) == b'"' => {
                    let mut prefix = String::new();
                    prefix.push(self.bump() as char);
                    self.string(line, prefix);
                }
                b'r' | b'b' if self.raw_string_ahead() => self.raw_string(line),
                b'b' if self.peek(1) == b'\'' => self.byte_char(line),
                b'\'' => self.char_or_lifetime(line),
                _ if b.is_ascii_digit() => self.number(line),
                _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => {
                    let text =
                        self.take_while(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80);
                    self.push(TokKind::Ident, text, line);
                }
                _ => self.operator(line),
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let text = self.take_while(|c| c != b'\n');
        let doc = text.starts_with("///") || text.starts_with("//!");
        self.out.comments.push(Comment {
            text,
            line,
            end_line: line,
            doc,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        self.bump(); // '/'
        self.bump(); // '*'
        let doc = matches!(self.peek(0), b'*' | b'!') && self.peek(1) != b'/';
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        let end_line = self.line;
        self.out.comments.push(Comment {
            text: String::from_utf8_lossy(&self.src[start..self.pos]).into_owned(),
            line,
            end_line,
            doc,
        });
    }

    /// `"…"` (escapes honoured). `prefix` carries an already-consumed `b`.
    fn string(&mut self, line: usize, prefix: String) {
        let start = self.pos;
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
        let body = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Str, prefix + &body, line);
    }

    /// True when the cursor sits on `r"`, `r#`, `br"` or `br#` — i.e. a
    /// raw (byte) string rather than an identifier starting with r/b.
    fn raw_string_ahead(&self) -> bool {
        let (r_at, quote_at) = if self.peek(0) == b'b' && self.peek(1) == b'r' {
            (1, 2)
        } else if self.peek(0) == b'r' {
            (0, 1)
        } else {
            return false;
        };
        debug_assert_eq!(self.peek(r_at), b'r');
        let mut i = quote_at;
        while self.peek(i) == b'#' {
            i += 1;
        }
        self.peek(i) == b'"'
    }

    fn raw_string(&mut self, line: usize) {
        let start = self.pos;
        if self.peek(0) == b'b' {
            self.bump();
        }
        self.bump(); // 'r'
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'scan: while self.pos < self.src.len() {
            if self.bump() == b'"' {
                for i in 0..hashes {
                    if self.peek(i) != b'#' {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Str, text, line);
    }

    /// Byte literal `b'x'` / `b'\n'` — one token, so a quoted brace or
    /// quote (`b'}'`, `b'\''`) never leaks structure into the stream.
    fn byte_char(&mut self, line: usize) {
        let mut text = String::new();
        text.push(self.bump() as char); // 'b'
        text.push(self.bump() as char); // opening quote
        while self.pos < self.src.len() {
            let c = self.bump();
            text.push(c as char);
            if c == b'\\' {
                if self.pos < self.src.len() {
                    text.push(self.bump() as char);
                }
            } else if c == b'\'' {
                break;
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// Disambiguate `'a'` (char) from `'a` (lifetime) the way rustc does:
    /// a quote followed by an identifier char is a lifetime unless the
    /// character after the identifier is another quote.
    fn char_or_lifetime(&mut self, line: usize) {
        let c1 = self.peek(1);
        let ident_start = c1 == b'_' || c1.is_ascii_alphabetic();
        if ident_start && self.peek(2) != b'\'' {
            self.bump(); // quote
            let mut text = String::from("'");
            text += &self.take_while(|c| c == b'_' || c.is_ascii_alphanumeric());
            self.push(TokKind::Lifetime, text, line);
            return;
        }
        let start = self.pos;
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'\'' => break,
                _ => {}
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Str, text, line);
    }

    fn number(&mut self, line: usize) {
        let start = self.pos;
        let mut float = false;
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            self.bump();
            self.bump();
            self.take_while(|c| c.is_ascii_alphanumeric() || c == b'_');
        } else {
            self.take_while(|c| c.is_ascii_digit() || c == b'_');
            // A dot makes it a float only when not `..` (range) and not
            // followed by an identifier (method call on a literal).
            if self.peek(0) == b'.'
                && self.peek(1) != b'.'
                && !self.peek(1).is_ascii_alphabetic()
                && self.peek(1) != b'_'
            {
                float = true;
                self.bump();
                self.take_while(|c| c.is_ascii_digit() || c == b'_');
            }
            if matches!(self.peek(0), b'e' | b'E')
                && (self.peek(1).is_ascii_digit()
                    || (matches!(self.peek(1), b'+' | b'-') && self.peek(2).is_ascii_digit()))
            {
                float = true;
                self.bump();
                if matches!(self.peek(0), b'+' | b'-') {
                    self.bump();
                }
                self.take_while(|c| c.is_ascii_digit() || c == b'_');
            }
            // Type suffix: 1f64 / 2.5f32 are floats, 3u32 stays an int.
            let suffix_start = self.pos;
            let suffix = self.take_while(|c| c.is_ascii_alphanumeric() || c == b'_');
            if suffix == "f32" || suffix == "f64" {
                float = true;
            } else if suffix.is_empty() {
                self.pos = suffix_start;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        let kind = if float { TokKind::Float } else { TokKind::Int };
        self.push(kind, text, line);
    }

    fn operator(&mut self, line: usize) {
        for op in OPERATORS {
            if self.src[self.pos..].starts_with(op.as_bytes()) {
                for _ in 0..op.len() {
                    self.bump();
                }
                self.push(TokKind::Punct, (*op).to_string(), line);
                return;
            }
        }
        let b = self.bump();
        self.push(TokKind::Punct, (b as char).to_string(), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = kinds("fn main() { x.unwrap(); }");
        assert!(toks.contains(&(TokKind::Ident, "unwrap".into())));
        assert!(toks.contains(&(TokKind::Punct, "(".into())));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "call .unwrap() now";"#);
        assert!(!toks.iter().any(|(_, t)| t == "unwrap"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"a "quoted" unwrap()"#; x"###);
        assert!(!toks.iter().any(|(_, t)| t == "unwrap"));
        assert!(toks.iter().any(|(_, t)| t == "x"));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("let c: char = 'a'; fn f<'a>(x: &'a str) {}");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
    }

    #[test]
    fn floats_vs_ranges_and_fields() {
        let toks = kinds("for i in 0..n { let y = 1.5e-3 + x.0 + 2f64; }");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(floats, vec!["1.5e-3".to_string(), "2f64".to_string()]);
        assert!(toks.contains(&(TokKind::Punct, "..".into())));
    }

    #[test]
    fn comments_are_captured_not_tokenised() {
        let lexed = lex("// plain\n/// doc unwrap()\nlet x = 1; /* block\nspans */\n");
        assert_eq!(lexed.comments.len(), 3);
        assert!(lexed.comments[1].doc);
        assert_eq!(lexed.comments[2].end_line, 4);
        assert!(!lexed.tokens.iter().any(|t| t.text == "unwrap"));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still comment */ code");
        assert_eq!(lexed.tokens.len(), 1);
        assert_eq!(lexed.tokens[0].text, "code");
    }

    #[test]
    fn byte_char_literals_are_one_token() {
        // A quoted brace must not leak structure into the stream, and
        // the `b` prefix must not split off as an identifier.
        let toks = kinds(r"if c == b'}' { f(b'\'', b'\\', b'x'); }");
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "b"));
        let lits: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lits, vec![r"b'}'", r"b'\''", r"b'\\'", "b'x'"]);
        // The braces around the block survive as punctuation.
        assert!(toks.contains(&(TokKind::Punct, "{".into())));
        assert!(toks.contains(&(TokKind::Punct, "}".into())));
    }

    #[test]
    fn multi_char_operators_lex_once() {
        let toks = kinds("a == b != c += 1 ..= 2");
        for op in ["==", "!=", "+=", "..="] {
            assert!(toks.contains(&(TokKind::Punct, op.into())), "{op}");
        }
    }
}
