//! Per-file symbol table: the functions and enums a parsed file defines,
//! flattened out of the item tree so rules can look them up by name
//! without re-walking the AST.
//!
//! The cross-file `exhaustive-invariance` rule unions the enum tables of
//! every file in the scan unit to learn the variant set of `Invariance`
//! (fixtures carry their own definition, the workspace's lives in
//! `rotind-index/src/engine.rs`); `lb-witness` uses the function table
//! for delegation targets.

use crate::ast::{File, FnDecl, Item, ItemKind, Span};

/// One function definition.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Function name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: usize,
    /// Whether any visibility qualifier is present.
    pub is_pub: bool,
    /// Span of the whole item (attributes included).
    pub item_span: Span,
    /// Span of the body block, when the fn has one.
    pub body_span: Option<Span>,
}

/// One enum definition.
#[derive(Debug, Clone)]
pub struct EnumSym {
    /// Enum name.
    pub name: String,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
}

/// All symbols a file defines.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Function definitions, in source order (nested items included).
    pub fns: Vec<FnSym>,
    /// Enum definitions, in source order.
    pub enums: Vec<EnumSym>,
}

impl SymbolTable {
    /// Look up an enum by name.
    pub fn enum_named(&self, name: &str) -> Option<&EnumSym> {
        self.enums.iter().find(|e| e.name == name)
    }

    /// True when the table defines a function called `name`.
    pub fn has_fn(&self, name: &str) -> bool {
        self.fns.iter().any(|f| f.name == name)
    }
}

/// Collect the symbols of a parsed file.
pub fn collect(file: &File) -> SymbolTable {
    let mut table = SymbolTable::default();
    collect_items(&file.items, &mut table);
    table
}

fn collect_items(items: &[Item], table: &mut SymbolTable) {
    for item in items {
        match &item.kind {
            ItemKind::Fn(decl) => push_fn(decl, item.span, table),
            ItemKind::Enum(e) => table.enums.push(EnumSym {
                name: e.name.clone(),
                variants: e.variants.clone(),
            }),
            ItemKind::Mod(inner) => collect_items(inner, table),
            ItemKind::Impl(decl) => collect_items(&decl.items, table),
            ItemKind::Trait(decl) => collect_items(&decl.items, table),
            ItemKind::Other => {}
        }
    }
}

fn push_fn(decl: &FnDecl, item_span: Span, table: &mut SymbolTable) {
    table.fns.push(FnSym {
        name: decl.name.clone(),
        line: decl.name_line,
        is_pub: decl.is_pub,
        item_span,
        body_span: decl.body.as_ref().map(|b| b.span),
    });
    // Nested fns (closur-free helper fns inside a body) also count as
    // definitions; walk the body's item statements.
    if let Some(body) = &decl.body {
        for stmt in &body.stmts {
            if let crate::ast::StmtKind::Item(item) = &stmt.kind {
                collect_items(std::slice::from_ref(item), table);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::lex;

    fn table(src: &str) -> SymbolTable {
        collect(&parse(&lex(src).tokens))
    }

    #[test]
    fn fns_and_enums_collected() {
        let t = table(
            "pub fn a() {}\nenum E { X, Y }\nmod m { impl S { fn b(&self) {} } }\ntrait T { fn c(&self); }\n",
        );
        let names: Vec<_> = t.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(t.fns[0].is_pub);
        assert!(!t.fns[1].is_pub);
        assert!(t.fns[2].body_span.is_none());
        assert_eq!(t.enum_named("E").map(|e| e.variants.len()), Some(2));
        assert!(t.has_fn("b"));
        assert!(!t.has_fn("missing"));
    }

    #[test]
    fn nested_fn_in_body_collected() {
        let t = table("fn outer() { fn inner() {} inner(); }\n");
        let names: Vec<_> = t.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }
}
