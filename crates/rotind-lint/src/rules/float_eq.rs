//! `float-eq`: exact float comparison is how a lower bound silently goes
//! unsound. `lb == dist` flips on the last ulp between debug and release
//! (or between scalar and FMA codegen), turning an admissible bound into
//! a false dismissal. Compare against a tolerance, or use `total_cmp`
//! for ordering. Two patterns are flagged:
//!
//! * `==` / `!=` with a float literal on either side;
//! * `partial_cmp(…).unwrap()` (or `.expect`) comparators — NaN reaching
//!   the comparator panics mid-sort; use `f64::total_cmp` instead.
//!
//! Intentional exact comparisons (IEEE-exact sentinel checks like
//! `jitter == 0.0` on never-computed values) carry an allow escape.

use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::source::{FileKind, SourceFile};

/// Rule id.
pub const ID: &str = "float-eq";

/// Check one file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    if file.kind == FileKind::Test {
        return Vec::new();
    }
    let toks = file.tokens();
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if file.is_test_code(t.line) {
            continue;
        }
        if (t.text == "==" || t.text == "!=") && t.kind == TokKind::Punct {
            let float_prev = i
                .checked_sub(1)
                .is_some_and(|p| toks[p].kind == TokKind::Float);
            let float_next = toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Float);
            if float_prev || float_next {
                out.push(Finding::new(
                    ID,
                    &file.path,
                    t.line,
                    format!(
                        "`{}` against a float literal is exact-ulp comparison; \
                         use an epsilon or `total_cmp`, or mark the IEEE-exact \
                         sentinel with `// rotind-lint: allow({ID})`",
                        t.text
                    ),
                ));
            }
        }
        if t.text == "partial_cmp" && toks.get(i + 1).is_some_and(|n| n.text == "(") {
            if let Some(close) = crate::rules::matching_close(toks, i + 1) {
                let follows_unwrap = toks.get(close + 1).is_some_and(|d| d.text == ".")
                    && toks
                        .get(close + 2)
                        .is_some_and(|m| m.text == "unwrap" || m.text == "expect");
                if follows_unwrap {
                    out.push(Finding::new(
                        ID,
                        &file.path,
                        t.line,
                        "`partial_cmp(…).unwrap()` panics the first time a NaN \
                         reaches the comparator; use `f64::total_cmp`",
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse(
            "crates/x/src/a.rs",
            src,
            FileKind::Library,
        ))
    }

    #[test]
    fn flags_literal_comparison_both_sides() {
        let f = lint("fn f(x: f64) -> bool { x == 0.0 || 1.5 != x }\n");
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn integer_comparison_is_fine() {
        let f = lint("fn f(n: usize) -> bool { n == 0 && n != 10 }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn flags_partial_cmp_unwrap() {
        let f = lint("fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("total_cmp"));
    }

    #[test]
    fn total_cmp_and_plain_partial_cmp_are_fine() {
        let f = lint(
            "fn f(v: &mut [f64]) -> Option<std::cmp::Ordering> {\n    v.sort_by(f64::total_cmp);\n    v.first().unwrap_or(&0.0).partial_cmp(&1.5)\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
