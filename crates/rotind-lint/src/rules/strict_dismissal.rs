//! `strict-dismissal`: encode PR 3's boundary-exactness fix as a
//! permanent check. The paper's range semantics admit candidates at
//! exactly distance `r`, so dismissal must be **strict** (`d > r` /
//! `lb > r`) and admission **inclusive** (`d <= r`). A dismissing
//! branch guarded by `lb >= r` throws away candidates sitting exactly
//! on the radius — a real false dismissal, the one class of bug this
//! repo exists to rule out.
//!
//! The rule flags `>=`/`<=` comparisons where one operand names the
//! search radius or best-so-far (`r`, `r2`, `radius`, `best`, `bsf`,
//! `best_so_far`, …) and the guarded branch *dismisses* (contains
//! `continue`, `break`, a dismissing `return`, or a `Pruned`-style tail
//! verdict). Inclusive **admission** guards — `if d <= r { admit }` —
//! are the correct dual and stay clean, because their branch does not
//! dismiss.

use crate::ast::{walk_exprs, ExprKind};
use crate::dataflow;
use crate::findings::Finding;
use crate::source::{FileKind, SourceFile};

/// Rule id.
pub const ID: &str = "strict-dismissal";

/// True for identifiers that name the search radius / best-so-far.
fn radius_ish(ident: &str) -> bool {
    let l = ident.to_ascii_lowercase();
    l == "r"
        || l == "r2"
        || l == "bsf"
        || l.contains("radius")
        || l.contains("best")
        || l.contains("threshold")
}

/// Check one file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    if file.kind != FileKind::Library {
        return Vec::new();
    }
    let toks = file.tokens();
    let mut out = Vec::new();
    crate::ast::walk_fns(&file.ast, &mut |decl, _| {
        let Some(body) = &decl.body else { return };
        if file.is_test_code(decl.name_line) {
            return;
        }
        walk_exprs(body, &mut |e| {
            let ExprKind::If {
                cond, then_block, ..
            } = &e.kind
            else {
                return;
            };
            if !dataflow::block_dismisses(then_block) {
                return;
            }
            let mut cmps = Vec::new();
            dataflow::comparisons(cond, &mut cmps);
            for cmp in cmps {
                let ExprKind::Binary { op, lhs, rhs } = &cmp.kind else {
                    continue;
                };
                if op != ">=" && op != "<=" {
                    continue;
                }
                let named = [lhs, rhs]
                    .into_iter()
                    .find_map(|side| dataflow::operand_ident(side).filter(|id| radius_ish(id)));
                let Some(ident) = named else { continue };
                let line = cmp.span.line(toks);
                if file.is_test_code(line) {
                    continue;
                }
                out.push(Finding::new(
                    ID,
                    &file.path,
                    line,
                    format!(
                        "dismissing branch guarded by `{op}` against `{ident}` \
                         drops candidates at exactly distance `{ident}`; \
                         dismissal must be strict (`>`) and admission \
                         inclusive (`<=`) — see the PR 3 boundary-exactness \
                         fix and DESIGN.md §10"
                    ),
                ));
            }
        });
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse(
            "crates/x/src/a.rs",
            src,
            FileKind::Library,
        ))
    }

    #[test]
    fn ge_radius_then_continue_fails() {
        let f = lint(
            "fn scan(lbs: &[f64], r: f64) {\n    for lb in lbs {\n        if *lb >= r {\n            continue;\n        }\n    }\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn strict_dismissal_passes() {
        let f = lint(
            "fn scan(lbs: &[f64], r: f64) {\n    for lb in lbs {\n        if *lb > r {\n            continue;\n        }\n    }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn inclusive_admission_passes() {
        let f = lint(
            "fn verdict(lb: f64, r: f64) -> V {\n    if lb <= r { V::Admitted } else { V::Pruned }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn le_flipped_operands_fail() {
        let f = lint(
            "fn check(d: f64, best_so_far: f64) -> Option<f64> {\n    if best_so_far <= d {\n        return None;\n    }\n    Some(d)\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("best_so_far"));
    }

    #[test]
    fn compound_condition_operand_found() {
        let f = lint(
            "fn two_stage(acc: f64, r2: f64, r: f64) -> Option<f64> {\n    if acc >= r2 && acc.sqrt() > r {\n        return None;\n    }\n    Some(acc)\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("r2"));
    }

    #[test]
    fn non_radius_idents_and_test_code_ignored() {
        let f = lint(
            "fn windowed(i: usize, hi: usize) {\n    for j in 0..hi {\n        if j >= hi { continue; }\n    }\n}\n#[cfg(test)]\nmod t {\n    fn probe(lb: f64, r: f64) -> bool { if lb >= r { return false; } true }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn dismissing_return_of_pruned_verdict_fails() {
        let f = lint(
            "fn node(lb: f64, radius: f64) -> Verdict {\n    if lb >= radius {\n        return Verdict::Pruned;\n    }\n    Verdict::Admitted\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }
}
