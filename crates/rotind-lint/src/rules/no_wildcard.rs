//! `no-wildcard`: `pub use module::*` re-exports make a crate's public
//! surface implicit — adding a private helper can silently become an API
//! commitment, and two glob re-exports can collide at a distance. The
//! facade crate re-exports names one by one, on purpose.

use crate::findings::Finding;
use crate::source::{FileKind, SourceFile};

/// Rule id.
pub const ID: &str = "no-wildcard";

/// Check one file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    if file.kind == FileKind::Test {
        return Vec::new();
    }
    let toks = file.tokens();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "pub" && !file.is_test_code(toks[i].line) {
            // Skip a visibility scope: `pub(crate)` / `pub(in path)`.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.text == "(") {
                match crate::rules::matching_close(toks, j) {
                    Some(close) => j = close + 1,
                    None => break,
                }
            }
            if toks.get(j).is_some_and(|t| t.text == "use") {
                let line = toks[i].line;
                let mut glob = false;
                while j < toks.len() && toks[j].text != ";" {
                    if toks[j].text == "*" {
                        glob = true;
                    }
                    j += 1;
                }
                if glob {
                    out.push(Finding::new(
                        ID,
                        &file.path,
                        line,
                        "wildcard re-export `pub use …::*` makes the public \
                         surface implicit; re-export names explicitly",
                    ));
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse(
            "crates/x/src/a.rs",
            src,
            FileKind::Library,
        ))
    }

    #[test]
    fn flags_glob_reexports_including_scoped() {
        assert_eq!(lint("pub use crate::wedge::*;\n").len(), 1);
        assert_eq!(lint("pub(crate) use super::inner::*;\n").len(), 1);
        assert_eq!(lint("pub use crate::a::{b, c::*};\n").len(), 1);
    }

    #[test]
    fn explicit_reexports_and_private_globs_pass() {
        assert!(lint("pub use crate::wedge::Wedge;\n").is_empty());
        assert!(
            lint("use super::helpers::*;\n").is_empty(),
            "private glob imports are a style choice, not API surface"
        );
        assert!(lint("pub use crate::a::{b, c as d};\n").is_empty());
    }

    #[test]
    fn multiplication_is_not_a_glob() {
        assert!(lint("pub fn double(x: f64) -> f64 { x * 2.0 }\n").is_empty());
    }
}
