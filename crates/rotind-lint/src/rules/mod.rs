//! The rule engine: eighteen project-specific passes over lexed source.
//!
//! Nine rules are token-pattern passes; four (`lb-witness`,
//! `atomic-ordering`, `strict-dismissal`, `exhaustive-invariance`) are
//! semantic — they run on the [`crate::ast`] tree with the
//! [`crate::dataflow`] walk, because "a load feeds a comparison" or
//! "this match names every variant" is invisible to a flat token
//! stream. Five are interprocedural: `prune-only`, `admissible-chain`
//! and `shared-atomic-protocol` consume the bound-taint analysis
//! ([`crate::interproc`]), while `no-panic-reachable` and
//! `no-blocking-in-worker` consume the effect summaries
//! ([`crate::effects`]) rooted at the serve entry set. Every rule is a
//! pure function from file context to findings; the engine applies
//! file-kind gating and the `// rotind-lint: allow(rule)` escape
//! comments centrally, so individual rules stay single-purpose. See
//! DESIGN.md §9/§11/§16 for the rationale of each rule and its tie to
//! the paper's exactness and the service's availability invariants.

use crate::effects::RootSet;
use crate::findings::Finding;
use crate::source::SourceFile;

pub mod admissible_chain;
pub mod atomic_ordering;
pub mod counter_arith;
pub mod exhaustive_invariance;
pub mod float_eq;
pub mod forbid_unsafe;
pub mod lb_coverage;
pub mod lb_witness;
pub mod no_blocking_in_worker;
pub mod no_index;
pub mod no_panic;
pub mod no_panic_reachable;
pub mod no_print;
pub mod no_wildcard;
pub mod prune_only;
pub mod shared_atomic_protocol;
pub mod strict_dismissal;
pub mod todo_issue;

/// Static description of a rule, for `--list` and documentation.
pub struct RuleInfo {
    /// Stable rule id, used in reports, allow comments and the baseline.
    pub id: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// Every rule the engine knows, in report order.
pub const ALL_RULES: &[RuleInfo] = &[
    RuleInfo {
        id: no_panic::ID,
        summary: "no unwrap/expect/panic! in non-test library code",
    },
    RuleInfo {
        id: no_index::ID,
        summary: "no panicking slice/array indexing in non-test library code",
    },
    RuleInfo {
        id: float_eq::ID,
        summary: "no ==/!= against float literals, no partial_cmp(..).unwrap() comparators",
    },
    RuleInfo {
        id: lb_coverage::ID,
        summary: "every public lb_*/‥lower_bound fn must be referenced by a test",
    },
    RuleInfo {
        id: counter_arith::ID,
        summary: "counter/step arithmetic must use saturating or checked ops",
    },
    RuleInfo {
        id: no_print::ID,
        summary: "no println!/eprintln!/stdout in library crates; route telemetry via rotind-obs",
    },
    RuleInfo {
        id: forbid_unsafe::ID,
        summary: "every crate root must carry #![forbid(unsafe_code)]",
    },
    RuleInfo {
        id: todo_issue::ID,
        summary: "to-do / fix-me comments must reference an issue",
    },
    RuleInfo {
        id: no_wildcard::ID,
        summary: "no `pub use …::*` wildcard re-exports",
    },
    RuleInfo {
        id: lb_witness::ID,
        summary: "every lb_*/‥lower_bound fn needs a debug_assert admissibility witness or a witness-exempt reason",
    },
    RuleInfo {
        id: atomic_ordering::ID,
        summary: "Relaxed atomic loads must not feed dismissal comparisons; CAS on the shared radius needs AcqRel/Acquire",
    },
    RuleInfo {
        id: strict_dismissal::ID,
        summary: "dismissing branches must compare strictly (`>`) against the radius/best-so-far, never `>=`/`<=`",
    },
    RuleInfo {
        id: exhaustive_invariance::ID,
        summary: "matches on `Invariance` must name every variant — no `_` or binding catch-all arm",
    },
    RuleInfo {
        id: prune_only::ID,
        summary: "bound-tainted values may prune or feed observers, never become returned distances or best-so-far updates (interprocedural)",
    },
    RuleInfo {
        id: admissible_chain::ID,
        summary: "every tier reachable from h_merge_cascade* must carry an admissibility witness or exemption (call-graph level)",
    },
    RuleInfo {
        id: shared_atomic_protocol::ID,
        summary: "shared-radius CAS cycles must follow load(Acquire) → compare → compare_exchange_weak(AcqRel, Acquire), across helper fns",
    },
    RuleInfo {
        id: no_panic_reachable::ID,
        summary: "no may-panic site reachable from the serve roots without a reasoned panic-exempt (call-graph level)",
    },
    RuleInfo {
        id: no_blocking_in_worker::ID,
        summary: "no blocking call reachable from the worker hot loop outside the reasoned blocking-allowed allowlist (call-graph level)",
    },
];

/// Run every rule over `files` with the default serve root set
/// ([`RootSet::serve_default`]); see [`run_all_rooted`].
pub fn run_all(files: &[SourceFile]) -> Vec<Finding> {
    run_all_rooted(files, &RootSet::serve_default())
}

/// Run every rule over `files`, honouring allow comments. The slice is
/// the whole scan unit: the cross-file `lb-coverage` rule treats it as
/// the universe of definitions and test references. `roots` configures
/// the reachability roots of the availability rules (the binary lets
/// `--panic-root`/`--worker-root` extend the serve defaults).
pub fn run_all_rooted(files: &[SourceFile], roots: &RootSet) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        findings.extend(no_panic::check(file));
        findings.extend(no_index::check(file));
        findings.extend(float_eq::check(file));
        findings.extend(counter_arith::check(file));
        findings.extend(no_print::check(file));
        findings.extend(forbid_unsafe::check(file));
        findings.extend(todo_issue::check(file));
        findings.extend(no_wildcard::check(file));
        findings.extend(lb_witness::check(file));
        findings.extend(atomic_ordering::check(file));
        findings.extend(strict_dismissal::check(file));
    }
    findings.extend(lb_coverage::check(files));
    findings.extend(exhaustive_invariance::check(files));
    // Interprocedural rules share one whole-workspace analysis (and the
    // effect rules reuse its call graph rather than building another).
    let ws = crate::interproc::analyze(files);
    findings.extend(prune_only::check(&ws, files));
    findings.extend(admissible_chain::check(&ws, files));
    findings.extend(shared_atomic_protocol::check(&ws, files));
    let effects = crate::effects::analyze(&ws.graph, files);
    findings.extend(no_panic_reachable::check(&ws, &effects, files, roots));
    findings.extend(no_blocking_in_worker::check(&ws, &effects, files, roots));
    // Apply escape comments centrally so every rule honours them the
    // same way, including the cross-file one.
    findings.retain(|f| {
        files
            .iter()
            .find(|s| s.path == f.path)
            .is_none_or(|s| !s.allowed(f.rule, f.line))
    });
    findings
}

/// Probe an exemption accessor over a function's exemption window: the
/// line above the item (attributes included) through the last line of
/// the body. Shared by `admissible-chain` (witness-exempt) and
/// `no-panic-reachable` (panic-exempt) so the window semantics cannot
/// drift between rules.
pub(crate) fn exemption_window<'f>(
    file: &'f SourceFile,
    node: &crate::resolve::FnNode<'_>,
    probe: impl Fn(&'f SourceFile, usize, usize) -> Option<(usize, &'f str)>,
) -> Option<(usize, &'f str)> {
    let toks = file.tokens();
    let start_line = node.item_span.line(toks);
    let end_line = node
        .decl
        .body
        .as_ref()
        .and_then(|b| toks.get(b.span.hi.saturating_sub(1)))
        .map_or(start_line, |t| t.line);
    probe(file, start_line.saturating_sub(1), end_line)
}

/// Find the matching closing delimiter for the opener at `open`
/// (`(`/`[`/`{`), returning its token index. Shared by several rules.
pub(crate) fn matching_close(tokens: &[crate::lexer::Token], open: usize) -> Option<usize> {
    let (o, c) = match tokens.get(open).map(|t| t.text.as_str()) {
        Some("(") => ("(", ")"),
        Some("[") => ("[", "]"),
        Some("{") => ("{", "}"),
        _ => return None,
    };
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.text == o {
            depth += 1;
        } else if t.text == c {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}
