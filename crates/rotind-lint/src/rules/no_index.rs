//! `no-index`: square-bracket indexing (`xs[i]`, `xs[i..j]`) in non-test
//! library code is a hidden panic site. Prefer iterators, `get`/
//! `get_unchecked`-free patterns, or pre-validated slices; where the
//! bounds are established by construction (the inner loops of LB_Keogh
//! and DTW), either keep the ratchet entry or add an allow escape.
//!
//! Full-range slicing `&xs[..]` cannot panic and is not flagged.

use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::source::{FileKind, SourceFile};

/// Rule id.
pub const ID: &str = "no-index";

/// Check one file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    if file.kind != FileKind::Library {
        return Vec::new();
    }
    let toks = file.tokens();
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.text != "[" || file.is_test_code(t.line) {
            continue;
        }
        // Index position: `expr[` — the bracket directly follows an
        // identifier, a close paren/bracket, or `self`. Array literals
        // (`= [0.0; n]`), types (`: [f64; 4]`), attributes (`#[…]`) and
        // macro brackets (`vec![…]`) all follow other tokens.
        let Some(prev) = i.checked_sub(1).map(|p| &toks[p]) else {
            continue;
        };
        let indexes = matches!(prev.kind, TokKind::Ident) || prev.text == ")" || prev.text == "]";
        if !indexes {
            continue;
        }
        // Keywords lex as identifiers, and an array literal or slice
        // pattern can follow one (`for side in [lhs, rhs]`,
        // `let [a, b] = xs`). None of these name a place expression, so
        // `[` after them is not indexing.
        if matches!(
            prev.text.as_str(),
            "in" | "return"
                | "break"
                | "if"
                | "else"
                | "match"
                | "loop"
                | "while"
                | "move"
                | "mut"
                | "ref"
                | "as"
                | "yield"
                | "let"
        ) {
            continue;
        }
        // `&xs[..]` takes the whole slice and cannot panic.
        if let Some(close) = crate::rules::matching_close(toks, i) {
            if close == i + 2 && toks[i + 1].text == ".." {
                continue;
            }
        }
        out.push(Finding::new(
            ID,
            &file.path,
            t.line,
            format!(
                "indexing `{}[…]` can panic on a bad bound; use iterators or \
                 `.get(…)`, or record the structural invariant with \
                 `// rotind-lint: allow({ID})`",
                prev.text
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse(
            "crates/x/src/a.rs",
            src,
            FileKind::Library,
        ))
    }

    #[test]
    fn flags_index_and_range_index() {
        let f = lint("fn f(xs: &[f64], i: usize) -> f64 { xs[i] + xs[i..].len() as f64 }\n");
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn array_literals_types_attrs_and_macros_are_fine() {
        let f = lint(
            "#[derive(Clone)]\nstruct S;\nfn f() -> [f64; 2] {\n    let a: [f64; 2] = [0.0, 1.0];\n    let _v = vec![1, 2];\n    a\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn array_literal_after_keyword_is_fine() {
        let f = lint(
            "fn f(a: f64, b: f64) -> f64 {\n    let mut acc = 0.0;\n    for side in [a, b] {\n        acc += side;\n    }\n    acc\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn full_range_slice_is_fine() {
        let f = lint("fn f(xs: &Vec<f64>) -> &[f64] { &xs[..] }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn tests_are_exempt() {
        let f = lint("#[cfg(test)]\nmod t {\n    fn g(xs: &[u8]) -> u8 { xs[0] }\n}\n");
        assert!(f.is_empty());
    }
}
