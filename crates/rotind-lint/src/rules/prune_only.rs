//! `prune-only`: the interprocedural proof that lower-bound values only
//! prune. A value originating from a bound producer (`lb_*`,
//! `*lower_bound`, `*tier_bound`, `min_dist`) may flow into dismissal
//! comparisons, observer/metrics sinks, `debug_assert!` witnesses and
//! other bound functions — but never into a returned distance or a
//! best-so-far update. A bound leaking into either is exactly the
//! failure mode the paper's exactness proof forbids: the scan would
//! report an *estimate* as a result, or tighten the radius with a value
//! that is only a floor, turning "no false dismissals" into silently
//! wrong answers.
//!
//! The rule runs on the [`crate::interproc`] analysis, so the leak is
//! caught even when the bound crosses function and crate boundaries;
//! findings carry the full witness path. Measurement crates
//! (`rotind-eval`, `rotind-bench`) are exempt — exporting bound values
//! as figure data is their purpose.

use crate::findings::Finding;
use crate::interproc::{is_bound_source, Violation, ViolationKind, Workspace};
use crate::source::{FileKind, SourceFile};

/// Rule id.
pub const ID: &str = "prune-only";

/// Crates whose purpose is exporting bound values (figures, tables).
const MEASUREMENT_CRATES: &[&str] = &["rotind-eval", "rotind-bench"];

/// Check the analyzed workspace.
pub fn check(ws: &Workspace<'_>, files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for v in &ws.violations {
        let Some(node) = ws.graph.index.nodes.get(v.fn_id) else {
            continue;
        };
        let Some(file) = files.get(node.file) else {
            continue;
        };
        if file.kind != FileKind::Library
            || node.is_test
            || MEASUREMENT_CRATES.contains(&node.crate_name.as_str())
        {
            continue;
        }
        match v.kind {
            ViolationKind::BoundReturned => {
                // A fn *named* as a bound producer is allowed — callers
                // know the contract from the name.
                if is_bound_source(&node.decl.name) {
                    continue;
                }
                out.push(returned(file, v, &node.decl.name));
            }
            ViolationKind::BoundToBest => {
                out.push(
                    Finding::new(
                        ID,
                        &file.path,
                        v.line,
                        format!(
                            "lower-bound-tainted value flows into best-so-far \
                             update `{}` in `{}`; bounds may only prune — \
                             tightening the radius with a bound admits false \
                             dismissals (prune-only proof)",
                            v.detail, node.decl.name
                        ),
                    )
                    .with_witness(v.witness.clone()),
                );
            }
            ViolationKind::RelaxedCompareViaCall | ViolationKind::RelaxedSeededCas => {}
        }
    }
    out
}

fn returned(file: &SourceFile, v: &Violation, fn_name: &str) -> Finding {
    Finding::new(
        ID,
        &file.path,
        v.line,
        format!(
            "`{fn_name}` returns a lower-bound-tainted value as if it were \
             a distance; a bound may only prune (strict `>` dismissal) or \
             feed observers — name the fn `lb_*`/`*_tier_bound` if it is a \
             bound, or return the true distance (prune-only proof)"
        ),
    )
    .with_witness(v.witness.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interproc::analyze;

    fn run(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(p, s)| {
                let kind = crate::source::kind_for_path(p);
                SourceFile::parse(p, s, kind)
            })
            .collect();
        let ws = analyze(&files);
        check(&ws, &files)
    }

    #[test]
    fn bound_returned_as_distance_is_flagged_with_witness() {
        let f = run(&[
            (
                "crates/rotind-core/src/bounds.rs",
                "pub fn lb_kim(q: &[f64]) -> f64 { let lb = 0.0; debug_assert!(lb <= 1.0); lb }\n",
            ),
            (
                "crates/rotind-index/src/scan.rs",
                "pub fn scan_distance(q: &[f64]) -> f64 { let d = lb_kim(q); d }\n",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, ID);
        assert_eq!(f[0].path, "crates/rotind-index/src/scan.rs");
        assert!(!f[0].witness.is_empty(), "finding carries a witness path");
    }

    #[test]
    fn pruning_and_observing_are_allowed() {
        let f = run(&[(
            "crates/rotind-index/src/scan.rs",
            "pub fn scan(q: &[f64], w: &W, obs: &O, r: f64) -> bool { let lb = lb_kim(q, w); obs.on_wedge_tested(lb); lb > r }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn bound_named_fns_may_return_bounds() {
        let f = run(&[(
            "crates/rotind-index/src/hmerge.rs",
            "fn node_tier_bound(q: &[f64], w: &W) -> f64 { lb_kim(q, w) }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn measurement_crates_are_exempt() {
        let f = run(&[(
            "crates/rotind-eval/src/figures.rs",
            "pub fn tightness_row(q: &[f64], w: &W) -> f64 { lb_kim(q, w) }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let f = run(&[(
            "crates/rotind-core/src/bounds.rs",
            "#[cfg(test)]\nmod t {\n    fn probe(q: &[f64]) -> f64 { lb_kim(q) }\n}\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn bound_tightening_the_radius_is_flagged() {
        let f = run(&[(
            "crates/rotind-index/src/scan.rs",
            "pub fn scan(q: &[f64], w: &W) { let mut best_so_far = f64::INFINITY; let lb = lb_kim(q, w); if lb < best_so_far { best_so_far = lb; } }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("best_so_far"), "{}", f[0].message);
    }

    #[test]
    fn allow_comment_is_honoured_via_engine() {
        // The central engine applies allows; here just confirm the rule
        // reports the line the comment must cover.
        let f = run(&[(
            "crates/rotind-index/src/scan.rs",
            "pub fn leak(q: &[f64]) -> f64 {\n    lb_kim(q)\n}\n",
        )]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3, "reported at the return point: {f:?}");
    }
}
