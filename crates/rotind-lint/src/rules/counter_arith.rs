//! `counter-arith`: step counters are the paper's cost metric and the
//! telemetry layer's currency. With `overflow-checks = true` in the test
//! profile, a `steps += n` that overflows panics the search; in release
//! it silently wraps and corrupts every speedup figure downstream. All
//! arithmetic on counter-ish state (identifiers containing `count`,
//! `step`, `tick`, `spent` or `budget`) must be saturating or checked
//! — and explicitly
//! wrapping arithmetic on counters is flagged outright, since wrapped
//! telemetry is worse than a panic. Atomic counters are held to the
//! same bar: `fetch_add`/`fetch_sub` wrap on overflow with no
//! `overflow-checks` safety net at all, so shared telemetry must merge
//! per-thread saturating counters or guard updates with a CAS loop
//! (as the parallel scan's shared radius does).

use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::source::{FileKind, SourceFile};

/// Rule id.
pub const ID: &str = "counter-arith";

/// True for identifiers that name step/count state — including the
/// budget layer's spend accounting (`spent_pool`, `budget_used`), which
/// feeds `Exhausted::steps_spent` and must never wrap either.
fn counter_ish(ident: &str) -> bool {
    let l = ident.to_ascii_lowercase();
    l.contains("count")
        || l.contains("step")
        || l.contains("tick")
        || l.contains("spent")
        || l.contains("budget")
}

/// Check one file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    if file.kind != FileKind::Library {
        return Vec::new();
    }
    let toks = file.tokens();
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if file.is_test_code(t.line) {
            continue;
        }
        // `counter += n` / `counter -= n` (also `self.steps += 1`: the
        // token just before the operator is the field name).
        if (t.text == "+=" || t.text == "-=")
            && i.checked_sub(1)
                .is_some_and(|p| toks[p].kind == TokKind::Ident && counter_ish(&toks[p].text))
        {
            let place = &toks[i - 1].text;
            out.push(Finding::new(
                ID,
                &file.path,
                t.line,
                format!(
                    "`{place} {}` overflows under `overflow-checks = true`; \
                     use `saturating_add`/`saturating_sub` (telemetry must \
                     never panic a search) or `checked_*` where loss matters",
                    t.text
                ),
            ));
        }
        // `counter.wrapping_add(…)` — wrapping telemetry is a silent lie.
        if (t.text == "wrapping_add" || t.text == "wrapping_sub")
            && i.checked_sub(1).is_some_and(|p| toks[p].text == ".")
            && i.checked_sub(2)
                .is_some_and(|p| toks[p].kind == TokKind::Ident && counter_ish(&toks[p].text))
        {
            out.push(Finding::new(
                ID,
                &file.path,
                t.line,
                format!(
                    "`{}` on a counter wraps silently and corrupts the step \
                     accounting; use `saturating_*`",
                    t.text
                ),
            ));
        }
        // `counter.fetch_add(…)` — atomics wrap on overflow in every
        // build profile; a shared counter that wraps under-reports the
        // longest runs in the fleet.
        // `p` comes from `checked_sub`, so `p < i < toks.len()`.
        if (t.text == "fetch_add" || t.text == "fetch_sub")
            // rotind-lint: allow(no-index)
            && i.checked_sub(1).is_some_and(|p| toks[p].text == ".")
            && i.checked_sub(2)
                // rotind-lint: allow(no-index)
                .is_some_and(|p| toks[p].kind == TokKind::Ident && counter_ish(&toks[p].text))
        {
            out.push(Finding::new(
                ID,
                &file.path,
                t.line,
                format!(
                    "`{}` on an atomic counter wraps silently on overflow; \
                     merge per-thread saturating `StepCounter`s after the \
                     scan, or guard the update with a compare-exchange loop",
                    t.text
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse(
            "crates/x/src/a.rs",
            src,
            FileKind::Library,
        ))
    }

    #[test]
    fn flags_compound_assignment_on_counters() {
        let f = lint("struct C { steps: u64 }\nimpl C {\n    fn tick(&mut self) { self.steps += 1; }\n    fn untick(&mut self, n: u64) { self.steps -= n; }\n}\n");
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn flags_wrapping_on_counters() {
        let f = lint("fn f(count: u64) -> u64 { count.wrapping_add(1) }\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn flags_atomic_fetch_arith_on_counters() {
        let f = lint(
            "use std::sync::atomic::{AtomicU64, Ordering};\nfn f(step_count: &AtomicU64) {\n    step_count.fetch_add(1, Ordering::Relaxed);\n    step_count.fetch_sub(1, Ordering::Relaxed);\n}\n",
        );
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn atomic_fetch_on_non_counters_is_fine() {
        let f = lint(
            "use std::sync::atomic::{AtomicU64, Ordering};\nfn f(generation: &AtomicU64) {\n    generation.fetch_add(1, Ordering::Relaxed);\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn flags_arith_on_budget_spend_state() {
        let f = lint(
            "use std::sync::atomic::{AtomicU64, Ordering};\nfn f(spent_pool: &AtomicU64, mut budget_used: u64) {\n    spent_pool.fetch_add(7, Ordering::AcqRel);\n    budget_used += 7;\n}\n",
        );
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn saturating_budget_spend_is_fine() {
        let f = lint("fn f(spent: u64, delta: u64) -> u64 { spent.saturating_add(delta) }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn saturating_and_unrelated_idents_are_fine() {
        let f = lint(
            "fn f(steps: u64, acc: f64) -> (u64, f64) {\n    let s = steps.saturating_add(1);\n    let mut a = acc;\n    a += 1.0;\n    (s, a)\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
