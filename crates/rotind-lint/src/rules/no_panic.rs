//! `no-panic`: hot-path library code must not contain `unwrap()`,
//! `expect(…)`, `panic!`, `unreachable!`, `todo!` or `unimplemented!`.
//!
//! The serving path of the index must degrade by returning an error, not
//! by unwinding mid-search: a panic inside `rotind-index::engine` tears
//! down the worker with the query half-answered. Invariant-backed uses
//! (e.g. "infinite radius never abandons") stay, but each must carry an
//! explicit `// rotind-lint: allow(no-panic)` escape so the invariant is
//! visible at the call site and auditable by grep.

use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::source::{FileKind, SourceFile};

/// Rule id.
pub const ID: &str = "no-panic";

/// Macros that unconditionally unwind.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Check one file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    if file.kind != FileKind::Library {
        return Vec::new();
    }
    let toks = file.tokens();
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || file.is_test_code(t.line) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
        let next = toks.get(i + 1).map(|n| n.text.as_str());
        match t.text.as_str() {
            // `.unwrap()` / `.expect(` — method position only, so local
            // functions named e.g. `expect_header` are untouched.
            "unwrap" | "expect" if prev == Some(".") && next == Some("(") => {
                out.push(Finding::new(
                    ID,
                    &file.path,
                    t.line,
                    format!(
                        "`.{}()` in library code can panic at serve time; \
                         return the crate error type, or document the invariant \
                         with `// rotind-lint: allow({ID})`",
                        t.text
                    ),
                ));
            }
            m if PANIC_MACROS.contains(&m) && next == Some("!") => {
                out.push(Finding::new(
                    ID,
                    &file.path,
                    t.line,
                    format!(
                        "`{m}!` in library code unwinds mid-search; \
                         return an error or add `// rotind-lint: allow({ID})` \
                         with the invariant that makes it unreachable"
                    ),
                ));
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse(
            "crates/x/src/a.rs",
            src,
            FileKind::Library,
        ))
    }

    #[test]
    fn flags_unwrap_expect_and_panic_macros() {
        let f = lint("fn f(x: Option<u8>) -> u8 {\n    let a = x.unwrap();\n    let b = x.expect(\"b\");\n    panic!(\"no\");\n}\n");
        assert_eq!(f.len(), 3);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn test_modules_and_test_files_are_exempt() {
        let f = lint("fn ok() {}\n#[cfg(test)]\nmod t {\n    fn g() { None::<u8>.unwrap(); }\n}\n");
        assert!(f.is_empty());
        let tf = SourceFile::parse(
            "tests/t.rs",
            "fn g() { None::<u8>.unwrap(); }",
            FileKind::Test,
        );
        assert!(check(&tf).is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let f = lint("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).min(x.unwrap_or_default()) }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn free_function_named_expect_is_fine() {
        let f = lint("fn expect(x: u8) -> u8 { x }\nfn g() { let _ = expect(1); }\n");
        assert!(f.is_empty());
    }
}
