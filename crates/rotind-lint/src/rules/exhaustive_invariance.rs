//! `exhaustive-invariance`: every `match` on the `Invariance` enum must
//! name all variants — no `_` wildcard, no binding catch-all.
//!
//! `Invariance` is the search-semantics switch (rotation, mirror,
//! limited rotation, …); a wildcard arm means a future variant — say,
//! `Scale` — silently inherits some existing branch's envelope matrix
//! instead of failing to compile, and a wrong envelope is an
//! inadmissible bound. Rust's own exhaustiveness check is exactly what
//! a `_` arm opts out of, so the linter opts back in.
//!
//! The rule is cross-file: the enum's variant list is collected from
//! the scan unit's symbol tables (the real definition lives in
//! `rotind-index/src/engine.rs`; fixtures carry their own), and any
//! match whose arms reference `Invariance::…` paths is checked against
//! it. Guard-duplicated arms (`V if cond => …, V => …`) are fine — the
//! rule checks coverage, not mutual exclusion.

use crate::ast::{walk_item_exprs, ExprKind};
use crate::findings::Finding;
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// Rule id.
pub const ID: &str = "exhaustive-invariance";

/// The enum whose matches must stay exhaustive.
const ENUM_NAME: &str = "Invariance";

/// Check the whole scan unit at once.
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    // The variant universe, unioned across definitions (the workspace
    // has one; a fixture directory may carry its own).
    let mut variants: BTreeSet<String> = BTreeSet::new();
    for file in files {
        if let Some(e) = file.symbols.enum_named(ENUM_NAME) {
            variants.extend(e.variants.iter().cloned());
        }
    }
    let mut out = Vec::new();
    for file in files {
        let toks = file.tokens();
        for item in &file.ast.items {
            walk_item_exprs(item, &mut |e| {
                let ExprKind::Match { arms, .. } = &e.kind else {
                    return;
                };
                // A match is "on Invariance" when any arm pattern
                // references an `Invariance::…` path.
                let mut named: BTreeSet<&str> = BTreeSet::new();
                let mut on_invariance = false;
                let mut catch_all = false;
                for arm in arms {
                    if arm.has_wildcard {
                        catch_all = true;
                    }
                    for path in &arm.pat_paths {
                        if let [.., parent, variant] = path.as_slice() {
                            if parent == ENUM_NAME {
                                on_invariance = true;
                                named.insert(variant.as_str());
                            }
                        } else if let [seg] = path.as_slice() {
                            let seg = seg.as_str();
                            if seg.chars().next().is_some_and(|c| c.is_ascii_lowercase()) {
                                // A lowercase single-segment pattern is a
                                // binding: it catches everything.
                                catch_all = true;
                            } else if variants.contains(seg) {
                                // `use Invariance::*`-style bare variant.
                                named.insert(seg);
                            }
                        }
                    }
                }
                if !on_invariance {
                    return;
                }
                let line = e.span.line(toks);
                if file.is_test_code(line) {
                    return;
                }
                if catch_all {
                    out.push(Finding::new(
                        ID,
                        &file.path,
                        line,
                        format!(
                            "match on `{ENUM_NAME}` has a catch-all arm; name \
                             every variant so a future variant is a compile \
                             error, not a silently wrong envelope"
                        ),
                    ));
                } else if !variants.is_empty() {
                    let missing: Vec<&str> = variants
                        .iter()
                        .map(String::as_str)
                        .filter(|v| !named.contains(*v))
                        .collect();
                    if !missing.is_empty() {
                        out.push(Finding::new(
                            ID,
                            &file.path,
                            line,
                            format!(
                                "match on `{ENUM_NAME}` does not name variant(s) \
                                 {}; every variant must choose its envelope \
                                 explicitly",
                                missing.join(", ")
                            ),
                        ));
                    }
                }
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    const ENUM_DEF: &str =
        "pub enum Invariance { Rotation, RotationMirror, RotationLimited { max_shift: usize }, RotationLimitedMirror { max_shift: usize } }\n";

    fn lint(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::parse(
            "crates/x/src/a.rs",
            &format!("{ENUM_DEF}{src}"),
            FileKind::Library,
        )];
        check(&files)
    }

    #[test]
    fn wildcard_arm_fails() {
        let f = lint(
            "fn m(v: &Invariance) -> u8 {\n    match v {\n        Invariance::Rotation => 0,\n        _ => 1,\n    }\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("catch-all"));
    }

    #[test]
    fn binding_catch_all_fails() {
        let f = lint(
            "fn m(v: Invariance) -> u8 {\n    match v {\n        Invariance::Rotation => 0,\n        other => 1,\n    }\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn missing_variant_fails_with_name() {
        let f = lint(
            "fn m(v: &Invariance) -> u8 {\n    match v {\n        Invariance::Rotation => 0,\n        Invariance::RotationMirror => 1,\n        Invariance::RotationLimited { max_shift } => 2,\n    }\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("RotationLimitedMirror"));
    }

    #[test]
    fn full_match_passes_with_guards_and_payloads() {
        let f = lint(
            "fn m(v: &Invariance) -> u8 {\n    match v {\n        Invariance::Rotation => 0,\n        Invariance::RotationMirror => 1,\n        Invariance::RotationLimited { max_shift } if *max_shift == 0 => 4,\n        Invariance::RotationLimited { max_shift } => 2,\n        Invariance::RotationLimitedMirror { max_shift } => 3,\n    }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn matches_on_other_enums_ignored() {
        let f = lint(
            "fn m(v: Option<u8>) -> u8 {\n    match v {\n        Some(x) => x,\n        _ => 0,\n    }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let f = lint(
            "#[cfg(test)]\nmod t {\n    fn m(v: &Invariance) -> u8 {\n        match v {\n            Invariance::Rotation => 0,\n            _ => 1,\n        }\n    }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cross_file_definition_is_found() {
        let def = SourceFile::parse("crates/a/src/lib.rs", ENUM_DEF, FileKind::Library);
        let user = SourceFile::parse(
            "crates/b/src/lib.rs",
            "fn m(v: &Invariance) -> u8 {\n    match v {\n        Invariance::Rotation => 0,\n        Invariance::RotationMirror => 1,\n        Invariance::RotationLimited { .. } => 2,\n    }\n}\n",
            FileKind::Library,
        );
        let f = check(&[def, user]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("RotationLimitedMirror"));
    }
}
