//! `forbid-unsafe`: every crate root must carry `#![forbid(unsafe_code)]`.
//!
//! `forbid` (not `deny`) so no inner module can re-allow it: the whole
//! workspace is pure safe Rust by construction, which is what lets the
//! exactness proptests speak for the binary actually shipped — there is
//! no `unsafe` fast path whose aliasing bugs the tests cannot see.

use crate::findings::Finding;
use crate::source::SourceFile;

/// Rule id.
pub const ID: &str = "forbid-unsafe";

/// Check one file (only crate roots are inspected).
pub fn check(file: &SourceFile) -> Vec<Finding> {
    if !file.is_crate_root {
        return Vec::new();
    }
    let toks = file.tokens();
    // Look for `# ! [ … forbid … unsafe_code … ]` among the inner
    // attributes at the top of the file.
    for (i, t) in toks.iter().enumerate() {
        if t.text == "#"
            && toks.get(i + 1).is_some_and(|a| a.text == "!")
            && toks.get(i + 2).is_some_and(|a| a.text == "[")
        {
            if let Some(close) = crate::rules::matching_close(toks, i + 2) {
                let attr = &toks[i + 2..close];
                if attr.iter().any(|t| t.text == "forbid")
                    && attr.iter().any(|t| t.text == "unsafe_code")
                {
                    return Vec::new();
                }
            }
        }
    }
    vec![Finding::new(
        ID,
        &file.path,
        1,
        "crate root is missing `#![forbid(unsafe_code)]`; the workspace \
         guarantees safe-Rust-only hot paths",
    )]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    #[test]
    fn present_attribute_passes() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "//! Docs.\n#![forbid(unsafe_code)]\npub fn f() {}\n",
            FileKind::Library,
        );
        assert!(check(&f).is_empty());
    }

    #[test]
    fn missing_attribute_fails_on_roots_only() {
        let root = SourceFile::parse("crates/x/src/lib.rs", "pub fn f() {}\n", FileKind::Library);
        assert_eq!(check(&root).len(), 1);
        let non_root = SourceFile::parse("crates/x/src/m.rs", "pub fn f() {}\n", FileKind::Library);
        assert!(check(&non_root).is_empty());
    }

    #[test]
    fn deny_is_not_enough() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "#![deny(unsafe_code)]\npub fn f() {}\n",
            FileKind::Library,
        );
        assert_eq!(check(&f).len(), 1, "deny can be re-allowed; forbid cannot");
    }
}
