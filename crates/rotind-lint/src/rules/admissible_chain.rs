//! `admissible-chain`: call-graph-level admissibility for the cascade.
//!
//! The cascade entry points (`h_merge_cascade*`) dismiss candidates
//! using whatever tiers they reach — so the admissibility obligation is
//! a property of the *call graph*, not of any single file: every
//! function reachable from a cascade root that produces a bound must
//! carry a witness (`debug_assert` / delegation, as `lb-witness`
//! defines) or an explicit exemption. Wiring a new tier into the
//! cascade without a witness is then a lint failure even if the tier
//! lives in another crate and `lb-witness` alone would pass its file in
//! isolation — and a *non*-bound-named helper that returns bound-tainted
//! values into the cascade is flagged as an unwitnessed tier outright.

use crate::findings::Finding;
use crate::interproc::{is_bound_source, Workspace};
use crate::rules::lb_coverage::is_lower_bound_name;
use crate::rules::lb_witness::has_witness;
use crate::source::{FileKind, SourceFile};

/// Rule id.
pub const ID: &str = "admissible-chain";

/// Cascade entry points: reachability roots.
fn is_root(name: &str) -> bool {
    name.starts_with("h_merge_cascade")
}

/// Check the analyzed workspace.
pub fn check(ws: &Workspace<'_>, files: &[SourceFile]) -> Vec<Finding> {
    let nodes = &ws.graph.index.nodes;
    let roots: Vec<usize> = nodes
        .iter()
        .filter(|n| is_root(&n.decl.name) && !n.is_test)
        .map(|n| n.id)
        .collect();
    if roots.is_empty() {
        return Vec::new();
    }
    // Per-root reachability so the finding can name the entry point
    // that wires the tier in.
    let mut via_root: Vec<Option<usize>> = vec![None; nodes.len()];
    for &root in &roots {
        let seen = ws.graph.reachable_from(&[root]);
        for (slot, hit) in via_root.iter_mut().zip(&seen) {
            if *hit && slot.is_none() {
                *slot = Some(root);
            }
        }
    }
    let mut out = Vec::new();
    for node in nodes {
        let Some(root) = via_root.get(node.id).copied().flatten() else {
            continue;
        };
        let Some(file) = files.get(node.file) else {
            continue;
        };
        if file.kind != FileKind::Library || node.is_test || node.decl.body.is_none() {
            continue;
        }
        let Some(summary) = ws.summaries.get(node.id) else {
            continue;
        };
        let Some(root_name) = nodes.get(root).map(|n| &n.decl.name) else {
            continue;
        };
        if is_lower_bound_name(&node.decl.name) {
            if !has_witness(node.decl) && !exempted(file, node) {
                out.push(Finding::new(
                    ID,
                    &file.path,
                    node.decl.name_line,
                    format!(
                        "cascade tier `{}` is reachable from `{root_name}` but \
                         carries no admissibility witness; a dismissal through \
                         an unwitnessed tier can silently over-tighten — add a \
                         `debug_assert!` witness, delegate to a witnessed \
                         bound, or justify with `// lint: witness-exempt(…)`",
                        node.decl.name
                    ),
                ));
            }
        } else if summary.returns_bound
            && !is_bound_source(&node.decl.name)
            && !has_witness(node.decl)
            && !exempted(file, node)
        {
            out.push(
                Finding::new(
                    ID,
                    &file.path,
                    node.decl.name_line,
                    format!(
                        "`{}` is reachable from `{root_name}` and returns a \
                         bound-tainted value, making it an *unnamed* cascade \
                         tier with no admissibility witness; name it \
                         `*_tier_bound` and witness it, or stop returning the \
                         bound",
                        node.decl.name
                    ),
                )
                .with_witness(summary.bound_witness.clone()),
            );
        }
    }
    out
}

/// The same exemption window `lb-witness` honours: a
/// `// lint: witness-exempt(<reason>)` from the line above the item
/// through the end of the body (an empty reason is `lb-witness`'s
/// finding to make, not ours).
fn exempted(file: &SourceFile, node: &crate::resolve::FnNode<'_>) -> bool {
    super::exemption_window(file, node, SourceFile::witness_exempt).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interproc::analyze;

    fn run(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(p, s)| SourceFile::parse(p, s, crate::source::kind_for_path(p)))
            .collect();
        let ws = analyze(&files);
        check(&ws, &files)
    }

    #[test]
    fn unwitnessed_tier_wired_into_cascade_is_flagged() {
        let f = run(&[
            (
                "crates/rotind-index/src/hmerge.rs",
                "pub fn h_merge_cascade_observed(q: &[f64], r: f64) -> bool { node_tier_bound(q) > r }\n",
            ),
            (
                "crates/rotind-index/src/tiers.rs",
                "pub fn node_tier_bound(q: &[f64]) -> f64 { q.len() as f64 }\n",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("node_tier_bound"));
        assert!(f[0].message.contains("h_merge_cascade_observed"));
        assert_eq!(f[0].path, "crates/rotind-index/src/tiers.rs");
    }

    #[test]
    fn witnessed_and_exempt_tiers_pass() {
        let f = run(&[
            (
                "crates/rotind-index/src/hmerge.rs",
                "pub fn h_merge_cascade_observed(q: &[f64], r: f64) -> bool { node_tier_bound(q) > r || other_tier_bound(q) > r }\n",
            ),
            (
                "crates/rotind-index/src/tiers.rs",
                "pub fn node_tier_bound(q: &[f64]) -> f64 { let lb = q.len() as f64; debug_assert!(lb >= 0.0); lb }\n// lint: witness-exempt(constant zero floor is trivially admissible)\npub fn other_tier_bound(q: &[f64]) -> f64 { 0.0 }\n",
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unreachable_tiers_are_not_this_rules_problem() {
        let f = run(&[
            (
                "crates/rotind-index/src/hmerge.rs",
                "pub fn h_merge_cascade_observed(q: &[f64]) -> f64 { q[0] }\n",
            ),
            (
                "crates/rotind-index/src/tiers.rs",
                "pub fn island_tier_bound(q: &[f64]) -> f64 { 0.0 }\n",
            ),
        ]);
        assert!(f.is_empty(), "lb-witness covers unreachable tiers: {f:?}");
    }

    #[test]
    fn unnamed_tier_returning_bound_is_flagged_with_witness() {
        // `min_dist` is a bound source but not an `lb_*` name, so the
        // delegation-counts-as-witness escape does not apply.
        let f = run(&[(
            "crates/rotind-index/src/hmerge.rs",
            "fn estimate(paa: &Paa, env: &Env) -> f64 { env.min_dist(paa) }\npub fn h_merge_cascade_observed(paa: &Paa, env: &Env, r: f64) -> bool { estimate(paa, env) > r }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("estimate"), "{}", f[0].message);
        assert!(!f[0].witness.is_empty());
    }

    #[test]
    fn delegating_helper_counts_as_witnessed() {
        // Delegation to an `lb_*` kernel is a witness chain; the helper
        // is `prune-only`'s problem (it returns a bound without a bound
        // name), not an unwitnessed tier.
        let f = run(&[(
            "crates/rotind-index/src/hmerge.rs",
            "fn estimate(q: &[f64]) -> f64 { lb_kim(q) }\npub fn h_merge_cascade_observed(q: &[f64], r: f64) -> bool { estimate(q) > r }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn no_cascade_roots_means_no_findings() {
        let f = run(&[(
            "crates/rotind-index/src/tiers.rs",
            "pub fn naked_tier_bound(q: &[f64]) -> f64 { 0.0 }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }
}
