//! `todo-issue`: a to-do marker with no issue reference is a liability
//! that ages into archaeology. Markers are welcome — but each must point
//! at something trackable: `#123`, `issues/123`, `ISSUE.md`, or a URL.

use crate::findings::Finding;
use crate::source::SourceFile;

/// Rule id.
pub const ID: &str = "todo-issue";

/// Markers that require a reference. Checked case-sensitively: prose
/// like "todo lists" in lowercase is not a marker.
const MARKERS: &[&str] = &["TODO", "FIXME", "XXX", "HACK"];

/// True when `text` contains something trackable.
fn has_reference(text: &str) -> bool {
    let bytes = text.as_bytes();
    let hash_number = text
        .find('#')
        .is_some_and(|i| bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()));
    hash_number || text.contains("issues/") || text.contains("ISSUE") || text.contains("http")
}

/// True when `text` contains `marker` as a standalone word (not embedded
/// in a longer identifier like `XXXL`).
fn has_marker_word(text: &str, marker: &str) -> bool {
    let mut start = 0usize;
    while let Some(i) = text[start..].find(marker) {
        let at = start + i;
        let before_ok = at == 0 || !text.as_bytes()[at - 1].is_ascii_alphanumeric();
        let after = at + marker.len();
        let after_ok = after >= text.len() || !text.as_bytes()[after].is_ascii_alphanumeric();
        if before_ok && after_ok {
            return true;
        }
        start = at + marker.len();
    }
    false
}

/// Check one file. Applies to every file kind — stale markers in tests
/// rot just as fast.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for c in &file.lexed.comments {
        let marked = MARKERS.iter().any(|m| has_marker_word(&c.text, m));
        if marked && !has_reference(&c.text) {
            out.push(Finding::new(
                ID,
                &file.path,
                c.line,
                "to-do marker without an issue reference; add `#<n>`, an \
                 `issues/` link, an ISSUE.md pointer, or a URL",
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn lint(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse(
            "crates/x/src/a.rs",
            src,
            FileKind::Library,
        ))
    }

    #[test]
    fn unreferenced_marker_fails() {
        assert_eq!(lint("// TODO tighten this bound\nfn f() {}\n").len(), 1);
        assert_eq!(lint("/* FIXME: wrong for n = 0 */\nfn f() {}\n").len(), 1);
    }

    #[test]
    fn referenced_markers_pass() {
        assert!(lint("// TODO(#42): tighten this bound\nfn f() {}\n").is_empty());
        assert!(lint("// FIXME: see ISSUE.md satellite 3\nfn f() {}\n").is_empty());
        assert!(lint("// TODO: https://example.com/t/9\nfn f() {}\n").is_empty());
    }

    #[test]
    fn prose_and_embedded_words_pass() {
        assert!(lint("// we keep a todo list elsewhere\nfn f() {}\n").is_empty());
        assert!(lint("// sizes go up to XXXL here\nfn f() {}\n").is_empty());
    }

    #[test]
    fn code_tokens_are_not_comments() {
        assert!(lint("fn f() -> &'static str { \"TODO later\" }\n").is_empty());
    }
}
