//! `todo-issue`: a to-do marker with no issue reference is a liability
//! that ages into archaeology. Markers are welcome — but each must point
//! at something trackable: `#123`, `issues/123`, `ISSUE.md`, a URL, or
//! an owner in the `TODO(name):` attribution form.

use crate::findings::Finding;
use crate::source::SourceFile;

/// Rule id.
pub const ID: &str = "todo-issue";

/// Markers that require a reference. Checked case-sensitively: prose
/// like "todo lists" in lowercase is not a marker.
const MARKERS: &[&str] = &["TODO", "FIXME", "XXX", "HACK"];

/// True when `text` contains something trackable.
fn has_reference(text: &str) -> bool {
    let bytes = text.as_bytes();
    let hash_number = text
        .find('#')
        .is_some_and(|i| bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()));
    hash_number || text.contains("issues/") || text.contains("ISSUE") || text.contains("http")
}

/// Word-boundary occurrences of `marker` in `text` (not embedded in a
/// longer identifier like `XXXL`): the byte offset just past each match.
fn marker_ends(text: &str, marker: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut start = 0usize;
    while let Some(i) = text.get(start..).and_then(|t| t.find(marker)) {
        let at = start + i;
        let end = at + marker.len();
        let before_ok = !at
            .checked_sub(1)
            .and_then(|p| bytes.get(p))
            .is_some_and(|b| b.is_ascii_alphanumeric());
        let after_ok = !bytes.get(end).is_some_and(|b| b.is_ascii_alphanumeric());
        if before_ok && after_ok {
            out.push(end);
        }
        start = end;
    }
    out
}

/// True when the marker occurrence ending at byte `end` is attributed to
/// an owner — the `TODO(name):` form, with a parenthesised identifier
/// directly after the word. An owner is trackable enough to escape the
/// issue-reference requirement.
fn is_attributed(text: &str, end: usize) -> bool {
    let Some(inner) = text.get(end..).and_then(|r| r.strip_prefix('(')) else {
        return false;
    };
    let Some(close) = inner.find(')') else {
        return false;
    };
    let (name, _) = inner.split_at(close);
    !name.is_empty()
        && name
            .chars()
            .all(|ch| ch.is_ascii_alphanumeric() || matches!(ch, '_' | '-' | '.'))
}

/// Check one file. Applies to every file kind — stale markers in tests
/// rot just as fast.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for c in &file.lexed.comments {
        if has_reference(&c.text) {
            continue;
        }
        let bare = MARKERS.iter().any(|m| {
            marker_ends(&c.text, m)
                .into_iter()
                .any(|end| !is_attributed(&c.text, end))
        });
        if bare {
            out.push(Finding::new(
                ID,
                &file.path,
                c.line,
                "to-do marker without an issue reference; add `#<n>`, an \
                 `issues/` link, an ISSUE.md pointer, a URL, or an owner \
                 (`TODO(name):`)",
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn lint(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse(
            "crates/x/src/a.rs",
            src,
            FileKind::Library,
        ))
    }

    #[test]
    fn unreferenced_marker_fails() {
        assert_eq!(lint("// TODO tighten this bound\nfn f() {}\n").len(), 1);
        assert_eq!(lint("/* FIXME: wrong for n = 0 */\nfn f() {}\n").len(), 1);
    }

    #[test]
    fn referenced_markers_pass() {
        assert!(lint("// TODO(#42): tighten this bound\nfn f() {}\n").is_empty());
        assert!(lint("// FIXME: see ISSUE.md satellite 3\nfn f() {}\n").is_empty());
        assert!(lint("// TODO: https://example.com/t/9\nfn f() {}\n").is_empty());
    }

    #[test]
    fn attributed_markers_pass() {
        assert!(lint("// TODO(keogh): revisit the band choice\nfn f() {}\n").is_empty());
        assert!(lint("// FIXME(lint-team): wrong for n = 0\nfn f() {}\n").is_empty());
    }

    #[test]
    fn attribution_requires_a_name() {
        assert_eq!(lint("// TODO(): tighten this bound\nfn f() {}\n").len(), 1);
        assert_eq!(lint("// TODO (keogh): spaced paren\nfn f() {}\n").len(), 1);
    }

    #[test]
    fn prose_and_embedded_words_pass() {
        assert!(lint("// we keep a todo list elsewhere\nfn f() {}\n").is_empty());
        assert!(lint("// sizes go up to XXXL here\nfn f() {}\n").is_empty());
    }

    #[test]
    fn note_is_not_a_marker() {
        assert!(lint("// NOTE: the band interval is half-open\nfn f() {}\n").is_empty());
        assert!(lint("// NOTE this mirrors Figure 12\nfn f() {}\n").is_empty());
    }

    #[test]
    fn code_tokens_are_not_comments() {
        assert!(lint("fn f() -> &'static str { \"TODO later\" }\n").is_empty());
    }
}
