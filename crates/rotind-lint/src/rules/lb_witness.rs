//! `lb-witness`: every function whose name claims to be a lower bound
//! (`lb_*` / `*lower_bound`) must carry a runtime admissibility witness
//! — a `debug_assert!`-family call on its return path — or delegate to
//! another lower-bound function that does, or carry an explicit
//! `// lint: witness-exempt(<reason>)` comment.
//!
//! This is the static half of the paper's Proposition 1/2 discipline
//! (the dynamic half is `lb-coverage`, which demands a soundness test):
//! an admissible bound without a `debug_assert_admissible`-style check
//! can silently over-tighten after a refactor, and an over-tightened
//! bound turns "no false dismissals" into a wrong answer with no crash.
//! The rule runs on the AST, so a witness buried in a nested block or a
//! helper closure still counts, while one mentioned only in a comment
//! or a string does not.

use crate::ast::{walk_exprs, ExprKind, FnDecl, Span};
use crate::findings::Finding;
use crate::rules::lb_coverage::is_lower_bound_name;
use crate::source::{FileKind, SourceFile};

/// Rule id.
pub const ID: &str = "lb-witness";

/// Check one file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    if file.kind != FileKind::Library {
        return Vec::new();
    }
    let mut out = Vec::new();
    crate::ast::walk_fns(&file.ast, &mut |decl, item_span| {
        if let Some(f) = check_fn(file, decl, item_span) {
            out.push(f);
        }
    });
    out
}

fn check_fn(file: &SourceFile, decl: &FnDecl, item_span: Span) -> Option<Finding> {
    if !is_lower_bound_name(&decl.name) || file.is_test_code(decl.name_line) {
        return None;
    }
    // Trait method signatures have no body to witness.
    let body = decl.body.as_ref()?;
    if has_witness(decl) {
        return None;
    }
    // Exemption window: the line above the item (a comment directly on
    // top of the attributes/signature) through the last line of the body.
    let toks = file.tokens();
    let start_line = item_span.line(toks);
    let end_line = toks
        .get(body.span.hi.saturating_sub(1))
        .map_or(start_line, |t| t.line);
    match file.witness_exempt(start_line.saturating_sub(1), end_line) {
        Some((_, reason)) if !reason.is_empty() => None,
        Some((line, _)) => Some(Finding::new(
            ID,
            &file.path,
            line,
            format!(
                "`witness-exempt` on lower-bound fn `{}` has no reason; \
                 write `// lint: witness-exempt(<why this bound needs no \
                 admissibility witness>)`",
                decl.name
            ),
        )),
        None => Some(Finding::new(
            ID,
            &file.path,
            decl.name_line,
            format!(
                "lower-bound fn `{}` has no admissibility witness on its \
                 return path; add a `debug_assert!`-family check that the \
                 bound never exceeds the true distance (Proposition 1/2), \
                 delegate to a witnessed lower bound, or justify with \
                 `// lint: witness-exempt(<reason>)`",
                decl.name
            ),
        )),
    }
}

/// True when the body contains a witness: any `debug_assert*` macro or
/// call, or a delegation to another lower-bound function (which carries
/// its own witness — the rule bottoms out because every chain ends in a
/// function that must satisfy it directly).
pub(crate) fn has_witness(decl: &FnDecl) -> bool {
    let body = decl.body.as_ref();
    let Some(body) = body else { return false };
    let mut found = false;
    walk_exprs(body, &mut |e| match &e.kind {
        ExprKind::Macro { name } if name.starts_with("debug_assert") => found = true,
        ExprKind::Call { callee, .. } => {
            if let ExprKind::Path(segs) = &callee.kind {
                if let Some(last) = segs.last() {
                    if last.starts_with("debug_assert")
                        || (is_lower_bound_name(last) && *last != decl.name)
                    {
                        found = true;
                    }
                }
            }
        }
        ExprKind::MethodCall { name, .. } if is_lower_bound_name(name) => {
            found = true;
        }
        _ => {}
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse(
            "crates/x/src/a.rs",
            src,
            FileKind::Library,
        ))
    }

    #[test]
    fn bound_without_witness_fails() {
        let f = lint("pub fn lb_naked(q: &[f64]) -> f64 { q.iter().sum() }\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("lb_naked"));
    }

    #[test]
    fn debug_assert_macro_witnesses() {
        let f = lint(
            "pub fn lb_ok(q: &[f64], d: f64) -> f64 { let lb = q.iter().sum(); debug_assert!(lb <= d + 1e-6); lb }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn debug_assert_helper_call_witnesses() {
        let f = lint(
            "pub fn lb_ok(q: &[f64], d: f64) -> f64 { let lb = 0.0; debug_assert_admissible(lb, d); lb }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn delegation_to_other_bound_witnesses() {
        let f = lint(
            "pub fn lb_outer(q: &[f64]) -> f64 { lb_inner(q, 0) }\nfn lb_inner(q: &[f64], at: usize) -> f64 { let lb = 0.0; debug_assert!(lb >= 0.0); lb }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn self_recursion_is_not_a_witness() {
        let f = lint("fn lb_rec(n: u32) -> f64 { if n == 0 { 0.0 } else { lb_rec(n - 1) } }\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn cascade_tier_bound_is_a_lower_bound() {
        // A cascade tier function owes a witness like any lb_* fn...
        let bad = lint("fn node_tier_bound(q: &[f64]) -> f64 { q.iter().sum() }\n");
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("node_tier_bound"));
        // ...and delegation to a witnessed kernel satisfies it.
        let ok = lint("fn node_tier_bound(q: &[f64], w: &Wedge) -> f64 { lb_kim(q, w) }\n");
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn exempt_with_reason_passes_empty_reason_fails() {
        let ok = lint(
            "// lint: witness-exempt(pure accessor, returns a precomputed wedge)\npub fn lb_wedge(&self) -> &Wedge { &self.w }\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
        let bad = lint("// lint: witness-exempt()\npub fn lb_bare() -> f64 { 0.0 }\n");
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("no reason"));
    }

    #[test]
    fn test_code_and_non_bound_names_ignored() {
        let f = lint(
            "#[cfg(test)]\nmod t {\n    fn lb_in_test() -> f64 { 0.0 }\n}\nfn distance() -> f64 { 0.0 }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn trait_signature_without_body_ignored() {
        let f = lint("pub trait Bound {\n    fn node_lower_bound(&self) -> f64;\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }
}
