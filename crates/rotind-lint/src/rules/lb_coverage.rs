//! `lb-coverage`: the cross-file rule. Every public lower-bound function
//! (`lb_*` or `*lower_bound`) must be referenced from at least one test
//! (an integration test under `tests/`, a bench, or a `#[cfg(test)]`
//! module anywhere).
//!
//! This is the machine-checked half of the paper's Proposition 1/2
//! discipline: an admissible bound is only trustworthy while a soundness
//! property test exercises it, and this rule makes "added a bound, forgot
//! the proptest" a CI failure rather than a silent false-dismissal risk
//! (cf. the Lemire counterexamples for over-tightened DTW bounds).

use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::source::{FileKind, SourceFile};
use std::collections::HashSet;

/// Rule id.
pub const ID: &str = "lb-coverage";

/// True when a function name claims to be a lower bound (shared with
/// the `lb-witness` rule). `*tier_bound` covers the cascade: a function
/// returning one tier of the bound cascade is a lower bound like any
/// other and owes the same admissibility witness.
pub(crate) fn is_lower_bound_name(name: &str) -> bool {
    name.starts_with("lb_") || name.ends_with("lower_bound") || name.ends_with("tier_bound")
}

/// Check the whole scan unit at once.
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    // Pass 1: every identifier that appears inside test code, anywhere.
    let mut test_idents: HashSet<&str> = HashSet::new();
    for file in files {
        for t in file.tokens() {
            if t.kind == TokKind::Ident && file.is_test_code(t.line) {
                test_idents.insert(&t.text);
            }
        }
    }
    // Pass 2: public lower-bound definitions in library code.
    let mut out = Vec::new();
    for file in files {
        if file.kind != FileKind::Library {
            continue;
        }
        let toks = file.tokens();
        for (i, t) in toks.iter().enumerate() {
            if t.text != "fn" || file.is_test_code(t.line) {
                continue;
            }
            let Some(name_tok) = toks.get(i + 1) else {
                continue;
            };
            if name_tok.kind != TokKind::Ident || !is_lower_bound_name(&name_tok.text) {
                continue;
            }
            // Walk back over fn qualifiers to the visibility; only plain
            // `pub` is API surface (`pub(crate)` is internal).
            let mut k = i;
            while k > 0 && matches!(toks[k - 1].text.as_str(), "const" | "async" | "unsafe") {
                k -= 1;
            }
            let is_pub = k > 0 && toks[k - 1].text == "pub";
            if !is_pub {
                continue;
            }
            if !test_idents.contains(name_tok.text.as_str()) {
                out.push(uncovered(file, &name_tok.text, name_tok.line));
            }
        }
        // Pass 3: default bodies of plain-`pub` traits. Their `fn` has
        // no `pub` token of its own — the trait's visibility is the
        // method's — so the token walk above cannot see them.
        trait_default_bounds(&file.ast.items, false, &mut |name, line| {
            if !file.is_test_code(line) && !test_idents.contains(name) {
                out.push(uncovered(file, name, line));
            }
        });
    }
    out
}

fn uncovered(file: &SourceFile, name: &str, line: usize) -> Finding {
    Finding::new(
        ID,
        &file.path,
        line,
        format!(
            "public lower-bound fn `{name}` is not referenced by any \
             test; add a soundness property test asserting \
             `lb <= true_distance + EPS` (Proposition 1/2)"
        ),
    )
}

/// Visit every lower-bound fn *with a body* defined inside a plain-`pub`
/// trait (default methods inherit the trait's visibility).
fn trait_default_bounds(
    items: &[crate::ast::Item],
    in_pub_trait: bool,
    f: &mut impl FnMut(&str, usize),
) {
    use crate::ast::ItemKind;
    for item in items {
        match &item.kind {
            ItemKind::Fn(decl) => {
                if in_pub_trait && decl.body.is_some() && is_lower_bound_name(&decl.name) {
                    f(&decl.name, decl.name_line);
                }
            }
            ItemKind::Mod(inner) => trait_default_bounds(inner, false, f),
            ItemKind::Impl(decl) => trait_default_bounds(&decl.items, false, f),
            ItemKind::Trait(decl) => trait_default_bounds(&decl.items, decl.is_pub, f),
            ItemKind::Enum(_) | ItemKind::Other => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/a.rs", src, FileKind::Library)
    }

    #[test]
    fn uncovered_public_bound_fails() {
        let files = vec![lib("pub fn lb_orphan(q: &[f64]) -> f64 { 0.0 }\n")];
        let f = check(&files);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("lb_orphan"));
    }

    #[test]
    fn reference_from_integration_test_passes() {
        let files = vec![
            lib("pub fn lb_covered(q: &[f64]) -> f64 { 0.0 }\n"),
            SourceFile::parse(
                "tests/bounds.rs",
                "fn t() { let _ = lb_covered(&[]); }\n",
                FileKind::Test,
            ),
        ];
        assert!(check(&files).is_empty());
    }

    #[test]
    fn reference_from_cfg_test_module_passes() {
        let files = vec![lib(
            "pub fn paa_lower_bound(q: &[f64]) -> f64 { 0.0 }\n#[cfg(test)]\nmod t {\n    fn z() { let _ = super::paa_lower_bound(&[]); }\n}\n",
        )];
        assert!(check(&files).is_empty());
    }

    #[test]
    fn private_and_non_bound_fns_are_ignored() {
        let files = vec![lib(
            "fn lb_internal() {}\npub(crate) fn lb_scoped() {}\npub fn distance() -> f64 { 0.0 }\n",
        )];
        assert!(check(&files).is_empty());
    }

    #[test]
    fn const_fn_visibility_is_seen_through() {
        let files = vec![lib("pub const fn lb_const() -> f64 { 0.0 }\n")];
        assert_eq!(check(&files).len(), 1);
    }

    #[test]
    fn trait_default_bound_in_pub_trait_needs_coverage() {
        let files = vec![lib(
            "pub trait Bound {\n    fn lb_default(&self) -> f64 { 0.0 }\n}\n",
        )];
        let f = check(&files);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("lb_default"));
        // A test referencing the method by name covers it.
        let files = vec![
            lib("pub trait Bound {\n    fn lb_default(&self) -> f64 { 0.0 }\n}\n"),
            SourceFile::parse(
                "tests/bounds.rs",
                "fn t(b: &dyn Bound) { let _ = b.lb_default(); }\n",
                FileKind::Test,
            ),
        ];
        assert!(check(&files).is_empty());
    }

    #[test]
    fn private_trait_defaults_and_signatures_are_exempt() {
        let files = vec![lib(
            "trait Internal {\n    fn lb_sig(&self) -> f64;\n    fn lb_hidden(&self) -> f64 { 0.0 }\n}\npub(crate) trait Scoped {\n    fn lb_scoped(&self) -> f64 { 0.0 }\n}\npub trait Api {\n    fn lb_abstract(&self) -> f64;\n}\n",
        )];
        assert!(check(&files).is_empty(), "{:?}", check(&files));
    }

    #[test]
    fn tier_bound_suffix_claims_a_lower_bound() {
        assert!(is_lower_bound_name("node_tier_bound"));
        assert!(!is_lower_bound_name("tier_boundary"));
        let files = vec![lib("pub fn wedge_tier_bound(q: &[f64]) -> f64 { 0.0 }\n")];
        let f = check(&files);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("wedge_tier_bound"));
    }
}
