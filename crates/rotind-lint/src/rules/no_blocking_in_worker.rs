//! `no-blocking-in-worker`: the static complement of the loom
//! interleaving model (DESIGN.md §14) — nothing reachable from the
//! worker hot loop may block outside the explicit admission/reply
//! allowlist.
//!
//! The worker loop's *designed* blocking points — taking the admission
//! queue lock, the idle `recv` wait, the metrics mutex, the reply
//! `send` — each carry a site-level
//! `// lint: blocking-allowed(reason)` comment. Anything else that
//! blocks (a mutex two calls down, a surprise file read, a
//! `thread::sleep`) turns a bounded-latency worker into an unbounded
//! one and is flagged with the composed call chain from the loop to
//! the blocking site.

use crate::effects::{reach_forest_excluding, witness_path, EffectAnalysis, RootSet};
use crate::findings::Finding;
use crate::interproc::Workspace;
use crate::source::FileKind;

/// Rule id.
pub const ID: &str = "no-blocking-in-worker";

/// Check the analyzed workspace against the configured worker roots.
pub fn check(
    ws: &Workspace<'_>,
    effects: &EffectAnalysis,
    files: &[crate::source::SourceFile],
    roots: &RootSet,
) -> Vec<Finding> {
    let nodes = &ws.graph.index.nodes;
    let root_ids: Vec<usize> = nodes
        .iter()
        .filter(|n| {
            !n.is_test
                && roots.worker_roots.iter().any(|r| r == &n.decl.name)
                && files
                    .get(n.file)
                    .is_some_and(|f| f.kind == FileKind::Library)
        })
        .map(|n| n.id)
        .collect();
    if root_ids.is_empty() {
        return Vec::new();
    }
    let excluded = roots.excluded_nodes(&ws.graph);
    let forest = reach_forest_excluding(&ws.graph, &root_ids, &excluded);
    let mut out = Vec::new();
    for node in nodes {
        if !forest.reached.get(node.id).copied().unwrap_or(false) || node.is_test {
            continue;
        }
        let Some(file) = files.get(node.file) else {
            continue;
        };
        if file.kind != FileKind::Library {
            continue;
        }
        let Some(fx) = effects.fns.get(node.id) else {
            continue;
        };
        for site in &fx.block_sites {
            match file.blocking_allowed(site.line) {
                Some((_, reason)) if !reason.is_empty() => continue,
                Some((line, _)) => {
                    out.push(Finding::new(
                        ID,
                        &file.path,
                        line,
                        format!(
                            "`// lint: blocking-allowed()` in `{}` carries no reason; \
                             every entry on the worker's blocking allowlist must say \
                             why the wait is bounded or intended",
                            node.decl.name
                        ),
                    ));
                    continue;
                }
                None => {}
            }
            let root_name = forest
                .via_root
                .get(node.id)
                .copied()
                .flatten()
                .and_then(|r| nodes.get(r))
                .map_or("?", |n| n.decl.name.as_str())
                .to_string();
            out.push(
                Finding::new(
                    ID,
                    &file.path,
                    site.line,
                    format!(
                        "`{}` is reachable from worker loop `{root_name}` and {}; an \
                         un-allowlisted wait makes worker latency unbounded — use a \
                         try_/bounded variant, move the work off the hot loop, or \
                         justify with `// lint: blocking-allowed(…)` on the site",
                        node.decl.name, site.what
                    ),
                )
                .with_witness(witness_path(&ws.graph, files, &forest, node.id, site)),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects;
    use crate::interproc::analyze;
    use crate::source::SourceFile;

    fn run(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(p, s)| SourceFile::parse(p, s, crate::source::kind_for_path(p)))
            .collect();
        let ws = analyze(&files);
        let fx = effects::analyze(&ws.graph, &files);
        check(&ws, &fx, &files, &RootSet::serve_default())
    }

    #[test]
    fn lock_two_calls_below_the_loop_is_flagged() {
        let f = run(&[
            (
                "crates/rotind-serve/src/server.rs",
                "pub fn worker_loop(s: &Shared) { run_job(s); }\nfn run_job(s: &Shared) { observe(s); }\n",
            ),
            (
                "crates/rotind-serve/src/obs.rs",
                "pub fn observe(s: &Shared) { let _g = s.metrics.lock(); }\n",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("observe"));
        assert!(f[0].message.contains("worker_loop"));
        assert!(f[0].witness.len() >= 3, "{:?}", f[0].witness);
        let step_files: std::collections::HashSet<&str> =
            f[0].witness.iter().map(|s| s.path.as_str()).collect();
        assert!(
            step_files.len() >= 2,
            "multi-file witness: {:?}",
            f[0].witness
        );
    }

    #[test]
    fn allowlisted_admission_sites_pass() {
        let f = run(&[(
            "crates/rotind-serve/src/server.rs",
            "pub fn worker_loop(rx: &Mutex<Receiver<Job>>) {\n    // lint: blocking-allowed(admission queue handoff, bounded by try_send at enqueue)\n    let guard = rx.lock();\n    // lint: blocking-allowed(idle wait for work is the designed parking point)\n    let _job = guard.recv();\n}\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn bare_allowlist_entry_is_its_own_finding() {
        let f = run(&[(
            "crates/rotind-serve/src/server.rs",
            "pub fn worker_loop(rx: &Mutex<Receiver<Job>>) {\n    // lint: blocking-allowed()\n    let guard = rx.lock();\n}\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("no reason"), "{}", f[0].message);
    }

    #[test]
    fn allowlist_is_per_site_not_per_fn() {
        let f = run(&[(
            "crates/rotind-serve/src/server.rs",
            "pub fn worker_loop(rx: &Mutex<Receiver<Job>>, m: &Mutex<u64>) {\n    // lint: blocking-allowed(admission queue handoff)\n    let guard = rx.lock();\n    let _x = m.lock();\n}\n",
        )]);
        assert_eq!(f.len(), 1, "second lock is not covered: {f:?}");
    }

    #[test]
    fn blocking_outside_the_worker_is_fine() {
        let f = run(&[(
            "crates/rotind-serve/src/server.rs",
            "pub fn acceptor(l: &TcpListener) { let _ = l.accept(); }\npub fn worker_loop(v: &[f64]) -> f64 { v.iter().sum() }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }
}
