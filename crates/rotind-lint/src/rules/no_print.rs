//! `no-print`: library crates must not write to stdout/stderr directly.
//! The observability layer (`rotind-obs`) exists so that every byte of
//! telemetry goes through one neutral, overhead-audited interface; a
//! stray `println!` in a hot loop bypasses the observer contract, garbles
//! machine-readable output (the `trace` binary emits CSV on stdout), and
//! is invisible to the metrics registry. Binaries and the bench harness
//! print freely — they *are* the operator interface.

use crate::findings::Finding;
use crate::source::{FileKind, SourceFile};

/// Rule id.
pub const ID: &str = "no-print";

/// Print-family macros.
const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// Check one file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    if file.kind != FileKind::Library {
        return Vec::new();
    }
    let toks = file.tokens();
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if file.is_test_code(t.line) {
            continue;
        }
        let next = toks.get(i + 1).map(|n| n.text.as_str());
        if PRINT_MACROS.contains(&t.text.as_str()) && next == Some("!") {
            out.push(Finding::new(
                ID,
                &file.path,
                t.line,
                format!(
                    "`{}!` in a library crate bypasses the rotind-obs observer \
                     contract; emit through a SearchObserver / MetricsRegistry, \
                     or move the printing into a binary",
                    t.text
                ),
            ));
        }
        // `io::stdout()` / `io::stderr()` handles grabbed inside a library.
        if (t.text == "stdout" || t.text == "stderr")
            && next == Some("(")
            && i.checked_sub(1).is_some_and(|p| toks[p].text == "::")
        {
            out.push(Finding::new(
                ID,
                &file.path,
                t.line,
                format!(
                    "direct `{}()` handle in a library crate; take a \
                     `&mut dyn Write` from the caller instead",
                    t.text
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse(
            "crates/x/src/a.rs",
            src,
            FileKind::Library,
        ))
    }

    #[test]
    fn flags_print_macros_and_stdout_handles() {
        let f = lint("fn f() {\n    println!(\"x\");\n    eprintln!(\"y\");\n    let _h = std::io::stdout();\n}\n");
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn binaries_and_tests_are_exempt() {
        let b = SourceFile::parse(
            "crates/x/src/bin/tool.rs",
            "fn main() { println!(\"ok\"); }",
            FileKind::Binary,
        );
        assert!(check(&b).is_empty());
        let f = lint("#[cfg(test)]\nmod t {\n    fn g() { println!(\"dbg\"); }\n}\n");
        assert!(f.is_empty());
    }

    #[test]
    fn writeln_to_a_caller_writer_is_fine() {
        let f =
            lint("use std::fmt::Write;\nfn f(w: &mut String) { let _ = writeln!(w, \"x\"); }\n");
        assert!(f.is_empty());
    }
}
