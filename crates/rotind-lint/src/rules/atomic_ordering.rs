//! `atomic-ordering`: the parallel scan's shared best-so-far radius is
//! only correct because dismissals read it with `Acquire` and tighten
//! it with `AcqRel` CAS (DESIGN.md §10). A `Relaxed` load feeding a
//! dismissal comparison can observe a stale (larger) radius — harmless
//! for exactness but silently degrading pruning — or, worse, a future
//! refactor could invert the dependency and dismiss on a radius another
//! thread has not yet published. A `Relaxed` CAS on the radius breaks
//! the happens-before edge between the thread that found a tighter
//! bound and the threads pruning against it.
//!
//! Two findings, both requiring the dataflow walk:
//!
//! * a `.load(Ordering::Relaxed)` whose value reaches a comparison —
//!   inline or through a `let` binding;
//! * any CAS-family call (`compare_exchange[_weak]`, `fetch_update`,
//!   `fetch_min`, `fetch_max`) with a `Relaxed` ordering argument.
//!
//! Pure counters are out of scope: `fetch_add`/`store` with `Relaxed`
//! stay legal (the `counter-arith` rule owns counter hygiene).

use crate::ast::walk_exprs;
use crate::dataflow;
use crate::findings::Finding;
use crate::source::{FileKind, SourceFile};

/// Rule id.
pub const ID: &str = "atomic-ordering";

/// Check one file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    if file.kind != FileKind::Library {
        return Vec::new();
    }
    let toks = file.tokens();
    let mut out = Vec::new();
    crate::ast::walk_fns(&file.ast, &mut |decl, _| {
        let Some(body) = &decl.body else { return };
        if file.is_test_code(decl.name_line) {
            return;
        }
        for hit in dataflow::relaxed_loads_feeding_compares(body, toks) {
            if file.is_test_code(hit.line) {
                continue;
            }
            let via = match &hit.via {
                Some(name) => format!(" (via `let {name} = …`)"),
                None => String::new(),
            };
            out.push(Finding::new(
                ID,
                &file.path,
                hit.line,
                format!(
                    "`load(Ordering::Relaxed)` feeds a comparison{via}; a \
                     dismissal decision must read the shared radius with \
                     `Ordering::Acquire` to observe every published \
                     tightening (DESIGN.md §10)"
                ),
            ));
        }
        walk_exprs(body, &mut |e| {
            if let Some(method) = dataflow::is_relaxed_cas(e) {
                let line = e.span.line(toks);
                if !file.is_test_code(line) {
                    out.push(Finding::new(
                        ID,
                        &file.path,
                        line,
                        format!(
                            "`{method}` with `Ordering::Relaxed` breaks the \
                             happens-before edge on the shared radius; use \
                             `AcqRel` on success and `Acquire` on failure"
                        ),
                    ));
                }
            }
        });
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse(
            "crates/x/src/a.rs",
            src,
            FileKind::Library,
        ))
    }

    #[test]
    fn relaxed_load_into_comparison_fails() {
        let f = lint(
            "fn prune(radius: &AtomicU64, lb: f64) -> bool {\n    let r = f64::from_bits(radius.load(Ordering::Relaxed));\n    lb > f64::from_bits(radius.load(Ordering::Relaxed))\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn relaxed_load_via_binding_fails() {
        let f = lint(
            "fn prune(radius: &AtomicU64, lb: u64) -> bool {\n    let bits = radius.load(Ordering::Relaxed);\n    lb >= bits\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("via `let bits"));
    }

    #[test]
    fn acquire_load_passes() {
        let f = lint(
            "fn prune(radius: &AtomicU64, lb: u64) -> bool {\n    let bits = radius.load(Ordering::Acquire);\n    lb >= bits\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn relaxed_cas_fails_acqrel_passes() {
        let bad = lint(
            "fn tighten(radius: &AtomicU64, new: u64) {\n    let _ = radius.compare_exchange_weak(0, new, Ordering::Relaxed, Ordering::Relaxed);\n}\n",
        );
        assert_eq!(bad.len(), 1);
        let good = lint(
            "fn tighten(radius: &AtomicU64, new: u64) {\n    let _ = radius.compare_exchange_weak(0, new, Ordering::AcqRel, Ordering::Acquire);\n}\n",
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn relaxed_counters_stay_legal() {
        let f = lint(
            "fn bump(generation: &AtomicU64) {\n    generation.fetch_add(1, Ordering::Relaxed);\n    generation.store(0, Ordering::Relaxed);\n    let _snapshot = generation.load(Ordering::Relaxed);\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let f = lint(
            "#[cfg(test)]\nmod t {\n    fn probe(a: &AtomicU64) -> bool { a.load(Ordering::Relaxed) > 0 }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
