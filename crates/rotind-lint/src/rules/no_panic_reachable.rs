//! `no-panic-reachable`: interprocedural panic-freedom for the serve
//! entry set.
//!
//! The per-file `no-panic` / `no-index` rules are lexical and ratcheted
//! — pre-existing findings are tolerated. This rule is the
//! availability *certificate*: every function reachable from a serve
//! root (the worker loop, the wire codec, the snapshot query dispatch,
//! the budgeted parallel scans) with an intrinsic may-panic site must
//! either lose the site or carry a reasoned
//! `// lint: panic-exempt(reason)` — zero unexempted findings is the
//! shipping bar, so a new `unwrap` wired anywhere under the serve roots
//! fails CI with a composed root→site witness path (a SARIF
//! `codeFlow`), even when the panic is laundered through helpers in
//! another crate.

use crate::effects::{reach_forest_excluding, witness_path, EffectAnalysis, RootSet};
use crate::findings::Finding;
use crate::interproc::Workspace;
use crate::source::{FileKind, SourceFile};

/// Rule id.
pub const ID: &str = "no-panic-reachable";

/// Check the analyzed workspace against the configured root set.
pub fn check(
    ws: &Workspace<'_>,
    effects: &EffectAnalysis,
    files: &[SourceFile],
    roots: &RootSet,
) -> Vec<Finding> {
    let nodes = &ws.graph.index.nodes;
    let root_ids: Vec<usize> = nodes
        .iter()
        .filter(|n| {
            !n.is_test
                && roots.panic_roots.iter().any(|r| r == &n.decl.name)
                && files
                    .get(n.file)
                    .is_some_and(|f| f.kind == FileKind::Library)
        })
        .map(|n| n.id)
        .collect();
    if root_ids.is_empty() {
        return Vec::new();
    }
    let excluded = roots.excluded_nodes(&ws.graph);
    let forest = reach_forest_excluding(&ws.graph, &root_ids, &excluded);
    let mut out = Vec::new();
    for node in nodes {
        if !forest.reached.get(node.id).copied().unwrap_or(false) || node.is_test {
            continue;
        }
        let Some(file) = files.get(node.file) else {
            continue;
        };
        if file.kind != FileKind::Library {
            continue;
        }
        let Some(site) = effects.fns.get(node.id).and_then(|f| f.panic_site.as_ref()) else {
            continue;
        };
        match super::exemption_window(file, node, SourceFile::panic_exempt) {
            Some((_, reason)) if !reason.is_empty() => continue,
            Some((line, _)) => {
                out.push(Finding::new(
                    ID,
                    &file.path,
                    line,
                    format!(
                        "`// lint: panic-exempt()` on `{}` carries no reason; every \
                         exemption from the serve panic certificate must say why the \
                         panic cannot fire",
                        node.decl.name
                    ),
                ));
                continue;
            }
            None => {}
        }
        let root_name = forest
            .via_root
            .get(node.id)
            .copied()
            .flatten()
            .and_then(|r| nodes.get(r))
            .map_or("?", |n| n.decl.name.as_str())
            .to_string();
        out.push(
            Finding::new(
                ID,
                &file.path,
                site.line,
                format!(
                    "`{}` is reachable from serve root `{root_name}` and {}; a panic \
                     here kills a worker serving live queries — return a typed error, \
                     bound the access, or justify with `// lint: panic-exempt(…)`",
                    node.decl.name, site.what
                ),
            )
            .with_witness(witness_path(&ws.graph, files, &forest, node.id, site)),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects;
    use crate::interproc::analyze;

    fn run(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(p, s)| SourceFile::parse(p, s, crate::source::kind_for_path(p)))
            .collect();
        let ws = analyze(&files);
        let fx = effects::analyze(&ws.graph, &files);
        check(&ws, &fx, &files, &RootSet::serve_default())
    }

    #[test]
    fn cross_crate_laundered_panic_is_flagged_with_witness() {
        let f = run(&[
            (
                "crates/rotind-serve/src/server.rs",
                "pub fn worker_loop(v: &[f64]) -> f64 { estimate(v) }\n",
            ),
            (
                "crates/rotind-index/src/helper.rs",
                "pub fn estimate(v: &[f64]) -> f64 { kernel(v) }\npub fn kernel(v: &[f64]) -> f64 { v[0] }\n",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("kernel"));
        assert!(f[0].message.contains("worker_loop"));
        assert_eq!(f[0].path, "crates/rotind-index/src/helper.rs");
        assert!(f[0].witness.len() >= 3, "{:?}", f[0].witness);
        let step_files: std::collections::HashSet<&str> =
            f[0].witness.iter().map(|s| s.path.as_str()).collect();
        assert!(
            step_files.len() >= 2,
            "multi-file witness: {:?}",
            f[0].witness
        );
    }

    #[test]
    fn reasoned_exemption_certifies_clean() {
        let f = run(&[(
            "crates/rotind-serve/src/server.rs",
            "pub fn worker_loop(v: &[f64]) -> f64 { kernel(v) }\n// lint: panic-exempt(i ranges over 0..v.len(), in bounds by construction)\nfn kernel(v: &[f64]) -> f64 { v[0] }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn bare_exemption_is_its_own_finding() {
        let f = run(&[(
            "crates/rotind-serve/src/server.rs",
            "pub fn worker_loop(v: &[f64]) -> f64 { kernel(v) }\n// lint: panic-exempt()\nfn kernel(v: &[f64]) -> f64 { v[0] }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("no reason"), "{}", f[0].message);
    }

    #[test]
    fn unreachable_panics_are_not_this_rules_problem() {
        let f = run(&[(
            "crates/rotind-serve/src/server.rs",
            "pub fn worker_loop(v: &[f64]) -> f64 { v.iter().sum() }\nfn island(v: &[f64]) -> f64 { v[0] }\n",
        )]);
        assert!(f.is_empty(), "lexical no-index owns islands: {f:?}");
    }

    #[test]
    fn no_roots_means_no_findings() {
        let f = run(&[(
            "crates/rotind-index/src/x.rs",
            "pub fn helper(v: &[f64]) -> f64 { v[0] }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_roots_do_not_root_the_obligation() {
        let f = run(&[(
            "crates/rotind-serve/src/server.rs",
            "#[cfg(test)]\nmod tests {\n    fn worker_loop(v: &[f64]) -> f64 { crate::kern(v) }\n}\npub fn kern(v: &[f64]) -> f64 { v[0] }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }
}
