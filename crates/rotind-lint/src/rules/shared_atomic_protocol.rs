//! `shared-atomic-protocol`: the interprocedural extension of
//! `atomic-ordering`. The blessed protocol for the shared best-so-far
//! radius and `SharedBudget` is
//!
//! > `load(Acquire)` to read → compare → `compare_exchange_weak(_, _,
//! > AcqRel, Acquire)` to publish,
//!
//! and `atomic-ordering` enforces it *within* a function. This rule
//! closes the helper-function loophole: a getter that returns a
//! `Relaxed`-loaded value launders the weak ordering past the
//! intraprocedural check, and a CAS cycle seeded by such a value can
//! spin on a stale radius — dismissals decided against it are made with
//! a value another thread may already have tightened, which is how a
//! "parallel scan is bit-identical to sequential" guarantee quietly
//! dies. Findings carry the witness path through the helper chain.

use crate::findings::Finding;
use crate::interproc::{ViolationKind, Workspace};
use crate::source::{FileKind, SourceFile};

/// Rule id.
pub const ID: &str = "shared-atomic-protocol";

/// Check the analyzed workspace.
pub fn check(ws: &Workspace<'_>, files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for v in &ws.violations {
        let Some(node) = ws.graph.index.nodes.get(v.fn_id) else {
            continue;
        };
        let Some(file) = files.get(node.file) else {
            continue;
        };
        if file.kind != FileKind::Library || node.is_test {
            continue;
        }
        let message = match v.kind {
            ViolationKind::RelaxedCompareViaCall => format!(
                "comparison in `{}` is fed by a helper returning a \
                 `Relaxed`-loaded value; the shared-radius protocol requires \
                 `load(Acquire)` before any compare — strengthen the load in \
                 the helper or stop comparing its result",
                node.decl.name
            ),
            ViolationKind::RelaxedSeededCas => format!(
                "`{}` cycle in `{}` is seeded by a `Relaxed` read; the \
                 blessed pattern is `load(Acquire)` → compare → \
                 `compare_exchange_weak(_, _, AcqRel, Acquire)` — a \
                 Relaxed-seeded cycle can spin on a stale radius",
                v.detail, node.decl.name
            ),
            ViolationKind::BoundReturned | ViolationKind::BoundToBest => continue,
        };
        out.push(Finding::new(ID, &file.path, v.line, message).with_witness(v.witness.clone()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interproc::analyze;

    fn run(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(p, s)| SourceFile::parse(p, s, crate::source::kind_for_path(p)))
            .collect();
        let ws = analyze(&files);
        check(&ws, &files)
    }

    #[test]
    fn relaxed_getter_feeding_compare_across_files_is_flagged() {
        let f = run(&[
            (
                "crates/rotind-index/src/parallel.rs",
                "impl SharedRadius { pub fn get(&self) -> f64 { f64::from_bits(self.bits.load(Ordering::Relaxed)) } }\n",
            ),
            (
                "crates/rotind-index/src/scan.rs",
                "pub fn should_prune(r: &SharedRadius, lb: f64) -> bool { lb > r.get() }\n",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].path, "crates/rotind-index/src/scan.rs");
        assert!(
            f[0].witness
                .iter()
                .any(|w| w.path == "crates/rotind-index/src/parallel.rs"),
            "witness reaches back into the helper: {:?}",
            f[0].witness
        );
    }

    #[test]
    fn acquire_getter_is_clean() {
        let f = run(&[
            (
                "crates/rotind-index/src/parallel.rs",
                "impl SharedRadius { pub fn get(&self) -> f64 { f64::from_bits(self.bits.load(Ordering::Acquire)) } }\n",
            ),
            (
                "crates/rotind-index/src/scan.rs",
                "pub fn should_prune(r: &SharedRadius, lb: f64) -> bool { lb > r.get() }\n",
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn relaxed_seeded_cas_cycle_is_flagged() {
        let f = run(&[(
            "crates/rotind-index/src/parallel.rs",
            "pub fn tighten(bits: &AtomicU64, new: u64) { let cur = bits.load(Ordering::Relaxed); let _ = bits.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Acquire); }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("compare_exchange_weak"));
    }

    #[test]
    fn blessed_cas_cycle_is_clean() {
        let f = run(&[(
            "crates/rotind-index/src/parallel.rs",
            "pub fn tighten(bits: &AtomicU64, new: u64) { let cur = bits.load(Ordering::Acquire); let _ = bits.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Acquire); }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let f = run(&[(
            "crates/rotind-index/src/parallel.rs",
            "#[cfg(test)]\nmod t {\n    fn probe(a: &AtomicU64, r: u64) -> bool { helper(a) < r }\n    fn helper(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }\n}\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }
}
