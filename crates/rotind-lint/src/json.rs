//! A deliberately minimal JSON subset — just enough to round-trip the
//! baseline file and emit reports, keeping the linter zero-dependency.
//!
//! Supported values: objects, strings and unsigned integers (the baseline
//! schema uses nothing else). Arrays/floats/bools would be easy to add
//! but are intentionally absent: a smaller grammar is a smaller audit
//! surface for a tool that gates CI.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (baseline subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// String.
    Str(String),
    /// Unsigned integer.
    Int(u64),
    /// Object with deterministic (sorted) iteration order.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The integer, if this is an integer.
    pub fn as_int(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }
}

/// Escape a string for JSON output (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse a JSON document (baseline subset). Returns a readable error on
/// malformed input — a corrupt baseline must fail loudly, not silently
/// pass the gate.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), b' ' | b'\t' | b'\n' | b'\r') {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.pos,
                self.peek() as char
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            b'{' => self.object(),
            b'"' => Ok(Value::Str(self.string()?)),
            b'0'..=b'9' => self.integer(),
            other => Err(format!(
                "unsupported JSON at byte {} (starts with `{}`); the baseline subset allows objects, strings and unsigned integers",
                self.pos, other as char
            )),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                b',' => {
                    self.pos += 1;
                }
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                0 => return Err("unterminated string".to_string()),
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek();
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .src
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Copy one UTF-8 scalar (multi-byte safe).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.src.len() && (self.src[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(&String::from_utf8_lossy(&self.src[start..self.pos]));
                }
            }
        }
    }

    fn integer(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self.peek().is_ascii_digit() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<u64>()
            .map(Value::Int)
            .map_err(|e| format!("bad integer `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_baseline_shape() {
        let src = r#"{ "version": 1, "rules": { "no-panic": { "a.rs": 3 } } }"#;
        let v = parse(src).unwrap();
        let rules = v.as_obj().unwrap()["rules"].as_obj().unwrap();
        assert_eq!(
            rules["no-panic"].as_obj().unwrap()["a.rs"].as_int(),
            Some(3)
        );
    }

    #[test]
    fn rejects_trailing_garbage_and_unknown_forms() {
        assert!(parse("{} extra").is_err());
        assert!(parse("[1, 2]").is_err());
        assert!(parse("{\"a\": -1}").is_err());
    }

    #[test]
    fn escape_and_parse_are_inverse() {
        let original = "quote \" backslash \\ newline \n tab \t";
        let v = parse(&escape(original)).unwrap();
        assert_eq!(v, Value::Str(original.to_string()));
    }

    #[test]
    fn empty_object() {
        assert_eq!(parse("{}").unwrap(), Value::Obj(BTreeMap::new()));
    }
}
