//! SARIF 2.1.0 output — the interchange format CI hosts ingest for
//! code-scanning annotations.
//!
//! The emitter is deliberately minimal: one run, the full rule catalogue
//! under `tool.driver.rules` (so hosts can show rule metadata even for
//! rules with no findings), and one `result` per finding with a
//! `physicalLocation` carrying the workspace-relative path and line.
//! Findings from the interprocedural rules additionally carry their
//! witness path as a SARIF `codeFlow` (one `threadFlow`, one location
//! per step), so code-scanning UIs render the source-to-sink chain
//! across files. Everything is hand-serialised through
//! [`crate::json::escape`]; the linter stays zero-dependency.

use crate::findings::Finding;
use crate::json::escape;
use crate::rules::ALL_RULES;
use std::fmt::Write as _;

/// SARIF spec version emitted.
pub const SARIF_VERSION: &str = "2.1.0";

/// Render findings as a SARIF 2.1.0 log (single run, trailing newline).
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    let _ = writeln!(out, "  \"version\": {},", escape(SARIF_VERSION));
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"rotind-lint\",\n");
    out.push_str("          \"rules\": [\n");
    let n_rules = ALL_RULES.len();
    for (i, rule) in ALL_RULES.iter().enumerate() {
        let _ = write!(
            out,
            "            {{ \"id\": {}, \"shortDescription\": {{ \"text\": {} }} }}",
            escape(rule.id),
            escape(rule.summary)
        );
        out.push_str(if i + 1 < n_rules { ",\n" } else { "\n" });
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    let n = findings.len();
    for (i, f) in findings.iter().enumerate() {
        let rule_index = ALL_RULES.iter().position(|r| r.id == f.rule);
        out.push_str("        {\n");
        let _ = writeln!(out, "          \"ruleId\": {},", escape(f.rule));
        if let Some(idx) = rule_index {
            let _ = writeln!(out, "          \"ruleIndex\": {idx},");
        }
        out.push_str("          \"level\": \"error\",\n");
        let _ = writeln!(
            out,
            "          \"message\": {{ \"text\": {} }},",
            escape(&f.message)
        );
        if !f.witness.is_empty() {
            out.push_str("          \"codeFlows\": [ { \"threadFlows\": [ { \"locations\": [\n");
            let n_steps = f.witness.len();
            for (wi, w) in f.witness.iter().enumerate() {
                let _ = write!(
                    out,
                    "            {{ \"location\": {{ \"physicalLocation\": {{ \
                     \"artifactLocation\": {{ \"uri\": {} }}, \
                     \"region\": {{ \"startLine\": {} }} }}, \
                     \"message\": {{ \"text\": {} }} }} }}",
                    escape(&w.path),
                    w.line.max(1),
                    escape(&w.note)
                );
                out.push_str(if wi + 1 < n_steps { ",\n" } else { "\n" });
            }
            out.push_str("          ] } ] } ],\n");
        }
        let _ = writeln!(
            out,
            "          \"locations\": [ {{ \"physicalLocation\": {{ \
             \"artifactLocation\": {{ \"uri\": {} }}, \
             \"region\": {{ \"startLine\": {} }} }} }} ]",
            escape(&f.path),
            f.line.max(1)
        );
        out.push_str("        }");
        out.push_str(if i + 1 < n { ",\n" } else { "\n" });
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_log_still_carries_the_rule_catalogue() {
        let s = render(&[]);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"rotind-lint\""));
        for rule in ALL_RULES {
            assert!(s.contains(&escape(rule.id)), "missing rule {}", rule.id);
        }
        assert!(s.contains("\"results\": [\n      ]"), "empty results array");
    }

    #[test]
    fn findings_become_results_with_locations() {
        let f = Finding::new("no-panic", "crates/a/src/lib.rs", 7, "don't");
        let s = render(&[f]);
        assert!(s.contains("\"ruleId\": \"no-panic\""));
        assert!(s.contains("\"uri\": \"crates/a/src/lib.rs\""));
        assert!(s.contains("\"startLine\": 7"));
        assert!(s.contains("\"ruleIndex\": 0"), "no-panic is rule 0:\n{s}");
    }

    #[test]
    fn witness_paths_become_code_flows() {
        use crate::findings::WitnessStep;
        let f = Finding::new("prune-only", "crates/b/src/scan.rs", 9, "bound leaked").with_witness(
            vec![
                WitnessStep {
                    path: "crates/a/src/bounds.rs".into(),
                    line: 3,
                    note: "lower-bound value produced by `lb_kim`".into(),
                },
                WitnessStep {
                    path: "crates/b/src/scan.rs".into(),
                    line: 9,
                    note: "returned".into(),
                },
            ],
        );
        let s = render(&[f]);
        assert!(s.contains("\"codeFlows\""), "{s}");
        assert!(s.contains("\"threadFlows\""), "{s}");
        assert!(s.contains("\"uri\": \"crates/a/src/bounds.rs\""), "{s}");
        assert!(
            s.contains("lower-bound value produced by `lb_kim`"),
            "step note survives: {s}"
        );
    }

    #[test]
    fn findings_without_witness_have_no_code_flows() {
        let f = Finding::new("no-panic", "a.rs", 1, "don't");
        let s = render(&[f]);
        assert!(!s.contains("codeFlows"), "{s}");
    }

    #[test]
    fn messages_are_escaped() {
        let f = Finding::new("no-print", "a.rs", 1, "say \"no\" to\nprints");
        let s = render(&[f]);
        assert!(s.contains("say \\\"no\\\" to\\nprints"));
    }
}
