//! Findings and report rendering (human-readable and JSON).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One step of an interprocedural witness path: where a tainted value
/// came from or passed through, oldest step first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessStep {
    /// Workspace-relative path of the step.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// What happened at this step.
    pub note: String,
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `no-panic`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// Witness path for interprocedural findings (empty otherwise);
    /// rendered as indented steps in human output and as a SARIF
    /// `codeFlow`.
    pub witness: Vec<WitnessStep>,
}

impl Finding {
    /// Construct a finding.
    pub fn new(rule: &'static str, path: &str, line: usize, message: impl Into<String>) -> Self {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message: message.into(),
            witness: Vec::new(),
        }
    }

    /// Attach a witness path.
    pub fn with_witness(mut self, witness: Vec<WitnessStep>) -> Self {
        self.witness = witness;
        self
    }
}

/// Aggregate findings into `rule → path → count`, the shape the baseline
/// ratchet stores. `BTreeMap` keeps emission deterministic.
pub fn count_by_rule_and_file(findings: &[Finding]) -> BTreeMap<String, BTreeMap<String, usize>> {
    let mut counts: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
    for f in findings {
        *counts
            .entry(f.rule.to_string())
            .or_default()
            .entry(f.path.clone())
            .or_default() += 1;
    }
    counts
}

/// Render findings for a terminal, sorted by path then line.
pub fn render_human(findings: &[Finding]) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    let mut out = String::new();
    for f in &sorted {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        for (i, step) in f.witness.iter().enumerate() {
            let _ = writeln!(
                out,
                "    step {}: {}:{}: {}",
                i + 1,
                step.path,
                step.line,
                step.note
            );
        }
    }
    out
}

/// Render findings as a JSON array (stable field order, sorted as the
/// human report is).
pub fn render_json(findings: &[Finding]) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    let mut out = String::from("[\n");
    for (i, f) in sorted.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}",
            crate::json::escape(f.rule),
            crate::json::escape(&f.path),
            f.line,
            crate::json::escape(&f.message)
        );
        if !f.witness.is_empty() {
            out.push_str(", \"witness\": [");
            for (wi, step) in f.witness.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}{{\"path\": {}, \"line\": {}, \"note\": {}}}",
                    if wi > 0 { ", " } else { "" },
                    crate::json::escape(&step.path),
                    step.line,
                    crate::json::escape(&step.note)
                );
            }
            out.push(']');
        }
        out.push('}');
        out.push_str(if i + 1 < sorted.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// Per-rule hash of every witness path (FNV-1a over the sorted rendered
/// steps). Stored informationally in baseline schema v3 so a diff shows
/// when the *shape* of interprocedural evidence changed even while the
/// counts held still; the ratchet gate itself stays count-based.
pub fn witness_hashes(findings: &[Finding]) -> BTreeMap<String, String> {
    let mut rendered: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for f in findings {
        if f.witness.is_empty() {
            continue;
        }
        let steps: Vec<String> = f
            .witness
            .iter()
            .map(|s| format!("{}:{}:{}", s.path, s.line, s.note))
            .collect();
        rendered
            .entry(f.rule.to_string())
            .or_default()
            .push(steps.join("|"));
    }
    let mut out = BTreeMap::new();
    for (rule, mut paths) in rendered {
        paths.sort();
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for p in &paths {
            for b in p.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            hash ^= 0xff;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        out.insert(rule, format!("{hash:016x}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_aggregate() {
        let fs = vec![
            Finding::new("no-panic", "a.rs", 1, "x"),
            Finding::new("no-panic", "a.rs", 9, "y"),
            Finding::new("float-eq", "b.rs", 2, "z"),
        ];
        let c = count_by_rule_and_file(&fs);
        assert_eq!(c["no-panic"]["a.rs"], 2);
        assert_eq!(c["float-eq"]["b.rs"], 1);
    }

    #[test]
    fn json_render_is_valid_and_sorted() {
        let fs = vec![
            Finding::new("b-rule", "z.rs", 3, "later"),
            Finding::new("a-rule", "a.rs", 1, "first \"quoted\""),
        ];
        let js = render_json(&fs);
        assert!(js.starts_with("[\n"));
        assert!(js.find("a.rs").unwrap() < js.find("z.rs").unwrap());
        assert!(js.contains("\\\"quoted\\\""));
    }
}
