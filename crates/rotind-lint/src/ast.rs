//! A lightweight Rust AST and a total, hand-rolled parser over the
//! [`crate::lexer`] token stream.
//!
//! The parser exists for one purpose: the four *semantic* rules
//! (lb-witness, atomic-ordering, strict-dismissal,
//! exhaustive-invariance) need structure a flat token stream cannot
//! express — which `fn` a call sits in, which block an `if` guards,
//! which arms a `match` has. It is **not** a Rust front end: types,
//! generics, patterns and macro bodies are skipped or kept as opaque
//! token runs, and anything the parser does not understand becomes an
//! [`ExprKind::Opaque`] / [`ItemKind::Other`] node rather than an
//! error. Like the lexer, the parser is total: every token stream
//! produces a tree.
//!
//! # Span discipline
//!
//! Every node carries a [`Span`] of **token indices** (half-open
//! `lo..hi` into the lexed token vector). The invariant — checked by
//! [`validate_spans`] and property-tested over every workspace `.rs`
//! file — is:
//!
//! * every span is non-empty and within the file;
//! * sibling nodes are ordered and disjoint;
//! * child spans nest strictly inside their parent's span;
//! * the top-level item spans **partition** the file exactly: every
//!   token belongs to exactly one item.
//!
//! Line numbers for findings come from the underlying tokens
//! (`tokens[span.lo].line`), so a rule never needs byte offsets.

use crate::lexer::{TokKind, Token};

/// Half-open range of token indices covered by a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First token index (inclusive).
    pub lo: usize,
    /// One past the last token index (exclusive).
    pub hi: usize,
}

impl Span {
    /// Construct a span.
    pub fn new(lo: usize, hi: usize) -> Span {
        Span { lo, hi }
    }

    /// True when `other` nests inside `self` (non-strict bounds).
    pub fn contains(&self, other: Span) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// 1-based source line of the span's first token.
    pub fn line(&self, tokens: &[Token]) -> usize {
        tokens.get(self.lo).map_or(1, |t| t.line)
    }
}

/// A parsed source file: the top-level item list.
#[derive(Debug, Default)]
pub struct File {
    /// Items in source order; their spans partition `0..n_tokens`.
    pub items: Vec<Item>,
    /// Total number of tokens the file lexed to.
    pub n_tokens: usize,
}

/// One top-level or nested item.
#[derive(Debug)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// Tokens covered, attributes included.
    pub span: Span,
}

/// Item payloads the rules care about; everything else is `Other`.
#[derive(Debug)]
pub enum ItemKind {
    /// A function with an optional body (trait methods may lack one).
    Fn(FnDecl),
    /// An enum definition with its variant names.
    Enum(EnumDecl),
    /// `mod name { … }` — nested items.
    Mod(Vec<Item>),
    /// `impl … { … }` — nested items (methods), plus the header names
    /// the call graph resolves `Self::` and method calls through.
    Impl(ImplDecl),
    /// `trait … { … }` — nested items (default methods). The trait's
    /// visibility is the visibility of its default methods.
    Trait(TraitDecl),
    /// Anything else (`use`, `struct`, `const`, macros, junk): an
    /// opaque token run kept only so spans stay a partition.
    Other,
}

/// A function declaration.
#[derive(Debug)]
pub struct FnDecl {
    /// The function's name.
    pub name: String,
    /// 1-based line of the name token.
    pub name_line: usize,
    /// Whether the declaration is `pub` (any visibility qualifier).
    pub is_pub: bool,
    /// Parameter names in declaration order. A `self` receiver is
    /// `"self"`; a pattern that binds no single name (tuples, `_`)
    /// becomes `"_"` so positions stay aligned with call arguments.
    pub params: Vec<String>,
    /// The body block, when present.
    pub body: Option<Block>,
}

/// An `impl` block header: `impl<…> Trait for Type { … }`.
#[derive(Debug)]
pub struct ImplDecl {
    /// Last path segment of the self type (`Type`), when nameable.
    pub self_ty: Option<String>,
    /// Last path segment of the implemented trait, for trait impls.
    pub trait_name: Option<String>,
    /// The member items (methods, nested consts, …).
    pub items: Vec<Item>,
}

/// A `trait` declaration header.
#[derive(Debug)]
pub struct TraitDecl {
    /// The trait's name, when present.
    pub name: Option<String>,
    /// Whether the trait is plain `pub` (scoped `pub(crate)` excluded) —
    /// the effective visibility of its default methods.
    pub is_pub: bool,
    /// The member items (method signatures and default bodies).
    pub items: Vec<Item>,
}

/// An enum definition.
#[derive(Debug)]
pub struct EnumDecl {
    /// The enum's name.
    pub name: String,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
}

/// A `{ … }` block.
#[derive(Debug)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Tokens covered, braces included.
    pub span: Span,
}

/// One statement.
#[derive(Debug)]
pub struct Stmt {
    /// What the statement is.
    pub kind: StmtKind,
    /// Tokens covered, trailing `;` included.
    pub span: Span,
}

/// Statement payloads.
#[derive(Debug)]
pub enum StmtKind {
    /// `let pat = init;` — `name` is the bound identifier when the
    /// pattern is a simple (possibly `mut`) binding.
    Let {
        /// Simple binding name, when the pattern is one.
        name: Option<String>,
        /// Initialiser expression, when present.
        init: Option<Expr>,
    },
    /// An expression statement.
    Expr(Expr),
    /// A nested item (fn-in-fn, use, nested mod, …).
    Item(Item),
    /// A bare `;`.
    Empty,
}

/// One expression.
#[derive(Debug)]
pub struct Expr {
    /// What the expression is.
    pub kind: ExprKind,
    /// Tokens covered.
    pub span: Span,
}

/// Expression payloads. Only the shapes the semantic rules consume are
/// structured; the rest collapse into [`ExprKind::Opaque`].
#[derive(Debug)]
pub enum ExprKind {
    /// `if cond { … } else …` (the else branch is a block or another if).
    If {
        /// Condition (struct literals disallowed, as in Rust).
        cond: Box<Expr>,
        /// The then-block.
        then_block: Block,
        /// `else` branch: a block-expression or a chained if.
        else_branch: Option<Box<Expr>>,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// The matched expression.
        scrutinee: Box<Expr>,
        /// The arms in order.
        arms: Vec<Arm>,
    },
    /// `while cond { … }` (includes `while let`).
    While {
        /// Loop condition.
        cond: Box<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `for pat in iter { … }`.
    For {
        /// The iterated expression.
        iter: Box<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `loop { … }`.
    Loop {
        /// Loop body.
        body: Block,
    },
    /// A block expression (also `unsafe { … }`).
    Block(Block),
    /// A binary operation; only operators parse structurally, and the
    /// op text is kept verbatim (`"<="`, `"&&"`, …).
    Binary {
        /// Operator text.
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Prefix unary (`!`, `-`, `*`, `&`).
    Unary(Box<Expr>),
    /// `callee(args)`.
    Call {
        /// The called expression (usually a path).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `recv.name(args)`.
    MethodCall {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `recv.field` / `recv.0` — the field name (or tuple index text) is
    /// kept so rules can match identifiers like `self.best`.
    Field {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Field name or tuple-index text.
        name: String,
    },
    /// `recv[index]`.
    Index {
        /// Indexed expression.
        recv: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// A (possibly generic) path: `a::b::<T>::c` → `["a","b","c"]`.
    Path(Vec<String>),
    /// A literal token.
    Lit,
    /// `name!(…)` / `name![…]` / `name!{…}` — the macro body stays an
    /// opaque token run (macro args are token trees, not expressions).
    Macro {
        /// Macro name (last path segment before the `!`).
        name: String,
    },
    /// `return expr?` / `return`.
    Return(Option<Box<Expr>>),
    /// `break` (label/value tokens stay inside the span).
    Break,
    /// `continue`.
    Continue,
    /// `(expr)` — also 1-tuples / grouped operators.
    Paren(Box<Expr>),
    /// Anything the parser keeps whole: struct literals, closures,
    /// array/tuple literals, ranges with missing ends, casts, and
    /// recovery runs.
    Opaque,
}

/// One match arm.
#[derive(Debug)]
pub struct Arm {
    /// Tokens of the pattern (up to the guard/`=>`).
    pub pat_span: Span,
    /// `A::B`-style paths named by the pattern, each as segments.
    pub pat_paths: Vec<Vec<String>>,
    /// True when the pattern contains a bare `_` binding-all wildcard
    /// at the top level (not the `..` rest pattern inside a variant).
    pub has_wildcard: bool,
    /// Guard expression, when the arm has `if guard`.
    pub guard: Option<Expr>,
    /// Arm body.
    pub body: Expr,
    /// Tokens covered by the whole arm (trailing `,` included).
    pub span: Span,
}

/// Parse a token stream into a [`File`]. Total: never fails.
pub fn parse(tokens: &[Token]) -> File {
    let mut p = Parser {
        toks: tokens,
        pos: 0,
    };
    let mut items = Vec::new();
    while p.pos < p.toks.len() {
        items.push(p.item());
    }
    File {
        items,
        n_tokens: tokens.len(),
    }
}

/// Walk every expression in a block, depth-first, calling `f` on each.
pub fn walk_exprs<'a>(block: &'a Block, f: &mut impl FnMut(&'a Expr)) {
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::Let { init, .. } => {
                if let Some(e) = init {
                    walk_expr(e, f);
                }
            }
            StmtKind::Expr(e) => walk_expr(e, f),
            StmtKind::Item(item) => walk_item_exprs(item, f),
            StmtKind::Empty => {}
        }
    }
}

/// Walk every expression under `expr` (itself included), depth-first.
pub fn walk_expr<'a>(expr: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(expr);
    match &expr.kind {
        ExprKind::If {
            cond,
            then_block,
            else_branch,
        } => {
            walk_expr(cond, f);
            walk_exprs(then_block, f);
            if let Some(e) = else_branch {
                walk_expr(e, f);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            walk_expr(scrutinee, f);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    walk_expr(g, f);
                }
                walk_expr(&arm.body, f);
            }
        }
        ExprKind::While { cond, body } => {
            walk_expr(cond, f);
            walk_exprs(body, f);
        }
        ExprKind::For { iter, body } => {
            walk_expr(iter, f);
            walk_exprs(body, f);
        }
        ExprKind::Loop { body } => walk_exprs(body, f),
        ExprKind::Block(b) => walk_exprs(b, f),
        ExprKind::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        ExprKind::Unary(e) | ExprKind::Paren(e) => walk_expr(e, f),
        ExprKind::Field { recv, .. } => walk_expr(recv, f),
        ExprKind::Call { callee, args } => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::Index { recv, index } => {
            walk_expr(recv, f);
            walk_expr(index, f);
        }
        ExprKind::Return(Some(e)) => walk_expr(e, f),
        ExprKind::Path(_)
        | ExprKind::Lit
        | ExprKind::Macro { .. }
        | ExprKind::Return(None)
        | ExprKind::Break
        | ExprKind::Continue
        | ExprKind::Opaque => {}
    }
}

/// Walk every expression under an item (fn bodies, nested items).
pub fn walk_item_exprs<'a>(item: &'a Item, f: &mut impl FnMut(&'a Expr)) {
    match &item.kind {
        ItemKind::Fn(decl) => {
            if let Some(body) = &decl.body {
                walk_exprs(body, f);
            }
        }
        ItemKind::Mod(items) => {
            for it in items {
                walk_item_exprs(it, f);
            }
        }
        ItemKind::Impl(decl) => {
            for it in &decl.items {
                walk_item_exprs(it, f);
            }
        }
        ItemKind::Trait(decl) => {
            for it in &decl.items {
                walk_item_exprs(it, f);
            }
        }
        ItemKind::Enum(_) | ItemKind::Other => {}
    }
}

/// Visit every `fn` in the file (top-level, in mods, impls and traits),
/// with the item span of the function.
pub fn walk_fns<'a>(file: &'a File, f: &mut impl FnMut(&'a FnDecl, Span)) {
    fn rec<'a>(items: &'a [Item], f: &mut impl FnMut(&'a FnDecl, Span)) {
        for item in items {
            match &item.kind {
                ItemKind::Fn(decl) => f(decl, item.span),
                ItemKind::Mod(inner) => rec(inner, f),
                ItemKind::Impl(decl) => rec(&decl.items, f),
                ItemKind::Trait(decl) => rec(&decl.items, f),
                ItemKind::Enum(_) | ItemKind::Other => {}
            }
        }
    }
    rec(&file.items, f);
}

/// Check the span invariant over a parsed file (see module docs).
/// Returns `Err(description)` at the first violation.
pub fn validate_spans(file: &File) -> Result<(), String> {
    // Top level: exact partition of 0..n_tokens.
    let mut next = 0usize;
    for (i, item) in file.items.iter().enumerate() {
        if item.span.lo != next {
            return Err(format!(
                "item {i}: span starts at {} but previous coverage ended at {next}",
                item.span.lo
            ));
        }
        if item.span.hi <= item.span.lo {
            return Err(format!("item {i}: empty span {:?}", item.span));
        }
        next = item.span.hi;
        validate_item(item)?;
    }
    if next != file.n_tokens {
        return Err(format!(
            "top-level items cover 0..{next} but the file has {} tokens",
            file.n_tokens
        ));
    }
    Ok(())
}

fn validate_item(item: &Item) -> Result<(), String> {
    match &item.kind {
        ItemKind::Fn(decl) => {
            if let Some(body) = &decl.body {
                check_nested(item.span, body.span, "fn body")?;
                validate_block(body)?;
            }
            Ok(())
        }
        ItemKind::Mod(items) => validate_members(item.span, items),
        ItemKind::Impl(decl) => validate_members(item.span, &decl.items),
        ItemKind::Trait(decl) => validate_members(item.span, &decl.items),
        ItemKind::Enum(_) | ItemKind::Other => Ok(()),
    }
}

fn validate_members(span: Span, items: &[Item]) -> Result<(), String> {
    validate_children(span, items.iter().map(|i| i.span), "item")?;
    for it in items {
        validate_item(it)?;
    }
    Ok(())
}

fn validate_block(block: &Block) -> Result<(), String> {
    validate_children(block.span, block.stmts.iter().map(|s| s.span), "stmt")?;
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::Let { init, .. } => {
                if let Some(e) = init {
                    check_nested(stmt.span, e.span, "let init")?;
                    validate_expr(e)?;
                }
            }
            StmtKind::Expr(e) => {
                check_nested(stmt.span, e.span, "expr stmt")?;
                validate_expr(e)?;
            }
            StmtKind::Item(item) => {
                check_nested(stmt.span, item.span, "nested item")?;
                validate_item(item)?;
            }
            StmtKind::Empty => {}
        }
    }
    Ok(())
}

fn validate_expr(expr: &Expr) -> Result<(), String> {
    if expr.span.hi <= expr.span.lo {
        return Err(format!("empty expr span {:?}", expr.span));
    }
    let mut err = None;
    let mut check = |child: Span, what: &str| {
        if err.is_none() {
            if let Err(e) = check_nested(expr.span, child, what) {
                err = Some(e);
            }
        }
    };
    match &expr.kind {
        ExprKind::If {
            cond,
            then_block,
            else_branch,
        } => {
            check(cond.span, "if cond");
            check(then_block.span, "then block");
            if let Some(e) = else_branch {
                check(e.span, "else branch");
            }
            if let Some(e) = err {
                return Err(e);
            }
            validate_expr(cond)?;
            validate_block(then_block)?;
            if let Some(e) = else_branch {
                validate_expr(e)?;
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            check(scrutinee.span, "scrutinee");
            for arm in arms {
                check(arm.span, "arm");
            }
            if let Some(e) = err {
                return Err(e);
            }
            validate_expr(scrutinee)?;
            for arm in arms {
                if !arm.span.contains(arm.pat_span) || arm.pat_span.hi <= arm.pat_span.lo {
                    return Err(format!("arm pattern span escapes arm: {:?}", arm.pat_span));
                }
                if let Some(g) = &arm.guard {
                    check_nested(arm.span, g.span, "guard")?;
                    validate_expr(g)?;
                }
                check_nested(arm.span, arm.body.span, "arm body")?;
                validate_expr(&arm.body)?;
            }
        }
        ExprKind::While { cond, body } => {
            check(cond.span, "while cond");
            check(body.span, "while body");
            if let Some(e) = err {
                return Err(e);
            }
            validate_expr(cond)?;
            validate_block(body)?;
        }
        ExprKind::For { iter, body } => {
            check(iter.span, "for iter");
            check(body.span, "for body");
            if let Some(e) = err {
                return Err(e);
            }
            validate_expr(iter)?;
            validate_block(body)?;
        }
        ExprKind::Loop { body } => {
            check(body.span, "loop body");
            if let Some(e) = err {
                return Err(e);
            }
            validate_block(body)?;
        }
        ExprKind::Block(b) => {
            check(b.span, "block");
            if let Some(e) = err {
                return Err(e);
            }
            validate_block(b)?;
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            check(lhs.span, "lhs");
            check(rhs.span, "rhs");
            if lhs.span.hi > rhs.span.lo {
                return Err(format!(
                    "binary operands overlap: {:?} vs {:?}",
                    lhs.span, rhs.span
                ));
            }
            if let Some(e) = err {
                return Err(e);
            }
            validate_expr(lhs)?;
            validate_expr(rhs)?;
        }
        ExprKind::Unary(e) | ExprKind::Paren(e) => {
            check(e.span, "inner");
            if let Some(m) = err {
                return Err(m);
            }
            validate_expr(e)?;
        }
        ExprKind::Field { recv, .. } => {
            check(recv.span, "field receiver");
            if let Some(m) = err {
                return Err(m);
            }
            validate_expr(recv)?;
        }
        ExprKind::Call { callee, args } => {
            check(callee.span, "callee");
            for a in args {
                check(a.span, "arg");
            }
            if let Some(e) = err {
                return Err(e);
            }
            validate_expr(callee)?;
            for a in args {
                validate_expr(a)?;
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            check(recv.span, "receiver");
            for a in args {
                check(a.span, "arg");
            }
            if let Some(e) = err {
                return Err(e);
            }
            validate_expr(recv)?;
            for a in args {
                validate_expr(a)?;
            }
        }
        ExprKind::Index { recv, index } => {
            check(recv.span, "indexed");
            check(index.span, "index");
            if let Some(e) = err {
                return Err(e);
            }
            validate_expr(recv)?;
            validate_expr(index)?;
        }
        ExprKind::Return(Some(e)) => {
            check(e.span, "return value");
            if let Some(m) = err {
                return Err(m);
            }
            validate_expr(e)?;
        }
        ExprKind::Path(_)
        | ExprKind::Lit
        | ExprKind::Macro { .. }
        | ExprKind::Return(None)
        | ExprKind::Break
        | ExprKind::Continue
        | ExprKind::Opaque => {}
    }
    Ok(())
}

/// Children must be ordered, disjoint, and nested in `parent`.
fn validate_children(
    parent: Span,
    children: impl Iterator<Item = Span>,
    what: &str,
) -> Result<(), String> {
    let mut prev_hi = parent.lo;
    for child in children {
        check_nested(parent, child, what)?;
        if child.lo < prev_hi {
            return Err(format!(
                "{what}: child {child:?} overlaps previous sibling ending at {prev_hi}"
            ));
        }
        prev_hi = child.hi;
    }
    Ok(())
}

fn check_nested(parent: Span, child: Span, what: &str) -> Result<(), String> {
    if child.hi <= child.lo {
        return Err(format!("{what}: empty span {child:?}"));
    }
    if !parent.contains(child) {
        return Err(format!("{what}: child {child:?} escapes parent {parent:?}"));
    }
    Ok(())
}

// ----------------------------------------------------------------------
// The parser.
// ----------------------------------------------------------------------

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

/// Keywords that begin an item the parser structures.
const ITEM_HEADS: &[&str] = &[
    "fn",
    "enum",
    "mod",
    "impl",
    "trait",
    "struct",
    "use",
    "const",
    "static",
    "type",
    "union",
    "extern",
    "macro_rules",
];

impl<'a> Parser<'a> {
    fn text(&self, at: usize) -> &str {
        self.toks.get(at).map_or("", |t| t.text.as_str())
    }

    fn kind(&self, at: usize) -> Option<TokKind> {
        self.toks.get(at).map(|t| t.kind)
    }

    fn cur(&self) -> &str {
        self.text(self.pos)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    /// Skip a balanced `(…)`, `[…]`, `{…}` group starting at the
    /// cursor; no-op when the cursor is not on an opener. Unclosed
    /// groups consume to the end of the stream (total parsing).
    fn skip_group(&mut self) {
        let close = match self.cur() {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => return,
        };
        let open = self.cur().to_string();
        let mut depth = 0usize;
        while !self.at_end() {
            let t = self.cur();
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Skip attributes (`#[…]`, `#![…]`) at the cursor.
    fn skip_attrs(&mut self) {
        while self.cur() == "#" {
            let mut k = self.pos + 1;
            if self.text(k) == "!" {
                k += 1;
            }
            if self.text(k) != "[" {
                return;
            }
            self.pos = k;
            self.skip_group();
        }
    }

    /// Skip a balanced generic argument list starting at `<`. `>>`
    /// closes two levels (the lexer fuses shifts). Gives up at `;`,
    /// `{` or end of stream so a stray `<` cannot swallow the file.
    fn skip_generics(&mut self) {
        if self.cur() != "<" {
            return;
        }
        let mut depth = 0isize;
        while !self.at_end() {
            match self.cur() {
                "<" => depth += 1,
                ">" => depth -= 1,
                "<<" => depth += 2,
                ">>" => depth -= 2,
                "->" => {}
                ";" | "{" => return, // malformed; leave for the caller
                _ => {}
            }
            self.bump();
            if depth <= 0 {
                return;
            }
        }
    }

    // ------------------------------------------------------------------
    // Items.
    // ------------------------------------------------------------------

    /// Parse one item at the cursor; always advances at least one token.
    fn item(&mut self) -> Item {
        let lo = self.pos;
        self.skip_attrs();
        // Visibility. `plain_pub` excludes scoped forms (`pub(crate)`):
        // only unrestricted `pub` is API surface.
        let mut is_pub = false;
        let mut plain_pub = false;
        if self.cur() == "pub" {
            is_pub = true;
            self.bump();
            if self.cur() == "(" {
                self.skip_group(); // pub(crate), pub(in …)
            } else {
                plain_pub = true;
            }
        }
        // Qualifiers before `fn`.
        while matches!(self.cur(), "const" | "async" | "unsafe" | "extern")
            && self.lookahead_reaches_fn()
        {
            if self.cur() == "extern" {
                self.bump();
                if self.kind(self.pos) == Some(TokKind::Str) {
                    self.bump(); // extern "C"
                }
            } else {
                self.bump();
            }
        }
        let kind = match self.cur() {
            "fn" => self.fn_item(is_pub),
            "enum" => self.enum_item(),
            "mod" => self.mod_like("mod", plain_pub),
            "impl" => self.mod_like("impl", plain_pub),
            "trait" => self.mod_like("trait", plain_pub),
            _ => self.other_item(),
        };
        // Recovery: an item must consume something.
        if self.pos == lo {
            self.bump();
        }
        Item {
            kind,
            span: Span::new(lo, self.pos),
        }
    }

    /// True when the qualifier run ahead of the cursor ends at `fn`
    /// (distinguishes `const fn f()` from `const X: u8 = 1;`).
    fn lookahead_reaches_fn(&self) -> bool {
        let mut k = self.pos;
        loop {
            match self.text(k) {
                "const" | "async" | "unsafe" => k += 1,
                "extern" => {
                    k += 1;
                    if self.kind(k) == Some(TokKind::Str) {
                        k += 1;
                    }
                }
                "fn" => return true,
                _ => return false,
            }
        }
    }

    fn fn_item(&mut self, is_pub: bool) -> ItemKind {
        self.bump(); // `fn`
        let (name, name_line) = match self.toks.get(self.pos) {
            Some(t) if t.kind == TokKind::Ident => {
                let out = (t.text.clone(), t.line);
                self.bump();
                out
            }
            _ => (String::new(), self.toks.get(self.pos).map_or(1, |t| t.line)),
        };
        self.skip_generics();
        let mut params = Vec::new();
        if self.cur() == "(" {
            let lo = self.pos + 1;
            self.skip_group(); // parameters
            let hi = self.pos.saturating_sub(1).max(lo);
            params = param_names(self.toks.get(lo..hi).unwrap_or(&[]));
        }
        // Return type / where clause: scan to the body `{` or a `;`
        // at angle/group depth zero.
        let mut angle = 0isize;
        loop {
            if self.at_end() {
                return ItemKind::Fn(FnDecl {
                    name,
                    name_line,
                    is_pub,
                    params,
                    body: None,
                });
            }
            match self.cur() {
                "<" => {
                    angle += 1;
                    self.bump();
                }
                ">" => {
                    angle -= 1;
                    self.bump();
                }
                "<<" => {
                    angle += 2;
                    self.bump();
                }
                ">>" => {
                    angle -= 2;
                    self.bump();
                }
                "(" | "[" => self.skip_group(),
                ";" if angle <= 0 => {
                    self.bump();
                    return ItemKind::Fn(FnDecl {
                        name,
                        name_line,
                        is_pub,
                        params,
                        body: None,
                    });
                }
                "{" if angle <= 0 => {
                    let body = self.block();
                    return ItemKind::Fn(FnDecl {
                        name,
                        name_line,
                        is_pub,
                        params,
                        body: Some(body),
                    });
                }
                _ => self.bump(),
            }
        }
    }

    fn enum_item(&mut self) -> ItemKind {
        self.bump(); // `enum`
        let name = match self.toks.get(self.pos) {
            Some(t) if t.kind == TokKind::Ident => {
                let n = t.text.clone();
                self.bump();
                n
            }
            _ => String::new(),
        };
        self.skip_generics();
        // Optional where clause up to the brace.
        while !self.at_end() && self.cur() != "{" && self.cur() != ";" {
            self.bump();
        }
        let mut variants = Vec::new();
        if self.cur() == "{" {
            let lo = self.pos + 1;
            self.skip_group();
            let hi = self.pos.saturating_sub(1).max(lo);
            let body = self.toks.get(lo..hi).unwrap_or(&[]);
            variants = enum_variants(body);
        } else if self.cur() == ";" {
            self.bump();
        }
        ItemKind::Enum(EnumDecl { name, variants })
    }

    /// `mod`/`impl`/`trait`: scan the header to `{` (or `;`), recording
    /// the idents the call graph needs, then parse the members as items.
    fn mod_like(&mut self, what: &str, is_pub: bool) -> ItemKind {
        self.bump(); // keyword
        if what != "impl" {
            // `mod name` / `trait Name<…>`: the name is the next ident.
        } else {
            self.skip_generics(); // `impl<…>`
        }
        let name = match self.toks.get(self.pos) {
            Some(t) if t.kind == TokKind::Ident => Some(t.text.clone()),
            _ => None,
        };
        // Header idents at angle depth 0 after the first, and whether a
        // `for` separates a trait path from the self type.
        let mut after_for: Option<String> = None;
        let mut last_ident: Option<String> = name.clone();
        let mut saw_for = false;
        let mut angle = 0isize;
        loop {
            if self.at_end() {
                return ItemKind::Other;
            }
            match self.cur() {
                "<" => {
                    angle += 1;
                    self.bump();
                }
                ">" => {
                    angle -= 1;
                    self.bump();
                }
                "<<" => {
                    angle += 2;
                    self.bump();
                }
                ">>" => {
                    angle -= 2;
                    self.bump();
                }
                "->" => self.bump(),
                "(" | "[" => self.skip_group(),
                ";" if angle <= 0 => {
                    self.bump(); // `mod name;` / `trait X: Y;`
                    return ItemKind::Other;
                }
                "{" if angle <= 0 => break,
                "for" if angle <= 0 => {
                    saw_for = true;
                    self.bump();
                }
                "where" if angle <= 0 => {
                    // Bound idents after `where` are not part of the
                    // trait/self-type paths: stop recording.
                    while !self.at_end() && !matches!(self.cur(), "{" | ";") {
                        match self.cur() {
                            "(" | "[" => self.skip_group(),
                            "<" => self.skip_generics(),
                            _ => self.bump(),
                        }
                    }
                }
                _ => {
                    if angle <= 0 && self.kind(self.pos) == Some(TokKind::Ident) {
                        let t = self.cur().to_string();
                        if saw_for {
                            after_for = Some(t);
                        } else {
                            last_ident = Some(t);
                        }
                    }
                    self.bump();
                }
            }
        }
        self.bump(); // `{`
        let mut items = Vec::new();
        while !self.at_end() && self.cur() != "}" {
            items.push(self.item());
        }
        if self.cur() == "}" {
            self.bump();
        }
        match what {
            "mod" => ItemKind::Mod(items),
            "impl" => {
                // `impl Type { … }` → self_ty = Type; `impl Trait for
                // Type { … }` → trait = last ident before `for`, self
                // type = last ident after it (path segments collapse to
                // the final one either way).
                let (self_ty, trait_name) = if saw_for {
                    (after_for, last_ident)
                } else {
                    (last_ident, None)
                };
                ItemKind::Impl(ImplDecl {
                    self_ty,
                    trait_name,
                    items,
                })
            }
            _ => ItemKind::Trait(TraitDecl {
                name,
                is_pub,
                items,
            }),
        }
    }

    /// Anything else: consume to a top-level `;` or through one
    /// balanced brace group (struct bodies, macro invocations, …).
    fn other_item(&mut self) -> ItemKind {
        while !self.at_end() {
            match self.cur() {
                ";" => {
                    self.bump();
                    return ItemKind::Other;
                }
                "{" => {
                    self.skip_group();
                    // `struct S { … }` ends here; `= { … };` keeps going.
                    if self.cur() == ";" {
                        self.bump();
                    }
                    return ItemKind::Other;
                }
                "(" | "[" => self.skip_group(),
                "}" => return ItemKind::Other, // stray close: let the caller see it
                _ => self.bump(),
            }
        }
        ItemKind::Other
    }

    // ------------------------------------------------------------------
    // Blocks and statements.
    // ------------------------------------------------------------------

    /// Parse a `{ … }` block; the cursor must be on `{`.
    fn block(&mut self) -> Block {
        let lo = self.pos;
        debug_assert_eq!(self.cur(), "{");
        self.bump();
        let mut stmts = Vec::new();
        while !self.at_end() && self.cur() != "}" {
            stmts.push(self.stmt());
        }
        if self.cur() == "}" {
            self.bump();
        }
        Block {
            stmts,
            span: Span::new(lo, self.pos),
        }
    }

    /// Parse one statement; always advances.
    fn stmt(&mut self) -> Stmt {
        let lo = self.pos;
        self.skip_attrs();
        if self.cur() == ";" {
            self.bump();
            return Stmt {
                kind: StmtKind::Empty,
                span: Span::new(lo, self.pos),
            };
        }
        if self.cur() == "let" {
            let kind = self.let_stmt();
            return Stmt {
                kind,
                span: Span::new(lo, self.pos),
            };
        }
        // Nested items inside a block. `unsafe`/`const`/`async` only
        // start an item when a `fn` follows (else `unsafe { … }` is an
        // expression and `const` can't appear, but stay safe).
        let is_item = ITEM_HEADS.contains(&self.cur()) || self.cur() == "pub";
        let is_fn_qualifier = matches!(self.cur(), "const" | "async" | "unsafe" | "extern");
        if (is_item && !is_fn_qualifier) || (is_fn_qualifier && self.lookahead_reaches_fn()) {
            // `impl Trait for X` blocks don't appear in statement
            // position in this codebase, but the item parser handles
            // them anyway; macro_rules! and use statements land in
            // Other.
            let item = self.item_in_block(lo);
            let span = item.span;
            return Stmt {
                kind: StmtKind::Item(item),
                span,
            };
        }
        // Expression statement.
        let expr = self.expr(true);
        if self.cur() == ";" {
            self.bump();
        }
        // Guarantee progress even on a stray token the expression
        // parser refused (e.g. an unmatched `}` handled by block()).
        if self.pos == lo {
            self.bump();
        }
        Stmt {
            kind: StmtKind::Expr(expr),
            span: Span::new(lo, self.pos),
        }
    }

    /// Parse an item in statement position, re-using `lo` (attributes
    /// already consumed) so the item span covers them.
    fn item_in_block(&mut self, lo: usize) -> Item {
        let mut item = self.item();
        item.span.lo = lo;
        item
    }

    fn let_stmt(&mut self) -> StmtKind {
        self.bump(); // `let`
                     // Pattern: tokens to a top-level `=`, `;` or `:`; groups skipped.
        let mut name = None;
        let mut first = true;
        loop {
            if self.at_end() {
                return StmtKind::Let { name, init: None };
            }
            match self.cur() {
                "=" => break,
                ";" => {
                    self.bump();
                    return StmtKind::Let { name, init: None };
                }
                ":" => {
                    // Type ascription: skip to `=` or `;` (angle-aware).
                    let mut angle = 0isize;
                    self.bump();
                    while !self.at_end() {
                        match self.cur() {
                            "<" => angle += 1,
                            ">" => angle -= 1,
                            "<<" => angle += 2,
                            ">>" => angle -= 2,
                            "(" | "[" => {
                                self.skip_group();
                                continue;
                            }
                            "=" if angle <= 0 => break,
                            ";" if angle <= 0 => break,
                            _ => {}
                        }
                        self.bump();
                    }
                    continue;
                }
                "(" | "[" => {
                    self.skip_group();
                    first = false;
                    continue;
                }
                "mut" => {
                    self.bump();
                    continue;
                }
                _ => {
                    if first
                        && self.kind(self.pos) == Some(TokKind::Ident)
                        && self.text(self.pos + 1) != "::"
                    {
                        name = Some(self.cur().to_string());
                    }
                    first = false;
                    self.bump();
                }
            }
        }
        self.bump(); // `=`
        let init = self.expr(true);
        // let-else.
        if self.cur() == "else" {
            self.bump();
            if self.cur() == "{" {
                self.block();
            }
        }
        if self.cur() == ";" {
            self.bump();
        }
        StmtKind::Let {
            name,
            init: Some(init),
        }
    }

    // ------------------------------------------------------------------
    // Expressions: precedence-climbing over the operators the rules
    // read (comparisons, logical ops); everything else binds tighter
    // or collapses to Opaque.
    // ------------------------------------------------------------------

    /// Parse an expression. `structs` allows struct-literal `{` after
    /// a path (false inside if/while/match-scrutinee/for headers).
    fn expr(&mut self, structs: bool) -> Expr {
        self.assign_expr(structs)
    }

    /// Lowest tier: assignments and compound assignments (right-assoc,
    /// but the rules only need the operands to exist).
    fn assign_expr(&mut self, structs: bool) -> Expr {
        let lhs = self.range_expr(structs);
        const ASSIGN: &[&str] = &[
            "=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<=", ">>=",
        ];
        if ASSIGN.contains(&self.cur()) {
            let op = self.cur().to_string();
            self.bump();
            let rhs = self.assign_expr(structs);
            let span = Span::new(lhs.span.lo, rhs.span.hi.max(self.pos));
            return Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        lhs
    }

    /// `a..b`, `a..=b`, `a..` — trailing-range forms become Opaque-ish
    /// binaries with a unit rhs span; simplest is to treat `..` with a
    /// missing side as part of an opaque span.
    fn range_expr(&mut self, structs: bool) -> Expr {
        let lo = self.pos;
        // Prefix range `..x` / `..=x` / bare `..`.
        if self.cur() == ".." || self.cur() == "..=" {
            self.bump();
            if self.starts_expr() {
                let _rhs = self.or_expr(structs);
            }
            return Expr {
                kind: ExprKind::Opaque,
                span: Span::new(lo, self.pos),
            };
        }
        let lhs = self.or_expr(structs);
        if self.cur() == ".." || self.cur() == "..=" {
            self.bump();
            if self.starts_expr() {
                let _rhs = self.or_expr(structs);
            }
            return Expr {
                kind: ExprKind::Opaque,
                span: Span::new(lo, self.pos),
            };
        }
        lhs
    }

    /// True when the cursor could start an expression (for optional
    /// range ends).
    fn starts_expr(&self) -> bool {
        if self.at_end() {
            return false;
        }
        match self.kind(self.pos) {
            Some(TokKind::Ident) => !matches!(self.cur(), "else" | "in"),
            Some(TokKind::Int | TokKind::Float | TokKind::Str | TokKind::Lifetime) => true,
            Some(TokKind::Punct) => matches!(self.cur(), "(" | "[" | "{" | "!" | "-" | "*" | "&"),
            None => false,
        }
    }

    fn or_expr(&mut self, structs: bool) -> Expr {
        let mut lhs = self.and_expr(structs);
        while self.cur() == "||" {
            self.bump();
            let rhs = self.and_expr(structs);
            let span = Span::new(lhs.span.lo, rhs.span.hi);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op: "||".into(),
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        lhs
    }

    fn and_expr(&mut self, structs: bool) -> Expr {
        let mut lhs = self.cmp_expr(structs);
        while self.cur() == "&&" {
            self.bump();
            let rhs = self.cmp_expr(structs);
            let span = Span::new(lhs.span.lo, rhs.span.hi);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op: "&&".into(),
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        lhs
    }

    fn cmp_expr(&mut self, structs: bool) -> Expr {
        let lhs = self.sum_expr(structs);
        const CMP: &[&str] = &["==", "!=", "<", ">", "<=", ">="];
        if CMP.contains(&self.cur()) {
            let op = self.cur().to_string();
            self.bump();
            let rhs = self.sum_expr(structs);
            let span = Span::new(lhs.span.lo, rhs.span.hi);
            return Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        lhs
    }

    /// Sums, products, bit-ops and casts, folded left. The individual
    /// tiers don't matter to any rule, so one loop handles them all;
    /// comparisons never chain into here (Rust forbids `a < b < c`).
    fn sum_expr(&mut self, structs: bool) -> Expr {
        let mut lhs = self.unary_expr(structs);
        const OPS: &[&str] = &["+", "-", "*", "/", "%", "^", "&", "|", "<<", ">>"];
        loop {
            let t = self.cur();
            if OPS.contains(&t) {
                let op = t.to_string();
                self.bump();
                let rhs = self.unary_expr(structs);
                let span = Span::new(lhs.span.lo, rhs.span.hi);
                lhs = Expr {
                    kind: ExprKind::Binary {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    },
                    span,
                };
            } else if t == "as" {
                // Cast: skip the type (angle-aware, stops before any
                // operator the tiers above handle).
                self.bump();
                while !self.at_end() {
                    match self.cur() {
                        "::" => self.bump(),
                        "<" => self.skip_generics(),
                        "(" | "[" => self.skip_group(),
                        _ if self.kind(self.pos) == Some(TokKind::Ident) => self.bump(),
                        _ => break,
                    }
                }
                lhs = Expr {
                    span: Span::new(lhs.span.lo, self.pos),
                    kind: ExprKind::Opaque,
                };
            } else {
                return lhs;
            }
        }
    }

    fn unary_expr(&mut self, structs: bool) -> Expr {
        let lo = self.pos;
        match self.cur() {
            "!" | "-" | "*" => {
                self.bump();
                let inner = self.unary_expr(structs);
                let span = Span::new(lo, inner.span.hi);
                Expr {
                    kind: ExprKind::Unary(Box::new(inner)),
                    span,
                }
            }
            "&" | "&&" => {
                // `&&x` is two reference-ofs.
                self.bump();
                if self.cur() == "mut" {
                    self.bump();
                }
                let inner = self.unary_expr(structs);
                let span = Span::new(lo, inner.span.hi);
                Expr {
                    kind: ExprKind::Unary(Box::new(inner)),
                    span,
                }
            }
            _ => self.postfix_expr(structs),
        }
    }

    fn postfix_expr(&mut self, structs: bool) -> Expr {
        let mut expr = self.primary_expr(structs);
        loop {
            match self.cur() {
                "." => {
                    let dot = self.pos;
                    self.bump();
                    // `await`, field, tuple index or method call.
                    if self.kind(self.pos) == Some(TokKind::Ident) {
                        let name = self.cur().to_string();
                        self.bump();
                        // Turbofish on the method.
                        if self.cur() == "::" && self.text(self.pos + 1) == "<" {
                            self.bump();
                            self.skip_generics();
                        }
                        if self.cur() == "(" {
                            let args = self.call_args();
                            let span = Span::new(expr.span.lo, self.pos);
                            expr = Expr {
                                kind: ExprKind::MethodCall {
                                    recv: Box::new(expr),
                                    name,
                                    args,
                                },
                                span,
                            };
                        } else {
                            let span = Span::new(expr.span.lo, self.pos);
                            expr = Expr {
                                kind: ExprKind::Field {
                                    recv: Box::new(expr),
                                    name,
                                },
                                span,
                            };
                        }
                    } else if matches!(self.kind(self.pos), Some(TokKind::Int | TokKind::Float)) {
                        let name = self.cur().to_string();
                        self.bump(); // tuple field (`x.0`; `x.0.1` lexes as float)
                        let span = Span::new(expr.span.lo, self.pos);
                        expr = Expr {
                            kind: ExprKind::Field {
                                recv: Box::new(expr),
                                name,
                            },
                            span,
                        };
                    } else {
                        // Lone dot (recovery): leave it consumed.
                        let span = Span::new(expr.span.lo, self.pos.max(dot + 1));
                        expr = Expr {
                            kind: ExprKind::Opaque,
                            span,
                        };
                    }
                }
                "(" => {
                    let args = self.call_args();
                    let span = Span::new(expr.span.lo, self.pos);
                    expr = Expr {
                        kind: ExprKind::Call {
                            callee: Box::new(expr),
                            args,
                        },
                        span,
                    };
                }
                "[" => {
                    self.bump();
                    let index = self.expr(true);
                    if self.cur() == "]" {
                        self.bump();
                    }
                    let span = Span::new(expr.span.lo, self.pos);
                    expr = Expr {
                        kind: ExprKind::Index {
                            recv: Box::new(expr),
                            index: Box::new(index),
                        },
                        span,
                    };
                }
                "?" => {
                    self.bump();
                    let span = Span::new(expr.span.lo, self.pos);
                    expr = Expr {
                        kind: ExprKind::Paren(Box::new(expr)),
                        span,
                    };
                }
                _ => return expr,
            }
        }
    }

    /// Parse `( … )` call arguments; cursor on `(`.
    fn call_args(&mut self) -> Vec<Expr> {
        self.bump(); // `(`
        let mut args = Vec::new();
        while !self.at_end() && self.cur() != ")" {
            let before = self.pos;
            args.push(self.expr(true));
            if self.cur() == "," {
                self.bump();
            }
            if self.pos == before {
                self.bump(); // recovery: never stall
            }
        }
        if self.cur() == ")" {
            self.bump();
        }
        args
    }

    fn primary_expr(&mut self, structs: bool) -> Expr {
        let lo = self.pos;
        if self.at_end() {
            // Expression position at end of input (junk): pin onto the
            // last real token so the span is never empty and never
            // reaches past the stream.
            return Expr {
                kind: ExprKind::Opaque,
                span: Span::new(lo.saturating_sub(1), lo.max(1)),
            };
        }
        match self.cur() {
            "if" => return self.if_expr(),
            "match" => return self.match_expr(),
            "while" => return self.while_expr(),
            "for" => return self.for_expr(),
            "loop" => {
                self.bump();
                let body = if self.cur() == "{" {
                    self.block()
                } else {
                    self.missing_block(lo)
                };
                return Expr {
                    span: Span::new(lo, self.pos),
                    kind: ExprKind::Loop { body },
                };
            }
            "unsafe" if self.text(self.pos + 1) == "{" => {
                self.bump();
                let body = self.block();
                return Expr {
                    span: Span::new(lo, self.pos),
                    kind: ExprKind::Block(body),
                };
            }
            "{" => {
                let body = self.block();
                return Expr {
                    span: Span::new(lo, self.pos),
                    kind: ExprKind::Block(body),
                };
            }
            "return" => {
                self.bump();
                let value = if self.starts_expr() {
                    Some(Box::new(self.expr(structs)))
                } else {
                    None
                };
                return Expr {
                    span: Span::new(lo, self.pos),
                    kind: ExprKind::Return(value),
                };
            }
            "break" => {
                self.bump();
                if self.kind(self.pos) == Some(TokKind::Lifetime) {
                    self.bump(); // label
                }
                if self.starts_expr() && self.cur() != "{" {
                    let _ = self.expr(structs);
                }
                return Expr {
                    span: Span::new(lo, self.pos),
                    kind: ExprKind::Break,
                };
            }
            "continue" => {
                self.bump();
                if self.kind(self.pos) == Some(TokKind::Lifetime) {
                    self.bump();
                }
                return Expr {
                    span: Span::new(lo, self.pos),
                    kind: ExprKind::Continue,
                };
            }
            "move" => {
                // `move |…| body` / `move || body`.
                self.bump();
                return self.closure_or_opaque(lo, structs);
            }
            "|" => return self.closure_or_opaque(lo, structs),
            "(" => {
                self.bump();
                if self.cur() == ")" {
                    self.bump(); // unit
                    return Expr {
                        kind: ExprKind::Lit,
                        span: Span::new(lo, self.pos),
                    };
                }
                let inner = self.expr(true);
                // Tuple: further elements collapse into the paren span.
                while self.cur() == "," {
                    self.bump();
                    if self.cur() == ")" {
                        break;
                    }
                    let _ = self.expr(true);
                }
                if self.cur() == ")" {
                    self.bump();
                }
                return Expr {
                    span: Span::new(lo, self.pos),
                    kind: ExprKind::Paren(Box::new(inner)),
                };
            }
            "[" => {
                // Array literal / repeat: keep whole.
                self.skip_group();
                return Expr {
                    kind: ExprKind::Opaque,
                    span: Span::new(lo, self.pos),
                };
            }
            "<" => return self.qualified_path(lo),
            _ => {}
        }
        match self.kind(self.pos) {
            Some(TokKind::Int | TokKind::Float | TokKind::Str) => {
                self.bump();
                Expr {
                    kind: ExprKind::Lit,
                    span: Span::new(lo, self.pos),
                }
            }
            Some(TokKind::Lifetime) => {
                // Loop label `'a: loop { … }`.
                self.bump();
                if self.cur() == ":" {
                    self.bump();
                    return self.primary_expr(structs);
                }
                Expr {
                    kind: ExprKind::Opaque,
                    span: Span::new(lo, self.pos),
                }
            }
            Some(TokKind::Ident) => self.path_expr(lo, structs),
            _ => {
                // Unknown punctuation: consume one token as Opaque so
                // the caller always progresses.
                self.bump();
                Expr {
                    kind: ExprKind::Opaque,
                    span: Span::new(lo, self.pos),
                }
            }
        }
    }

    /// `|args| body` closures; anything that turns out not to be a
    /// closure stays an opaque run.
    fn closure_or_opaque(&mut self, lo: usize, structs: bool) -> Expr {
        if self.cur() == "||" {
            self.bump();
        } else if self.cur() == "|" {
            self.bump();
            // Parameters to the closing `|` (groups skipped).
            while !self.at_end() && self.cur() != "|" {
                match self.cur() {
                    "(" | "[" | "{" => self.skip_group(),
                    _ => self.bump(),
                }
            }
            if self.cur() == "|" {
                self.bump();
            }
        } else {
            // `move` without `|` (e.g. `async move { … }` bodies).
            if self.cur() == "{" {
                let body = self.block();
                return Expr {
                    span: Span::new(lo, self.pos),
                    kind: ExprKind::Block(body),
                };
            }
            return Expr {
                kind: ExprKind::Opaque,
                span: Span::new(lo, self.pos.max(lo + 1)),
            };
        }
        // Optional `-> Type`.
        if self.cur() == "->" {
            self.bump();
            while !self.at_end() && self.cur() != "{" {
                match self.cur() {
                    "(" | "[" => self.skip_group(),
                    "<" => self.skip_generics(),
                    _ => self.bump(),
                }
            }
        }
        let body = self.expr(structs);
        Expr {
            span: Span::new(lo, body.span.hi.max(self.pos)),
            kind: ExprKind::Paren(Box::new(body)),
        }
    }

    /// A UFCS qualified path in expression-head position:
    /// `<T as Trait>::f(…)` parses to `Path(["Trait", "f"])` (or
    /// `Path(["T", "f"])` without an `as` clause) so call resolution
    /// sees the method name instead of a one-token opaque run. Anything
    /// that is not `<…>::` stays an opaque run over the angle group.
    fn qualified_path(&mut self, lo: usize) -> Expr {
        self.bump(); // `<`
        let mut depth = 1isize;
        let mut last_ident: Option<String> = None;
        let mut after_as: Option<String> = None;
        let mut saw_as = false;
        while !self.at_end() && depth > 0 {
            match self.cur() {
                "<" => depth += 1,
                ">" => depth -= 1,
                "<<" => depth += 2,
                ">>" => depth -= 2,
                "->" => {}
                "as" if depth == 1 => saw_as = true,
                ";" | "{" => break, // malformed: bail before a body
                _ => {
                    if depth == 1 && self.kind(self.pos) == Some(TokKind::Ident) {
                        let t = self.cur().to_string();
                        if saw_as {
                            after_as = Some(t);
                        } else {
                            last_ident = Some(t);
                        }
                    }
                }
            }
            self.bump();
        }
        let mut segments = Vec::new();
        if let Some(q) = after_as.or(last_ident) {
            segments.push(q);
        }
        let mut is_path = false;
        while self.cur() == "::" {
            self.bump();
            if self.cur() == "<" {
                self.skip_generics(); // turbofish
                is_path = true;
                continue;
            }
            if self.kind(self.pos) == Some(TokKind::Ident) {
                segments.push(self.cur().to_string());
                self.bump();
                is_path = true;
                continue;
            }
            break;
        }
        if is_path && !segments.is_empty() {
            Expr {
                kind: ExprKind::Path(segments),
                span: Span::new(lo, self.pos),
            }
        } else {
            Expr {
                kind: ExprKind::Opaque,
                span: Span::new(lo, self.pos.max(lo + 1)),
            }
        }
    }

    /// A path, then whatever follows it: macro bang, struct literal,
    /// or nothing (plain path).
    fn path_expr(&mut self, lo: usize, structs: bool) -> Expr {
        let mut segments = vec![self.cur().to_string()];
        self.bump();
        loop {
            if self.cur() == "::" {
                self.bump();
                if self.cur() == "<" {
                    self.skip_generics(); // turbofish
                    continue;
                }
                if self.kind(self.pos) == Some(TokKind::Ident) {
                    segments.push(self.cur().to_string());
                    self.bump();
                    continue;
                }
                // `::{…}` in use-trees (shouldn't appear in exprs).
                break;
            }
            break;
        }
        // Macro invocation.
        if self.cur() == "!" && matches!(self.text(self.pos + 1), "(" | "[" | "{") {
            self.bump(); // `!`
            self.skip_group();
            let name = segments.last().cloned().unwrap_or_default();
            return Expr {
                kind: ExprKind::Macro { name },
                span: Span::new(lo, self.pos),
            };
        }
        // Struct literal (only where allowed).
        if structs && self.cur() == "{" && !segments.is_empty() {
            // Heuristic: a struct-literal path starts uppercase or is
            // `Self`/`self`-rooted; this keeps `match x { … }`-style
            // confusion impossible because block-heads pass
            // structs = false.
            let last = segments.last().map(String::as_str).unwrap_or("");
            let looks_like_type =
                last.chars().next().is_some_and(|c| c.is_ascii_uppercase()) || last == "Self";
            if looks_like_type {
                self.skip_group();
                return Expr {
                    kind: ExprKind::Opaque,
                    span: Span::new(lo, self.pos),
                };
            }
        }
        Expr {
            kind: ExprKind::Path(segments),
            span: Span::new(lo, self.pos),
        }
    }

    /// The body position of an `if`/`while`/`for`/`loop` holds no `{`
    /// (junk input): a zero-statement block pinned onto the last token
    /// this expression consumed, so the span nests inside it instead of
    /// claiming the next, unconsumed token. `lo` is the expression start;
    /// the keyword is always consumed, so `self.pos > lo` here.
    fn missing_block(&self, lo: usize) -> Block {
        let hi = self.pos.max(lo + 1);
        Block {
            stmts: Vec::new(),
            span: Span::new(hi - 1, hi),
        }
    }

    fn if_expr(&mut self) -> Expr {
        let lo = self.pos;
        self.bump(); // `if`
        let cond = self.condition();
        let then_block = if self.cur() == "{" {
            self.block()
        } else {
            self.missing_block(lo)
        };
        let else_branch = if self.cur() == "else" {
            self.bump();
            if self.cur() == "if" {
                Some(Box::new(self.if_expr()))
            } else if self.cur() == "{" {
                let b = self.block();
                let span = b.span;
                Some(Box::new(Expr {
                    kind: ExprKind::Block(b),
                    span,
                }))
            } else {
                None
            }
        } else {
            None
        };
        Expr {
            span: Span::new(lo, self.pos),
            kind: ExprKind::If {
                cond: Box::new(cond),
                then_block,
                else_branch,
            },
        }
    }

    /// An `if`/`while` condition: handles `let` chains by skipping the
    /// pattern and parsing the scrutinee, struct literals disallowed.
    fn condition(&mut self) -> Expr {
        let lo = self.pos;
        if self.cur() == "let" {
            self.bump();
            // Pattern to the top-level `=`.
            while !self.at_end() {
                match self.cur() {
                    "=" => break,
                    "(" | "[" | "{" => self.skip_group(),
                    _ => self.bump(),
                }
            }
            if self.cur() == "=" {
                self.bump();
            }
            let scrutinee = self.expr(false);
            let mut span = Span::new(lo, scrutinee.span.hi.max(self.pos));
            // `&&` chains after a let-condition.
            if self.cur() == "&&" {
                self.bump();
                let rest = self.condition();
                span.hi = rest.span.hi.max(self.pos);
            }
            return Expr {
                kind: ExprKind::Paren(Box::new(scrutinee)),
                span,
            };
        }
        self.expr(false)
    }

    fn while_expr(&mut self) -> Expr {
        let lo = self.pos;
        self.bump(); // `while`
        let cond = self.condition();
        let body = if self.cur() == "{" {
            self.block()
        } else {
            self.missing_block(lo)
        };
        Expr {
            span: Span::new(lo, self.pos),
            kind: ExprKind::While {
                cond: Box::new(cond),
                body,
            },
        }
    }

    fn for_expr(&mut self) -> Expr {
        let lo = self.pos;
        self.bump(); // `for`
                     // Pattern to `in`.
        while !self.at_end() && self.cur() != "in" && self.cur() != "{" {
            match self.cur() {
                "(" | "[" => self.skip_group(),
                _ => self.bump(),
            }
        }
        if self.cur() == "in" {
            self.bump();
        }
        let iter = self.expr(false);
        let body = if self.cur() == "{" {
            self.block()
        } else {
            self.missing_block(lo)
        };
        Expr {
            span: Span::new(lo, self.pos),
            kind: ExprKind::For {
                iter: Box::new(iter),
                body,
            },
        }
    }

    fn match_expr(&mut self) -> Expr {
        let lo = self.pos;
        self.bump(); // `match`
        let scrutinee = self.expr(false);
        let mut arms = Vec::new();
        if self.cur() == "{" {
            self.bump();
            while !self.at_end() && self.cur() != "}" {
                arms.push(self.match_arm());
            }
            if self.cur() == "}" {
                self.bump();
            }
        }
        Expr {
            span: Span::new(lo, self.pos),
            kind: ExprKind::Match {
                scrutinee: Box::new(scrutinee),
                arms,
            },
        }
    }

    fn match_arm(&mut self) -> Arm {
        let lo = self.pos;
        self.skip_attrs();
        // Pattern: to a top-level `if` (guard) or `=>`.
        let pat_lo = self.pos;
        let mut pat_paths: Vec<Vec<String>> = Vec::new();
        let mut has_wildcard = false;
        let mut pending: Vec<String> = Vec::new();
        let mut expect_segment = false;
        while !self.at_end() {
            let t = self.cur();
            if t == "=>" || (t == "if" && !expect_segment) {
                break;
            }
            // A top-level `,` or `}` can only mean the arm list moved on
            // (junk between arms); stop so recovery stays inside the match.
            if t == "," || t == "}" {
                break;
            }
            match t {
                "(" | "[" | "{" => {
                    if !pending.is_empty() {
                        pat_paths.push(std::mem::take(&mut pending));
                    }
                    self.skip_group();
                    expect_segment = false;
                    continue;
                }
                "::" => {
                    expect_segment = true;
                    self.bump();
                    continue;
                }
                "_" => {
                    has_wildcard = true;
                    self.bump();
                    expect_segment = false;
                    continue;
                }
                _ => {}
            }
            if self.kind(self.pos) == Some(TokKind::Ident) {
                if expect_segment {
                    pending.push(t.to_string());
                } else {
                    if !pending.is_empty() {
                        pat_paths.push(std::mem::take(&mut pending));
                    }
                    pending.push(t.to_string());
                }
                expect_segment = false;
            } else {
                if !pending.is_empty() {
                    pat_paths.push(std::mem::take(&mut pending));
                }
                expect_segment = false;
            }
            self.bump();
        }
        if !pending.is_empty() {
            pat_paths.push(pending);
        }
        let pat_hi = self.pos.max(pat_lo + 1);
        let pat_span = Span::new(pat_lo, pat_hi);
        // Guard.
        let guard = if self.cur() == "if" {
            self.bump();
            Some(self.guard_expr())
        } else {
            None
        };
        let body = if self.cur() == "=>" {
            self.bump();
            self.expr(true)
        } else {
            // Junk between arms: no `=>` ever appeared. Reuse the tokens
            // the pattern scan consumed as an opaque body so the arm still
            // carries a valid, non-empty span.
            Expr {
                span: pat_span,
                kind: ExprKind::Opaque,
            }
        };
        if self.cur() == "," {
            self.bump();
        }
        Arm {
            pat_span,
            pat_paths,
            has_wildcard,
            guard,
            body,
            span: Span::new(lo, self.pos.max(lo + 1)),
        }
    }

    /// A guard expression: like a condition but must stop at `=>`.
    fn guard_expr(&mut self) -> Expr {
        // The normal expression parser stops at `=>` anyway (it is no
        // operator), and struct literals are legal in guards.
        self.expr(true)
    }
}

/// Extract variant names from an enum body token run: idents at brace
/// depth zero that start a variant (first token, or right after a `,`),
/// with attribute groups and payload groups skipped.
/// Extract positional parameter names from the tokens between a fn's
/// parameter parens. Parameters split on commas at bracket/angle depth
/// zero; each yields the identifier it binds (`self` for receivers,
/// `"_"` when the pattern binds no single name) so indices line up with
/// call-site arguments.
fn param_names(body: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0usize;
    let start = |toks: &[Token], mut k: usize| -> String {
        // Skip receiver/pattern prefixes: `&`, `&&`, lifetimes, `mut`.
        while let Some(t) = toks.get(k) {
            match t.text.as_str() {
                "&" | "&&" | "mut" => k += 1,
                _ if t.kind == TokKind::Lifetime => k += 1,
                _ => break,
            }
        }
        match toks.get(k) {
            Some(t) if t.text == "self" => "self".to_string(),
            Some(t)
                if t.kind == TokKind::Ident
                    && toks
                        .get(k + 1)
                        .is_none_or(|n| n.text == ":" || n.text == ",") =>
            {
                t.text.clone()
            }
            _ => "_".to_string(),
        }
    };
    let mut param_lo = 0usize;
    let mut depth = 0isize;
    while let Some(t) = body.get(i) {
        match t.text.as_str() {
            "(" | "[" | "{" => {
                i = skip_balanced(body, i);
                continue;
            }
            "<" => depth += 1,
            ">" => depth -= 1,
            "<<" => depth += 2,
            ">>" => depth -= 2,
            "->" => {}
            "," if depth <= 0 => {
                out.push(start(body, param_lo));
                param_lo = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if param_lo < body.len() {
        out.push(start(body, param_lo));
    }
    out
}

fn enum_variants(body: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut at_variant_start = true;
    while let Some(t) = body.get(i) {
        match t.text.as_str() {
            "#" => {
                // Attribute: skip `[…]`.
                i += 1;
                if body.get(i).is_some_and(|t| t.text == "[") {
                    i = skip_balanced(body, i);
                }
                continue;
            }
            "(" | "{" | "[" => {
                i = skip_balanced(body, i);
                at_variant_start = false;
                continue;
            }
            "," => {
                at_variant_start = true;
                i += 1;
                continue;
            }
            "=" => {
                // Discriminant: skip to the next top-level comma.
                while let Some(dt) = body.get(i) {
                    if dt.text == "," {
                        break;
                    }
                    if matches!(dt.text.as_str(), "(" | "{" | "[") {
                        i = skip_balanced(body, i);
                    } else {
                        i += 1;
                    }
                }
                continue;
            }
            _ => {}
        }
        if at_variant_start && t.kind == TokKind::Ident {
            out.push(t.text.clone());
            at_variant_start = false;
        }
        i += 1;
    }
    out
}

/// Skip a balanced group inside a token slice; `open` indexes the
/// opener. Returns the index just past the matching closer (or the
/// slice end).
fn skip_balanced(body: &[Token], open: usize) -> usize {
    let (o, c) = match body.get(open).map(|t| t.text.as_str()) {
        Some("(") => ("(", ")"),
        Some("[") => ("[", "]"),
        Some("{") => ("{", "}"),
        _ => return open + 1,
    };
    let mut depth = 0usize;
    let mut i = open;
    while let Some(t) = body.get(i) {
        if t.text == o {
            depth += 1;
        } else if t.text == c {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    body.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(src: &str) -> (Vec<Token>, File) {
        let lexed = lex(src);
        let f = parse(&lexed.tokens);
        (lexed.tokens, f)
    }

    #[test]
    fn fn_with_body_parses_and_validates() {
        let (_t, f) = file("pub fn lb_x(q: &[f64]) -> f64 { let a = 1.0; a }\n");
        validate_spans(&f).unwrap();
        let mut fns = Vec::new();
        walk_fns(&f, &mut |d, _| {
            fns.push((d.name.clone(), d.is_pub, d.body.is_some()));
        });
        assert_eq!(fns, vec![("lb_x".to_string(), true, true)]);
    }

    #[test]
    fn enum_variants_extracted() {
        let (_t, f) = file(
            "pub enum Invariance { Rotation, RotationMirror, RotationLimited { max_shift: usize }, RotationLimitedMirror { max_shift: usize } }\n",
        );
        validate_spans(&f).unwrap();
        let ItemKind::Enum(e) = &f.items[0].kind else {
            panic!("expected enum");
        };
        assert_eq!(e.name, "Invariance");
        assert_eq!(
            e.variants,
            vec![
                "Rotation",
                "RotationMirror",
                "RotationLimited",
                "RotationLimitedMirror"
            ]
        );
    }

    #[test]
    fn match_arms_and_wildcard() {
        let (_t, f) =
            file("fn f(x: E) -> u8 { match x { E::A => 1, E::B { v } if v > 0 => 2, _ => 0 } }\n");
        validate_spans(&f).unwrap();
        let mut matches = 0;
        walk_fns(&f, &mut |decl, _| {
            let body = decl.body.as_ref().unwrap();
            walk_exprs(body, &mut |e| {
                if let ExprKind::Match { arms, .. } = &e.kind {
                    matches += 1;
                    assert_eq!(arms.len(), 3);
                    assert!(arms[2].has_wildcard);
                    assert!(!arms[0].has_wildcard);
                    assert!(arms[1].guard.is_some());
                    assert_eq!(arms[0].pat_paths, vec![vec!["E".to_string(), "A".into()]]);
                }
            });
        });
        assert_eq!(matches, 1);
    }

    #[test]
    fn if_with_comparison_and_return() {
        let (_t, f) = file("fn f(lb: f64, r: f64) -> bool { if lb >= r { return false; } true }\n");
        validate_spans(&f).unwrap();
        let mut seen_cmp = false;
        walk_fns(&f, &mut |decl, _| {
            walk_exprs(decl.body.as_ref().unwrap(), &mut |e| {
                if let ExprKind::Binary { op, .. } = &e.kind {
                    if op == ">=" {
                        seen_cmp = true;
                    }
                }
            });
        });
        assert!(seen_cmp);
    }

    #[test]
    fn method_chain_and_macro() {
        let (_t, f) =
            file("fn f(a: &A) { let x = a.b().c(1, 2); debug_assert!(x >= 0, \"msg\"); }\n");
        validate_spans(&f).unwrap();
        let mut macros = Vec::new();
        let mut methods = Vec::new();
        walk_fns(&f, &mut |decl, _| {
            walk_exprs(decl.body.as_ref().unwrap(), &mut |e| match &e.kind {
                ExprKind::Macro { name } => macros.push(name.clone()),
                ExprKind::MethodCall { name, .. } => methods.push(name.clone()),
                _ => {}
            });
        });
        assert_eq!(macros, vec!["debug_assert"]);
        // Pre-order: the outer call (`.c`) is visited before its receiver.
        assert_eq!(methods, vec!["c", "b"]);
    }

    #[test]
    fn struct_literal_vs_match_block() {
        // `match x { … }` must not be eaten as a struct literal; a real
        // struct literal must not break arm parsing.
        let (_t, f) =
            file("fn f(x: P) -> P { let p = P { a: 1 }; match x { P { a } => P { a }, } }\n");
        validate_spans(&f).unwrap();
    }

    #[test]
    fn totality_on_junk() {
        // Unbalanced garbage still parses and validates.
        for junk in [
            "fn f( {",
            "} } )",
            "enum E {",
            "match {",
            "#[",
            "fn",
            "let x = ;",
            "impl {",
            "..= .. ..",
            "x.",
            "'a 'b'",
            "pub pub fn",
        ] {
            let (_t, f) = file(junk);
            validate_spans(&f).unwrap_or_else(|e| panic!("junk {junk:?}: {e}"));
        }
    }

    #[test]
    fn nested_items_walkable() {
        let (_t, f) = file(
            "mod m { impl T for S { fn inner(&self) {} } }\ntrait Tr { fn dflt(&self) { } fn sig(&self); }\n",
        );
        validate_spans(&f).unwrap();
        let mut names = Vec::new();
        walk_fns(&f, &mut |d, _| names.push(d.name.clone()));
        assert_eq!(names, vec!["inner", "dflt", "sig"]);
    }

    #[test]
    fn closures_loops_ranges() {
        let (_t, f) = file(
            "fn f(xs: &[f64]) -> f64 { let mut s = 0.0; for (i, x) in xs.iter().enumerate() { s += x * i as f64; } let g = |a: f64| -> f64 { a + 1.0 }; while s > 1.0 { s /= 2.0; } 'outer: loop { break 'outer; } xs.iter().map(|v| v + 1.0).sum::<f64>() + g(s) + xs[..].len() as f64 }\n",
        );
        validate_spans(&f).unwrap();
    }

    #[test]
    fn if_let_and_let_else() {
        let (_t, f) = file(
            "fn f(o: Option<u8>) -> u8 { let Some(x) = o else { return 0; }; if let Some(y) = Some(x) { y } else { 0 } }\n",
        );
        validate_spans(&f).unwrap();
    }

    #[test]
    fn fn_params_captured_positionally() {
        let (_t, f) = file(
            "fn f(&mut self, q: &[f64], mut n: usize, (a, b): (u8, u8), m: BTreeMap<K, V>) {}\n",
        );
        validate_spans(&f).unwrap();
        let ItemKind::Fn(decl) = &f.items[0].kind else {
            panic!("expected fn");
        };
        assert_eq!(decl.params, vec!["self", "q", "n", "_", "m"]);
    }

    #[test]
    fn impl_headers_record_type_and_trait() {
        let (_t, f) = file(
            "impl fmt::Display for QueryTrace { fn fmt(&self) {} }\nimpl<T: Obs> Scan<T> where T: Clone { fn go(&self) {} }\n",
        );
        validate_spans(&f).unwrap();
        let ItemKind::Impl(d0) = &f.items[0].kind else {
            panic!("expected impl");
        };
        assert_eq!(d0.self_ty.as_deref(), Some("QueryTrace"));
        assert_eq!(d0.trait_name.as_deref(), Some("Display"));
        let ItemKind::Impl(d1) = &f.items[1].kind else {
            panic!("expected impl");
        };
        assert_eq!(d1.self_ty.as_deref(), Some("Scan"));
        assert_eq!(d1.trait_name, None);
    }

    #[test]
    fn trait_header_records_name_and_plain_pub() {
        let (_t, f) = file(
            "pub trait Bound: Base { fn lb(&self) -> f64 { 0.0 } }\npub(crate) trait Scoped { }\n",
        );
        validate_spans(&f).unwrap();
        let ItemKind::Trait(d0) = &f.items[0].kind else {
            panic!("expected trait");
        };
        assert_eq!(d0.name.as_deref(), Some("Bound"));
        assert!(d0.is_pub);
        let ItemKind::Trait(d1) = &f.items[1].kind else {
            panic!("expected trait");
        };
        assert_eq!(d1.name.as_deref(), Some("Scoped"));
        assert!(!d1.is_pub, "pub(crate) is not plain pub");
    }

    #[test]
    fn ufcs_qualified_path_parses_as_path_call() {
        let (_t, f) =
            file("fn f(p: &Paa) -> f64 { <Paa as Bound>::min_dist(p) + <f64>::from_bits(0) }\n");
        validate_spans(&f).unwrap();
        let mut calls = Vec::new();
        walk_fns(&f, &mut |decl, _| {
            walk_exprs(decl.body.as_ref().unwrap(), &mut |e| {
                if let ExprKind::Call { callee, .. } = &e.kind {
                    if let ExprKind::Path(segs) = &callee.kind {
                        calls.push(segs.clone());
                    }
                }
            });
        });
        assert_eq!(
            calls,
            vec![
                vec!["Bound".to_string(), "min_dist".into()],
                vec!["f64".to_string(), "from_bits".into()],
            ]
        );
    }

    #[test]
    fn self_path_call_parses_as_path() {
        let (_t, f) = file("impl S { fn f(&self) -> f64 { Self::helper(1) } }\n");
        validate_spans(&f).unwrap();
        let mut calls = Vec::new();
        walk_fns(&f, &mut |decl, _| {
            if decl.name != "f" {
                return;
            }
            walk_exprs(decl.body.as_ref().unwrap(), &mut |e| {
                if let ExprKind::Call { callee, .. } = &e.kind {
                    if let ExprKind::Path(segs) = &callee.kind {
                        calls.push(segs.clone());
                    }
                }
            });
        });
        assert_eq!(calls, vec![vec!["Self".to_string(), "helper".into()]]);
    }
}
