//! Cross-crate symbol resolution: a whole-workspace function index the
//! call graph ([`crate::callgraph`]) and the interprocedural dataflow
//! ([`crate::interproc`]) resolve call sites against.
//!
//! Resolution is deliberately name-based — the linter has no type
//! system — with a preference order that matches how the workspace
//! actually calls things:
//!
//! 1. `Self::f` resolves inside the caller's `impl` block's type
//!    (any impl of the same type in the same file, then crate);
//! 2. same-file definitions win over same-crate ones;
//! 3. same-crate definitions win over the rest of the workspace;
//! 4. a unique global definition resolves; multiple remaining
//!    candidates resolve to **all** of them (over-approximation keeps
//!    the taint analysis sound — a missed edge could hide a violation);
//! 5. no candidate at all is an *explicit* unresolved bucket entry,
//!    never a silently dropped edge (the totality invariant the
//!    call-graph proptest checks).

use crate::ast::{FnDecl, Item, ItemKind, Span};
use crate::source::SourceFile;
use std::collections::HashMap;

/// What owns a function definition — context for `Self::` resolution
/// and trait-default visibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Owner {
    /// A free function (top-level or in a `mod`).
    Free,
    /// A method in an `impl` block.
    Impl {
        /// Last path segment of the impl's self type, when nameable.
        self_ty: Option<String>,
        /// Implemented trait, for trait impls.
        trait_name: Option<String>,
    },
    /// A method (signature or default body) in a `trait` declaration.
    Trait {
        /// The trait's name, when present.
        name: Option<String>,
    },
}

/// One function definition in the workspace index.
#[derive(Debug)]
pub struct FnNode<'a> {
    /// Dense node id — the index into [`GlobalIndex::nodes`].
    pub id: usize,
    /// Index of the defining file in the scan unit.
    pub file: usize,
    /// The declaration itself.
    pub decl: &'a FnDecl,
    /// Span of the whole item.
    pub item_span: Span,
    /// What owns the definition.
    pub owner: Owner,
    /// Crate the file belongs to (first path component under
    /// `crates/`, or the leading path component otherwise).
    pub crate_name: String,
    /// True when the definition sits in test code (test file or
    /// `#[cfg(test)]` span) — test fns join the graph but rules skip
    /// them.
    pub is_test: bool,
}

/// The whole-workspace function index.
#[derive(Debug, Default)]
pub struct GlobalIndex<'a> {
    /// Every function definition, in (file, source) order.
    pub nodes: Vec<FnNode<'a>>,
    /// name → node ids bearing that name.
    by_name: HashMap<&'a str, Vec<usize>>,
}

/// Derive the crate name a workspace-relative path belongs to.
///
/// Files inside a `fixtures/<name>/` directory form a scan unit of
/// their own and take `<name>` as their crate: attributing a fixture to
/// its host crate would subject it to the host's availability
/// exclusions (the lint crate excludes *itself* from the serve root
/// set, which must not silence findings seeded in its fixtures).
pub fn crate_of(path: &str) -> String {
    let parts: Vec<&str> = path.split('/').collect();
    if let Some(i) = parts.iter().position(|p| *p == "fixtures") {
        if let (Some(name), true) = (parts.get(i + 1), parts.len() > i + 2) {
            return (*name).to_string();
        }
    }
    match parts.first() {
        Some(&"crates") => parts.get(1).copied().unwrap_or("").to_string(),
        Some(first) => (*first).to_string(),
        None => String::new(),
    }
}

impl<'a> GlobalIndex<'a> {
    /// Build the index over a scan unit.
    pub fn build(files: &'a [SourceFile]) -> GlobalIndex<'a> {
        let mut index = GlobalIndex::default();
        for (file_idx, file) in files.iter().enumerate() {
            let crate_name = crate_of(&file.path);
            collect(&file.ast.items, &Owner::Free, &mut |decl, span, owner| {
                let id = index.nodes.len();
                index.nodes.push(FnNode {
                    id,
                    file: file_idx,
                    decl,
                    item_span: span,
                    owner: owner.clone(),
                    crate_name: crate_name.clone(),
                    is_test: file.is_test_code(decl.name_line),
                });
                index.by_name.entry(&decl.name).or_default().push(id);
            });
        }
        index
    }

    /// All definitions named `name`.
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Resolve a call to `name` made from `caller` (a node id), with the
    /// qualifying path segment before the name when the call had one
    /// (`Self::f` → `Some("Self")`, `module::f` → `Some("module")`).
    /// Returns the resolved target ids, empty when nothing matches.
    pub fn resolve(&self, caller: usize, name: &str, qualifier: Option<&str>) -> Vec<usize> {
        let candidates = self.named(name);
        if candidates.is_empty() {
            return Vec::new();
        }
        let Some(from) = self.nodes.get(caller) else {
            return Vec::new();
        };
        // `Self::f` / `Type::f`: prefer methods of that type.
        if let Some(q) = qualifier {
            let ty = if q == "Self" {
                match &from.owner {
                    Owner::Impl { self_ty, .. } => self_ty.as_deref(),
                    Owner::Trait { name } => name.as_deref(),
                    Owner::Free => None,
                }
            } else {
                Some(q)
            };
            if let Some(ty) = ty {
                let typed: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&id| {
                        self.nodes.get(id).is_some_and(|n| {
                            matches!(
                                &n.owner,
                                Owner::Impl { self_ty: Some(t), .. } if t == ty
                            ) || matches!(
                                &n.owner,
                                Owner::Trait { name: Some(t) } if t == ty
                            )
                        })
                    })
                    .collect();
                if !typed.is_empty() {
                    return prefer_near(self, from, typed);
                }
            }
        }
        prefer_near(self, from, candidates.to_vec())
    }
}

/// Narrow `candidates` by locality: same file, then same crate, then
/// everything (the ambiguous case resolves to all remaining targets).
fn prefer_near(index: &GlobalIndex<'_>, from: &FnNode<'_>, candidates: Vec<usize>) -> Vec<usize> {
    let same_file: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&id| index.nodes.get(id).is_some_and(|n| n.file == from.file))
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let same_crate: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&id| {
            index
                .nodes
                .get(id)
                .is_some_and(|n| n.crate_name == from.crate_name)
        })
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    candidates
}

/// Walk items collecting function declarations with their owner.
fn collect<'a>(items: &'a [Item], owner: &Owner, f: &mut impl FnMut(&'a FnDecl, Span, &Owner)) {
    for item in items {
        match &item.kind {
            ItemKind::Fn(decl) => {
                f(decl, item.span, owner);
                // Nested fns inside the body are free functions.
                if let Some(body) = &decl.body {
                    for stmt in &body.stmts {
                        if let crate::ast::StmtKind::Item(it) = &stmt.kind {
                            collect(std::slice::from_ref(it), &Owner::Free, f);
                        }
                    }
                }
            }
            ItemKind::Mod(inner) => collect(inner, &Owner::Free, f),
            ItemKind::Impl(decl) => collect(
                &decl.items,
                &Owner::Impl {
                    self_ty: decl.self_ty.clone(),
                    trait_name: decl.trait_name.clone(),
                },
                f,
            ),
            ItemKind::Trait(decl) => collect(
                &decl.items,
                &Owner::Trait {
                    name: decl.name.clone(),
                },
                f,
            ),
            ItemKind::Enum(_) | ItemKind::Other => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn files(srcs: &[(&str, &str)]) -> Vec<SourceFile> {
        srcs.iter()
            .map(|(p, s)| SourceFile::parse(p, s, FileKind::Library))
            .collect()
    }

    #[test]
    fn crate_names_derived_from_paths() {
        assert_eq!(
            crate_of("crates/rotind-index/src/hmerge.rs"),
            "rotind-index"
        );
        assert_eq!(crate_of("tests/exactness.rs"), "tests");
        assert_eq!(
            crate_of("crates/rotind-lint/tests/fixtures/no_panic_reachable_bad/loop.rs"),
            "no_panic_reachable_bad",
            "fixture crates must not inherit the host crate's exclusions"
        );
    }

    #[test]
    fn same_file_wins_over_same_crate_and_global() {
        let fs = files(&[
            (
                "crates/a/src/x.rs",
                "fn helper() {}\nfn caller() { helper(); }\n",
            ),
            ("crates/a/src/y.rs", "fn helper() {}\n"),
            ("crates/b/src/z.rs", "fn helper() {}\n"),
        ]);
        let idx = GlobalIndex::build(&fs);
        let caller = idx
            .nodes
            .iter()
            .find(|n| n.decl.name == "caller")
            .unwrap()
            .id;
        let targets = idx.resolve(caller, "helper", None);
        assert_eq!(targets.len(), 1);
        assert_eq!(idx.nodes[targets[0]].file, 0);
    }

    #[test]
    fn self_qualifier_prefers_the_impl_type() {
        let fs = files(&[(
            "crates/a/src/x.rs",
            "impl Radius { fn get(&self) -> f64 { 0.0 } fn probe(&self) -> f64 { Self::get(self) } }\nimpl Budget { fn get(&self) -> u64 { 0 } }\n",
        )]);
        let idx = GlobalIndex::build(&fs);
        let caller = idx
            .nodes
            .iter()
            .find(|n| n.decl.name == "probe")
            .unwrap()
            .id;
        let targets = idx.resolve(caller, "get", Some("Self"));
        assert_eq!(targets.len(), 1);
        assert_eq!(
            idx.nodes[targets[0]].owner,
            Owner::Impl {
                self_ty: Some("Radius".into()),
                trait_name: None
            }
        );
    }

    #[test]
    fn ambiguous_cross_crate_resolves_to_all() {
        let fs = files(&[
            ("crates/a/src/x.rs", "fn caller() { shared(); }\n"),
            ("crates/b/src/y.rs", "fn shared() {}\n"),
            ("crates/c/src/z.rs", "fn shared() {}\n"),
        ]);
        let idx = GlobalIndex::build(&fs);
        let caller = idx
            .nodes
            .iter()
            .find(|n| n.decl.name == "caller")
            .unwrap()
            .id;
        assert_eq!(idx.resolve(caller, "shared", None).len(), 2);
        assert!(idx.resolve(caller, "missing", None).is_empty());
    }
}
