//! The `rotind-lint` binary — the CI gate.
//!
//! ```text
//! rotind-lint                      # workspace scan, compare against lint-baseline.json
//! rotind-lint --write-baseline     # workspace scan, re-ratchet the baseline
//! rotind-lint --no-baseline        # workspace scan, report every finding
//! rotind-lint --self-check         # ratchet-gate the linter's own crate only
//! rotind-lint <path>…              # lint explicit files/dirs as library code (fixture mode)
//! rotind-lint --format sarif …     # SARIF 2.1.0 findings on stdout (also: human, json)
//! rotind-lint --json …             # shorthand for --format json
//! rotind-lint --list               # print the rule catalogue
//! ```
//!
//! Exit codes: 0 clean / at-or-below baseline, 1 findings or ratchet
//! regression, 2 usage or I/O error.

use rotind_lint::baseline::{self, Counts, BASELINE_FILE};
use rotind_lint::findings::{count_by_rule_and_file, render_human, render_json, Finding};
use rotind_lint::rules::ALL_RULES;
use rotind_lint::{lint_paths, lint_workspace, sarif, workspace_root};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Options {
    format: Format,
    write_baseline: bool,
    no_baseline: bool,
    self_check: bool,
    list: bool,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Human,
        write_baseline: false,
        no_baseline: false,
        self_check: false,
        list: false,
        paths: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let arg = arg.as_str();
        if let Some(value) = arg.strip_prefix("--format") {
            let value = match value.strip_prefix('=') {
                Some(v) => v.to_string(),
                None if value.is_empty() => args
                    .next()
                    .ok_or(format!("--format needs a value\n\n{USAGE}"))?,
                None => return Err(format!("unknown flag `{arg}`\n\n{USAGE}")),
            };
            opts.format = match value.as_str() {
                "human" => Format::Human,
                "json" => Format::Json,
                "sarif" => Format::Sarif,
                other => {
                    return Err(format!(
                        "unknown format `{other}` (expected human, json or sarif)\n\n{USAGE}"
                    ))
                }
            };
            continue;
        }
        match arg {
            "--json" => opts.format = Format::Json,
            "--write-baseline" => opts.write_baseline = true,
            "--no-baseline" => opts.no_baseline = true,
            "--self-check" => opts.self_check = true,
            "--list" => opts.list = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n\n{USAGE}"))
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if opts.write_baseline && !opts.paths.is_empty() {
        return Err("--write-baseline only applies to the workspace scan".to_string());
    }
    if opts.self_check && (opts.write_baseline || opts.no_baseline || !opts.paths.is_empty()) {
        return Err(
            "--self-check runs the workspace scan against the committed ratchet; \
                    it combines only with --format"
                .to_string(),
        );
    }
    Ok(opts)
}

const USAGE: &str = "usage: rotind-lint [--format human|json|sarif] \
                     [--write-baseline | --no-baseline | --self-check | --list] [path…]";

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if opts.list {
        for r in ALL_RULES {
            println!("{:<14} {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }
    match run(&opts) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("rotind-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(opts: &Options) -> Result<bool, String> {
    let root = workspace_root();

    // Fixture mode: lint exactly the given paths, no ratchet.
    if !opts.paths.is_empty() {
        let findings = lint_paths(root, &opts.paths).map_err(|e| e.to_string())?;
        report(&findings, opts.format);
        return Ok(findings.is_empty());
    }

    let findings = lint_workspace(root).map_err(|e| e.to_string())?;

    if opts.self_check {
        return self_check(root, &findings, opts.format);
    }

    if opts.no_baseline {
        report(&findings, opts.format);
        if opts.format == Format::Human {
            summary(&findings);
        }
        return Ok(findings.is_empty());
    }

    let baseline_path = root.join(BASELINE_FILE);
    if opts.write_baseline {
        let counts = count_by_rule_and_file(&findings);
        std::fs::write(&baseline_path, baseline::to_json(&counts)).map_err(|e| e.to_string())?;
        println!(
            "wrote {} ({} findings across {} rules)",
            baseline_path.display(),
            findings.len(),
            counts.len()
        );
        return Ok(true);
    }

    let committed = std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "cannot read {} ({e}); run `cargo run -p rotind-lint -- --write-baseline` once",
            baseline_path.display()
        )
    })?;
    let committed = baseline::from_json(&committed)?;
    let cmp = baseline::compare(&findings, &committed);

    match opts.format {
        Format::Human => {}
        Format::Json => print!("{}", render_json(&findings)),
        Format::Sarif => print!("{}", sarif::render(&findings)),
    }
    let mut status = String::new();
    for (rule, path, permitted, count) in &cmp.regressions {
        let _ = writeln!(
            status,
            "RATCHET {rule}: {path} has {count} finding(s), baseline allows {permitted}"
        );
        // Show the individual findings of the offending pair so the
        // developer sees candidates without re-running in --no-baseline.
        for f in findings
            .iter()
            .filter(|f| f.rule == rule && &f.path == path)
        {
            let _ = writeln!(status, "  {}:{}: {}", f.path, f.line, f.message);
        }
    }
    for (rule, path, permitted, count) in &cmp.improvements {
        let _ = writeln!(
            status,
            "improved {rule}: {path} is down to {count} (baseline {permitted}) — \
             re-ratchet with `cargo run -p rotind-lint -- --write-baseline`"
        );
    }
    if cmp.is_pass() {
        let _ = writeln!(
            status,
            "lint gate: PASS ({} finding(s), all within the committed ratchet)",
            findings.len()
        );
    } else {
        let _ = writeln!(
            status,
            "lint gate: FAIL ({} (rule, file) pair(s) above the ratchet)",
            cmp.regressions.len()
        );
    }
    emit_status(&status, opts.format);
    Ok(cmp.is_pass())
}

/// `--self-check`: gate only the linter's own crate against the matching
/// slice of the committed ratchet. CI runs this as a fast sanity step —
/// a linter that cannot keep its own house clean has no business gating
/// anyone else's.
fn self_check(
    root: &std::path::Path,
    findings: &[Finding],
    format: Format,
) -> Result<bool, String> {
    const SELF: &str = "crates/rotind-lint/";
    let own: Vec<Finding> = findings
        .iter()
        .filter(|f| f.path.starts_with(SELF))
        .cloned()
        .collect();
    let baseline_path = root.join(BASELINE_FILE);
    let committed = std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "cannot read {} ({e}); run `cargo run -p rotind-lint -- --write-baseline` once",
            baseline_path.display()
        )
    })?;
    let committed = baseline::from_json(&committed)?;
    let own_baseline: Counts = committed
        .into_iter()
        .map(|(rule, files)| {
            (
                rule,
                files
                    .into_iter()
                    .filter(|(path, _)| path.starts_with(SELF))
                    .collect(),
            )
        })
        .collect();
    let cmp = baseline::compare(&own, &own_baseline);
    match format {
        Format::Human => {}
        Format::Json => print!("{}", render_json(&own)),
        Format::Sarif => print!("{}", sarif::render(&own)),
    }
    let mut status = String::new();
    for (rule, path, permitted, count) in &cmp.regressions {
        let _ = writeln!(
            status,
            "RATCHET {rule}: {path} has {count} finding(s), baseline allows {permitted}"
        );
        for f in own.iter().filter(|f| f.rule == rule && &f.path == path) {
            let _ = writeln!(status, "  {}:{}: {}", f.path, f.line, f.message);
        }
    }
    if cmp.is_pass() {
        let _ = writeln!(
            status,
            "self-check: PASS ({} finding(s) in {SELF}, all within the committed ratchet)",
            own.len()
        );
    } else {
        let _ = writeln!(
            status,
            "self-check: FAIL ({} (rule, file) pair(s) above the ratchet)",
            cmp.regressions.len()
        );
    }
    emit_status(&status, format);
    Ok(cmp.is_pass())
}

/// Gate and ratchet lines go to stdout in human mode, but to stderr
/// when the caller asked for a machine format — so `--format sarif`
/// leaves a parseable document on stdout while the verdict stays
/// visible in the terminal or CI log.
fn emit_status(status: &str, format: Format) {
    match format {
        Format::Human => print!("{status}"),
        Format::Json | Format::Sarif => eprint!("{status}"),
    }
}

fn report(findings: &[Finding], format: Format) {
    match format {
        Format::Human => print!("{}", render_human(findings)),
        Format::Json => print!("{}", render_json(findings)),
        Format::Sarif => print!("{}", sarif::render(findings)),
    }
}

fn summary(findings: &[Finding]) {
    let counts = count_by_rule_and_file(findings);
    for (rule, files) in &counts {
        let total: usize = files.values().sum();
        println!(
            "{rule:<14} {total:>4} finding(s) in {} file(s)",
            files.len()
        );
    }
}
