//! The `rotind-lint` binary — the CI gate.
//!
//! ```text
//! rotind-lint                      # workspace scan, compare against lint-baseline.json
//! rotind-lint --write-baseline     # workspace scan, re-ratchet the baseline
//! rotind-lint --no-baseline        # workspace scan, report every finding
//! rotind-lint <path>…              # lint explicit files/dirs as library code (fixture mode)
//! rotind-lint --json …             # machine-readable findings on stdout
//! rotind-lint --list               # print the rule catalogue
//! ```
//!
//! Exit codes: 0 clean / at-or-below baseline, 1 findings or ratchet
//! regression, 2 usage or I/O error.

use rotind_lint::baseline::{self, BASELINE_FILE};
use rotind_lint::findings::{count_by_rule_and_file, render_human, render_json, Finding};
use rotind_lint::rules::ALL_RULES;
use rotind_lint::{lint_paths, lint_workspace, workspace_root};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    json: bool,
    write_baseline: bool,
    no_baseline: bool,
    list: bool,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        write_baseline: false,
        no_baseline: false,
        list: false,
        paths: Vec::new(),
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--write-baseline" => opts.write_baseline = true,
            "--no-baseline" => opts.no_baseline = true,
            "--list" => opts.list = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n\n{USAGE}"))
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if opts.write_baseline && !opts.paths.is_empty() {
        return Err("--write-baseline only applies to the workspace scan".to_string());
    }
    Ok(opts)
}

const USAGE: &str =
    "usage: rotind-lint [--json] [--write-baseline | --no-baseline | --list] [path…]";

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if opts.list {
        for r in ALL_RULES {
            println!("{:<14} {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }
    match run(&opts) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("rotind-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(opts: &Options) -> Result<bool, String> {
    let root = workspace_root();

    // Fixture mode: lint exactly the given paths, no ratchet.
    if !opts.paths.is_empty() {
        let findings = lint_paths(root, &opts.paths).map_err(|e| e.to_string())?;
        report(&findings, opts.json);
        return Ok(findings.is_empty());
    }

    let findings = lint_workspace(root).map_err(|e| e.to_string())?;

    if opts.no_baseline {
        report(&findings, opts.json);
        summary(&findings);
        return Ok(findings.is_empty());
    }

    let baseline_path = root.join(BASELINE_FILE);
    if opts.write_baseline {
        let counts = count_by_rule_and_file(&findings);
        std::fs::write(&baseline_path, baseline::to_json(&counts)).map_err(|e| e.to_string())?;
        println!(
            "wrote {} ({} findings across {} rules)",
            baseline_path.display(),
            findings.len(),
            counts.len()
        );
        return Ok(true);
    }

    let committed = std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "cannot read {} ({e}); run `cargo run -p rotind-lint -- --write-baseline` once",
            baseline_path.display()
        )
    })?;
    let committed = baseline::from_json(&committed)?;
    let cmp = baseline::compare(&findings, &committed);

    if opts.json {
        print!("{}", render_json(&findings));
    }
    for (rule, path, permitted, count) in &cmp.regressions {
        println!("RATCHET {rule}: {path} has {count} finding(s), baseline allows {permitted}");
        // Show the individual findings of the offending pair so the
        // developer sees candidates without re-running in --no-baseline.
        for f in findings
            .iter()
            .filter(|f| f.rule == rule && &f.path == path)
        {
            println!("  {}:{}: {}", f.path, f.line, f.message);
        }
    }
    for (rule, path, permitted, count) in &cmp.improvements {
        println!(
            "improved {rule}: {path} is down to {count} (baseline {permitted}) — \
             re-ratchet with `cargo run -p rotind-lint -- --write-baseline`"
        );
    }
    if cmp.is_pass() {
        println!(
            "lint gate: PASS ({} finding(s), all within the committed ratchet)",
            findings.len()
        );
    } else {
        println!(
            "lint gate: FAIL ({} (rule, file) pair(s) above the ratchet)",
            cmp.regressions.len()
        );
    }
    Ok(cmp.is_pass())
}

fn report(findings: &[Finding], json: bool) {
    if json {
        print!("{}", render_json(findings));
    } else {
        print!("{}", render_human(findings));
    }
}

fn summary(findings: &[Finding]) {
    let counts = count_by_rule_and_file(findings);
    for (rule, files) in &counts {
        let total: usize = files.values().sum();
        println!(
            "{rule:<14} {total:>4} finding(s) in {} file(s)",
            files.len()
        );
    }
}
