//! The `rotind-lint` binary — the CI gate.
//!
//! ```text
//! rotind-lint                      # workspace scan, compare against lint-baseline.json
//! rotind-lint --write-baseline     # workspace scan, re-ratchet the baseline
//! rotind-lint --write-timing       # workspace scan, snapshot results/lint_timing.json
//! rotind-lint --no-baseline        # workspace scan, report every finding
//! rotind-lint --self-check         # ratchet-gate the linter's own crate only
//! rotind-lint <path>…              # lint explicit files/dirs as library code (fixture mode)
//! rotind-lint --format sarif …     # SARIF 2.1.0 findings on stdout (also: human, json)
//! rotind-lint --json …             # shorthand for --format json
//! rotind-lint --list               # print the rule catalogue
//! ```
//!
//! The default workspace scan also runs the lint wall-time gate against
//! the committed `results/lint_timing.json` (same-host only; see
//! [`rotind_lint::timing`]).
//!
//! Exit codes: 0 clean / at-or-below baseline, 1 findings, ratchet or
//! timing regression, 2 usage or I/O error.

use rotind_lint::baseline::{self, Counts, BASELINE_FILE};
use rotind_lint::effects::RootSet;
use rotind_lint::findings::{
    count_by_rule_and_file, render_human, render_json, witness_hashes, Finding,
};
use rotind_lint::rules::ALL_RULES;
use rotind_lint::{lint_paths_rooted, sarif, scan_workspace, timing, workspace_root, ScanTiming};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Options {
    format: Format,
    write_baseline: bool,
    write_timing: bool,
    no_baseline: bool,
    self_check: bool,
    list: bool,
    paths: Vec<PathBuf>,
    /// The availability root set the effect rules certify. Starts from
    /// [`RootSet::serve_default`] — the worker loop, the wire codec,
    /// `IndexSnapshot::execute` and the budgeted parallel scans —
    /// because that is the surface PR 8 exposed to live traffic;
    /// `--panic-root` / `--worker-root` append further entry points
    /// without recompiling.
    roots: RootSet,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Human,
        write_baseline: false,
        write_timing: false,
        no_baseline: false,
        self_check: false,
        list: false,
        paths: Vec::new(),
        roots: RootSet::serve_default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let arg = arg.as_str();
        if arg == "--panic-root" || arg == "--worker-root" {
            let name = args
                .next()
                .ok_or(format!("{arg} needs a function name\n\n{USAGE}"))?;
            if arg == "--panic-root" {
                opts.roots.panic_roots.push(name);
            } else {
                opts.roots.worker_roots.push(name);
            }
            continue;
        }
        if let Some(value) = arg.strip_prefix("--format") {
            let value = match value.strip_prefix('=') {
                Some(v) => v.to_string(),
                None if value.is_empty() => args
                    .next()
                    .ok_or(format!("--format needs a value\n\n{USAGE}"))?,
                None => return Err(format!("unknown flag `{arg}`\n\n{USAGE}")),
            };
            opts.format = match value.as_str() {
                "human" => Format::Human,
                "json" => Format::Json,
                "sarif" => Format::Sarif,
                other => {
                    return Err(format!(
                        "unknown format `{other}` (expected human, json or sarif)\n\n{USAGE}"
                    ))
                }
            };
            continue;
        }
        match arg {
            "--json" => opts.format = Format::Json,
            "--write-baseline" => opts.write_baseline = true,
            "--write-timing" => opts.write_timing = true,
            "--no-baseline" => opts.no_baseline = true,
            "--self-check" => opts.self_check = true,
            "--list" => opts.list = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n\n{USAGE}"))
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if (opts.write_baseline || opts.write_timing) && !opts.paths.is_empty() {
        return Err("--write-baseline/--write-timing only apply to the workspace scan".to_string());
    }
    if opts.self_check
        && (opts.write_baseline || opts.write_timing || opts.no_baseline || !opts.paths.is_empty())
    {
        return Err(
            "--self-check runs the workspace scan against the committed ratchet; \
                    it combines only with --format"
                .to_string(),
        );
    }
    Ok(opts)
}

const USAGE: &str = "usage: rotind-lint [--format human|json|sarif] \
                     [--write-baseline | --write-timing | --no-baseline | --self-check | --list] \
                     [--panic-root fn]… [--worker-root fn]… [path…]";

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if opts.list {
        for r in ALL_RULES {
            println!("{:<14} {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }
    match run(&opts) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("rotind-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(opts: &Options) -> Result<bool, String> {
    let root = workspace_root();

    // Fixture mode: lint exactly the given paths, no ratchet.
    if !opts.paths.is_empty() {
        let findings =
            lint_paths_rooted(root, &opts.paths, &opts.roots).map_err(|e| e.to_string())?;
        report(&findings, opts.format);
        return Ok(findings.is_empty());
    }

    let scan = scan_workspace(root, &opts.roots).map_err(|e| e.to_string())?;
    let (findings, exempted) = (scan.findings, scan.exempted);
    let fresh_timing = measure(&findings, &scan.timing);

    if opts.self_check {
        return self_check(root, &findings, opts.format);
    }

    if opts.no_baseline {
        report(&findings, opts.format);
        if opts.format == Format::Human {
            summary(&findings);
        }
        return Ok(findings.is_empty());
    }

    let baseline_path = root.join(BASELINE_FILE);
    if opts.write_baseline {
        let counts = count_by_rule_and_file(&findings);
        let witness = witness_hashes(&findings);
        std::fs::write(
            &baseline_path,
            baseline::to_json(&counts, &witness, &exempted),
        )
        .map_err(|e| e.to_string())?;
        println!(
            "wrote {} ({} findings across {} rules)",
            baseline_path.display(),
            findings.len(),
            counts.len()
        );
    }
    if opts.write_timing {
        let timing_path = root.join(timing::TIMING_FILE);
        if let Some(dir) = timing_path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
        std::fs::write(&timing_path, fresh_timing.to_json()).map_err(|e| e.to_string())?;
        println!(
            "wrote {} (host {}, total {} µs)",
            timing_path.display(),
            fresh_timing.host,
            fresh_timing.total_us
        );
    }
    if opts.write_baseline || opts.write_timing {
        return Ok(true);
    }

    let committed = std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "cannot read {} ({e}); run `cargo run -p rotind-lint -- --write-baseline` once",
            baseline_path.display()
        )
    })?;
    let committed = baseline::from_json(&committed)?;
    let cmp = baseline::compare(&findings, &committed);

    match opts.format {
        Format::Human => {}
        Format::Json => print!("{}", render_json(&findings)),
        Format::Sarif => print!("{}", sarif::render(&findings)),
    }
    let mut status = String::new();
    for (rule, path, permitted, count) in &cmp.regressions {
        let _ = writeln!(
            status,
            "RATCHET {rule}: {path} has {count} finding(s), baseline allows {permitted}"
        );
        // Show the individual findings of the offending pair so the
        // developer sees candidates without re-running in --no-baseline.
        for f in findings
            .iter()
            .filter(|f| f.rule == rule && &f.path == path)
        {
            let _ = writeln!(status, "  {}:{}: {}", f.path, f.line, f.message);
        }
    }
    for (rule, path, permitted, count) in &cmp.improvements {
        let _ = writeln!(
            status,
            "improved {rule}: {path} is down to {count} (baseline {permitted}) — \
             re-ratchet with `cargo run -p rotind-lint -- --write-baseline`"
        );
    }
    if cmp.is_pass() {
        let _ = writeln!(
            status,
            "lint gate: PASS ({} finding(s), all within the committed ratchet)",
            findings.len()
        );
    } else {
        let _ = writeln!(
            status,
            "lint gate: FAIL ({} (rule, file) pair(s) above the ratchet)",
            cmp.regressions.len()
        );
    }
    let timing_ok = timing_gate(root, &fresh_timing, &mut status)?;
    emit_status(&status, opts.format);
    Ok(cmp.is_pass() && timing_ok)
}

/// Package a scan's phase timings as a [`timing::Timing`] snapshot.
fn measure(findings: &[Finding], scan: &ScanTiming) -> timing::Timing {
    timing::Timing {
        host: timing::hostname(),
        files: scan.files,
        findings: findings.len() as u64,
        parse_us: scan.parse_us,
        rules_us: scan.rules_us,
        total_us: scan.parse_us.saturating_add(scan.rules_us),
    }
}

/// Run the lint wall-time gate against the committed snapshot,
/// appending its verdict to `status`. Missing snapshot and host
/// mismatch are graceful skips; only a same-host overrun fails.
fn timing_gate(
    root: &std::path::Path,
    fresh: &timing::Timing,
    status: &mut String,
) -> Result<bool, String> {
    let timing_path = root.join(timing::TIMING_FILE);
    let Ok(text) = std::fs::read_to_string(&timing_path) else {
        let _ = writeln!(
            status,
            "timing gate: SKIP (no committed {})",
            timing::TIMING_FILE
        );
        return Ok(true);
    };
    let committed =
        timing::Timing::from_json(&text).map_err(|e| format!("{}: {e}", timing_path.display()))?;
    let factor = timing::inject_factor()?;
    let mut probe = fresh.clone();
    probe.total_us = scale(probe.total_us, factor);
    match timing::gate(&probe, &committed) {
        timing::Verdict::Pass => {
            let _ = writeln!(
                status,
                "timing gate: PASS ({} µs, committed {} µs on this host)",
                probe.total_us, committed.total_us
            );
            Ok(true)
        }
        timing::Verdict::Skip(reason) => {
            let _ = writeln!(status, "timing gate: SKIP ({reason})");
            Ok(true)
        }
        timing::Verdict::Fail(msg) => {
            let _ = writeln!(status, "TIMING {msg}");
            let _ = writeln!(status, "timing gate: FAIL");
            Ok(false)
        }
    }
}

/// Multiply a microsecond count by the inject factor (saturating).
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn scale(us: u64, factor: f64) -> u64 {
    let scaled = (us as f64) * factor;
    if scaled.is_finite() && scaled > 0.0 {
        scaled.min((u64::MAX / 2) as f64) as u64
    } else {
        0
    }
}

/// `--self-check`: gate only the linter's own crate against the matching
/// slice of the committed ratchet. CI runs this as a fast sanity step —
/// a linter that cannot keep its own house clean has no business gating
/// anyone else's.
fn self_check(
    root: &std::path::Path,
    findings: &[Finding],
    format: Format,
) -> Result<bool, String> {
    const SELF: &str = "crates/rotind-lint/";
    let own: Vec<Finding> = findings
        .iter()
        .filter(|f| f.path.starts_with(SELF))
        .cloned()
        .collect();
    let baseline_path = root.join(BASELINE_FILE);
    let committed = std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "cannot read {} ({e}); run `cargo run -p rotind-lint -- --write-baseline` once",
            baseline_path.display()
        )
    })?;
    let committed = baseline::from_json(&committed)?;
    let own_baseline: Counts = committed
        .into_iter()
        .map(|(rule, files)| {
            (
                rule,
                files
                    .into_iter()
                    .filter(|(path, _)| path.starts_with(SELF))
                    .collect(),
            )
        })
        .collect();
    let cmp = baseline::compare(&own, &own_baseline);
    match format {
        Format::Human => {}
        Format::Json => print!("{}", render_json(&own)),
        Format::Sarif => print!("{}", sarif::render(&own)),
    }
    let mut status = String::new();
    for (rule, path, permitted, count) in &cmp.regressions {
        let _ = writeln!(
            status,
            "RATCHET {rule}: {path} has {count} finding(s), baseline allows {permitted}"
        );
        for f in own.iter().filter(|f| f.rule == rule && &f.path == path) {
            let _ = writeln!(status, "  {}:{}: {}", f.path, f.line, f.message);
        }
    }
    if cmp.is_pass() {
        let _ = writeln!(
            status,
            "self-check: PASS ({} finding(s) in {SELF}, all within the committed ratchet)",
            own.len()
        );
    } else {
        let _ = writeln!(
            status,
            "self-check: FAIL ({} (rule, file) pair(s) above the ratchet)",
            cmp.regressions.len()
        );
    }
    emit_status(&status, format);
    Ok(cmp.is_pass())
}

/// Gate and ratchet lines go to stdout in human mode, but to stderr
/// when the caller asked for a machine format — so `--format sarif`
/// leaves a parseable document on stdout while the verdict stays
/// visible in the terminal or CI log.
fn emit_status(status: &str, format: Format) {
    match format {
        Format::Human => print!("{status}"),
        Format::Json | Format::Sarif => eprint!("{status}"),
    }
}

fn report(findings: &[Finding], format: Format) {
    match format {
        Format::Human => print!("{}", render_human(findings)),
        Format::Json => print!("{}", render_json(findings)),
        Format::Sarif => print!("{}", sarif::render(findings)),
    }
}

fn summary(findings: &[Finding]) {
    let counts = count_by_rule_and_file(findings);
    for (rule, files) in &counts {
        let total: usize = files.values().sum();
        println!(
            "{rule:<14} {total:>4} finding(s) in {} file(s)",
            files.len()
        );
    }
}
