//! # rotind-lint — the workspace's own static-analysis gate
//!
//! A zero-dependency linter enforcing the invariants that make the
//! paper's result trustworthy in production: exactness (no unsound float
//! comparison, every lower bound covered by a soundness test) and
//! no-panic serving paths (no `unwrap`, no raw indexing, no print-side
//! channels, no `unsafe`). Clippy cannot express these — they are
//! project semantics, not Rust semantics.
//!
//! The design is a hand-rolled lexer ([`lexer`]) feeding nine
//! token-pattern rules ([`rules`]), with a committed ratchet baseline
//! ([`baseline`]) so the gate could be introduced over a codebase with
//! pre-existing findings and only ever tightens. See DESIGN.md §9 for
//! the rule catalogue and rationale.
//!
//! Run it as `cargo run -p rotind-lint` (workspace gate mode) or with
//! explicit paths (fixture mode); `scripts/ci.sh` wires it between
//! clippy and the build.

#![forbid(unsafe_code)]

pub mod ast;
pub mod baseline;
pub mod callgraph;
pub mod dataflow;
pub mod effects;
pub mod findings;
pub mod interproc;
pub mod json;
pub mod lexer;
pub mod resolve;
pub mod rules;
pub mod sarif;
pub mod source;
pub mod symbols;
pub mod timing;
pub mod walker;

use effects::RootSet;
use std::collections::BTreeMap;
use std::path::Path;

/// A workspace scan's phase timings (microseconds), for the self-timing
/// snapshot in [`timing`].
#[derive(Debug, Clone, Copy)]
pub struct ScanTiming {
    /// Loading + lexing + parsing every file.
    pub parse_us: u64,
    /// All rules, including the interprocedural fixpoint.
    pub rules_us: u64,
    /// Files scanned.
    pub files: u64,
}

/// Everything a workspace scan produces: findings, phase timings and
/// the per-rule count of reasoned exemption comments honoured — the
/// latter is recorded in baseline schema v4 so exemption creep shows up
/// in diffs just like finding counts do.
pub struct WorkspaceScan {
    /// Raw findings (baseline not yet applied).
    pub findings: Vec<findings::Finding>,
    /// Phase timings for the lint wall-time gate.
    pub timing: ScanTiming,
    /// rule id → reasoned exemption comments in scope of that rule.
    pub exempted: BTreeMap<String, usize>,
}

/// Lint the whole workspace rooted at `root`; returns raw findings
/// (baseline not yet applied).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<findings::Finding>> {
    lint_workspace_timed(root).map(|(f, _)| f)
}

/// [`lint_workspace`], also measuring how long each phase took — the
/// workspace gate feeds this into the lint wall-time gate.
pub fn lint_workspace_timed(root: &Path) -> std::io::Result<(Vec<findings::Finding>, ScanTiming)> {
    scan_workspace(root, &RootSet::serve_default()).map(|s| (s.findings, s.timing))
}

/// The full workspace scan with an explicit availability [`RootSet`].
pub fn scan_workspace(root: &Path, roots: &RootSet) -> std::io::Result<WorkspaceScan> {
    let t0 = std::time::Instant::now();
    let files = walker::load_workspace(root)?;
    let parse_us = us_since(t0);
    let t1 = std::time::Instant::now();
    let findings = rules::run_all_rooted(&files, roots);
    let rules_us = us_since(t1);
    Ok(WorkspaceScan {
        findings,
        timing: ScanTiming {
            parse_us,
            rules_us,
            files: files.len() as u64,
        },
        exempted: exemption_counts(&files),
    })
}

/// Tally the reasoned exemption comments each availability/witness rule
/// honours, keyed by rule id. Empty-reason comments are *not* counted —
/// they are findings, not exemptions.
pub fn exemption_counts(files: &[source::SourceFile]) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    let (mut witness, mut panics, mut blocking) = (0usize, 0usize, 0usize);
    for f in files {
        let (w, p, b) = f.exemption_tally();
        witness += w;
        panics += p;
        blocking += b;
    }
    for (rule, n) in [
        (rules::lb_witness::ID, witness),
        (rules::no_panic_reachable::ID, panics),
        (rules::no_blocking_in_worker::ID, blocking),
    ] {
        if n > 0 {
            out.insert(rule.to_string(), n);
        }
    }
    out
}

#[allow(clippy::cast_possible_truncation)]
fn us_since(t: std::time::Instant) -> u64 {
    t.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// Lint explicit files or directories (fixture mode: snippets lint as
/// library code, no baseline).
pub fn lint_paths(
    root: &Path,
    paths: &[std::path::PathBuf],
) -> std::io::Result<Vec<findings::Finding>> {
    lint_paths_rooted(root, paths, &RootSet::serve_default())
}

/// [`lint_paths`] with an explicit availability [`RootSet`], so fixture
/// runs can exercise custom roots the same way the workspace gate does.
pub fn lint_paths_rooted(
    root: &Path,
    paths: &[std::path::PathBuf],
    roots: &RootSet,
) -> std::io::Result<Vec<findings::Finding>> {
    let files = walker::load_paths(root, paths)?;
    Ok(rules::run_all_rooted(&files, roots))
}

/// The workspace root, derived from this crate's manifest directory
/// (`crates/rotind-lint` → two levels up). Works from any cwd.
pub fn workspace_root() -> &'static Path {
    static ROOT: &str = env!("CARGO_MANIFEST_DIR");
    Path::new(ROOT)
        .parent()
        .and_then(Path::parent)
        .unwrap_or(Path::new(ROOT))
}
