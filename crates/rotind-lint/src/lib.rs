//! # rotind-lint — the workspace's own static-analysis gate
//!
//! A zero-dependency linter enforcing the invariants that make the
//! paper's result trustworthy in production: exactness (no unsound float
//! comparison, every lower bound covered by a soundness test) and
//! no-panic serving paths (no `unwrap`, no raw indexing, no print-side
//! channels, no `unsafe`). Clippy cannot express these — they are
//! project semantics, not Rust semantics.
//!
//! The design is a hand-rolled lexer ([`lexer`]) feeding nine
//! token-pattern rules ([`rules`]), with a committed ratchet baseline
//! ([`baseline`]) so the gate could be introduced over a codebase with
//! pre-existing findings and only ever tightens. See DESIGN.md §9 for
//! the rule catalogue and rationale.
//!
//! Run it as `cargo run -p rotind-lint` (workspace gate mode) or with
//! explicit paths (fixture mode); `scripts/ci.sh` wires it between
//! clippy and the build.

#![forbid(unsafe_code)]

pub mod ast;
pub mod baseline;
pub mod callgraph;
pub mod dataflow;
pub mod findings;
pub mod interproc;
pub mod json;
pub mod lexer;
pub mod resolve;
pub mod rules;
pub mod sarif;
pub mod source;
pub mod symbols;
pub mod timing;
pub mod walker;

use std::path::Path;

/// A workspace scan's phase timings (microseconds), for the self-timing
/// snapshot in [`timing`].
#[derive(Debug, Clone, Copy)]
pub struct ScanTiming {
    /// Loading + lexing + parsing every file.
    pub parse_us: u64,
    /// All rules, including the interprocedural fixpoint.
    pub rules_us: u64,
    /// Files scanned.
    pub files: u64,
}

/// Lint the whole workspace rooted at `root`; returns raw findings
/// (baseline not yet applied).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<findings::Finding>> {
    lint_workspace_timed(root).map(|(f, _)| f)
}

/// [`lint_workspace`], also measuring how long each phase took — the
/// workspace gate feeds this into the lint wall-time gate.
pub fn lint_workspace_timed(root: &Path) -> std::io::Result<(Vec<findings::Finding>, ScanTiming)> {
    let t0 = std::time::Instant::now();
    let files = walker::load_workspace(root)?;
    let parse_us = us_since(t0);
    let t1 = std::time::Instant::now();
    let findings = rules::run_all(&files);
    let rules_us = us_since(t1);
    Ok((
        findings,
        ScanTiming {
            parse_us,
            rules_us,
            files: files.len() as u64,
        },
    ))
}

#[allow(clippy::cast_possible_truncation)]
fn us_since(t: std::time::Instant) -> u64 {
    t.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// Lint explicit files or directories (fixture mode: snippets lint as
/// library code, no baseline).
pub fn lint_paths(
    root: &Path,
    paths: &[std::path::PathBuf],
) -> std::io::Result<Vec<findings::Finding>> {
    let files = walker::load_paths(root, paths)?;
    Ok(rules::run_all(&files))
}

/// The workspace root, derived from this crate's manifest directory
/// (`crates/rotind-lint` → two levels up). Works from any cwd.
pub fn workspace_root() -> &'static Path {
    static ROOT: &str = env!("CARGO_MANIFEST_DIR");
    Path::new(ROOT)
        .parent()
        .and_then(Path::parent)
        .unwrap_or(Path::new(ROOT))
}
