//! # rotind-lint — the workspace's own static-analysis gate
//!
//! A zero-dependency linter enforcing the invariants that make the
//! paper's result trustworthy in production: exactness (no unsound float
//! comparison, every lower bound covered by a soundness test) and
//! no-panic serving paths (no `unwrap`, no raw indexing, no print-side
//! channels, no `unsafe`). Clippy cannot express these — they are
//! project semantics, not Rust semantics.
//!
//! The design is a hand-rolled lexer ([`lexer`]) feeding nine
//! token-pattern rules ([`rules`]), with a committed ratchet baseline
//! ([`baseline`]) so the gate could be introduced over a codebase with
//! pre-existing findings and only ever tightens. See DESIGN.md §9 for
//! the rule catalogue and rationale.
//!
//! Run it as `cargo run -p rotind-lint` (workspace gate mode) or with
//! explicit paths (fixture mode); `scripts/ci.sh` wires it between
//! clippy and the build.

#![forbid(unsafe_code)]

pub mod ast;
pub mod baseline;
pub mod dataflow;
pub mod findings;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod source;
pub mod symbols;
pub mod walker;

use std::path::Path;

/// Lint the whole workspace rooted at `root`; returns raw findings
/// (baseline not yet applied).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<findings::Finding>> {
    let files = walker::load_workspace(root)?;
    Ok(rules::run_all(&files))
}

/// Lint explicit files or directories (fixture mode: snippets lint as
/// library code, no baseline).
pub fn lint_paths(
    root: &Path,
    paths: &[std::path::PathBuf],
) -> std::io::Result<Vec<findings::Finding>> {
    let files = walker::load_paths(root, paths)?;
    Ok(rules::run_all(&files))
}

/// The workspace root, derived from this crate's manifest directory
/// (`crates/rotind-lint` → two levels up). Works from any cwd.
pub fn workspace_root() -> &'static Path {
    static ROOT: &str = env!("CARGO_MANIFEST_DIR");
    Path::new(ROOT)
        .parent()
        .and_then(Path::parent)
        .unwrap_or(Path::new(ROOT))
}
