//! The ratchet: a committed `lint-baseline.json` records how many
//! findings each (rule, file) pair is *allowed* to have. The gate fails
//! when any count rises or a new pair appears; counts may only go down,
//! and `--write-baseline` re-tightens the file after a burn-down.
//!
//! Schema v4 wraps each rule's file map in `{"total": N, "witness":
//! "<hash>", "exempted": E, "files": {…}}`: the per-rule burn-down
//! number is visible in diffs without summing by hand (the redundant
//! total is validated on read); rules whose findings carry
//! interprocedural witness paths record an FNV-1a hash over those paths
//! — so a diff shows when a taint chain *moved* even while the count
//! held still; and rules with reasoned exemption comments
//! (`witness-exempt`, `panic-exempt`, `blocking-allowed`) record how
//! many are in force, so *exemption creep* is as reviewable as finding
//! creep. Witness hash and exempted count are informational (the gate
//! stays count-based: line drift must not fail CI). v1 (bare `rule →
//! file → count`), v2 (no `witness`) and v3 (no `exempted`) files still
//! parse — `--write-baseline` migrates them on the next re-ratchet.

use crate::findings::{count_by_rule_and_file, Finding};
use crate::json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Baseline schema version (bumped on format changes).
pub const BASELINE_VERSION: u64 = 4;

/// Default baseline file name, committed at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// `rule → path → permitted count`.
pub type Counts = BTreeMap<String, BTreeMap<String, usize>>;

/// Outcome of comparing a fresh scan against the baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// (rule, path, baseline count, fresh count) pairs whose fresh count
    /// exceeds the baseline — these fail the gate.
    pub regressions: Vec<(String, String, usize, usize)>,
    /// (rule, path, baseline count, fresh count) pairs that *improved* —
    /// the gate prompts for a `--write-baseline` re-ratchet.
    pub improvements: Vec<(String, String, usize, usize)>,
}

impl Comparison {
    /// True when no count rose.
    pub fn is_pass(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compare fresh findings against a baseline.
pub fn compare(findings: &[Finding], baseline: &Counts) -> Comparison {
    let fresh = count_by_rule_and_file(findings);
    let mut cmp = Comparison::default();
    for (rule, files) in &fresh {
        for (path, &count) in files {
            let permitted = baseline
                .get(rule)
                .and_then(|m| m.get(path))
                .copied()
                .unwrap_or(0);
            if count > permitted {
                cmp.regressions
                    .push((rule.clone(), path.clone(), permitted, count));
            }
        }
    }
    for (rule, files) in baseline {
        for (path, &permitted) in files {
            let count = fresh
                .get(rule)
                .and_then(|m| m.get(path))
                .copied()
                .unwrap_or(0);
            if count < permitted {
                cmp.improvements
                    .push((rule.clone(), path.clone(), permitted, count));
            }
        }
    }
    cmp
}

/// Serialise counts to the canonical baseline JSON — byte-stable (sorted
/// keys, fixed indentation, trailing newline) so the committed file can
/// be compared verbatim against a fresh scan by tests and by humans.
/// `witness` maps rule ids to the witness-path hash recorded for rules
/// whose findings carry taint chains (see
/// [`crate::findings::witness_hashes`]); `exempted` maps rule ids to
/// the number of reasoned exemption comments in force (see
/// [`crate::exemption_counts`]). A rule present only in `exempted`
/// still gets an entry (`total` 0, empty `files`) — a *clean* rule's
/// exemption creep is precisely what the key exists to make
/// reviewable.
pub fn to_json(
    counts: &Counts,
    witness: &BTreeMap<String, String>,
    exempted: &BTreeMap<String, usize>,
) -> String {
    let empty = BTreeMap::new();
    let rules: std::collections::BTreeSet<&String> = counts
        .keys()
        .chain(witness.keys())
        .chain(exempted.keys())
        .collect();
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"version\": {BASELINE_VERSION},");
    out.push_str("  \"rules\": {");
    if rules.is_empty() {
        out.push_str("}\n}\n");
        return out;
    }
    out.push('\n');
    let n_rules = rules.len();
    for (ri, rule) in rules.iter().enumerate() {
        let files = counts.get(*rule).unwrap_or(&empty);
        let total: usize = files.values().sum();
        let _ = write!(out, "    {}: {{", json::escape(rule));
        out.push('\n');
        let _ = writeln!(out, "      \"total\": {total},");
        if let Some(hash) = witness.get(*rule) {
            let _ = writeln!(out, "      \"witness\": {},", json::escape(hash));
        }
        if let Some(n) = exempted.get(*rule) {
            let _ = writeln!(out, "      \"exempted\": {n},");
        }
        if files.is_empty() {
            out.push_str("      \"files\": {}\n    }");
        } else {
            out.push_str("      \"files\": {\n");
            let n_files = files.len();
            for (fi, (path, count)) in files.iter().enumerate() {
                let _ = write!(out, "        {}: {}", json::escape(path), count);
                out.push_str(if fi + 1 < n_files { ",\n" } else { "\n" });
            }
            out.push_str("      }\n    }");
        }
        out.push_str(if ri + 1 < n_rules { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

/// Parse one rule's file→count map out of a JSON object.
fn files_from_obj(
    rule: &str,
    files: &BTreeMap<String, json::Value>,
) -> Result<BTreeMap<String, usize>, String> {
    let mut out = BTreeMap::new();
    for (path, count) in files {
        let count = count
            .as_int()
            .ok_or_else(|| format!("count for `{rule}` / `{path}` must be an integer"))?;
        out.insert(path.clone(), count as usize);
    }
    Ok(out)
}

/// Parse baseline JSON back into counts. Accepts schema v4 (per-rule
/// `{total, witness?, exempted?, files}` with the total cross-checked),
/// v3 (no `exempted`), v2 (no `witness`) and the legacy v1 shape (bare
/// file map). Witness hash and exempted count are validated for type
/// but not returned — the gate is count-based. Unknown top-level keys
/// or versions are an error; a corrupt ratchet must not silently pass.
pub fn from_json(src: &str) -> Result<Counts, String> {
    let v = json::parse(src)?;
    let obj = v.as_obj().ok_or("baseline root must be an object")?;
    let version = obj
        .get("version")
        .and_then(|v| v.as_int())
        .ok_or("baseline missing integer `version`")?;
    if !(1..=BASELINE_VERSION).contains(&version) {
        return Err(format!(
            "baseline version {version} unsupported (expected {BASELINE_VERSION}); regenerate with --write-baseline"
        ));
    }
    for key in obj.keys() {
        if key != "version" && key != "rules" {
            return Err(format!("unexpected baseline key `{key}`"));
        }
    }
    let rules = obj
        .get("rules")
        .and_then(|v| v.as_obj())
        .ok_or("baseline missing object `rules`")?;
    let mut counts: Counts = BTreeMap::new();
    for (rule, entry) in rules {
        let entry = entry
            .as_obj()
            .ok_or_else(|| format!("rule `{rule}` must be an object"))?;
        let files = if version == 1 {
            // Legacy shape: the rule maps straight to files.
            files_from_obj(rule, entry)?
        } else {
            for key in entry.keys() {
                let known = key == "total"
                    || key == "files"
                    || (version >= 3 && key == "witness")
                    || (version >= 4 && key == "exempted");
                if !known {
                    return Err(format!("unexpected key `{key}` under rule `{rule}`"));
                }
            }
            if let Some(w) = entry.get("witness") {
                if !matches!(w, json::Value::Str(_)) {
                    return Err(format!("witness for rule `{rule}` must be a string"));
                }
            }
            if let Some(e) = entry.get("exempted") {
                if e.as_int().is_none() {
                    return Err(format!("exempted for rule `{rule}` must be an integer"));
                }
            }
            let total = entry
                .get("total")
                .and_then(|v| v.as_int())
                .ok_or_else(|| format!("rule `{rule}` missing integer `total`"))?;
            let files = entry
                .get("files")
                .and_then(|v| v.as_obj())
                .ok_or_else(|| format!("rule `{rule}` missing object `files`"))?;
            let files = files_from_obj(rule, files)?;
            let sum: usize = files.values().sum();
            if sum as u64 != total {
                return Err(format!(
                    "rule `{rule}`: total {total} does not match the file sum {sum}; \
                     regenerate with --write-baseline"
                ));
            }
            files
        };
        // Exempted-only entries (total 0, no files) carry no ratchet
        // information — the count map stays findings-only.
        if !files.is_empty() {
            counts.insert(rule.clone(), files);
        }
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str) -> Finding {
        Finding::new(rule, path, 1, "m")
    }

    #[test]
    fn json_round_trip_is_byte_stable() {
        let mut counts: Counts = BTreeMap::new();
        counts
            .entry("no-panic".into())
            .or_default()
            .insert("crates/a/src/lib.rs".into(), 3);
        counts
            .entry("float-eq".into())
            .or_default()
            .insert("crates/b/src/x.rs".into(), 1);
        let js = to_json(&counts, &BTreeMap::new(), &BTreeMap::new());
        let parsed = from_json(&js).unwrap();
        assert_eq!(parsed, counts);
        assert_eq!(
            to_json(&parsed, &BTreeMap::new(), &BTreeMap::new()),
            js,
            "serialisation must be canonical"
        );
    }

    #[test]
    fn gate_passes_at_or_below_baseline() {
        let findings = vec![finding("no-panic", "a.rs")];
        let baseline = from_json(
            "{\n  \"version\": 1,\n  \"rules\": {\n    \"no-panic\": {\n      \"a.rs\": 2\n    }\n  }\n}\n",
        )
        .unwrap();
        let cmp = compare(&findings, &baseline);
        assert!(cmp.is_pass());
        assert_eq!(cmp.improvements.len(), 1, "1 < 2 prompts a re-ratchet");
    }

    #[test]
    fn gate_fails_on_rise_or_new_pair() {
        let findings = vec![
            finding("no-panic", "a.rs"),
            finding("no-panic", "a.rs"),
            finding("no-index", "new.rs"),
        ];
        let mut baseline: Counts = BTreeMap::new();
        baseline
            .entry("no-panic".into())
            .or_default()
            .insert("a.rs".into(), 1);
        let cmp = compare(&findings, &baseline);
        assert_eq!(cmp.regressions.len(), 2);
        assert!(!cmp.is_pass());
    }

    #[test]
    fn rejects_wrong_version_and_junk_keys() {
        assert!(from_json("{\"version\": 9, \"rules\": {}}").is_err());
        assert!(from_json("{\"version\": 1, \"rules\": {}, \"extra\": {}}").is_err());
        assert!(from_json("not json").is_err());
    }

    #[test]
    fn v4_serialises_totals_witness_hashes_and_exempted_counts() {
        let mut counts: Counts = BTreeMap::new();
        let entry = counts.entry("prune-only".into()).or_default();
        entry.insert("a.rs".into(), 3);
        entry.insert("b.rs".into(), 4);
        let mut witness = BTreeMap::new();
        witness.insert("prune-only".to_string(), "00ff00ff00ff00ff".to_string());
        let mut exempted = BTreeMap::new();
        exempted.insert("prune-only".to_string(), 5usize);
        // A certified-clean rule: exemptions in force, zero findings.
        exempted.insert("no-panic-reachable".to_string(), 12usize);
        let js = to_json(&counts, &witness, &exempted);
        assert!(js.contains("\"version\": 4"), "{js}");
        assert!(js.contains("\"total\": 7"), "{js}");
        assert!(js.contains("\"witness\": \"00ff00ff00ff00ff\""), "{js}");
        assert!(js.contains("\"exempted\": 5"), "{js}");
        // The clean rule still appears, with an empty file map…
        assert!(js.contains("\"no-panic-reachable\""), "{js}");
        assert!(js.contains("\"exempted\": 12"), "{js}");
        assert!(js.contains("\"files\": {}"), "{js}");
        // …but contributes nothing to the ratchet counts.
        assert_eq!(from_json(&js).unwrap(), counts);
    }

    #[test]
    fn v1_through_v3_baselines_migrate() {
        let legacy = "{\n  \"version\": 1,\n  \"rules\": {\n    \"no-panic\": {\n      \"a.rs\": 2\n    }\n  }\n}\n";
        let counts = from_json(legacy).unwrap();
        assert_eq!(counts.get("no-panic").and_then(|m| m.get("a.rs")), Some(&2));
        // Re-serialising writes the v4 shape.
        assert!(to_json(&counts, &BTreeMap::new(), &BTreeMap::new()).contains("\"total\": 2"));
        let v2 = "{\n  \"version\": 2,\n  \"rules\": {\n    \"no-panic\": {\n      \"total\": 2,\n      \"files\": {\n        \"a.rs\": 2\n      }\n    }\n  }\n}\n";
        assert_eq!(from_json(v2).unwrap(), counts);
        // …but a v2 file must not smuggle a witness key.
        let v2_witness = v2.replace("\"total\": 2,", "\"total\": 2,\n      \"witness\": \"x\",");
        assert!(from_json(&v2_witness).is_err());
        // v3: witness allowed, exempted not yet.
        let v3 = v2
            .replace("\"version\": 2", "\"version\": 3")
            .replace("\"total\": 2,", "\"total\": 2,\n      \"witness\": \"x\",");
        assert_eq!(from_json(&v3).unwrap(), counts);
        let v3_exempted = v3.replace("\"total\": 2,", "\"total\": 2,\n      \"exempted\": 1,");
        assert!(
            from_json(&v3_exempted).is_err(),
            "v3 must not smuggle exempted"
        );
        // v4 accepts both informational keys; a non-integer exempted is rejected.
        let v4 = v3
            .replace("\"version\": 3", "\"version\": 4")
            .replace("\"total\": 2,", "\"total\": 2,\n      \"exempted\": 1,");
        assert_eq!(from_json(&v4).unwrap(), counts);
        let v4_bad = v4.replace("\"exempted\": 1,", "\"exempted\": \"one\",");
        assert!(from_json(&v4_bad).is_err());
    }

    #[test]
    fn total_mismatch_is_rejected() {
        let lying = "{\n  \"version\": 3,\n  \"rules\": {\n    \"no-panic\": {\n      \"total\": 99,\n      \"files\": {\n        \"a.rs\": 2\n      }\n    }\n  }\n}\n";
        let err = from_json(lying).unwrap_err();
        assert!(err.contains("does not match"), "{err}");
    }

    #[test]
    fn empty_baseline_means_zero_everywhere() {
        let cmp = compare(&[finding("no-panic", "a.rs")], &Counts::new());
        assert_eq!(
            cmp.regressions,
            vec![("no-panic".into(), "a.rs".into(), 0, 1)]
        );
    }
}
