//! The ratchet: a committed `lint-baseline.json` records how many
//! findings each (rule, file) pair is *allowed* to have. The gate fails
//! when any count rises or a new pair appears; counts may only go down,
//! and `--write-baseline` re-tightens the file after a burn-down.

use crate::findings::{count_by_rule_and_file, Finding};
use crate::json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Baseline schema version (bumped on format changes).
pub const BASELINE_VERSION: u64 = 1;

/// Default baseline file name, committed at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// `rule → path → permitted count`.
pub type Counts = BTreeMap<String, BTreeMap<String, usize>>;

/// Outcome of comparing a fresh scan against the baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// (rule, path, baseline count, fresh count) pairs whose fresh count
    /// exceeds the baseline — these fail the gate.
    pub regressions: Vec<(String, String, usize, usize)>,
    /// (rule, path, baseline count, fresh count) pairs that *improved* —
    /// the gate prompts for a `--write-baseline` re-ratchet.
    pub improvements: Vec<(String, String, usize, usize)>,
}

impl Comparison {
    /// True when no count rose.
    pub fn is_pass(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compare fresh findings against a baseline.
pub fn compare(findings: &[Finding], baseline: &Counts) -> Comparison {
    let fresh = count_by_rule_and_file(findings);
    let mut cmp = Comparison::default();
    for (rule, files) in &fresh {
        for (path, &count) in files {
            let permitted = baseline
                .get(rule)
                .and_then(|m| m.get(path))
                .copied()
                .unwrap_or(0);
            if count > permitted {
                cmp.regressions
                    .push((rule.clone(), path.clone(), permitted, count));
            }
        }
    }
    for (rule, files) in baseline {
        for (path, &permitted) in files {
            let count = fresh
                .get(rule)
                .and_then(|m| m.get(path))
                .copied()
                .unwrap_or(0);
            if count < permitted {
                cmp.improvements
                    .push((rule.clone(), path.clone(), permitted, count));
            }
        }
    }
    cmp
}

/// Serialise counts to the canonical baseline JSON — byte-stable (sorted
/// keys, fixed indentation, trailing newline) so the committed file can
/// be compared verbatim against a fresh scan by tests and by humans.
pub fn to_json(counts: &Counts) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"version\": {BASELINE_VERSION},");
    out.push_str("  \"rules\": {");
    if counts.is_empty() {
        out.push_str("}\n}\n");
        return out;
    }
    out.push('\n');
    let n_rules = counts.len();
    for (ri, (rule, files)) in counts.iter().enumerate() {
        let _ = write!(out, "    {}: {{", json::escape(rule));
        out.push('\n');
        let n_files = files.len();
        for (fi, (path, count)) in files.iter().enumerate() {
            let _ = write!(out, "      {}: {}", json::escape(path), count);
            out.push_str(if fi + 1 < n_files { ",\n" } else { "\n" });
        }
        out.push_str("    }");
        out.push_str(if ri + 1 < n_rules { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

/// Parse baseline JSON back into counts. Unknown top-level keys are an
/// error; a corrupt ratchet must not silently pass.
pub fn from_json(src: &str) -> Result<Counts, String> {
    let v = json::parse(src)?;
    let obj = v.as_obj().ok_or("baseline root must be an object")?;
    let version = obj
        .get("version")
        .and_then(|v| v.as_int())
        .ok_or("baseline missing integer `version`")?;
    if version != BASELINE_VERSION {
        return Err(format!(
            "baseline version {version} unsupported (expected {BASELINE_VERSION}); regenerate with --write-baseline"
        ));
    }
    for key in obj.keys() {
        if key != "version" && key != "rules" {
            return Err(format!("unexpected baseline key `{key}`"));
        }
    }
    let rules = obj
        .get("rules")
        .and_then(|v| v.as_obj())
        .ok_or("baseline missing object `rules`")?;
    let mut counts: Counts = BTreeMap::new();
    for (rule, files) in rules {
        let files = files
            .as_obj()
            .ok_or_else(|| format!("rule `{rule}` must map files to counts"))?;
        let entry = counts.entry(rule.clone()).or_default();
        for (path, count) in files {
            let count = count
                .as_int()
                .ok_or_else(|| format!("count for `{rule}` / `{path}` must be an integer"))?;
            entry.insert(path.clone(), count as usize);
        }
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str) -> Finding {
        Finding::new(rule, path, 1, "m")
    }

    #[test]
    fn json_round_trip_is_byte_stable() {
        let mut counts: Counts = BTreeMap::new();
        counts
            .entry("no-panic".into())
            .or_default()
            .insert("crates/a/src/lib.rs".into(), 3);
        counts
            .entry("float-eq".into())
            .or_default()
            .insert("crates/b/src/x.rs".into(), 1);
        let js = to_json(&counts);
        let parsed = from_json(&js).unwrap();
        assert_eq!(parsed, counts);
        assert_eq!(to_json(&parsed), js, "serialisation must be canonical");
    }

    #[test]
    fn gate_passes_at_or_below_baseline() {
        let findings = vec![finding("no-panic", "a.rs")];
        let baseline = from_json(
            "{\n  \"version\": 1,\n  \"rules\": {\n    \"no-panic\": {\n      \"a.rs\": 2\n    }\n  }\n}\n",
        )
        .unwrap();
        let cmp = compare(&findings, &baseline);
        assert!(cmp.is_pass());
        assert_eq!(cmp.improvements.len(), 1, "1 < 2 prompts a re-ratchet");
    }

    #[test]
    fn gate_fails_on_rise_or_new_pair() {
        let findings = vec![
            finding("no-panic", "a.rs"),
            finding("no-panic", "a.rs"),
            finding("no-index", "new.rs"),
        ];
        let mut baseline: Counts = BTreeMap::new();
        baseline
            .entry("no-panic".into())
            .or_default()
            .insert("a.rs".into(), 1);
        let cmp = compare(&findings, &baseline);
        assert_eq!(cmp.regressions.len(), 2);
        assert!(!cmp.is_pass());
    }

    #[test]
    fn rejects_wrong_version_and_junk_keys() {
        assert!(from_json("{\"version\": 9, \"rules\": {}}").is_err());
        assert!(from_json("{\"version\": 1, \"rules\": {}, \"extra\": {}}").is_err());
        assert!(from_json("not json").is_err());
    }

    #[test]
    fn empty_baseline_means_zero_everywhere() {
        let cmp = compare(&[finding("no-panic", "a.rs")], &Counts::new());
        assert_eq!(
            cmp.regressions,
            vec![("no-panic".into(), "a.rs".into(), 0, 1)]
        );
    }
}
