//! Per-file source model: lexed tokens plus the context the rules need —
//! is this library, binary or test code, which line ranges are
//! `#[cfg(test)]`, and which lines carry `// rotind-lint: allow(…)`
//! escape comments.

use crate::lexer::{lex, Lexed, TokKind, Token};
use std::collections::{HashMap, HashSet};
use std::path::Path;

/// How a file participates in the workspace; decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code — the hot path; every rule applies.
    Library,
    /// Binary / example / build-script code: operator-facing, so the
    /// no-panic, no-index and no-print rules are relaxed.
    Binary,
    /// Test or bench code: exempt from the hot-path rules, but *scanned*
    /// by the cross-file `lb-coverage` rule as the reference corpus.
    Test,
}

/// One lexed source file plus rule context.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across OSes,
    /// used in reports and the baseline).
    pub path: String,
    /// How the file participates in the workspace.
    pub kind: FileKind,
    /// Token stream and comments.
    pub lexed: Lexed,
    /// Parsed AST over the token stream (total: junk parses to opaque
    /// nodes, so this always exists).
    pub ast: crate::ast::File,
    /// Symbols the file defines (functions and enums).
    pub symbols: crate::symbols::SymbolTable,
    /// Whether this file is a crate root (`src/lib.rs`).
    pub is_crate_root: bool,
    /// `// lint: witness-exempt(reason)` comments: (line, reason).
    witness_exempts: Vec<(usize, String)>,
    /// `// lint: panic-exempt(reason)` comments: (line, reason).
    panic_exempts: Vec<(usize, String)>,
    /// `// lint: blocking-allowed(reason)` comments: (line, reason).
    blocking_allows: Vec<(usize, String)>,
    /// 1-based inclusive line ranges covered by `#[cfg(test)]` / `#[test]`
    /// items.
    test_spans: Vec<(usize, usize)>,
    /// line → rules allowed on that line (an allow comment covers its own
    /// line and the next).
    allows: HashMap<usize, HashSet<String>>,
}

impl SourceFile {
    /// Lex `src` and derive the rule context. `path` should be
    /// workspace-relative; `kind` can be forced (fixture mode) or derived
    /// from the path via [`kind_for_path`].
    pub fn parse(path: &str, src: &str, kind: FileKind) -> SourceFile {
        let lexed = lex(src);
        let test_spans = find_test_spans(&lexed.tokens);
        let mut allows: HashMap<usize, HashSet<String>> = HashMap::new();
        for c in &lexed.comments {
            for rule in parse_allow(&c.text) {
                allows.entry(c.line).or_default().insert(rule.clone());
                allows
                    .entry(c.line.saturating_add(1))
                    .or_default()
                    .insert(rule);
            }
        }
        let witness_exempts = exemption_comments(&lexed, "lint: witness-exempt");
        let panic_exempts = exemption_comments(&lexed, "lint: panic-exempt");
        let blocking_allows = exemption_comments(&lexed, "lint: blocking-allowed");
        let ast = crate::ast::parse(&lexed.tokens);
        let symbols = crate::symbols::collect(&ast);
        let is_crate_root = path.ends_with("src/lib.rs") || path == "lib.rs";
        SourceFile {
            path: path.to_string(),
            kind,
            lexed,
            ast,
            symbols,
            is_crate_root,
            witness_exempts,
            panic_exempts,
            blocking_allows,
            test_spans,
            allows,
        }
    }

    /// True when `line` falls inside a `#[cfg(test)]` / `#[test]` item.
    pub fn in_test_span(&self, line: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// True when hot-path rules should skip `line`: test files entirely,
    /// and test spans inside library/binary files.
    pub fn is_test_code(&self, line: usize) -> bool {
        self.kind == FileKind::Test || self.in_test_span(line)
    }

    /// True when an `// rotind-lint: allow(rule)` escape covers `line`.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows.get(&line).is_some_and(|s| s.contains(rule))
    }

    /// Tokens of the file (convenience).
    pub fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }

    /// The first `// lint: witness-exempt(reason)` comment whose line
    /// falls in `lo..=hi` (typically: the line above a lower-bound fn's
    /// signature through the end of its body). The reason may be empty —
    /// the lb-witness rule rejects that separately.
    pub fn witness_exempt(&self, lo: usize, hi: usize) -> Option<(usize, &str)> {
        first_in_range(&self.witness_exempts, lo, hi)
    }

    /// The first `// lint: panic-exempt(reason)` comment whose line falls
    /// in `lo..=hi` — the window of a function the `no-panic-reachable`
    /// rule would otherwise flag. The reason may be empty; the rule
    /// rejects that separately so the empty escape cannot hide a finding.
    pub fn panic_exempt(&self, lo: usize, hi: usize) -> Option<(usize, &str)> {
        first_in_range(&self.panic_exempts, lo, hi)
    }

    /// The `// lint: blocking-allowed(reason)` comment covering `line`
    /// (its own line, or a standalone comment on the line directly above
    /// — site-level, like `allow(…)`, because the admission/reply
    /// allowlist is a property of the individual blocking call, not of
    /// its whole function). A *trailing* comment covers only the site it
    /// shares a line with; it never leaks onto the next line.
    pub fn blocking_allowed(&self, line: usize) -> Option<(usize, &str)> {
        if let Some(hit) = first_in_range(&self.blocking_allows, line, line) {
            return Some(hit);
        }
        let above = line.saturating_sub(1);
        let hit = first_in_range(&self.blocking_allows, above, above)?;
        if self.lexed.tokens.iter().any(|t| t.line == above) {
            return None;
        }
        Some(hit)
    }

    /// How many reasoned (non-empty) exemption comments of each lint
    /// marker the file carries: `(witness-exempt, panic-exempt,
    /// blocking-allowed)`. Feeds the per-rule `exempted` counts recorded
    /// in baseline schema v4.
    pub fn exemption_tally(&self) -> (usize, usize, usize) {
        let reasoned = |v: &[(usize, String)]| v.iter().filter(|(_, r)| !r.is_empty()).count();
        (
            reasoned(&self.witness_exempts),
            reasoned(&self.panic_exempts),
            reasoned(&self.blocking_allows),
        )
    }
}

/// First `(line, reason)` entry with `lo <= line <= hi`.
fn first_in_range(entries: &[(usize, String)], lo: usize, hi: usize) -> Option<(usize, &str)> {
    entries
        .iter()
        .find(|(line, _)| lo <= *line && *line <= hi)
        .map(|(line, reason)| (*line, reason.as_str()))
}

/// Collect `(line, reason)` pairs for one `lint: <marker>(reason)`
/// comment grammar across a lexed file. Doc comments never carry
/// exemptions — they *describe* the grammar (rule modules quote it
/// verbatim), so counting them would mint phantom exemptions out of
/// documentation.
fn exemption_comments(lexed: &Lexed, marker: &str) -> Vec<(usize, String)> {
    lexed
        .comments
        .iter()
        .filter(|c| !c.doc)
        .filter_map(|c| parse_reason_marker(&c.text, marker).map(|r| (c.line, r)))
        .collect()
}

/// Derive a [`FileKind`] from a workspace-relative path.
pub fn kind_for_path(path: &str) -> FileKind {
    let p = path.replace('\\', "/");
    let in_dir = |d: &str| p.starts_with(&format!("{d}/")) || p.contains(&format!("/{d}/"));
    if in_dir("tests") || in_dir("benches") {
        FileKind::Test
    } else if in_dir("examples")
        || in_dir("bin")
        || p.ends_with("/main.rs")
        || p == "main.rs"
        || p.ends_with("build.rs")
    {
        FileKind::Binary
    } else {
        FileKind::Library
    }
}

/// Normalise a path to workspace-relative, `/`-separated form.
pub fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.to_string_lossy().replace('\\', "/")
}

/// Parse `rotind-lint: allow(rule-a, rule-b)` out of a comment.
fn parse_allow(comment: &str) -> Vec<String> {
    let Some(idx) = comment.find("rotind-lint:") else {
        return Vec::new();
    };
    let (_, tail) = comment.split_at(idx + "rotind-lint:".len());
    let rest = tail.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Vec::new();
    };
    let Some(close) = rest.find(')') else {
        return Vec::new();
    };
    let (list, _) = rest.split_at(close);
    list.split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect()
}

/// Parse `lint: <marker>(reason)` out of a comment. Returns the
/// (possibly empty) reason when the marker is present. Shared by the
/// `witness-exempt`, `panic-exempt` and `blocking-allowed` grammars so
/// they cannot drift apart.
fn parse_reason_marker(comment: &str, marker: &str) -> Option<String> {
    let idx = comment.find(marker)?;
    let (_, tail) = comment.split_at(idx + marker.len());
    let rest = tail.trim_start().strip_prefix('(')?;
    let close = rest.find(')')?;
    let (reason, _) = rest.split_at(close);
    Some(reason.trim().to_string())
}

/// Scan the token stream for `#[cfg(test)]` / `#[cfg(all(test, …))]` /
/// `#[test]` attributes and return the line span of the item each one
/// decorates (to the matching close brace, or to the `;` for brace-less
/// items like `#[cfg(test)] mod tests;`).
fn find_test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text == "#" && i + 1 < tokens.len() && tokens[i + 1].text == "[" {
            let attr_line = tokens[i].line;
            // Collect idents inside the attribute's brackets.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut idents: Vec<&str> = Vec::new();
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {
                        if tokens[j].kind == TokKind::Ident {
                            idents.push(&tokens[j].text);
                        }
                    }
                }
                j += 1;
            }
            let is_test_attr = match idents.first().copied() {
                Some("cfg") => idents.contains(&"test"),
                Some("test") => idents.len() == 1,
                _ => false,
            };
            if is_test_attr {
                if let Some(end_line) = item_end_line(tokens, j + 1) {
                    spans.push((attr_line, end_line));
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    spans
}

/// Line on which the item starting at token `start` ends: the matching
/// `}` of its first block, or the first top-level `;` if one comes first.
fn item_end_line(tokens: &[Token], start: usize) -> Option<usize> {
    let mut depth = 0usize; // (), [], {} all tracked so `;` inside args doesn't end the item
    let mut k = start;
    let mut in_braces = false;
    while k < tokens.len() {
        match tokens[k].text.as_str() {
            "{" => {
                depth += 1;
                in_braces = true;
            }
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "}" => {
                depth = depth.saturating_sub(1);
                if in_braces && depth == 0 {
                    return Some(tokens[k].line);
                }
            }
            ";" if depth == 0 => return Some(tokens[k].line),
            _ => {}
        }
        k += 1;
    }
    tokens.last().map(|t| t.line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_span() {
        let src =
            "pub fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let f = SourceFile::parse("crates/x/src/a.rs", src, FileKind::Library);
        assert!(!f.in_test_span(1));
        assert!(f.in_test_span(3));
        assert!(f.in_test_span(5));
        assert!(f.in_test_span(6));
        assert!(!f.in_test_span(7));
    }

    #[test]
    fn test_attr_function_span() {
        let src = "fn a() {}\n#[test]\nfn t() {\n    a();\n}\nfn b() {}\n";
        let f = SourceFile::parse("x.rs", src, FileKind::Library);
        assert!(f.in_test_span(4));
        assert!(!f.in_test_span(6));
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t {\n    fn z() {}\n}\n";
        let f = SourceFile::parse("x.rs", src, FileKind::Library);
        assert!(f.in_test_span(3));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        // `#[cfg(feature = "test-utils")]` must not match: first ident is
        // cfg but no bare `test` ident appears.
        let src = "#[cfg(feature = \"simd\")]\nmod fast {\n    fn z() {}\n}\n";
        let f = SourceFile::parse("x.rs", src, FileKind::Library);
        assert!(!f.in_test_span(3));
    }

    #[test]
    fn braceless_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse crate::helper;\nfn lib() {}\n";
        let f = SourceFile::parse("x.rs", src, FileKind::Library);
        assert!(f.in_test_span(2));
        assert!(!f.in_test_span(3));
    }

    #[test]
    fn allow_covers_own_and_next_line() {
        let src = "// rotind-lint: allow(no-panic)\nlet x = y.unwrap();\nlet z = 1; // rotind-lint: allow(float-eq, no-index)\n";
        let f = SourceFile::parse("x.rs", src, FileKind::Library);
        assert!(f.allowed("no-panic", 2));
        assert!(!f.allowed("no-panic", 3));
        assert!(f.allowed("float-eq", 3));
        assert!(f.allowed("no-index", 3));
    }

    #[test]
    fn witness_exempt_parsed_with_reason_and_range() {
        let src = "// lint: witness-exempt(accessor, returns a precomputed wedge)\npub fn lb_wedge() {}\nfn plain() {}\n// lint: witness-exempt()\nfn lb_bare() {}\n";
        let f = SourceFile::parse("x.rs", src, FileKind::Library);
        let (line, reason) = f.witness_exempt(1, 2).unwrap();
        assert_eq!(line, 1);
        assert!(reason.starts_with("accessor"));
        assert!(f.witness_exempt(2, 3).is_none());
        // Empty reason is surfaced, not dropped.
        assert_eq!(f.witness_exempt(4, 5), Some((4, "")));
    }

    #[test]
    fn panic_exempt_parsed_with_reason_and_range() {
        let src = "// lint: panic-exempt(index bounded by the validated series length)\npub fn kernel() {}\nfn plain() {}\n// lint: panic-exempt()\nfn bare() {}\n";
        let f = SourceFile::parse("x.rs", src, FileKind::Library);
        let (line, reason) = f.panic_exempt(1, 2).unwrap();
        assert_eq!(line, 1);
        assert!(reason.starts_with("index bounded"));
        assert!(f.panic_exempt(2, 3).is_none());
        // Empty reason is surfaced, not dropped — the rule rejects it.
        assert_eq!(f.panic_exempt(4, 5), Some((4, "")));
        // Markers do not cross-contaminate.
        assert!(f.witness_exempt(1, 5).is_none());
    }

    #[test]
    fn blocking_allowed_covers_own_and_previous_line() {
        let src = "// lint: blocking-allowed(admission queue handoff)\nlet g = rx.lock();\nlet j = g.recv(); // lint: blocking-allowed(idle wait for work)\nlet x = m.lock();\n";
        let f = SourceFile::parse("x.rs", src, FileKind::Library);
        assert_eq!(
            f.blocking_allowed(2).map(|(_, r)| r),
            Some("admission queue handoff")
        );
        assert_eq!(
            f.blocking_allowed(3).map(|(_, r)| r),
            Some("idle wait for work")
        );
        assert!(
            f.blocking_allowed(4).is_none(),
            "comment covers one site, not the file"
        );
    }

    #[test]
    fn exemption_tally_counts_only_reasoned_comments() {
        let src = "// lint: panic-exempt(reasoned)\nfn a() {}\n// lint: panic-exempt()\nfn b() {}\n// lint: blocking-allowed(reply send)\nfn c() {}\n";
        let f = SourceFile::parse("x.rs", src, FileKind::Library);
        assert_eq!(f.exemption_tally(), (0, 1, 1));
    }

    #[test]
    fn doc_comments_quoting_the_grammar_are_not_exemptions() {
        let src = "//! Escapes use `// lint: panic-exempt(reason)` comments.\n/// Sites carry `// lint: blocking-allowed(reason)`.\nfn a(v: &[f64]) -> f64 { v[0] }\n";
        let f = SourceFile::parse("x.rs", src, FileKind::Library);
        assert_eq!(f.exemption_tally(), (0, 0, 0));
        assert!(f.panic_exempt(1, 3).is_none());
        assert!(f.blocking_allowed(3).is_none());
    }

    #[test]
    fn kinds_from_paths() {
        assert_eq!(kind_for_path("crates/x/src/a.rs"), FileKind::Library);
        assert_eq!(kind_for_path("crates/x/src/bin/b.rs"), FileKind::Binary);
        assert_eq!(kind_for_path("crates/x/src/main.rs"), FileKind::Binary);
        assert_eq!(kind_for_path("tests/t.rs"), FileKind::Test);
        assert_eq!(kind_for_path("crates/x/benches/b.rs"), FileKind::Test);
        assert_eq!(kind_for_path("examples/e.rs"), FileKind::Binary);
    }
}
