//! Interprocedural *effect* summaries: may-panic and may-block facts
//! per function, propagated to fixpoint over the [`crate::callgraph`].
//!
//! Where [`crate::interproc`] tracks how *values* flow (bound taint),
//! this module tracks what a call can *do*: panic (explicit `panic!` /
//! `unreachable!`, `unwrap` / `expect`, raw indexing or slicing,
//! integer `/` and `%`, `assert!` outside `#[cfg(test)]`) or block
//! (`Mutex::lock`, unbounded `recv`, channel `send`, condvar waits,
//! file/socket IO, `thread::sleep`, argument-less `join`). Each
//! function gets its first *intrinsic* effect site, then a boolean
//! `may_*` flag closes the summaries over resolved call edges:
//!
//! > `may_panic(f) = own_panic(f) ∨ ∃ call f → g with may_panic(g)`
//!
//! The lattice per function is `{⊥, may}²` and transfer only ever
//! raises flags, so the fixpoint is monotone and terminates in at most
//! `nodes + 1` rounds — `EffectAnalysis::rounds` exposes the count so
//! the property test over random call webs can check exactly that.
//!
//! The `no-panic-reachable` and `no-blocking-in-worker` rules root the
//! summaries at the serve entry set ([`RootSet`]) and render the
//! composed call chain from root to effect site as a witness path
//! (≤ [`crate::interproc::MAX_WITNESS`] steps, elided in the middle
//! when a chain runs longer), which SARIF output turns into a
//! `codeFlow`.
//!
//! Precision notes, deliberately chosen and documented in DESIGN.md
//! §16: division/modulo is only a panic source when an operand shows
//! *integer evidence* (an integer type token in a cast or turbofish, an
//! integer-suffixed literal, or a `len`/`capacity`/`count` call) and
//! the divisor is not a non-zero literal — the f64 math that dominates
//! the hot path must not drown the signal; `debug_assert!` is never a
//! panic source (release builds strip it, and `lb-witness` *requires*
//! it); `.join(sep)` with arguments is a str/path join, while
//! `handle.join()` without arguments is a thread join.

use crate::ast::{walk_item_exprs, Expr, ExprKind, Span};
use crate::callgraph::CallGraph;
use crate::findings::WitnessStep;
use crate::interproc::MAX_WITNESS;
use crate::lexer::Token;
use crate::source::SourceFile;

/// One intrinsic effect site inside a function body.
#[derive(Debug, Clone)]
pub struct EffectSite {
    /// 1-based source line of the effecting expression.
    pub line: usize,
    /// What the expression does (`"\`unwrap()\` may panic"`, …).
    pub what: String,
}

/// Per-function effect summary.
#[derive(Debug, Default, Clone)]
pub struct FnEffects {
    /// First intrinsic panic site in the body, in source order.
    pub panic_site: Option<EffectSite>,
    /// Every intrinsic blocking site in the body, in source order —
    /// the blocking allowlist is per *site*, so the rule needs them all.
    pub block_sites: Vec<EffectSite>,
    /// Closed over calls: this function may panic.
    pub may_panic: bool,
    /// Closed over calls: this function may block.
    pub may_block: bool,
}

/// The whole-workspace effect analysis.
pub struct EffectAnalysis {
    /// One summary per [`crate::resolve::GlobalIndex`] node id.
    pub fns: Vec<FnEffects>,
    /// Fixpoint rounds until convergence (monotone boolean lattice:
    /// bounded by `nodes + 1`; the call-web proptest asserts it).
    pub rounds: usize,
}

/// The reachability roots the availability rules certify. Configured in
/// `main.rs` (`--panic-root` / `--worker-root` append to the serve
/// defaults); matched by function name among non-test definitions.
#[derive(Debug, Clone)]
pub struct RootSet {
    /// Entry points that must be panic-free: the worker loop, the wire
    /// codec, the snapshot query dispatch and the budgeted parallel
    /// scans.
    pub panic_roots: Vec<String>,
    /// The worker hot loop(s) that must never block outside the
    /// explicit admission/reply allowlist.
    pub worker_roots: Vec<String>,
    /// Crates outside the serve link closure. Name-based call resolution
    /// would otherwise bridge the certificate into them through
    /// ubiquitous method names (`collect`, `get`, `merge`), producing
    /// obligations for code the serve binary never runs.
    pub excluded_crates: Vec<String>,
}

impl RootSet {
    /// The serve entry set (see DESIGN.md §16). `rotind-lint` is
    /// excluded: the linter is a build-time tool, never linked into the
    /// serve binary.
    pub fn serve_default() -> RootSet {
        let s = |n: &str| n.to_string();
        RootSet {
            panic_roots: vec![
                s("worker_loop"),
                s("read_frame"),
                s("write_frame"),
                s("execute"),
                s("nearest_parallel_budgeted"),
                s("range_parallel_budgeted"),
            ],
            worker_roots: vec![s("worker_loop")],
            excluded_crates: vec![s("rotind-lint")],
        }
    }

    /// Bitmask of graph nodes the certificate must not traverse or
    /// report: everything in an excluded crate.
    pub fn excluded_nodes(&self, graph: &CallGraph<'_>) -> Vec<bool> {
        graph
            .index
            .nodes
            .iter()
            .map(|n| self.excluded_crates.iter().any(|c| c == &n.crate_name))
            .collect()
    }
}

impl Default for RootSet {
    fn default() -> RootSet {
        RootSet::serve_default()
    }
}

/// Compute effect summaries for every function in the graph and close
/// them over resolved call edges.
pub fn analyze(graph: &CallGraph<'_>, files: &[SourceFile]) -> EffectAnalysis {
    let n = graph.index.nodes.len();
    let mut fns = vec![FnEffects::default(); n];

    // Intrinsic sites: walk each file's expressions once, attributing
    // every expression to its innermost enclosing function (nested fns
    // are their own nodes and must not leak sites into their parent).
    let mut per_file: Vec<Vec<usize>> = vec![Vec::new(); files.len()];
    for node in &graph.index.nodes {
        if let Some(bucket) = per_file.get_mut(node.file) {
            bucket.push(node.id);
        }
    }
    for (file, candidates) in files.iter().zip(&per_file) {
        let toks = file.tokens();
        for item in &file.ast.items {
            walk_item_exprs(item, &mut |e| {
                let line = e.span.line(toks);
                if file.is_test_code(line) {
                    return;
                }
                let Some(node) = innermost_fn(graph, candidates, e.span) else {
                    return;
                };
                let Some(slot) = fns.get_mut(node) else {
                    return;
                };
                if let Some(what) = panic_effect(e, toks) {
                    record(&mut slot.panic_site, line, what);
                }
                if let Some(what) = blocking_effect(e) {
                    slot.block_sites.push(EffectSite { line, what });
                }
            });
        }
    }
    for f in &mut fns {
        f.may_panic = f.panic_site.is_some();
        f.block_sites.sort_by_key(|s| s.line);
        f.may_block = !f.block_sites.is_empty();
    }

    // Close over calls. Monotone: flags only ever rise, so the loop
    // terminates after at most `n + 1` rounds (each productive round
    // raises at least one flag).
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut changed = false;
        for node in 0..n {
            let (mut p, mut b) = match fns.get(node) {
                Some(f) => (f.may_panic, f.may_block),
                None => continue,
            };
            if p && b {
                continue;
            }
            for t in graph
                .sites_of
                .get(node)
                .into_iter()
                .flatten()
                .flat_map(|&s| graph.sites.get(s))
                .flat_map(|s| &s.targets)
            {
                if let Some(callee) = fns.get(*t) {
                    p |= callee.may_panic;
                    b |= callee.may_block;
                }
            }
            if let Some(f) = fns.get_mut(node) {
                if p != f.may_panic || b != f.may_block {
                    f.may_panic = p;
                    f.may_block = b;
                    changed = true;
                }
            }
        }
        if !changed || rounds > n + 1 {
            break;
        }
    }
    EffectAnalysis { fns, rounds }
}

/// Keep the earliest site in source order.
fn record(slot: &mut Option<EffectSite>, line: usize, what: String) {
    if slot.as_ref().is_none_or(|s| line < s.line) {
        *slot = Some(EffectSite { line, what });
    }
}

/// A breadth-first reachability forest over resolved call edges,
/// remembering for every reached node the (caller, call-site) edge that
/// first discovered it — the spine the witness paths are built from.
pub struct ReachForest {
    /// node id → discovering edge; `None` for roots and unreached nodes.
    pub parent: Vec<Option<(usize, usize)>>,
    /// node id → reached from some root.
    pub reached: Vec<bool>,
    /// node id → root that discovered it.
    pub via_root: Vec<Option<usize>>,
}

/// BFS from `roots` (shortest call chains make the tightest witnesses;
/// sites are visited in (file, source) order, so discovery — and with
/// it every witness path — is deterministic).
pub fn reach_forest(graph: &CallGraph<'_>, roots: &[usize]) -> ReachForest {
    reach_forest_excluding(graph, roots, &[])
}

/// [`reach_forest`] that refuses to enter nodes marked in `excluded`
/// (see [`RootSet::excluded_nodes`]) — an excluded node is neither
/// reported nor a conduit back into certified crates. An empty mask
/// excludes nothing.
pub fn reach_forest_excluding(
    graph: &CallGraph<'_>,
    roots: &[usize],
    excluded: &[bool],
) -> ReachForest {
    let n = graph.index.nodes.len();
    let mut forest = ReachForest {
        parent: vec![None; n],
        reached: vec![false; n],
        via_root: vec![None; n],
    };
    let mut queue = std::collections::VecDeque::new();
    for &r in roots {
        if let (Some(slot), Some(via)) = (forest.reached.get_mut(r), forest.via_root.get_mut(r)) {
            if !*slot {
                *slot = true;
                *via = Some(r);
                queue.push_back(r);
            }
        }
    }
    while let Some(node) = queue.pop_front() {
        let root = forest.via_root.get(node).copied().flatten();
        for &site in graph.sites_of.get(node).into_iter().flatten() {
            let Some(s) = graph.sites.get(site) else {
                continue;
            };
            for &t in &s.targets {
                if excluded.get(t).copied().unwrap_or(false) {
                    continue;
                }
                if let Some(slot) = forest.reached.get_mut(t) {
                    if !*slot {
                        *slot = true;
                        if let Some(p) = forest.parent.get_mut(t) {
                            *p = Some((node, site));
                        }
                        if let Some(v) = forest.via_root.get_mut(t) {
                            *v = root;
                        }
                        queue.push_back(t);
                    }
                }
            }
        }
    }
    forest
}

/// Compose the witness path root → … → `target` → effect site. The
/// chain is capped at [`MAX_WITNESS`] steps: overlong chains keep both
/// ends and elide the middle, so the report always shows the root that
/// roots the obligation and the site that breaks it.
pub fn witness_path(
    graph: &CallGraph<'_>,
    files: &[SourceFile],
    forest: &ReachForest,
    target: usize,
    site: &EffectSite,
) -> Vec<WitnessStep> {
    let nodes = &graph.index.nodes;
    // Rebuild the discovery chain of edges, root first.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut cur = target;
    while let Some((caller, s)) = forest.parent.get(cur).copied().flatten() {
        edges.push((caller, s));
        cur = caller;
        if edges.len() > nodes.len() {
            break; // defensive: parent pointers cannot cycle, but stay total
        }
    }
    edges.reverse();
    let mut steps: Vec<WitnessStep> = Vec::new();
    let step_of = |node: usize, line: usize, note: String| {
        let path = nodes
            .get(node)
            .and_then(|n| files.get(n.file))
            .map_or_else(String::new, |f| f.path.clone());
        WitnessStep { path, line, note }
    };
    if let Some(root) = nodes.get(cur) {
        steps.push(step_of(
            cur,
            root.decl.name_line,
            format!("serve root `{}`", root.decl.name),
        ));
    }
    for &(caller, s) in &edges {
        let Some(call) = graph.sites.get(s) else {
            continue;
        };
        let caller_name = nodes
            .get(caller)
            .map_or("?", |n| n.decl.name.as_str())
            .to_string();
        steps.push(step_of(
            caller,
            call.line,
            format!("`{caller_name}` calls `{}`", call.name),
        ));
    }
    let target_name = nodes
        .get(target)
        .map_or("?", |n| n.decl.name.as_str())
        .to_string();
    let last = step_of(
        target,
        site.line,
        format!("in `{target_name}`: {}", site.what),
    );
    if steps.len() + 1 > MAX_WITNESS {
        let keep_head = MAX_WITNESS / 2;
        let keep_tail = MAX_WITNESS - keep_head - 2; // head + elision + tail + site
        let elided = steps.len() - keep_head - keep_tail;
        let tail: Vec<WitnessStep> = steps.split_off(steps.len() - keep_tail);
        steps.truncate(keep_head);
        let at = steps.last().cloned();
        steps.push(WitnessStep {
            path: at.map_or_else(String::new, |s| s.path),
            line: at_line(&steps),
            note: format!("… {elided} intermediate call step(s) elided …"),
        });
        steps.extend(tail);
    }
    steps.push(last);
    steps
}

fn at_line(steps: &[WitnessStep]) -> usize {
    steps.last().map_or(1, |s| s.line)
}

/// The innermost function in `candidates` (node ids of one file) whose
/// body span contains `span` — mirrors the call-graph's attribution so
/// effect sites and call sites agree on ownership.
fn innermost_fn(graph: &CallGraph<'_>, candidates: &[usize], span: Span) -> Option<usize> {
    candidates
        .iter()
        .copied()
        .filter_map(|id| {
            let body = graph.index.nodes.get(id)?.decl.body.as_ref()?;
            body.span
                .contains(span)
                .then_some((body.span.hi - body.span.lo, id))
        })
        .min_by_key(|&(width, _)| width)
        .map(|(_, id)| id)
}

/// Macros whose expansion panics unconditionally (or on a failed
/// runtime check). `debug_assert*` is deliberately absent: release
/// builds strip it, and `lb-witness` *requires* it as the admissibility
/// witness.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Integer type names that count as integer evidence in an operand.
const INT_TYPES: &[&str] = &[
    "usize", "u8", "u16", "u32", "u64", "u128", "isize", "i8", "i16", "i32", "i64", "i128",
];

/// Methods whose result is an integer count — evidence that arithmetic
/// around them is integral.
const INT_METHODS: &[&str] = &["len", "capacity", "count"];

/// Does `e` intrinsically may-panic? Returns the site description.
fn panic_effect(e: &Expr, toks: &[Token]) -> Option<String> {
    match &e.kind {
        ExprKind::MethodCall { name, .. } if name == "unwrap" || name == "expect" => {
            Some(format!("`.{name}()` may panic on `None`/`Err`"))
        }
        ExprKind::Index { .. } => Some("panicking index/slice expression".to_string()),
        ExprKind::Macro { name } if PANIC_MACROS.contains(&name.as_str()) => {
            Some(format!("`{name}!` panics when reached/failed"))
        }
        ExprKind::Binary { op, lhs, rhs } if op == "/" || op == "%" => {
            integer_division(lhs, rhs, toks)
                .then(|| format!("integer `{op}` may panic on a zero divisor"))
        }
        _ => None,
    }
}

/// The division heuristic: flag `/` and `%` only when the divisor is
/// not a non-zero literal AND either operand shows integer evidence.
/// Everything else is assumed to be the f64 math the hot path is made
/// of — a documented under-approximation (DESIGN.md §16).
fn integer_division(lhs: &Expr, rhs: &Expr, toks: &[Token]) -> bool {
    if let Some(text) = literal_text(rhs, toks) {
        // A literal divisor panics only when it is the integer zero.
        return is_integer_literal(text) && is_zero_literal(text);
    }
    has_integer_evidence(lhs.span, toks) || has_integer_evidence(rhs.span, toks)
}

/// The token text of a literal expression (possibly parenthesised).
fn literal_text<'t>(e: &Expr, toks: &'t [Token]) -> Option<&'t str> {
    match &e.kind {
        ExprKind::Lit => toks.get(e.span.lo).map(|t| t.text.as_str()),
        ExprKind::Paren(inner) | ExprKind::Unary(inner) => literal_text(inner, toks),
        _ => None,
    }
}

/// Is this literal token an integer (not a float)?
fn is_integer_literal(text: &str) -> bool {
    let mut t = text;
    for suffix in INT_TYPES {
        if let Some(stripped) = t.strip_suffix(suffix) {
            t = stripped;
            break;
        }
    }
    if t.ends_with("f32") || t.ends_with("f64") || t.contains('.') {
        return false;
    }
    !t.is_empty() && t.chars().next().is_some_and(|c| c.is_ascii_digit())
}

/// Is this integer literal zero (`0`, `0_0`, `0x0`, `0usize`, …)?
fn is_zero_literal(text: &str) -> bool {
    let digits: String = text
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(|c| c.is_ascii_digit() || *c == '_' || *c == 'x' || *c == 'o' || *c == 'b')
        .filter(char::is_ascii_digit)
        .collect();
    !digits.is_empty() && digits.chars().all(|c| c == '0')
}

/// Scan an operand's tokens for integer evidence: an integer type name
/// (cast / turbofish), an integer-suffixed literal, or a `len`-like
/// method call.
fn has_integer_evidence(span: Span, toks: &[Token]) -> bool {
    toks.get(span.lo..span.hi).into_iter().flatten().any(|t| {
        let text = t.text.as_str();
        INT_TYPES.contains(&text)
            || INT_METHODS.contains(&text)
            || (text.chars().next().is_some_and(|c| c.is_ascii_digit())
                && INT_TYPES.iter().any(|ty| text.ends_with(ty)))
    })
}

/// Free/path calls that block: `thread::sleep`, filesystem and socket
/// entry points.
const BLOCKING_PATHS: &[(&str, &str)] = &[
    ("thread", "sleep"),
    ("thread", "park"),
    ("File", "open"),
    ("File", "create"),
    ("fs", "read"),
    ("fs", "write"),
    ("fs", "read_to_string"),
    ("fs", "copy"),
    ("fs", "metadata"),
    ("fs", "read_dir"),
    ("TcpStream", "connect"),
    ("TcpListener", "bind"),
    ("UnixStream", "connect"),
];

/// Methods that block their caller.
const BLOCKING_METHODS: &[&str] = &[
    "lock",
    "recv",
    "send",
    "wait",
    "wait_timeout",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "write_fmt",
    "flush",
    "accept",
    "connect",
];

/// Does `e` intrinsically may-block? Returns the site description.
pub fn blocking_effect(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::MethodCall { name, args, .. } => {
            if BLOCKING_METHODS.contains(&name.as_str()) {
                let what = match name.as_str() {
                    "lock" => "acquires a `Mutex`/`RwLock`",
                    "recv" => "blocks on an unbounded channel `recv`",
                    "send" => "may block on a bounded channel `send`",
                    "wait" | "wait_timeout" => "waits on a condvar/barrier",
                    _ => "performs blocking file/socket IO",
                };
                return Some(format!("`.{name}()` {what}"));
            }
            // Thread `join()` takes no arguments; `slice::join(sep)` /
            // `Path::join(seg)` take one and never block.
            if name == "join" && args.is_empty() {
                return Some("`.join()` blocks on a thread handle".to_string());
            }
            None
        }
        ExprKind::Call { callee, .. } => {
            let ExprKind::Path(segs) = &callee.kind else {
                return None;
            };
            let last = segs.last()?;
            let qual = segs.len().checked_sub(2).and_then(|i| segs.get(i));
            for (q, f) in BLOCKING_PATHS {
                if last == f && qual.is_some_and(|s| s == q) {
                    return Some(format!("`{q}::{f}` blocks"));
                }
            }
            None
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn analyzed(srcs: &[(&str, &str)]) -> (Vec<SourceFile>, Vec<FnEffects>, usize) {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(p, s)| SourceFile::parse(p, s, FileKind::Library))
            .collect();
        // Build graph in a scope returning owned data we need.
        let graph = CallGraph::build(&files);
        let a = analyze(&graph, &files);
        let fx = a.fns.clone();
        let rounds = a.rounds;
        drop(graph);
        (files, fx, rounds)
    }

    fn effects_of<'a>(
        files: &[SourceFile],
        fx: &'a [FnEffects],
        name: &str,
    ) -> Option<&'a FnEffects> {
        let graph = CallGraph::build(files);
        let id = graph.index.nodes.iter().find(|n| n.decl.name == name)?.id;
        fx.get(id)
    }

    #[test]
    fn intrinsic_panic_sites_detected() {
        let (files, fx, _) = analyzed(&[(
            "crates/a/src/x.rs",
            "fn u(o: Option<f64>) -> f64 { o.unwrap() }\nfn ix(v: &[f64]) -> f64 { v[0] }\nfn m() { panic!(\"boom\"); }\nfn ok(v: &[f64]) -> f64 { v.iter().sum() }\n",
        )]);
        assert!(effects_of(&files, &fx, "u").unwrap().may_panic);
        assert!(effects_of(&files, &fx, "ix").unwrap().may_panic);
        assert!(effects_of(&files, &fx, "m").unwrap().may_panic);
        assert!(!effects_of(&files, &fx, "ok").unwrap().may_panic);
    }

    #[test]
    fn division_heuristic_wants_integer_evidence() {
        let (files, fx, _) = analyzed(&[(
            "crates/a/src/x.rs",
            "fn fdiv(a: f64, b: f64) -> f64 { a / b }\nfn by_lit(a: u64) -> u64 { a / 21 }\nfn idiv(a: u64, n: u64) -> u64 { a / (n as u64) }\nfn by_len(a: usize, v: &[f64]) -> usize { a % v.len() }\n",
        )]);
        assert!(
            !effects_of(&files, &fx, "fdiv").unwrap().may_panic,
            "float division must not count"
        );
        assert!(
            !effects_of(&files, &fx, "by_lit").unwrap().may_panic,
            "non-zero literal divisor cannot be zero"
        );
        assert!(effects_of(&files, &fx, "idiv").unwrap().may_panic);
        assert!(effects_of(&files, &fx, "by_len").unwrap().may_panic);
    }

    #[test]
    fn debug_assert_is_not_a_panic_source() {
        let (files, fx, _) = analyzed(&[(
            "crates/a/src/x.rs",
            "fn lb(v: &[f64]) -> f64 { let b = 0.0; debug_assert!(b >= 0.0); b }\nfn hard(v: &[f64]) { assert!(!v.is_empty()); }\n",
        )]);
        assert!(!effects_of(&files, &fx, "lb").unwrap().may_panic);
        assert!(effects_of(&files, &fx, "hard").unwrap().may_panic);
    }

    #[test]
    fn effects_close_over_cross_file_calls() {
        let (files, fx, rounds) = analyzed(&[
            (
                "crates/a/src/root.rs",
                "pub fn top(v: &[f64]) -> f64 { mid(v) }\n",
            ),
            (
                "crates/a/src/mid.rs",
                "pub fn mid(v: &[f64]) -> f64 { leaf(v) }\npub fn leaf(v: &[f64]) -> f64 { v[0] }\n",
            ),
        ]);
        assert!(effects_of(&files, &fx, "top").unwrap().may_panic);
        assert!(effects_of(&files, &fx, "mid").unwrap().may_panic);
        assert!(
            effects_of(&files, &fx, "top").unwrap().panic_site.is_none(),
            "top has no intrinsic site — only the closed flag"
        );
        assert!(rounds <= 4, "tiny web converges fast, took {rounds}");
    }

    #[test]
    fn blocking_sites_classified() {
        let (files, fx, _) = analyzed(&[(
            "crates/a/src/x.rs",
            "fn a(m: &Mutex<u64>) -> u64 { *m.lock().unwrap_or_else(|p| p.into_inner()) }\nfn b(rx: &Receiver<u64>) -> u64 { rx.recv().unwrap_or(0) }\nfn c() { thread::sleep(core); }\nfn d(parts: &[String]) -> String { parts.join(\"-\") }\nfn e(h: JoinHandle<()>) { let _ = h.join(); }\n",
        )]);
        assert!(effects_of(&files, &fx, "a").unwrap().may_block);
        assert!(effects_of(&files, &fx, "b").unwrap().may_block);
        assert!(effects_of(&files, &fx, "c").unwrap().may_block);
        assert!(
            effects_of(&files, &fx, "d").unwrap().block_sites.is_empty(),
            "str join takes an argument and never blocks"
        );
        assert!(effects_of(&files, &fx, "e").unwrap().may_block);
    }

    #[test]
    fn test_spans_do_not_contribute_sites() {
        let (files, fx, _) = analyzed(&[(
            "crates/a/src/x.rs",
            "pub fn clean(v: &[f64]) -> f64 { v.iter().sum() }\n#[cfg(test)]\nmod tests {\n    fn t(v: &[f64]) -> f64 { v[0] }\n}\n",
        )]);
        assert!(!effects_of(&files, &fx, "clean").unwrap().may_panic);
    }

    #[test]
    fn witness_path_walks_root_to_site() {
        let files: Vec<SourceFile> = [
            (
                "crates/s/src/server.rs",
                "pub fn worker_loop(v: &[f64]) -> f64 { helper(v) }\n",
            ),
            (
                "crates/s/src/helper.rs",
                "pub fn helper(v: &[f64]) -> f64 { v[0] }\n",
            ),
        ]
        .iter()
        .map(|(p, s)| SourceFile::parse(p, s, FileKind::Library))
        .collect();
        let graph = CallGraph::build(&files);
        let a = analyze(&graph, &files);
        let root = graph
            .index
            .nodes
            .iter()
            .find(|n| n.decl.name == "worker_loop")
            .unwrap()
            .id;
        let target = graph
            .index
            .nodes
            .iter()
            .find(|n| n.decl.name == "helper")
            .unwrap()
            .id;
        let forest = reach_forest(&graph, &[root]);
        assert!(forest.reached[target]);
        let site = a.fns[target].panic_site.clone().unwrap();
        let steps = witness_path(&graph, &files, &forest, target, &site);
        assert_eq!(steps.len(), 3, "{steps:?}");
        assert!(steps[0].note.contains("serve root"));
        assert!(steps[1].note.contains("calls `helper`"));
        assert!(steps[2].note.contains("index/slice"));
        let files_in_path: std::collections::HashSet<&str> =
            steps.iter().map(|s| s.path.as_str()).collect();
        assert!(files_in_path.len() >= 2, "multi-file witness");
    }

    #[test]
    fn overlong_witness_elides_the_middle() {
        // A 20-deep call chain: root f0 → f1 → … → f19 (panics).
        let mut src = String::new();
        for i in 0..20 {
            if i < 19 {
                src.push_str(&format!("fn f{i}(v: &[f64]) -> f64 {{ f{}(v) }}\n", i + 1));
            } else {
                src.push_str(&format!("fn f{i}(v: &[f64]) -> f64 {{ v[0] }}\n"));
            }
        }
        let files = vec![SourceFile::parse(
            "crates/a/src/x.rs",
            &src,
            FileKind::Library,
        )];
        let graph = CallGraph::build(&files);
        let a = analyze(&graph, &files);
        let root = graph
            .index
            .nodes
            .iter()
            .find(|n| n.decl.name == "f0")
            .unwrap()
            .id;
        let target = graph
            .index
            .nodes
            .iter()
            .find(|n| n.decl.name == "f19")
            .unwrap()
            .id;
        let forest = reach_forest(&graph, &[root]);
        let site = a.fns[target].panic_site.clone().unwrap();
        let steps = witness_path(&graph, &files, &forest, target, &site);
        assert!(steps.len() <= MAX_WITNESS, "{}", steps.len());
        assert!(steps.iter().any(|s| s.note.contains("elided")));
        assert!(steps.first().unwrap().note.contains("serve root"));
        assert!(steps.last().unwrap().note.contains("index/slice"));
    }
}
