//! Intraprocedural dataflow helpers shared by the semantic rules.
//!
//! The walk is deliberately simple — statements in source order, one
//! flow-insensitive taint set per function body — because the properties
//! being checked are local by construction: a `Relaxed` atomic load is
//! tainted from its `let` binding to the end of the body (or until the
//! name is re-bound), and a comparison touching a tainted name is a
//! finding wherever it appears. No branches need merging: over-taint is
//! acceptable for a linter with an allow-escape, under-taint is not.

use crate::ast::{Block, Expr, ExprKind, StmtKind};
use crate::lexer::Token;
use std::collections::HashSet;

/// Comparison operators (the only binary ops dismissal logic can use).
pub const CMP_OPS: &[&str] = &["<", ">", "<=", ">=", "==", "!="];

/// Atomic read-modify-write methods that take ordering arguments and
/// participate in the shared-radius protocol.
pub const CAS_METHODS: &[&str] = &[
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
    "fetch_min",
    "fetch_max",
];

/// Collect every comparison expression reachable from `e` **through
/// condition structure only**: logical `&&`/`||`, parens and unary `!`.
/// Used on `if`/`while` conditions, where `a >= r && b` must surface
/// `a >= r`.
pub fn comparisons<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    match &e.kind {
        ExprKind::Binary { op, lhs, rhs } => {
            if CMP_OPS.contains(&op.as_str()) {
                out.push(e);
            } else if op == "&&" || op == "||" {
                comparisons(lhs, out);
                comparisons(rhs, out);
            }
        }
        ExprKind::Paren(inner) | ExprKind::Unary(inner) => comparisons(inner, out),
        _ => {}
    }
}

/// The identifier an operand "is", for radius matching: a plain path's
/// last segment (`best`), a field access's field name (`self.best`), or
/// the same seen through parens/unary/`.sqrt()`-style method chains on
/// the value.
pub fn operand_ident(e: &Expr) -> Option<&str> {
    match &e.kind {
        ExprKind::Path(segs) => segs.last().map(String::as_str),
        ExprKind::Field { name, .. } => Some(name),
        ExprKind::Paren(inner) | ExprKind::Unary(inner) => operand_ident(inner),
        _ => None,
    }
}

/// True when `e` is a `.load(…)` whose ordering argument names
/// `Relaxed`.
pub fn is_relaxed_load(e: &Expr) -> bool {
    if let ExprKind::MethodCall { name, args, .. } = &e.kind {
        name == "load" && args.iter().any(names_relaxed)
    } else {
        false
    }
}

/// True when `e` is a CAS-family atomic call (see [`CAS_METHODS`]) with
/// any `Relaxed` ordering argument.
pub fn is_relaxed_cas(e: &Expr) -> Option<&str> {
    if let ExprKind::MethodCall { name, args, .. } = &e.kind {
        if CAS_METHODS.contains(&name.as_str()) && args.iter().any(names_relaxed) {
            return Some(name);
        }
    }
    None
}

/// True when an argument expression names `Ordering::Relaxed` (possibly
/// through parens).
fn names_relaxed(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Path(segs) => segs.last().is_some_and(|s| s == "Relaxed"),
        ExprKind::Paren(inner) => names_relaxed(inner),
        _ => false,
    }
}

/// True when any sub-expression of `e` satisfies `pred` (the walk
/// descends into nested blocks too).
pub fn contains(e: &Expr, pred: &impl Fn(&Expr) -> bool) -> bool {
    let mut hit = false;
    crate::ast::walk_expr(e, &mut |sub| {
        if pred(sub) {
            hit = true;
        }
    });
    hit
}

/// A comparison whose operand carries a `Relaxed` load, found by the
/// taint walk.
#[derive(Debug)]
pub struct RelaxedCompare {
    /// 1-based line of the comparison.
    pub line: usize,
    /// The let-binding the load flowed through, when not inline.
    pub via: Option<String>,
}

/// Walk a function body and report every comparison fed by a
/// `load(Ordering::Relaxed)` — either inline
/// (`x.load(Relaxed) <= r`) or through a `let` binding
/// (`let v = x.load(Relaxed); … if v <= r`).
pub fn relaxed_loads_feeding_compares(body: &Block, tokens: &[Token]) -> Vec<RelaxedCompare> {
    let mut walk = TaintWalk {
        tokens,
        tainted: HashSet::new(),
        out: Vec::new(),
    };
    walk.block(body);
    walk.out
}

struct TaintWalk<'t> {
    tokens: &'t [Token],
    tainted: HashSet<String>,
    out: Vec<RelaxedCompare>,
}

impl TaintWalk<'_> {
    fn block(&mut self, b: &Block) {
        for stmt in &b.stmts {
            match &stmt.kind {
                StmtKind::Let { name, init } => {
                    if let Some(init) = init {
                        self.expr(init);
                        if let Some(n) = name {
                            if contains(init, &is_relaxed_load) {
                                self.tainted.insert(n.clone());
                            } else {
                                // Re-binding with a clean value clears
                                // the taint (shadowing).
                                self.tainted.remove(n);
                            }
                        }
                    }
                }
                StmtKind::Expr(e) => self.expr(e),
                StmtKind::Item(_) | StmtKind::Empty => {}
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        if let ExprKind::Binary { op, lhs, rhs } = &e.kind {
            if CMP_OPS.contains(&op.as_str()) {
                for side in [lhs.as_ref(), rhs.as_ref()] {
                    if contains(side, &is_relaxed_load) {
                        self.out.push(RelaxedCompare {
                            line: e.span.line(self.tokens),
                            via: None,
                        });
                    } else if let Some(name) = self.tainted_name(side) {
                        self.out.push(RelaxedCompare {
                            line: e.span.line(self.tokens),
                            via: Some(name.to_string()),
                        });
                    }
                }
            }
        }
        // Recurse manually so nested blocks keep statement order (lets
        // inside an if-arm taint uses after them).
        match &e.kind {
            ExprKind::If {
                cond,
                then_block,
                else_branch,
            } => {
                self.expr(cond);
                self.block(then_block);
                if let Some(el) = else_branch {
                    self.expr(el);
                }
            }
            ExprKind::Match { scrutinee, arms } => {
                self.expr(scrutinee);
                for arm in arms {
                    if let Some(g) = &arm.guard {
                        self.expr(g);
                    }
                    self.expr(&arm.body);
                }
            }
            ExprKind::While { cond, body } => {
                self.expr(cond);
                self.block(body);
            }
            ExprKind::For { iter, body } => {
                self.expr(iter);
                self.block(body);
            }
            ExprKind::Loop { body } => self.block(body),
            ExprKind::Block(b) => self.block(b),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            ExprKind::Unary(inner) | ExprKind::Paren(inner) => self.expr(inner),
            ExprKind::Field { recv, .. } => self.expr(recv),
            ExprKind::Call { callee, args } => {
                self.expr(callee);
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::MethodCall { recv, args, .. } => {
                self.expr(recv);
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::Index { recv, index } => {
                self.expr(recv);
                self.expr(index);
            }
            ExprKind::Return(Some(inner)) => self.expr(inner),
            ExprKind::Path(_)
            | ExprKind::Lit
            | ExprKind::Macro { .. }
            | ExprKind::Return(None)
            | ExprKind::Break
            | ExprKind::Continue
            | ExprKind::Opaque => {}
        }
    }

    /// The tainted binding a comparison operand reads, if any — a plain
    /// path, possibly through parens/unary/method calls on the value
    /// (`v.sqrt() <= r` still compares the loaded value).
    fn tainted_name<'e>(&self, e: &'e Expr) -> Option<&'e str> {
        match &e.kind {
            ExprKind::Path(segs) => {
                let [n] = segs.as_slice() else {
                    return None;
                };
                self.tainted.contains(n.as_str()).then_some(n.as_str())
            }
            ExprKind::Paren(inner) | ExprKind::Unary(inner) => self.tainted_name(inner),
            ExprKind::MethodCall { recv, .. } => self.tainted_name(recv),
            _ => None,
        }
    }
}

/// True when executing `block` dismisses the current candidate: it
/// contains (outside nested fn items) a `continue`, a `break`, or a
/// `return` of a dismissing value (`return`, `return None`,
/// `return Err(…)`, `return false`, or a `*Pruned*` path).
pub fn block_dismisses(block: &Block) -> bool {
    let mut dismisses = false;
    crate::ast::walk_exprs(block, &mut |e| match &e.kind {
        ExprKind::Continue | ExprKind::Break => dismisses = true,
        ExprKind::Return(value) if value.as_deref().is_none_or(is_dismissing_value) => {
            dismisses = true;
        }
        _ => {}
    });
    if dismisses {
        return true;
    }
    // A tail expression that *is* a dismissal verdict
    // (`… { Pruned }` / `… { Verdict::Pruned }`).
    block
        .stmts
        .last()
        .is_some_and(|s| matches!(&s.kind, StmtKind::Expr(e) if is_dismissing_value(e)))
}

/// Values that encode "candidate dismissed" when returned or used as a
/// branch tail.
fn is_dismissing_value(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Path(segs) => segs
            .last()
            .is_some_and(|s| s == "None" || s == "false" || s.contains("Pruned")),
        ExprKind::Call { callee, .. } => matches!(
            &callee.kind,
            ExprKind::Path(segs) if segs.last().is_some_and(|s| s == "Err")
        ),
        ExprKind::Paren(inner) => is_dismissing_value(inner),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{parse, ItemKind};
    use crate::lexer::lex;

    fn body_of(src: &str) -> (Vec<Token>, Block) {
        let lexed = lex(src);
        let file = parse(&lexed.tokens);
        for item in file.items {
            if let ItemKind::Fn(decl) = item.kind {
                if let Some(body) = decl.body {
                    return (lexed.tokens, body);
                }
            }
        }
        // rotind-lint: allow(no-panic)
        panic!("fixture has no fn body");
    }

    #[test]
    fn inline_relaxed_load_in_compare() {
        let (toks, body) =
            body_of("fn f(a: &AtomicU64, r: u64) -> bool { a.load(Ordering::Relaxed) <= r }\n");
        let hits = relaxed_loads_feeding_compares(&body, &toks);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].via.is_none());
    }

    #[test]
    fn let_bound_relaxed_load_in_compare() {
        let (toks, body) = body_of(
            "fn f(a: &AtomicU64, r: f64) -> bool { let bits = a.load(Ordering::Relaxed); let v = f64::from_bits(bits); if bits >= 1 { return true; } v.sqrt() > r }\n",
        );
        let hits = relaxed_loads_feeding_compares(&body, &toks);
        // `bits >= 1` via the binding; `v` is derived through from_bits
        // (a call, not a rename) so `v.sqrt() > r` is not reported —
        // the taint is one hop deep by design.
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].via.as_deref(), Some("bits"));
    }

    #[test]
    fn acquire_load_is_clean_and_rebinding_clears() {
        let (toks, body) = body_of(
            "fn f(a: &AtomicU64, r: u64) -> bool { let v = a.load(Ordering::Relaxed); let v = a.load(Ordering::Acquire); v <= r }\n",
        );
        assert!(relaxed_loads_feeding_compares(&body, &toks).is_empty());
    }

    #[test]
    fn cas_with_relaxed_detected() {
        let (toks, body) = body_of(
            "fn f(a: &AtomicU64) { let _ = a.compare_exchange_weak(1, 2, Ordering::Relaxed, Ordering::Relaxed); }\n",
        );
        let mut cas = Vec::new();
        crate::ast::walk_exprs(&body, &mut |e| {
            if let Some(m) = is_relaxed_cas(e) {
                cas.push((m.to_string(), e.span.line(&toks)));
            }
        });
        assert_eq!(cas.len(), 1);
        assert_eq!(cas[0].0, "compare_exchange_weak");
    }

    #[test]
    fn dismissal_shapes() {
        let cases = [
            ("fn f() { for x in 0..3 { if a >= r { continue; } } }", true),
            (
                "fn f() -> Option<u8> { if a >= r { return None; } Some(1) }",
                true,
            ),
            ("fn f() -> bool { if a >= r { return false; } true }", true),
            (
                "fn f() -> V { if a <= r { Admitted } else { Pruned } }",
                false,
            ),
            ("fn f() -> u8 { if a <= r { push(a); } 1 }", false),
            (
                "fn f() -> V { if a >= r { Verdict::Pruned } else { x } }",
                true,
            ),
        ];
        for (src, want) in cases {
            let (_toks, body) = body_of(src);
            let mut ifs = Vec::new();
            crate::ast::walk_exprs(&body, &mut |e| {
                if let ExprKind::If { then_block, .. } = &e.kind {
                    ifs.push(block_dismisses(then_block));
                }
            });
            assert_eq!(ifs, vec![want], "case {src:?}");
        }
    }

    #[test]
    fn comparisons_through_logic() {
        let (_toks, body) = body_of("fn f() { if a > r2 && (b.sqrt() >= r || !(c < d)) { x(); } }");
        let mut found = Vec::new();
        crate::ast::walk_exprs(&body, &mut |e| {
            if let ExprKind::If { cond, .. } = &e.kind {
                let mut cmps = Vec::new();
                comparisons(cond, &mut cmps);
                for c in &cmps {
                    if let ExprKind::Binary { op, .. } = &c.kind {
                        found.push(op.clone());
                    }
                }
            }
        });
        assert_eq!(found, vec![">", ">=", "<"]);
    }

    #[test]
    fn operand_idents() {
        let (_toks, body) = body_of("fn f() { if self.best <= lb { x(); } }");
        let mut ids = Vec::new();
        crate::ast::walk_exprs(&body, &mut |e| {
            if let ExprKind::Binary { op, lhs, rhs } = &e.kind {
                if op == "<=" {
                    ids.push(operand_ident(lhs).map(str::to_string));
                    ids.push(operand_ident(rhs).map(str::to_string));
                }
            }
        });
        assert_eq!(ids, vec![Some("best".to_string()), Some("lb".to_string())]);
    }
}
