//! The whole-workspace call graph, built on [`crate::resolve`].
//!
//! Every `callee(args)` with a path callee and every `recv.method(args)`
//! in every function body becomes a [`CallSite`], attributed to the
//! innermost enclosing function. Sites resolve through
//! [`GlobalIndex::resolve`]; a site with no matching definition stays in
//! the graph with an empty target list — the **totality invariant**:
//!
//! > call sites = resolved sites ∪ unresolved sites, and every resolved
//! > edge points at a real node.
//!
//! Unresolved sites are mostly std/vendored calls (`.load`, `.iter`,
//! `Vec::new`) the workspace does not define; keeping them bucketed
//! (instead of dropped) lets the proptest in `tests/callgraph.rs` prove
//! the extraction lost nothing, and lets the interprocedural rules
//! reason about *name-based* facts (an unresolved `lb_kim` call is still
//! a bound source) without a resolved definition.

use crate::ast::{walk_item_exprs, Expr, ExprKind, Span};
use crate::resolve::GlobalIndex;
use crate::source::SourceFile;

/// One call expression inside some function body.
#[derive(Debug)]
pub struct CallSite<'a> {
    /// Node id of the innermost enclosing function.
    pub caller: usize,
    /// Called name (path's last segment, or the method name).
    pub name: String,
    /// Path segment before the name, when the call had one
    /// (`Self::f` → `Self`, `module::f` → `module`).
    pub qualifier: Option<String>,
    /// True for `recv.method(args)` — argument positions shift by one
    /// against the callee's parameter list (`self` is parameter 0).
    pub is_method: bool,
    /// 1-based source line of the call.
    pub line: usize,
    /// The call expression itself (args inspectable by the dataflow).
    pub expr: &'a Expr,
    /// Resolved target node ids; empty = unresolved (bucketed, not
    /// dropped).
    pub targets: Vec<usize>,
}

/// The call graph over one scan unit.
pub struct CallGraph<'a> {
    /// The function index the graph resolves against.
    pub index: GlobalIndex<'a>,
    /// Every call site, in (file, source) order.
    pub sites: Vec<CallSite<'a>>,
    /// caller node id → indices into [`CallGraph::sites`].
    pub sites_of: Vec<Vec<usize>>,
}

impl<'a> CallGraph<'a> {
    /// Build the graph over a scan unit.
    pub fn build(files: &'a [SourceFile]) -> CallGraph<'a> {
        let index = GlobalIndex::build(files);
        let per_file = nodes_per_file(&index, files.len());
        let mut sites: Vec<CallSite<'a>> = Vec::new();
        for (file, candidates) in files.iter().zip(&per_file) {
            let toks = file.tokens();
            for item in &file.ast.items {
                walk_item_exprs(item, &mut |e| {
                    let (name, qualifier, is_method) = match call_shape(e) {
                        Some(shape) => shape,
                        None => return,
                    };
                    let Some(caller) = innermost_fn(&index, candidates, e.span) else {
                        return; // call outside any fn body (opaque item)
                    };
                    let targets = index.resolve(caller, name, qualifier);
                    sites.push(CallSite {
                        caller,
                        name: name.to_string(),
                        qualifier: qualifier.map(str::to_string),
                        is_method,
                        line: e.span.line(toks),
                        expr: e,
                        targets,
                    });
                });
            }
        }
        let mut sites_of: Vec<Vec<usize>> = vec![Vec::new(); index.nodes.len()];
        for (i, s) in sites.iter().enumerate() {
            if let Some(of_caller) = sites_of.get_mut(s.caller) {
                of_caller.push(i);
            }
        }
        CallGraph {
            index,
            sites,
            sites_of,
        }
    }

    /// Node ids reachable from `roots` along resolved edges (roots
    /// included).
    pub fn reachable_from(&self, roots: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.index.nodes.len()];
        let mut stack: Vec<usize> = roots.to_vec();
        for &r in roots {
            if let Some(slot) = seen.get_mut(r) {
                *slot = true;
            }
        }
        while let Some(node) = stack.pop() {
            let sites = self.sites_of.get(node).into_iter().flatten();
            for t in sites
                .flat_map(|&site| self.sites.get(site))
                .flat_map(|s| &s.targets)
            {
                if let Some(slot) = seen.get_mut(*t) {
                    if !*slot {
                        *slot = true;
                        stack.push(*t);
                    }
                }
            }
        }
        seen
    }

    /// Check the totality invariant; `Err(description)` at the first
    /// violation. Exercised by the call-graph proptest over every
    /// workspace file.
    pub fn validate_totality(&self, files: &[SourceFile]) -> Result<(), String> {
        let n_nodes = self.index.nodes.len();
        for (i, s) in self.sites.iter().enumerate() {
            for &t in &s.targets {
                if t >= n_nodes {
                    return Err(format!(
                        "site {i} (`{}` at line {}): target {t} out of range ({n_nodes} nodes)",
                        s.name, s.line
                    ));
                }
            }
            if s.caller >= n_nodes {
                return Err(format!("site {i}: caller {} out of range", s.caller));
            }
        }
        // Independent recount: every call expression inside a fn body
        // must appear as exactly one site.
        let mut expected = 0usize;
        let per_file = nodes_per_file(&self.index, files.len());
        for (file, candidates) in files.iter().zip(&per_file) {
            for item in &file.ast.items {
                walk_item_exprs(item, &mut |e| {
                    if call_shape(e).is_some()
                        && innermost_fn(&self.index, candidates, e.span).is_some()
                    {
                        expected += 1;
                    }
                });
            }
        }
        if expected != self.sites.len() {
            return Err(format!(
                "{expected} call expressions in fn bodies but {} sites recorded",
                self.sites.len()
            ));
        }
        Ok(())
    }

    /// Resolved + unresolved site counts (for reports and tests).
    pub fn site_counts(&self) -> (usize, usize) {
        let resolved = self.sites.iter().filter(|s| !s.targets.is_empty()).count();
        (resolved, self.sites.len() - resolved)
    }
}

/// Node ids bucketed by owning file index.
fn nodes_per_file(index: &GlobalIndex<'_>, n_files: usize) -> Vec<Vec<usize>> {
    let mut per_file: Vec<Vec<usize>> = vec![Vec::new(); n_files];
    for n in &index.nodes {
        if let Some(bucket) = per_file.get_mut(n.file) {
            bucket.push(n.id);
        }
    }
    per_file
}

/// The (name, qualifier, is_method) of a call expression, or `None`
/// when `e` is not a call the graph tracks.
fn call_shape(e: &Expr) -> Option<(&str, Option<&str>, bool)> {
    match &e.kind {
        ExprKind::Call { callee, .. } => match &callee.kind {
            ExprKind::Path(segs) => {
                let name = segs.last()?;
                let qualifier = segs.len().checked_sub(2).and_then(|i| segs.get(i));
                Some((name, qualifier.map(String::as_str), false))
            }
            _ => None,
        },
        ExprKind::MethodCall { name, .. } => Some((name, None, true)),
        _ => None,
    }
}

/// The innermost function in `candidates` (node ids of one file) whose
/// body span contains `span`.
fn innermost_fn(index: &GlobalIndex<'_>, candidates: &[usize], span: Span) -> Option<usize> {
    candidates
        .iter()
        .copied()
        .filter_map(|id| {
            let body = index.nodes.get(id)?.decl.body.as_ref()?;
            body.span
                .contains(span)
                .then_some((body.span.hi - body.span.lo, id))
        })
        .min_by_key(|&(width, _)| width)
        .map(|(_, id)| id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn files(srcs: &[(&str, &str)]) -> Vec<SourceFile> {
        srcs.iter()
            .map(|(p, s)| SourceFile::parse(p, s, FileKind::Library))
            .collect()
    }

    fn graph(fs: &[SourceFile]) -> CallGraph<'_> {
        let g = CallGraph::build(fs);
        g.validate_totality(fs).unwrap();
        g
    }

    #[test]
    fn cross_file_edge_resolves() {
        let fs = files(&[
            (
                "crates/a/src/x.rs",
                "pub fn tier(q: &[f64]) -> f64 { kernel(q) }\n",
            ),
            (
                "crates/a/src/y.rs",
                "pub fn kernel(q: &[f64]) -> f64 { 0.0 }\n",
            ),
        ]);
        let g = graph(&fs);
        let site = g.sites.iter().find(|s| s.name == "kernel").unwrap();
        assert_eq!(site.targets.len(), 1);
        assert_eq!(g.index.nodes[site.targets[0]].file, 1);
    }

    #[test]
    fn unresolved_sites_stay_bucketed() {
        let fs = files(&[(
            "crates/a/src/x.rs",
            "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>().sqrt() }\n",
        )]);
        let g = graph(&fs);
        let (resolved, unresolved) = g.site_counts();
        assert_eq!(resolved, 0);
        assert_eq!(unresolved, 3, "iter, sum, sqrt all bucketed: {:?}", g.sites);
    }

    #[test]
    fn nested_fn_calls_attribute_to_the_inner_fn() {
        let fs = files(&[(
            "crates/a/src/x.rs",
            "fn outer() { fn inner() { leaf(); } inner(); }\nfn leaf() {}\n",
        )]);
        let g = graph(&fs);
        let leaf_site = g.sites.iter().find(|s| s.name == "leaf").unwrap();
        assert_eq!(g.index.nodes[leaf_site.caller].decl.name, "inner");
        let inner_site = g.sites.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(g.index.nodes[inner_site.caller].decl.name, "outer");
    }

    #[test]
    fn reachability_follows_resolved_edges() {
        let fs = files(&[(
            "crates/a/src/x.rs",
            "fn root() { mid(); } fn mid() { leaf(); } fn leaf() {} fn island() {}\n",
        )]);
        let g = graph(&fs);
        let root = g
            .index
            .nodes
            .iter()
            .find(|n| n.decl.name == "root")
            .unwrap()
            .id;
        let seen = g.reachable_from(&[root]);
        let name_of = |id: usize| g.index.nodes[id].decl.name.as_str();
        let reached: Vec<&str> = (0..seen.len()).filter(|&i| seen[i]).map(name_of).collect();
        assert!(reached.contains(&"leaf"));
        assert!(!reached.contains(&"island"));
    }

    #[test]
    fn ufcs_and_self_calls_join_the_graph() {
        let fs = files(&[(
            "crates/a/src/x.rs",
            "impl Env { fn min_dist(&self) -> f64 { 0.0 } fn probe(&self) -> f64 { Self::min_dist(self) + <Env as Bound>::min_dist(self) } }\n",
        )]);
        let g = graph(&fs);
        let calls: Vec<_> = g.sites.iter().filter(|s| s.name == "min_dist").collect();
        assert_eq!(calls.len(), 2, "{:?}", g.sites);
        for c in calls {
            assert_eq!(c.targets.len(), 1, "both forms resolve: {c:?}");
        }
    }
}
