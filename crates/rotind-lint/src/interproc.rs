//! Interprocedural taint dataflow over the [`crate::callgraph`].
//!
//! The analysis assigns every function a **summary** — which taints its
//! return value can carry, and which parameters flow where — and
//! iterates to a fixpoint over the whole workspace, so a bound value
//! produced in `rotind-core` and laundered through two helpers in
//! `rotind-index` is still known to be a bound at the final use site.
//!
//! Taint is a single `u64` mask:
//!
//! * bit 63 — **BOUND**: the value originates from a lower-bound
//!   producer (`lb_*`, `*lower_bound`, `*tier_bound`, `min_dist`).
//!   The *prune-only proof*: such values may feed strict-dismissal
//!   comparisons, observers and other bound functions, but never a
//!   returned distance or a best-so-far update.
//! * bit 62 — **RELAXED**: the value came from a
//!   `load(Ordering::Relaxed)` in this function.
//! * bit 61 — **RELAXED_VIA_CALL**: a callee returned a Relaxed-loaded
//!   value — the interprocedural extension of `atomic-ordering`.
//! * bits 0..60 — the caller's parameters, for flow-through summaries.
//!
//! Comparisons are a taint *cut* (their result is a bool, and feeding a
//! dismissal compare is exactly what bounds are for); pattern
//! destructuring (`if let Some(lb) = …`) is a known taint boundary —
//! fixtures and the workspace use plain bindings on the paths the rules
//! guard. Each BOUND/RELAXED fact carries one representative **witness
//! path** (capped at [`MAX_WITNESS`] steps) composed across call sites,
//! reported in human and SARIF output.

use crate::ast::{Block, Expr, ExprKind, Span, StmtKind};
use crate::callgraph::CallGraph;
use crate::dataflow::{is_relaxed_load, operand_ident, CAS_METHODS, CMP_OPS};
use crate::findings::WitnessStep;
use crate::lexer::Token;
use crate::rules::lb_coverage::is_lower_bound_name;
use crate::source::SourceFile;
use std::collections::HashMap;

/// Taint bit: value originates from a lower-bound producer.
pub const BOUND: u64 = 1 << 63;
/// Taint bit: value read with `Ordering::Relaxed` in this function.
pub const RELAXED: u64 = 1 << 62;
/// Taint bit: a callee's return value carries a Relaxed-loaded value.
pub const RELAXED_VIA_CALL: u64 = 1 << 61;
/// Parameter bits 0..60 (functions with more parameters than this
/// simply lose flow precision for the tail, never soundness of BOUND).
pub const PARAM_BITS: usize = 60;
const PARAM_MASK: u64 = (1 << PARAM_BITS) - 1;
/// Witness paths are representative, not exhaustive; cap their length.
pub const MAX_WITNESS: usize = 12;

/// True when calling `name` *produces* a lower-bound value. `min_dist`
/// is the envelope's bound kernel (paper §4) and does not carry an
/// `lb_` name.
pub fn is_bound_source(name: &str) -> bool {
    is_lower_bound_name(name) || name == "min_dist"
}

/// Identifiers that denote the best-so-far / pruning radius state.
pub fn is_best_name(name: &str) -> bool {
    name.contains("best") || name.contains("radius") || name == "bsf"
}

/// A taint mask plus one representative witness path for its
/// BOUND/RELAXED origin.
#[derive(Clone, Debug, Default)]
pub struct Taint {
    /// Bitmask (see module docs).
    pub mask: u64,
    /// Representative origin path, oldest step first.
    pub witness: Vec<WitnessStep>,
}

impl Taint {
    fn merge(&mut self, other: &Taint) {
        if other.mask != 0 && self.witness.is_empty() {
            self.witness.clone_from(&other.witness);
        }
        self.mask |= other.mask;
    }

    fn step(mut self, path: &str, line: usize, note: String) -> Taint {
        if self.witness.len() < MAX_WITNESS {
            self.witness.push(WitnessStep {
                path: path.to_string(),
                line,
                note,
            });
        }
        self
    }
}

/// What the fixpoint learns about one function.
#[derive(Clone, Debug, Default)]
pub struct FnSummary {
    /// The return value can carry BOUND taint.
    pub returns_bound: bool,
    /// Parameters (bit i) that can flow into the return value.
    pub param_to_return: u64,
    /// The return value can carry a Relaxed-loaded value.
    pub relaxed_return: bool,
    /// Parameters that flow into a best-so-far update inside the body.
    pub param_to_best: u64,
    /// Witness for `returns_bound`.
    pub bound_witness: Vec<WitnessStep>,
    /// Witness for `relaxed_return`.
    pub relaxed_witness: Vec<WitnessStep>,
    /// Representative line of the best-so-far sink for `param_to_best`.
    pub best_sink_line: usize,
}

impl FnSummary {
    /// Convergence key — witnesses are representative and excluded.
    fn key(&self) -> (bool, u64, bool, u64) {
        (
            self.returns_bound,
            self.param_to_return,
            self.relaxed_return,
            self.param_to_best,
        )
    }
}

/// What a sink violation is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A BOUND-tainted value is returned (a bound leaking as a
    /// distance) — the caller decides whether the fn's name excuses it.
    BoundReturned,
    /// A BOUND-tainted value flows into a best-so-far update.
    BoundToBest,
    /// A comparison operand carries a Relaxed load through a call.
    RelaxedCompareViaCall,
    /// A CAS cycle's expected value was read with Relaxed ordering.
    RelaxedSeededCas,
}

/// One interprocedural sink violation, pre-policy: the rules decide
/// which of these are findings (fn naming, crate and file-kind gates).
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which sink was hit.
    pub kind: ViolationKind,
    /// Node id of the function containing the sink.
    pub fn_id: usize,
    /// 1-based line of the sink.
    pub line: usize,
    /// Full witness path from the taint origin to the sink.
    pub witness: Vec<WitnessStep>,
    /// Sink description fragment for the message (`best_so_far`, …).
    pub detail: String,
}

/// The analyzed workspace: call graph + converged summaries + sink
/// violations, shared by the three interprocedural rules.
pub struct Workspace<'a> {
    /// The call graph the analysis ran over.
    pub graph: CallGraph<'a>,
    /// Converged per-function summaries, indexed by node id.
    pub summaries: Vec<FnSummary>,
    /// Sink violations found in the final pass.
    pub violations: Vec<Violation>,
}

/// Run the interprocedural analysis over a scan unit.
pub fn analyze(files: &[SourceFile]) -> Workspace<'_> {
    let graph = CallGraph::build(files);
    let n = graph.index.nodes.len();
    let mut summaries = vec![FnSummary::default(); n];
    // Monotone fixpoint: summaries start at bottom and only grow, so
    // this converges within the call-chain height; the round cap is a
    // backstop, not a tuning knob.
    for _round in 0..40 {
        let mut changed = false;
        for id in 0..n {
            let (s, _) = eval_fn(files, &graph, &summaries, id, false);
            let Some(slot) = summaries.get_mut(id) else {
                continue;
            };
            if s.key() != slot.key() {
                changed = true;
            }
            *slot = s;
        }
        if !changed {
            break;
        }
    }
    // Final pass with converged summaries collects sink violations.
    let mut violations = Vec::new();
    for id in 0..n {
        let (_, v) = eval_fn(files, &graph, &summaries, id, true);
        violations.extend(v);
    }
    Workspace {
        graph,
        summaries,
        violations,
    }
}

/// Evaluate one function body against the current summaries.
fn eval_fn(
    files: &[SourceFile],
    graph: &CallGraph<'_>,
    summaries: &[FnSummary],
    id: usize,
    record: bool,
) -> (FnSummary, Vec<Violation>) {
    let (Some(node), Some(file)) = (
        graph.index.nodes.get(id),
        graph.index.nodes.get(id).and_then(|n| files.get(n.file)),
    ) else {
        return (FnSummary::default(), Vec::new());
    };
    let Some(body) = &node.decl.body else {
        return (FnSummary::default(), Vec::new());
    };
    let mut ev = Eval {
        graph,
        summaries,
        fn_id: id,
        fn_name: &node.decl.name,
        path: &file.path,
        toks: file.tokens(),
        env: HashMap::new(),
        ret: Taint::default(),
        ret_line: 0,
        summary: FnSummary::default(),
        record,
        violations: Vec::new(),
    };
    for (i, p) in node.decl.params.iter().enumerate().take(PARAM_BITS) {
        if p != "_" {
            ev.env.insert(
                p.clone(),
                Taint {
                    mask: 1 << i,
                    witness: Vec::new(),
                },
            );
        }
    }
    let tail = ev.block(body);
    let tail_line = ev.end_line(body.span);
    ev.ret_merge(tail, tail_line);
    let ret = std::mem::take(&mut ev.ret);
    let mut summary = std::mem::take(&mut ev.summary);
    summary.returns_bound = ret.mask & BOUND != 0;
    summary.param_to_return = ret.mask & PARAM_MASK;
    summary.relaxed_return = ret.mask & (RELAXED | RELAXED_VIA_CALL) != 0;
    if summary.returns_bound {
        summary.bound_witness = ret.witness.clone();
    }
    if summary.relaxed_return {
        summary.relaxed_witness = ret.witness;
    }
    let mut violations = ev.violations;
    if record && summary.returns_bound {
        violations.push(Violation {
            kind: ViolationKind::BoundReturned,
            fn_id: id,
            line: if ev.ret_line == 0 {
                node.decl.name_line
            } else {
                ev.ret_line
            },
            witness: summary.bound_witness.clone(),
            detail: node.decl.name.clone(),
        });
    }
    (summary, violations)
}

struct Eval<'a, 'g> {
    graph: &'g CallGraph<'a>,
    summaries: &'g [FnSummary],
    fn_id: usize,
    fn_name: &'a str,
    path: &'a str,
    toks: &'a [Token],
    env: HashMap<String, Taint>,
    ret: Taint,
    ret_line: usize,
    summary: FnSummary,
    record: bool,
    violations: Vec<Violation>,
}

impl Eval<'_, '_> {
    fn end_line(&self, span: Span) -> usize {
        self.toks
            .get(span.hi.saturating_sub(1))
            .map_or(1, |t| t.line)
    }

    fn ret_merge(&mut self, t: Taint, line: usize) {
        if t.mask == 0 {
            return;
        }
        let stepped = if t.mask & BOUND != 0 {
            t.step(self.path, line, format!("returned from `{}`", self.fn_name))
        } else {
            t
        };
        if self.ret_line == 0 && stepped.mask & BOUND != 0 {
            self.ret_line = line;
        }
        self.ret.merge(&stepped);
    }

    fn block(&mut self, b: &Block) -> Taint {
        let mut last = Taint::default();
        for stmt in &b.stmts {
            match &stmt.kind {
                StmtKind::Let { name, init } => {
                    last = Taint::default();
                    if let Some(init) = init {
                        let t = self.expr(init);
                        if let Some(n) = name {
                            if t.mask != 0 {
                                self.env.insert(n.clone(), t);
                            } else {
                                // Clean re-binding clears (shadowing).
                                self.env.remove(n);
                            }
                        }
                    }
                }
                StmtKind::Expr(e) => last = self.expr(e),
                StmtKind::Item(_) | StmtKind::Empty => last = Taint::default(),
            }
        }
        last
    }

    fn expr(&mut self, e: &Expr) -> Taint {
        match &e.kind {
            ExprKind::Path(segs) => match segs.as_slice() {
                [name] => self.env.get(name).cloned().unwrap_or_default(),
                _ => Taint::default(),
            },
            ExprKind::Lit
            | ExprKind::Macro { .. }
            | ExprKind::Break
            | ExprKind::Continue
            | ExprKind::Return(None)
            | ExprKind::Opaque => Taint::default(),
            ExprKind::Paren(inner) | ExprKind::Unary(inner) => self.expr(inner),
            ExprKind::Field { recv, .. } => self.expr(recv),
            ExprKind::Index { recv, index } => {
                let t = self.expr(recv);
                self.expr(index);
                t
            }
            ExprKind::Binary { op, lhs, rhs } => self.binary(e, op, lhs, rhs),
            ExprKind::Call { callee, args } => self.call(e, callee, args),
            ExprKind::MethodCall { recv, name, args } => self.method(e, recv, name, args),
            ExprKind::If {
                cond,
                then_block,
                else_branch,
            } => {
                self.expr(cond);
                let mut t = self.block(then_block);
                if let Some(el) = else_branch {
                    let te = self.expr(el);
                    t.merge(&te);
                }
                t
            }
            ExprKind::Match { scrutinee, arms } => {
                // Pattern bindings are a taint boundary (module docs).
                self.expr(scrutinee);
                let mut t = Taint::default();
                for arm in arms {
                    if let Some(g) = &arm.guard {
                        self.expr(g);
                    }
                    let at = self.expr(&arm.body);
                    t.merge(&at);
                }
                t
            }
            ExprKind::While { cond, body } => {
                self.expr(cond);
                self.block(body);
                Taint::default()
            }
            ExprKind::For { iter, body } => {
                self.expr(iter);
                self.block(body);
                Taint::default()
            }
            ExprKind::Loop { body } => {
                self.block(body);
                Taint::default()
            }
            ExprKind::Block(b) => self.block(b),
            ExprKind::Return(Some(v)) => {
                let t = self.expr(v);
                let line = e.span.line(self.toks);
                self.ret_merge(t, line);
                Taint::default()
            }
        }
    }

    fn binary(&mut self, e: &Expr, op: &str, lhs: &Expr, rhs: &Expr) -> Taint {
        let lt = self.expr(lhs);
        let rt = self.expr(rhs);
        if CMP_OPS.contains(&op) {
            // Comparisons are the *allowed* BOUND sink; their result is
            // a bool — the taint cut. The interprocedural atomic check
            // fires here: a compare fed by a helper's Relaxed value.
            if self.record {
                for t in [&lt, &rt] {
                    if t.mask & RELAXED_VIA_CALL != 0 {
                        let w = t
                            .witness
                            .clone()
                            .into_iter()
                            .take(MAX_WITNESS - 1)
                            .collect::<Vec<_>>();
                        self.violations.push(Violation {
                            kind: ViolationKind::RelaxedCompareViaCall,
                            fn_id: self.fn_id,
                            line: e.span.line(self.toks),
                            witness: with_step(
                                w,
                                self.path,
                                e.span.line(self.toks),
                                format!("compared with `{op}` in `{}`", self.fn_name),
                            ),
                            detail: op.to_string(),
                        });
                    }
                }
            }
            return Taint::default();
        }
        if op == "&&" || op == "||" {
            return Taint::default();
        }
        if is_assign_op(op) {
            if let Some(name) = operand_ident(lhs) {
                if is_best_name(name) {
                    let line = e.span.line(self.toks);
                    self.best_sink(&rt, line, name);
                }
            }
            return Taint::default();
        }
        let mut t = lt;
        t.merge(&rt);
        t
    }

    /// A value reached a best-so-far update: record the flow-through
    /// summary always, and the BOUND violation in the final pass.
    fn best_sink(&mut self, t: &Taint, line: usize, sink: &str) {
        if t.mask & PARAM_MASK != 0 {
            self.summary.param_to_best |= t.mask & PARAM_MASK;
            if self.summary.best_sink_line == 0 {
                self.summary.best_sink_line = line;
            }
        }
        if self.record && t.mask & BOUND != 0 {
            self.violations.push(Violation {
                kind: ViolationKind::BoundToBest,
                fn_id: self.fn_id,
                line,
                witness: with_step(
                    t.witness.clone(),
                    self.path,
                    line,
                    format!("flows into best-so-far update `{sink}`"),
                ),
                detail: sink.to_string(),
            });
        }
    }

    fn call(&mut self, e: &Expr, callee: &Expr, args: &[Expr]) -> Taint {
        let arg_taints: Vec<Taint> = args.iter().map(|a| self.expr(a)).collect();
        let ExprKind::Path(segs) = &callee.kind else {
            self.expr(callee);
            let mut t = Taint::default();
            for a in &arg_taints {
                t.merge(a);
            }
            return t;
        };
        let Some(name) = segs.last() else {
            return Taint::default();
        };
        let qualifier = segs
            .len()
            .checked_sub(2)
            .and_then(|i| segs.get(i))
            .map(String::as_str);
        let line = e.span.line(self.toks);
        let mut t = Taint::default();
        let targets = self.graph.index.resolve(self.fn_id, name, qualifier);
        if targets.is_empty() {
            // Constructor-like passthrough (`Some(lb)`, `Ok(lb)`,
            // `f64::from_bits(bits)`) keeps the wrapped value's taint.
            for a in &arg_taints {
                t.merge(a);
            }
        }
        for &target in &targets {
            self.apply_summary(target, name, &arg_taints, None, line, &mut t);
        }
        // Name-based source, unless the callee's summary already
        // established BOUND with a deeper witness chain.
        if is_bound_source(name) && t.mask & BOUND == 0 {
            t.mask |= BOUND;
            t = t.step(
                self.path,
                line,
                format!("lower-bound value produced by `{name}(…)`"),
            );
        }
        t
    }

    fn method(&mut self, e: &Expr, recv: &Expr, name: &str, args: &[Expr]) -> Taint {
        if is_relaxed_load(e) {
            let line = e.span.line(self.toks);
            return Taint {
                mask: RELAXED,
                witness: vec![WitnessStep {
                    path: self.path.to_string(),
                    line,
                    note: format!("`load(Ordering::Relaxed)` in `{}`", self.fn_name),
                }],
            };
        }
        let recv_t = self.expr(recv);
        let arg_taints: Vec<Taint> = args.iter().map(|a| self.expr(a)).collect();
        let line = e.span.line(self.toks);
        if self.record && CAS_METHODS.contains(&name) {
            // The expected value of a CAS cycle must come from an
            // Acquire (or stronger) read — a Relaxed-seeded cycle can
            // spin on a stale best-so-far (DESIGN §14).
            if let Some(first) = arg_taints.first() {
                if first.mask & (RELAXED | RELAXED_VIA_CALL) != 0 {
                    self.violations.push(Violation {
                        kind: ViolationKind::RelaxedSeededCas,
                        fn_id: self.fn_id,
                        line,
                        witness: with_step(
                            first.witness.clone(),
                            self.path,
                            line,
                            format!("seeds `{name}` expected value"),
                        ),
                        detail: name.to_string(),
                    });
                }
            }
        }
        // Best-so-far atomic sinks: the stored / proposed value.
        let stored = match name {
            "store" | "fetch_min" | "update_min" => arg_taints.first(),
            "compare_exchange" | "compare_exchange_weak" => arg_taints.get(1),
            _ => None,
        };
        if let Some(stored) = stored {
            let gated = name == "update_min" || operand_ident(recv).is_some_and(is_best_name);
            if gated {
                let sink = operand_ident(recv).unwrap_or(name).to_string();
                self.best_sink(stored, line, &sink);
            }
        }
        let mut t = Taint::default();
        let targets = self.graph.index.resolve(self.fn_id, name, None);
        if !targets.is_empty() {
            for &target in &targets {
                self.apply_summary(target, name, &arg_taints, Some(&recv_t), line, &mut t);
            }
        } else if !is_bound_source(name) {
            // Unresolved method: a value transform (`lb.sqrt()`,
            // `a.max(b)`) — taint of the receiver and arguments
            // survives.
            t = recv_t;
            for a in &arg_taints {
                t.merge(a);
            }
        }
        if is_bound_source(name) && t.mask & BOUND == 0 {
            t.mask |= BOUND;
            t = t.step(
                self.path,
                line,
                format!("lower-bound value produced by `.{name}(…)`"),
            );
        }
        t
    }

    /// Compose a callee summary into the call-site taint, and check the
    /// interprocedural best-so-far sink (arguments flowing into a
    /// best update inside the callee).
    fn apply_summary(
        &mut self,
        target: usize,
        name: &str,
        arg_taints: &[Taint],
        recv_taint: Option<&Taint>,
        line: usize,
        out: &mut Taint,
    ) {
        let Some(s) = self.summaries.get(target) else {
            return;
        };
        let arg_for = |bit: usize| -> Option<&Taint> {
            match recv_taint {
                Some(rt) if bit == 0 => Some(rt),
                Some(_) => arg_taints.get(bit - 1),
                None => arg_taints.get(bit),
            }
        };
        if s.returns_bound {
            let w = s
                .bound_witness
                .iter()
                .take(MAX_WITNESS - 1)
                .cloned()
                .collect();
            out.merge(&Taint {
                mask: BOUND,
                witness: with_step(
                    w,
                    self.path,
                    line,
                    format!("bound value obtained via call to `{name}`"),
                ),
            });
        }
        if s.relaxed_return {
            let w = s
                .relaxed_witness
                .iter()
                .take(MAX_WITNESS - 1)
                .cloned()
                .collect();
            out.merge(&Taint {
                mask: RELAXED_VIA_CALL,
                witness: with_step(
                    w,
                    self.path,
                    line,
                    format!("Relaxed-loaded value returned by `{name}`"),
                ),
            });
        }
        for bit in 0..PARAM_BITS {
            if s.param_to_return & (1 << bit) != 0 {
                if let Some(at) = arg_for(bit) {
                    if at.mask != 0 {
                        let mut flowed = at.clone();
                        if flowed.mask & BOUND != 0 {
                            flowed =
                                flowed.step(self.path, line, format!("passed through `{name}`"));
                        }
                        out.merge(&flowed);
                    }
                }
            }
            if s.param_to_best & (1 << bit) != 0 {
                if let Some(at) = arg_for(bit) {
                    // Caller params reaching a callee's best sink are
                    // this fn's param_to_best, transitively.
                    if at.mask & PARAM_MASK != 0 {
                        self.summary.param_to_best |= at.mask & PARAM_MASK;
                        if self.summary.best_sink_line == 0 {
                            self.summary.best_sink_line = line;
                        }
                    }
                    if self.record && at.mask & BOUND != 0 {
                        let sink_line = self
                            .graph
                            .index
                            .nodes
                            .get(target)
                            .map_or(s.best_sink_line, |n| s.best_sink_line.max(n.decl.name_line));
                        self.violations.push(Violation {
                            kind: ViolationKind::BoundToBest,
                            fn_id: self.fn_id,
                            line,
                            witness: with_step(
                                at.witness.clone(),
                                self.path,
                                line,
                                format!(
                                    "argument to `{name}` reaches its best-so-far \
                                     update (line {sink_line})"
                                ),
                            ),
                            detail: name.to_string(),
                        });
                    }
                }
            }
        }
    }
}

fn is_assign_op(op: &str) -> bool {
    matches!(
        op,
        "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>="
    )
}

fn with_step(mut w: Vec<WitnessStep>, path: &str, line: usize, note: String) -> Vec<WitnessStep> {
    w.truncate(MAX_WITNESS - 1);
    w.push(WitnessStep {
        path: path.to_string(),
        line,
        note,
    });
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn files(srcs: &[(&str, &str)]) -> Vec<SourceFile> {
        srcs.iter()
            .map(|(p, s)| SourceFile::parse(p, s, FileKind::Library))
            .collect()
    }

    fn summary_of<'w>(ws: &'w Workspace<'_>, name: &str) -> &'w FnSummary {
        let id = ws
            .graph
            .index
            .nodes
            .iter()
            .find(|n| n.decl.name == name)
            .unwrap()
            .id;
        &ws.summaries[id]
    }

    #[test]
    fn bound_source_taints_return() {
        let fs = files(&[(
            "crates/a/src/x.rs",
            "fn leak(q: &[f64], w: &W) -> f64 { let lb = lb_kim(q, w); lb }\n",
        )]);
        let ws = analyze(&fs);
        let s = summary_of(&ws, "leak");
        assert!(s.returns_bound, "{s:?}");
        assert!(!s.bound_witness.is_empty());
        assert!(ws
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::BoundReturned));
    }

    #[test]
    fn compare_is_a_taint_cut() {
        let fs = files(&[(
            "crates/a/src/x.rs",
            "fn prune(q: &[f64], w: &W, r: f64) -> bool { let lb = lb_kim(q, w); lb > r }\n",
        )]);
        let ws = analyze(&fs);
        assert!(!summary_of(&ws, "prune").returns_bound);
        assert!(ws.violations.is_empty(), "{:?}", ws.violations);
    }

    #[test]
    fn taint_crosses_files_with_witness_path() {
        let fs = files(&[
            (
                "crates/a/src/tier.rs",
                "pub fn wedge_tier_bound(q: &[f64]) -> f64 { let lb = lb_kim(q); debug_assert!(lb >= 0.0); lb }\n",
            ),
            (
                "crates/b/src/scan.rs",
                "pub fn scan_distance(q: &[f64]) -> f64 { let d = wedge_tier_bound(q); d }\n",
            ),
        ]);
        let ws = analyze(&fs);
        let s = summary_of(&ws, "scan_distance");
        assert!(s.returns_bound);
        let paths: Vec<&str> = s.bound_witness.iter().map(|w| w.path.as_str()).collect();
        assert!(
            paths.contains(&"crates/a/src/tier.rs") && paths.contains(&"crates/b/src/scan.rs"),
            "witness spans both files: {:?}",
            s.bound_witness
        );
    }

    #[test]
    fn param_passthrough_composes() {
        let fs = files(&[(
            "crates/a/src/x.rs",
            "fn ident(x: f64) -> f64 { x }\nfn leak(q: &[f64]) -> f64 { let lb = lb_kim(q); ident(lb) }\n",
        )]);
        let ws = analyze(&fs);
        assert!(summary_of(&ws, "leak").returns_bound);
        assert_eq!(summary_of(&ws, "ident").param_to_return, 1);
    }

    #[test]
    fn bound_into_best_update_is_a_violation() {
        let fs = files(&[(
            "crates/a/src/x.rs",
            "fn scan(q: &[f64], w: &W) { let mut best_so_far = 1.0; let lb = lb_kim(q, w); best_so_far = lb; }\n",
        )]);
        let ws = analyze(&fs);
        assert!(ws
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::BoundToBest && v.detail == "best_so_far"));
    }

    #[test]
    fn bound_into_best_through_helper_is_a_violation() {
        let fs = files(&[(
            "crates/a/src/x.rs",
            "fn tighten(best: &mut f64, d: f64) { *best = d; }\nfn scan(q: &[f64]) { let mut best = 1.0; let lb = lb_kim(q); tighten(&mut best, lb); }\n",
        )]);
        let ws = analyze(&fs);
        assert_eq!(
            summary_of(&ws, "tighten").param_to_best,
            0b10,
            "param 1 (`d`)"
        );
        assert!(
            ws.violations
                .iter()
                .any(|v| v.kind == ViolationKind::BoundToBest && v.detail == "tighten"),
            "{:?}",
            ws.violations
        );
    }

    #[test]
    fn relaxed_helper_feeding_compare_is_flagged() {
        let fs = files(&[(
            "crates/a/src/x.rs",
            "impl R { fn get(&self) -> f64 { f64::from_bits(self.bits.load(Ordering::Relaxed)) } }\nfn spin(r: &R, d: f64) -> bool { let cur = r.get(); d < cur }\n",
        )]);
        let ws = analyze(&fs);
        assert!(summary_of(&ws, "get").relaxed_return);
        assert!(
            ws.violations
                .iter()
                .any(|v| v.kind == ViolationKind::RelaxedCompareViaCall),
            "{:?}",
            ws.violations
        );
    }

    #[test]
    fn acquire_helper_is_clean() {
        let fs = files(&[(
            "crates/a/src/x.rs",
            "impl R { fn get(&self) -> f64 { f64::from_bits(self.bits.load(Ordering::Acquire)) } }\nfn spin(r: &R, d: f64) -> bool { d < r.get() }\n",
        )]);
        let ws = analyze(&fs);
        assert!(!summary_of(&ws, "get").relaxed_return);
        assert!(ws.violations.is_empty(), "{:?}", ws.violations);
    }

    #[test]
    fn relaxed_seeded_cas_is_flagged() {
        let fs = files(&[(
            "crates/a/src/x.rs",
            "fn spin(a: &AtomicU64, new: u64) { let cur = a.load(Ordering::Relaxed); let _ = a.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Acquire); }\n",
        )]);
        let ws = analyze(&fs);
        assert!(ws
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::RelaxedSeededCas));
    }

    #[test]
    fn observer_sinks_and_bound_args_are_allowed() {
        let fs = files(&[(
            "crates/a/src/x.rs",
            "fn tier(q: &[f64], w: &W, obs: &O, r: f64) -> bool { let lb = lb_kim(q, w); obs.on_cascade_tier(1, lb); debug_assert!(lb >= 0.0); lb > r }\n",
        )]);
        let ws = analyze(&fs);
        assert!(ws.violations.is_empty(), "{:?}", ws.violations);
    }

    #[test]
    fn witness_paths_are_capped() {
        // A 20-deep passthrough chain must not blow the witness cap.
        let mut src = String::from("fn leak0(q: &[f64]) -> f64 { lb_kim(q) }\n");
        for i in 1..20 {
            src.push_str(&format!(
                "fn leak{i}(q: &[f64]) -> f64 {{ leak{}(q) }}\n",
                i - 1
            ));
        }
        let fs = files(&[("crates/a/src/x.rs", src.as_str())]);
        let ws = analyze(&fs);
        let s = summary_of(&ws, "leak19");
        assert!(s.returns_bound);
        assert!(s.bound_witness.len() <= MAX_WITNESS);
    }
}
