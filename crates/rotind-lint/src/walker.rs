//! Workspace discovery: find every `.rs` file the lint applies to,
//! classify it, and lex it into [`SourceFile`]s.
//!
//! Exclusions, and why:
//!
//! * `target/` — build output;
//! * `vendor/` — pinned offline stand-ins for crates-io dev-deps; they
//!   are API shims, not rotind code, and are excluded from the workspace
//!   in `Cargo.toml` for the same reason;
//! * any `fixtures/` directory — the linter's own test fixtures are
//!   *deliberately* rule-violating snippets.

use crate::source::{kind_for_path, relative_path, FileKind, SourceFile};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Directory names skipped entirely during the walk. This list is the
/// *single* place workspace exclusions live — `main.rs`, the tests and
/// the baseline all see the same universe because they all come through
/// [`rust_files`] / [`is_skipped_dir`]; nothing re-filters ad hoc.
pub const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git"];

/// Should the workspace walk skip a directory with this name?
pub fn is_skipped_dir(name: &str) -> bool {
    SKIP_DIRS.contains(&name) || name.starts_with('.')
}

/// Recursively collect `.rs` files under `root`, sorted for determinism.
pub fn rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    collect(root, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if is_skipped_dir(name.as_ref()) {
                continue;
            }
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Load and lex one file. `kind` overrides path-based classification
/// (used by fixture mode, where every snippet lints as library code).
pub fn load_file(root: &Path, file: &Path, kind: Option<FileKind>) -> io::Result<SourceFile> {
    let rel = relative_path(root, file);
    let src = fs::read_to_string(file)?;
    let kind = kind.unwrap_or_else(|| kind_for_path(&rel));
    Ok(SourceFile::parse(&rel, &src, kind))
}

/// Load the whole workspace rooted at `root`. Per-file work (read, lex,
/// parse, symbols) is embarrassingly parallel, so it fans out over a
/// small thread pool; the output order is the sorted [`rust_files`]
/// order regardless of which worker finished first, keeping every
/// downstream consumer (call graph node ids, baselines, reports)
/// byte-deterministic. The interprocedural fixpoints stay sequential —
/// only the front-end parallelises.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let paths = rust_files(root)?;
    load_files_parallel(root, &paths)
}

/// Parse `paths` on up to [`front_end_workers`] threads, reassembling
/// results by index. Work is handed out through an atomic cursor so a
/// few large files cannot strand a chunk-based split.
fn load_files_parallel(root: &Path, paths: &[PathBuf]) -> io::Result<Vec<SourceFile>> {
    let workers = front_end_workers(paths.len());
    if workers <= 1 {
        return paths.iter().map(|f| load_file(root, f, None)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, io::Result<SourceFile>)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(path) = paths.get(i) else { break };
                if tx.send((i, load_file(root, path, None))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<SourceFile>> = Vec::new();
    slots.resize_with(paths.len(), || None);
    for (i, result) in rx {
        if let Some(slot) = slots.get_mut(i) {
            *slot = Some(result?);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.ok_or_else(|| {
                io::Error::other(format!(
                    "front-end worker dropped file #{i} without a result"
                ))
            })
        })
        .collect()
}

/// Front-end thread count: bounded by available parallelism, eight (the
/// parse phase saturates memory bandwidth long before core count on big
/// hosts), and the number of files.
fn front_end_workers(n_files: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    cores.min(8).min(n_files.max(1))
}

/// Load an explicit set of paths (files or directories). Paths are kept
/// relative to `root` when possible; snippets lint as library code
/// unless their path says otherwise, so a bad fixture exercises the
/// hot-path rules.
pub fn load_paths(root: &Path, paths: &[PathBuf]) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    for p in paths {
        if p.is_dir() {
            for f in walk_dir_unfiltered(p)? {
                out.push(load_file(root, &f, Some(FileKind::Library))?);
            }
        } else {
            out.push(load_file(root, p, Some(FileKind::Library))?);
        }
    }
    Ok(out)
}

/// Like [`rust_files`] but without the fixture exclusion — explicit
/// paths mean "lint exactly this".
fn walk_dir_unfiltered(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            out.extend(walk_dir_unfiltered(&path)?);
        } else if path.to_string_lossy().ends_with(".rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_walk_skips_vendor_target_and_fixtures() {
        // The linter's own crate directory is a convenient real tree.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = rust_files(root).unwrap();
        assert!(files.iter().any(|f| f.ends_with("src/lexer.rs")));
        assert!(!files
            .iter()
            .any(|f| f.to_string_lossy().contains("fixtures")));
    }

    #[test]
    fn skip_predicate_is_the_single_source_of_truth() {
        for d in SKIP_DIRS {
            assert!(is_skipped_dir(d));
        }
        assert!(is_skipped_dir(".hidden"));
        assert!(!is_skipped_dir("crates"));
        assert!(!is_skipped_dir("src"));
    }

    #[test]
    fn parallel_load_preserves_sorted_order() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let paths = rust_files(root).unwrap();
        assert!(paths.len() > 10, "enough files to exercise the pool");
        let parallel = load_files_parallel(root, &paths).unwrap();
        let sequential: Vec<SourceFile> = paths
            .iter()
            .map(|f| load_file(root, f, None))
            .collect::<io::Result<_>>()
            .unwrap();
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            assert_eq!(p.path, s.path, "order must match the sorted walk");
            assert_eq!(p.tokens().len(), s.tokens().len());
        }
    }
}
