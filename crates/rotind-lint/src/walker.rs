//! Workspace discovery: find every `.rs` file the lint applies to,
//! classify it, and lex it into [`SourceFile`]s.
//!
//! Exclusions, and why:
//!
//! * `target/` — build output;
//! * `vendor/` — pinned offline stand-ins for crates-io dev-deps; they
//!   are API shims, not rotind code, and are excluded from the workspace
//!   in `Cargo.toml` for the same reason;
//! * any `fixtures/` directory — the linter's own test fixtures are
//!   *deliberately* rule-violating snippets.

use crate::source::{kind_for_path, relative_path, FileKind, SourceFile};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names skipped entirely during the walk.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git"];

/// Recursively collect `.rs` files under `root`, sorted for determinism.
pub fn rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    collect(root, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Load and lex one file. `kind` overrides path-based classification
/// (used by fixture mode, where every snippet lints as library code).
pub fn load_file(root: &Path, file: &Path, kind: Option<FileKind>) -> io::Result<SourceFile> {
    let rel = relative_path(root, file);
    let src = fs::read_to_string(file)?;
    let kind = kind.unwrap_or_else(|| kind_for_path(&rel));
    Ok(SourceFile::parse(&rel, &src, kind))
}

/// Load the whole workspace rooted at `root`.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    rust_files(root)?
        .iter()
        .map(|f| load_file(root, f, None))
        .collect()
}

/// Load an explicit set of paths (files or directories). Paths are kept
/// relative to `root` when possible; snippets lint as library code
/// unless their path says otherwise, so a bad fixture exercises the
/// hot-path rules.
pub fn load_paths(root: &Path, paths: &[PathBuf]) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    for p in paths {
        if p.is_dir() {
            for f in walk_dir_unfiltered(p)? {
                out.push(load_file(root, &f, Some(FileKind::Library))?);
            }
        } else {
            out.push(load_file(root, p, Some(FileKind::Library))?);
        }
    }
    Ok(out)
}

/// Like [`rust_files`] but without the fixture exclusion — explicit
/// paths mean "lint exactly this".
fn walk_dir_unfiltered(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            out.extend(walk_dir_unfiltered(&path)?);
        } else if path.to_string_lossy().ends_with(".rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_walk_skips_vendor_target_and_fixtures() {
        // The linter's own crate directory is a convenient real tree.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = rust_files(root).unwrap();
        assert!(files.iter().any(|f| f.ends_with("src/lexer.rs")));
        assert!(!files
            .iter()
            .any(|f| f.to_string_lossy().contains("fixtures")));
    }
}
