//! Analyzer self-timing and the lint wall-time gate.
//!
//! The interprocedural analysis made the linter do real work (fixpoint
//! over the whole-workspace call graph), so the linter now watches its
//! own cost the same way `rotind-bench`'s regress gate watches the
//! scan's: a committed snapshot (`results/lint_timing.json`) records
//! how long a full workspace lint took on the machine that captured it,
//! and the gate fails when a fresh run on the *same host* exceeds
//! [`TIME_FACTOR`] × the committed total (plus a flat [`SLACK_US`]
//! allowance so near-zero baselines don't flake). On any other host the
//! check is skipped — wall-clock is machine-dependent, and a snapshot
//! from a developer laptop must never fail CI, mirroring the regress
//! gate's same-host rule.
//!
//! `ROTIND_LINT_TIME_INJECT=<factor>` multiplies the fresh total before
//! comparison — the self-test hook proving the gate *can* fail.

use crate::json;
use std::fmt::Write as _;

/// Committed timing snapshot, relative to the workspace root.
pub const TIMING_FILE: &str = "results/lint_timing.json";

/// Fresh total may be at most this multiple of the committed total.
pub const TIME_FACTOR: f64 = 2.0;

/// Flat allowance added to the limit (50 ms) so a fast baseline does
/// not turn scheduler jitter into gate failures.
pub const SLACK_US: u64 = 50_000;

/// One full workspace lint, measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timing {
    /// Host the snapshot was captured on (see [`hostname`]).
    pub host: String,
    /// Files scanned.
    pub files: u64,
    /// Findings produced (pre-baseline).
    pub findings: u64,
    /// Microseconds loading + lexing + parsing the workspace.
    pub parse_us: u64,
    /// Microseconds running every rule, including the interprocedural
    /// fixpoint.
    pub rules_us: u64,
    /// Total microseconds (parse + rules).
    pub total_us: u64,
}

impl Timing {
    /// Serialise to the canonical snapshot JSON (byte-stable).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"version\": 1,\n");
        let _ = writeln!(out, "  \"host\": {},", json::escape(&self.host));
        let _ = writeln!(out, "  \"files\": {},", self.files);
        let _ = writeln!(out, "  \"findings\": {},", self.findings);
        let _ = writeln!(out, "  \"parse_us\": {},", self.parse_us);
        let _ = writeln!(out, "  \"rules_us\": {},", self.rules_us);
        let _ = writeln!(out, "  \"total_us\": {}", self.total_us);
        out.push_str("}\n");
        out
    }

    /// Parse a snapshot back; loud errors, a corrupt snapshot must not
    /// silently pass the gate.
    pub fn from_json(src: &str) -> Result<Timing, String> {
        let v = json::parse(src)?;
        let obj = v.as_obj().ok_or("timing root must be an object")?;
        let version = obj
            .get("version")
            .and_then(|v| v.as_int())
            .ok_or("timing missing integer `version`")?;
        if version != 1 {
            return Err(format!("timing version {version} unsupported (expected 1)"));
        }
        let int = |key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(|v| v.as_int())
                .ok_or_else(|| format!("timing missing integer `{key}`"))
        };
        let host = match obj.get("host") {
            Some(json::Value::Str(h)) => h.clone(),
            _ => return Err("timing missing string `host`".to_string()),
        };
        Ok(Timing {
            host,
            files: int("files")?,
            findings: int("findings")?,
            parse_us: int("parse_us")?,
            rules_us: int("rules_us")?,
            total_us: int("total_us")?,
        })
    }
}

/// Gate verdict for one fresh run against the committed snapshot.
#[derive(Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Same host, within the limit.
    Pass,
    /// Not comparable (host mismatch) — the reason is reported, the
    /// gate does not fail.
    Skip(String),
    /// Same host, over the limit.
    Fail(String),
}

/// Compare a fresh measurement against the committed snapshot.
pub fn gate(fresh: &Timing, committed: &Timing) -> Verdict {
    if fresh.host != committed.host {
        return Verdict::Skip(format!(
            "snapshot host `{}` != current host `{}`; wall time not comparable",
            committed.host, fresh.host
        ));
    }
    let limit = to_us(to_f64(committed.total_us) * TIME_FACTOR).saturating_add(SLACK_US);
    if fresh.total_us > limit {
        Verdict::Fail(format!(
            "lint took {} µs, over the {limit} µs limit ({TIME_FACTOR}× the \
             committed {} µs + {SLACK_US} µs slack); investigate or re-snapshot \
             with --write-timing",
            fresh.total_us, committed.total_us
        ))
    } else {
        Verdict::Pass
    }
}

/// The `ROTIND_LINT_TIME_INJECT` factor (default 1.0), the gate's
/// can-it-fail self-test hook.
pub fn inject_factor() -> Result<f64, String> {
    match std::env::var("ROTIND_LINT_TIME_INJECT") {
        Err(_) => Ok(1.0),
        Ok(raw) => match raw.trim().parse::<f64>() {
            Ok(f) if f.is_finite() && f > 0.0 => Ok(f),
            _ => Err(format!(
                "ROTIND_LINT_TIME_INJECT must be a positive float, got {raw:?}"
            )),
        },
    }
}

/// Best-effort machine identity: `HOSTNAME` env var, then
/// `/etc/hostname`, then `"unknown"` — the same lookup order as the
/// bench regress gate, so the two committed snapshots agree about what
/// "same host" means.
pub fn hostname() -> String {
    if let Ok(h) = std::env::var("HOSTNAME") {
        let h = h.trim().to_string();
        if !h.is_empty() {
            return h;
        }
    }
    if let Ok(h) = std::fs::read_to_string("/etc/hostname") {
        let h = h.trim().to_string();
        if !h.is_empty() {
            return h;
        }
    }
    "unknown".to_string()
}

#[allow(clippy::cast_precision_loss)]
fn to_f64(us: u64) -> f64 {
    us as f64
}

#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn to_us(f: f64) -> u64 {
    if f.is_finite() && f > 0.0 {
        f.min(to_f64(u64::MAX / 2)) as u64
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(host: &str, total_us: u64) -> Timing {
        Timing {
            host: host.to_string(),
            files: 100,
            findings: 400,
            parse_us: total_us / 2,
            rules_us: total_us - total_us / 2,
            total_us,
        }
    }

    #[test]
    fn json_round_trips_byte_stable() {
        let t = snap("ci-host", 123_456);
        let js = t.to_json();
        let back = Timing::from_json(&js).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.to_json(), js);
    }

    #[test]
    fn rejects_corrupt_snapshots() {
        assert!(Timing::from_json("not json").is_err());
        assert!(Timing::from_json("{\"version\": 2}").is_err());
        let t = snap("h", 10).to_json();
        assert!(Timing::from_json(&t.replace("\"total_us\": 10", "\"x\": 10")).is_err());
    }

    #[test]
    fn same_host_within_limit_passes() {
        let committed = snap("h", 1_000_000);
        let fresh = snap("h", 1_900_000);
        assert_eq!(gate(&fresh, &committed), Verdict::Pass);
    }

    #[test]
    fn same_host_over_limit_fails() {
        let committed = snap("h", 1_000_000);
        let fresh = snap("h", 2_100_000);
        assert!(matches!(gate(&fresh, &committed), Verdict::Fail(_)));
    }

    #[test]
    fn other_host_is_skipped_not_failed() {
        let committed = snap("laptop", 10);
        let fresh = snap("ci", 10_000_000);
        assert!(matches!(gate(&fresh, &committed), Verdict::Skip(_)));
    }

    #[test]
    fn slack_shields_near_zero_baselines() {
        // 2× of 1 µs would be 2 µs — the flat slack keeps jitter from
        // failing the gate on a trivially fast baseline.
        let committed = snap("h", 1);
        let fresh = snap("h", 40_000);
        assert_eq!(gate(&fresh, &committed), Verdict::Pass);
    }

    #[test]
    fn inject_factor_parses_or_complains() {
        // Not set in the test env → default.
        assert!((inject_factor().unwrap() - 1.0).abs() < 1e-12);
    }
}
