//! Brute-force rotation-invariant matching (Section 3, Tables 2 and 3).
//!
//! The rotation-invariant distance between a candidate series `Q` and a
//! query `C` is the minimum of `measure(Q, C_j)` over all admitted rows
//! `C_j` of the query's rotation matrix **C** — exhaustive but exact.
//! These routines are both the correctness oracle for the wedge engine and
//! the `brute force` / `early abandon` baselines of Figures 19–23.

use crate::measure::Measure;
use rotind_ts::rotate::{Rotation, RotationMatrix};
use rotind_ts::StepCounter;

/// Result of a rotation-invariant comparison: the distance and the
/// rotation (row of **C**) that achieved it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RotationMatch {
    /// The minimal distance across admitted rotations.
    pub distance: f64,
    /// The rotation achieving it.
    pub rotation: Rotation,
}

/// `Test_All_Rotations` (Table 2), generalised to any [`Measure`].
///
/// Compares `candidate` against every row of `query_rotations`, threading
/// the best-so-far value `r` through the early-abandoning distance so that
/// hopeless rotations are cut short. Admission against `r` is inclusive —
/// a rotation at exactly distance `r` is returned — and `None` means every
/// rotation is provably farther than `r` (the caller's best-so-far
/// stands). Exact-distance ties go to the earliest row, which is the
/// canonical rotation order (unmirrored shifts ascending, then mirrored),
/// matching the H-Merge tie-break.
///
/// Invoke with `r = f64::INFINITY` to measure the plain rotation-invariant
/// distance between two series.
pub fn test_all_rotations(
    candidate: &[f64],
    query_rotations: &RotationMatrix,
    r: f64,
    measure: Measure,
    counter: &mut StepCounter,
) -> Option<RotationMatch> {
    assert_eq!(
        candidate.len(),
        query_rotations.series_len(),
        "test_all_rotations: length mismatch"
    );
    let mut best: Option<RotationMatch> = None;
    let mut best_so_far = r;
    // One scratch buffer reused for every rotation: materialising each
    // row separately dominated wall time on the large sweeps.
    let mut rotated = Vec::with_capacity(query_rotations.series_len());
    for row in 0..query_rotations.num_rotations() {
        let rotation = query_rotations.rotations()[row];
        query_rotations.row(row).copy_into(&mut rotated);
        if let Some(d) = measure.distance_early_abandon(candidate, &rotated, best_so_far, counter) {
            // First admission is inclusive (d == r matches); later rows
            // must strictly improve, so ties keep the earliest row — the
            // canonical rotation order shared with H-Merge.
            let improved = match best {
                None => d <= best_so_far,
                Some(b) => d < b.distance,
            };
            if improved {
                best_so_far = d;
                best = Some(RotationMatch {
                    distance: d,
                    rotation,
                });
            }
        }
    }
    best
}

/// Plain rotation-invariant distance between two series under `measure`
/// (the paper's `RED(Q, C)` when `measure` is Euclidean), considering all
/// `n` rotations.
///
/// # Panics
///
/// Panics when `query` is empty or contains non-finite samples.
pub fn rotation_invariant_distance(
    candidate: &[f64],
    query: &[f64],
    measure: Measure,
    counter: &mut StepCounter,
) -> f64 {
    // Documented panic: the caller contract (see `# Panics`) requires a
    // non-empty, finite query; everything downstream relies on it.
    // rotind-lint: allow(no-panic)
    let matrix = RotationMatrix::full(query).expect("query must be non-empty and finite");
    test_all_rotations(candidate, &matrix, f64::INFINITY, measure, counter)
        // Invariant: with r = ∞ every rotation qualifies, so the minimum
        // over a non-empty rotation set always exists.
        // rotind-lint: allow(no-panic)
        .expect("infinite radius always yields a match")
        .distance
}

/// One database hit from [`search_database`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatabaseMatch {
    /// Index of the best-matching database series.
    pub index: usize,
    /// Its rotation-invariant distance to the query.
    pub distance: f64,
    /// The query rotation achieving that distance.
    pub rotation: Rotation,
}

/// `Search_Database_for_Rotated_Match` (Table 3): linear scan of `database`
/// for the item with the smallest rotation-invariant distance to the
/// query, threading best-so-far into every `Test_All_Rotations` call.
///
/// `O(m · rows · n)` steps in the worst case (`O(m n²)` for a full
/// rotation matrix) — the paper's "simply untenable for large datasets"
/// baseline, reproduced here both as an oracle and as the `brute force` /
/// `early abandon` curves of Figures 19–23 (pass `r = f64::INFINITY` and
/// a fresh best-so-far is still threaded between items, which is exactly
/// the paper's `early abandon` baseline; disable abandoning by computing
/// with [`Measure::distance`] instead if a pure brute-force count is
/// needed — see `rotind-index::baselines`).
pub fn search_database(
    query_rotations: &RotationMatrix,
    database: &[Vec<f64>],
    measure: Measure,
    counter: &mut StepCounter,
) -> Option<DatabaseMatch> {
    let mut best: Option<DatabaseMatch> = None;
    let mut best_so_far = f64::INFINITY;
    for (index, item) in database.iter().enumerate() {
        if let Some(m) = test_all_rotations(item, query_rotations, best_so_far, measure, counter) {
            // `test_all_rotations` admits inclusively, so a later item at
            // exactly `best_so_far` comes back `Some`; only a strict
            // improvement replaces the incumbent (ties → lowest index).
            let improved = match best {
                None => true,
                Some(b) => m.distance < b.distance,
            };
            if improved {
                best_so_far = m.distance;
                best = Some(DatabaseMatch {
                    index,
                    distance: m.distance,
                    rotation: m.rotation,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::DtwParams;
    use crate::euclidean::euclidean;
    use crate::lcss::LcssParams;
    use rotind_ts::rotate::{mirror, rotated};

    fn steps() -> StepCounter {
        StepCounter::new()
    }

    fn wavy(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37 + phase).sin() + 0.3 * (i as f64 * 1.1 + phase).cos())
            .collect()
    }

    #[test]
    fn finds_exact_rotation() {
        let c = wavy(32, 0.0);
        let q = rotated(&c, 11);
        let matrix = RotationMatrix::full(&c).unwrap();
        let m = test_all_rotations(&q, &matrix, f64::INFINITY, Measure::Euclidean, &mut steps())
            .unwrap();
        assert!(m.distance < 1e-9);
        assert_eq!(m.rotation, Rotation::shift(11));
    }

    #[test]
    fn matches_naive_min_over_rotations() {
        let c = wavy(20, 0.0);
        let q = wavy(20, 1.3);
        let naive = (0..20)
            .map(|j| euclidean(&q, &rotated(&c, j)))
            .fold(f64::INFINITY, f64::min);
        let got = rotation_invariant_distance(&q, &c, Measure::Euclidean, &mut steps());
        assert!((naive - got).abs() < 1e-12);
    }

    #[test]
    fn early_abandon_threshold_respected() {
        let c = wavy(24, 0.0);
        let q = wavy(24, 2.0);
        let exact = rotation_invariant_distance(&q, &c, Measure::Euclidean, &mut steps());
        let matrix = RotationMatrix::full(&c).unwrap();
        // Threshold below the exact distance: no rotation can beat it.
        assert!(
            test_all_rotations(&q, &matrix, exact * 0.9, Measure::Euclidean, &mut steps())
                .is_none()
        );
        // Threshold above: the same exact distance is found.
        let m =
            test_all_rotations(&q, &matrix, exact * 1.1, Measure::Euclidean, &mut steps()).unwrap();
        assert!((m.distance - exact).abs() < 1e-12);
    }

    #[test]
    fn early_abandoning_saves_steps_on_a_scan() {
        let c = wavy(64, 0.0);
        let matrix = RotationMatrix::full(&c).unwrap();
        let db: Vec<Vec<f64>> = (0..20).map(|k| wavy(64, k as f64 * 0.31)).collect();
        // Exhaustive cost: every row fully computed.
        let exhaustive = (64 * 64 * 20) as u64;
        let mut s = steps();
        search_database(&matrix, &db, Measure::Euclidean, &mut s).unwrap();
        assert!(
            s.steps() < exhaustive,
            "threaded best-so-far must beat exhaustive: {} vs {exhaustive}",
            s.steps()
        );
    }

    #[test]
    fn database_scan_finds_planted_match() {
        let c = wavy(40, 0.0);
        let mut db: Vec<Vec<f64>> = (1..12).map(|k| wavy(40, 3.0 + k as f64)).collect();
        db.insert(6, rotated(&c, 17));
        let matrix = RotationMatrix::full(&c).unwrap();
        let hit = search_database(&matrix, &db, Measure::Euclidean, &mut steps()).unwrap();
        assert_eq!(hit.index, 6);
        assert!(hit.distance < 1e-9);
        assert_eq!(hit.rotation.shift, 17);
    }

    #[test]
    fn mirror_invariance_via_matrix() {
        let c = wavy(30, 0.0);
        let q = rotated(&mirror(&c), 4);
        let plain = RotationMatrix::full(&c).unwrap();
        let with_mirror = RotationMatrix::with_mirror(&c).unwrap();
        let d_plain =
            test_all_rotations(&q, &plain, f64::INFINITY, Measure::Euclidean, &mut steps())
                .unwrap()
                .distance;
        let d_mirror = test_all_rotations(
            &q,
            &with_mirror,
            f64::INFINITY,
            Measure::Euclidean,
            &mut steps(),
        )
        .unwrap();
        assert!(d_plain > 1e-3, "mirror image is not a plain rotation");
        assert!(d_mirror.distance < 1e-9);
        assert!(d_mirror.rotation.mirrored);
    }

    #[test]
    fn rotation_limited_excludes_far_rotations() {
        let c = wavy(36, 0.0);
        let q = rotated(&c, 12); // far outside a ±3 window
        let limited = RotationMatrix::limited(&c, 3).unwrap();
        let full = RotationMatrix::full(&c).unwrap();
        let d_full = test_all_rotations(&q, &full, f64::INFINITY, Measure::Euclidean, &mut steps())
            .unwrap()
            .distance;
        let d_limited = test_all_rotations(
            &q,
            &limited,
            f64::INFINITY,
            Measure::Euclidean,
            &mut steps(),
        )
        .unwrap()
        .distance;
        assert!(d_full < 1e-9);
        assert!(
            d_limited > 0.1,
            "limited query must not see the far rotation"
        );
    }

    #[test]
    fn works_with_dtw_and_lcss() {
        let c = wavy(24, 0.0);
        let q = rotated(&c, 7);
        for m in [
            Measure::Dtw(DtwParams::new(3)),
            Measure::Lcss(LcssParams::for_normalized(24)),
        ] {
            let d = rotation_invariant_distance(&q, &c, m, &mut steps());
            assert!(d < 1e-9, "{}: planted rotation must be found", m.name());
        }
    }

    #[test]
    fn dtw_rotation_distance_leq_euclidean() {
        let a = wavy(28, 0.3);
        let b = wavy(28, 1.9);
        let de = rotation_invariant_distance(&a, &b, Measure::Euclidean, &mut steps());
        let dd = rotation_invariant_distance(&a, &b, Measure::Dtw(DtwParams::new(4)), &mut steps());
        assert!(dd <= de + 1e-12);
    }

    #[test]
    fn empty_database_returns_none() {
        let c = wavy(8, 0.0);
        let matrix = RotationMatrix::full(&c).unwrap();
        assert!(search_database(&matrix, &[], Measure::Euclidean, &mut steps()).is_none());
    }
}
