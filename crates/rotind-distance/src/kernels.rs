//! Lane-parallel accumulation kernels shared by the hot bound loops.
//!
//! Every inner loop the cascade profile is dominated by — early-abandoning
//! Euclidean distance, the `LB_Keogh` envelope clamp (`c < L[i]` /
//! `U[i] < c` squared-error sum), its reordered gather form, and the
//! `LB_Improved` interval-gap sum — is the same shape: a sum of
//! non-negative squared terms with a strict two-stage dismissal test
//! (`acc > r²` **and** `√acc > r`). This module implements that shape
//! once, in three interchangeable backends:
//!
//! * [`seq`] — the historical per-element scalar kernels, kept as the
//!   benchmark baseline and as the reference for early-abandon trip
//!   points;
//! * [`chunked`] — the **canonical** accumulation order (see below) in
//!   plain autovectorization-friendly Rust: the stable default engine
//!   path;
//! * [`simd`] — the same canonical order written with `std::simd`
//!   (`portable_simd`, nightly only, behind the `simd` cargo feature),
//!   bit-identical to [`chunked`] by construction.
//!
//! # The canonical accumulation order
//!
//! A sequential `acc += term` chain serialises one add per element
//! (~4 cycles of FP-add latency each) and cannot go lane-parallel.
//! Instead, terms are accumulated into [`LANES`] independent lane sums
//! (`lane[j] += term[8k + j]`), block by block, and each completed block
//! is folded into the running scalar accumulator with a fixed-shape tree
//! reduction. The block schedule ramps — 8, 8, 16, 32 elements, then 64
//! repeating — so the dismissal test still fires within the first few
//! terms on wildly-distant candidates (where early abandoning earns the
//! most) while long admits run at full vector throughput. The trailing
//! `len % 8` elements are accumulated sequentially. This order is a
//! *definition*, not an optimisation detail: every backend except the
//! legacy [`seq`] implements exactly this association, which is what
//! makes `chunked` and `simd` bitwise interchangeable.
//!
//! # Early abandoning: block check + scalar replay
//!
//! The dismissal test runs once per block on the would-be accumulator
//! `acc + block_sum`. Soundness is unconditional: terms are
//! non-negative, float addition of non-negatives is monotone, and `sqrt`
//! is correctly rounded, so a partial canonical sum already above `r`
//! proves the completed bound is too — the strict two-stage form is
//! evaluated exactly as in the scalar engine. When a block trips, the
//! block is *replayed* element-by-element from the pre-block accumulator
//! with the legacy per-element test, which recovers the historical trip
//! position (and therefore the historical step count) for observability:
//! abandon-depth histograms and the committed step baselines stay
//! comparable across engines. If the replay does not trip (possible only
//! when reassociation rounding puts the block sum a few ulps above the
//! sequential one), the scan simply continues canonically — the charged
//! steps are exactly the elements consumed either way.

use rotind_ts::StepCounter;

/// Lane count of the canonical accumulation order. Eight f64 lanes fill
/// an AVX-512 register, two AVX2 registers, or four SSE2 registers; the
/// chunked backend leaves the mapping to the autovectoriser.
pub const LANES: usize = 8;

/// Block schedule of the canonical order, in chunks of [`LANES`]: the
/// `step`-th dismissal check covers this many chunks. Ramped so cheap
/// prunes abandon within 8–16 elements while long admits amortise the
/// check to one test per 64 elements.
#[inline(always)]
fn block_chunks(step: usize) -> usize {
    match step {
        0 | 1 => 1,
        2 => 2,
        3 => 4,
        _ => 8,
    }
}

/// The fixed tree reduction folding the lane sums into a scalar:
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`. Part of the canonical-order
/// definition — `std::simd`'s `reduce_sum` leaves its association
/// unspecified, so both vector backends reduce through this tree.
#[inline(always)]
fn tree8(l: [f64; LANES]) -> f64 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// The strict two-stage dismissal test (see `euclidean_early_abandon`
/// for the boundary argument): `acc > r²` triggers, `√acc > r` settles,
/// so a value at exactly `r` is never dismissed.
#[inline(always)]
fn trips(acc: f64, r2: f64, r: f64) -> bool {
    acc > r2 && acc.sqrt() > r
}

/// Envelope clamp gap: how far `x` falls outside `[l, u]` (0 inside).
/// Branch-free so a lane of gaps compiles to vector max; for `x > u` the
/// value is `x − u` and for `x < l` it is `l − x`, whose square is
/// bit-identical to the legacy `(x − l)²` form.
#[inline(always)]
fn gap(x: f64, u: f64, l: f64) -> f64 {
    (x - u).max(l - x).max(0.0)
}

/// A stream of non-negative squared terms to accumulate. `chunk` must
/// write the [`LANES`] terms starting at `start` (callers guarantee
/// `start + LANES <= len`); `at` is the scalar form used for the
/// remainder tail and for trip-point replay.
trait Terms {
    fn len(&self) -> usize;
    fn at(&self, i: usize) -> f64;
    fn chunk(&self, start: usize, out: &mut [f64; LANES]);
}

/// Squared Euclidean terms `(a_i − b_i)²`.
struct EuclidTerms<'a> {
    a: &'a [f64],
    b: &'a [f64],
}

impl Terms for EuclidTerms<'_> {
    #[inline(always)]
    fn len(&self) -> usize {
        self.a.len()
    }

    // lint: panic-exempt(i < len is the trait contract; slices are length-checked by the public kernels)
    #[inline(always)]
    fn at(&self, i: usize) -> f64 {
        let d = self.a[i] - self.b[i];
        d * d
    }

    // lint: panic-exempt(start + LANES <= len is the trait contract; the range checks vanish after inlining)
    #[inline(always)]
    fn chunk(&self, start: usize, out: &mut [f64; LANES]) {
        let a = &self.a[start..start + LANES];
        let b = &self.b[start..start + LANES];
        for j in 0..LANES {
            let d = a[j] - b[j];
            out[j] = d * d;
        }
    }
}

/// Squared Euclidean terms against a logically-concatenated `first ++
/// second` right-hand side — the rotated-view comparison, where the base
/// series is split at the shift and the chunk grid must stay aligned to
/// the *logical* element order so the sum is bit-identical to a
/// materialised rotation.
struct SplitEuclidTerms<'a> {
    a: &'a [f64],
    first: &'a [f64],
    second: &'a [f64],
}

impl SplitEuclidTerms<'_> {
    #[inline(always)]
    // lint: panic-exempt(i < len is the trait contract and len == first.len() + second.len())
    fn rhs(&self, i: usize) -> f64 {
        if i < self.first.len() {
            self.first[i]
        } else {
            self.second[i - self.first.len()]
        }
    }
}

impl Terms for SplitEuclidTerms<'_> {
    #[inline(always)]
    fn len(&self) -> usize {
        self.a.len()
    }

    // lint: panic-exempt(i < len is the trait contract; slices are length-checked by the public kernels)
    #[inline(always)]
    fn at(&self, i: usize) -> f64 {
        let d = self.a[i] - self.rhs(i);
        d * d
    }

    // lint: panic-exempt(start + LANES <= len is the trait contract; the range checks vanish after inlining)
    #[inline(always)]
    fn chunk(&self, start: usize, out: &mut [f64; LANES]) {
        // Stage the right-hand chunk contiguously; at most one chunk per
        // call straddles the seam, the rest are straight copies.
        let mut b = [0.0f64; LANES];
        if start + LANES <= self.first.len() {
            b.copy_from_slice(&self.first[start..start + LANES]);
        } else if start >= self.first.len() {
            let s = start - self.first.len();
            b.copy_from_slice(&self.second[s..s + LANES]);
        } else {
            let head = self.first.len() - start;
            b[..head].copy_from_slice(&self.first[start..]);
            b[head..].copy_from_slice(&self.second[..LANES - head]);
        }
        let a = &self.a[start..start + LANES];
        for j in 0..LANES {
            let d = a[j] - b[j];
            out[j] = d * d;
        }
    }
}

/// `LB_Keogh` clamp terms: squared distance of `q_i` outside `[L_i, U_i]`.
struct ClampTerms<'a> {
    q: &'a [f64],
    upper: &'a [f64],
    lower: &'a [f64],
}

impl Terms for ClampTerms<'_> {
    #[inline(always)]
    fn len(&self) -> usize {
        self.q.len()
    }

    // lint: panic-exempt(i < len is the trait contract; slices are length-checked by the public kernels)
    #[inline(always)]
    fn at(&self, i: usize) -> f64 {
        let d = gap(self.q[i], self.upper[i], self.lower[i]);
        d * d
    }

    // lint: panic-exempt(start + LANES <= len is the trait contract; the range checks vanish after inlining)
    #[inline(always)]
    fn chunk(&self, start: usize, out: &mut [f64; LANES]) {
        let q = &self.q[start..start + LANES];
        let u = &self.upper[start..start + LANES];
        let l = &self.lower[start..start + LANES];
        for j in 0..LANES {
            let d = gap(q[j], u[j], l[j]);
            out[j] = d * d;
        }
    }
}

/// [`ClampTerms`] consumed through a position permutation (the wedge's
/// decreasing expected-contribution order): term `k` is the clamp gap at
/// position `order[k]`. The gather is scalar — the win of this kernel is
/// abandoning after a handful of terms, not throughput — but the
/// arithmetic still runs on staged lanes.
struct OrderedClampTerms<'a> {
    q: &'a [f64],
    upper: &'a [f64],
    lower: &'a [f64],
    order: &'a [u32],
}

impl Terms for OrderedClampTerms<'_> {
    #[inline(always)]
    fn len(&self) -> usize {
        self.order.len()
    }

    // lint: panic-exempt(order is a permutation of 0..q.len(), validated at wedge construction)
    #[inline(always)]
    fn at(&self, k: usize) -> f64 {
        let i = self.order[k] as usize;
        let d = gap(self.q[i], self.upper[i], self.lower[i]);
        d * d
    }

    // lint: panic-exempt(start + LANES <= len is the trait contract; order indexes are a permutation of 0..q.len())
    #[inline(always)]
    fn chunk(&self, start: usize, out: &mut [f64; LANES]) {
        let idx = &self.order[start..start + LANES];
        let mut q = [0.0f64; LANES];
        let mut u = [0.0f64; LANES];
        let mut l = [0.0f64; LANES];
        for j in 0..LANES {
            let i = idx[j] as usize;
            q[j] = self.q[i];
            u[j] = self.upper[i];
            l[j] = self.lower[i];
        }
        for j in 0..LANES {
            let d = gap(q[j], u[j], l[j]);
            out[j] = d * d;
        }
    }
}

/// `LB_Improved` second-pass terms: the squared gap between the plain
/// envelope interval `[L_j, U_j]` and the widened projection interval
/// `[proj_lo_j, proj_up_j]`. At most one of the two differences is
/// positive (the intervals are produced by nested envelopes), so the
/// branch-free max matches the legacy if/else-if chain bit for bit.
struct IntervalGapTerms<'a> {
    lower: &'a [f64],
    upper: &'a [f64],
    proj_up: &'a [f64],
    proj_lo: &'a [f64],
}

impl Terms for IntervalGapTerms<'_> {
    #[inline(always)]
    fn len(&self) -> usize {
        self.lower.len()
    }

    // lint: panic-exempt(i < len is the trait contract; slices are length-checked by the public kernels)
    #[inline(always)]
    fn at(&self, i: usize) -> f64 {
        let d = (self.lower[i] - self.proj_up[i])
            .max(self.proj_lo[i] - self.upper[i])
            .max(0.0);
        d * d
    }

    // lint: panic-exempt(start + LANES <= len is the trait contract; the range checks vanish after inlining)
    #[inline(always)]
    fn chunk(&self, start: usize, out: &mut [f64; LANES]) {
        let lo = &self.lower[start..start + LANES];
        let up = &self.upper[start..start + LANES];
        let pu = &self.proj_up[start..start + LANES];
        let pl = &self.proj_lo[start..start + LANES];
        for j in 0..LANES {
            let d = (lo[j] - pu[j]).max(pl[j] - up[j]).max(0.0);
            out[j] = d * d;
        }
    }
}

/// Per-element pass over `count` terms starting at `start`, resuming
/// from `acc`, with the legacy tick-and-test per element. Serves both
/// the remainder tail (where it *is* the canonical order) and trip-point
/// replay of an abandoned block.
fn scan_elements<T: Terms>(
    src: &T,
    start: usize,
    count: usize,
    mut acc: f64,
    r2: f64,
    r: f64,
    counter: &mut StepCounter,
) -> Result<f64, usize> {
    for i in start..start + count {
        counter.tick();
        acc += src.at(i);
        if trips(acc, r2, r) {
            return Err(i + 1);
        }
    }
    Ok(acc)
}

/// The chunked canonical driver: lane accumulators per block, tree
/// reduction, block-granular dismissal with per-element replay.
fn accumulate<T: Terms>(
    src: &T,
    init: f64,
    r: f64,
    counter: &mut StepCounter,
) -> Result<f64, usize> {
    let n = src.len();
    let r2 = r * r;
    let chunks = n / LANES;
    let mut acc = init;
    let mut chunk = 0usize;
    let mut sched = 0usize;
    let mut t = [0.0f64; LANES];
    while chunk < chunks {
        let blk = block_chunks(sched).min(chunks - chunk);
        sched += 1;
        let mut lane = [0.0f64; LANES];
        for k in chunk..chunk + blk {
            src.chunk(k * LANES, &mut t);
            for j in 0..LANES {
                lane[j] += t[j];
            }
        }
        let cand = acc + tree8(lane);
        if trips(cand, r2, r) {
            // Sound regardless of where (or whether) the replay trips:
            // the canonical total can only grow from `cand`. The replay
            // ticks exactly the elements it consumes, preserving the
            // legacy step accounting.
            scan_elements(src, chunk * LANES, blk * LANES, acc, r2, r, counter)?;
        } else {
            counter.add((blk * LANES) as u64);
        }
        acc = cand;
        chunk += blk;
    }
    scan_elements(src, chunks * LANES, n - chunks * LANES, acc, r2, r, counter)
}

#[cfg(feature = "simd")]
mod simd_backend {
    //! The `std::simd` expression of the canonical order. Bit-identity
    //! with the chunked backend holds because both perform the same
    //! per-lane addition sequences and the same [`tree8`] reduction —
    //! `reduce_sum` is deliberately avoided (association unspecified),
    //! and no fused multiply-adds are emitted (Rust never contracts FP
    //! expressions implicitly).
    use super::*;
    use std::simd::cmp::SimdPartialOrd;
    use std::simd::{f64x8, Select, Simd};

    /// Vector form of a [`Terms`] chunk. Implementations must produce
    /// exactly the values `chunk` writes, lane for lane.
    pub(super) trait SimdTerms: Terms {
        fn chunk_v(&self, start: usize) -> f64x8;
    }

    /// `max(a, b)` with the exact semantics of `f64::max` on the
    /// NaN-free domain these kernels operate on (propagating the larger
    /// magnitude; both backends agree bit for bit on every input the
    /// engine admits).
    #[inline(always)]
    fn vmax(a: f64x8, b: f64x8) -> f64x8 {
        a.simd_ge(b).select(a, b)
    }

    #[inline(always)]
    fn vgap(q: f64x8, u: f64x8, l: f64x8) -> f64x8 {
        vmax(vmax(q - u, l - q), Simd::splat(0.0))
    }

    impl SimdTerms for EuclidTerms<'_> {
        // lint: panic-exempt(start + LANES <= len is the trait contract; from_slice checks the same bound)
        #[inline(always)]
        fn chunk_v(&self, start: usize) -> f64x8 {
            let a = f64x8::from_slice(&self.a[start..]);
            let b = f64x8::from_slice(&self.b[start..]);
            let d = a - b;
            d * d
        }
    }

    impl SimdTerms for SplitEuclidTerms<'_> {
        #[inline(always)]
        fn chunk_v(&self, start: usize) -> f64x8 {
            let mut t = [0.0f64; LANES];
            self.chunk(start, &mut t);
            f64x8::from_array(t)
        }
    }

    impl SimdTerms for ClampTerms<'_> {
        // lint: panic-exempt(start + LANES <= len is the trait contract; from_slice checks the same bound)
        #[inline(always)]
        fn chunk_v(&self, start: usize) -> f64x8 {
            let q = f64x8::from_slice(&self.q[start..]);
            let u = f64x8::from_slice(&self.upper[start..]);
            let l = f64x8::from_slice(&self.lower[start..]);
            let d = vgap(q, u, l);
            d * d
        }
    }

    impl SimdTerms for OrderedClampTerms<'_> {
        // lint: panic-exempt(order is a permutation of 0..q.len(), validated at wedge construction)
        #[inline(always)]
        fn chunk_v(&self, start: usize) -> f64x8 {
            let idx = &self.order[start..start + LANES];
            let mut q = [0.0f64; LANES];
            let mut u = [0.0f64; LANES];
            let mut l = [0.0f64; LANES];
            for j in 0..LANES {
                let i = idx[j] as usize;
                q[j] = self.q[i];
                u[j] = self.upper[i];
                l[j] = self.lower[i];
            }
            let d = vgap(
                f64x8::from_array(q),
                f64x8::from_array(u),
                f64x8::from_array(l),
            );
            d * d
        }
    }

    impl SimdTerms for IntervalGapTerms<'_> {
        // lint: panic-exempt(start + LANES <= len is the trait contract; from_slice checks the same bound)
        #[inline(always)]
        fn chunk_v(&self, start: usize) -> f64x8 {
            let lo = f64x8::from_slice(&self.lower[start..]);
            let up = f64x8::from_slice(&self.upper[start..]);
            let pu = f64x8::from_slice(&self.proj_up[start..]);
            let pl = f64x8::from_slice(&self.proj_lo[start..]);
            let d = vmax(vmax(lo - pu, pl - up), Simd::splat(0.0));
            d * d
        }
    }

    /// The `std::simd` canonical driver — structurally identical to the
    /// chunked one, with a vector lane accumulator.
    pub(super) fn accumulate_v<T: SimdTerms>(
        src: &T,
        init: f64,
        r: f64,
        counter: &mut StepCounter,
    ) -> Result<f64, usize> {
        let n = src.len();
        let r2 = r * r;
        let chunks = n / LANES;
        let mut acc = init;
        let mut chunk = 0usize;
        let mut sched = 0usize;
        while chunk < chunks {
            let blk = block_chunks(sched).min(chunks - chunk);
            sched += 1;
            let mut lane = f64x8::splat(0.0);
            for k in chunk..chunk + blk {
                lane += src.chunk_v(k * LANES);
            }
            let cand = acc + tree8(lane.to_array());
            if trips(cand, r2, r) {
                scan_elements(src, chunk * LANES, blk * LANES, acc, r2, r, counter)?;
            } else {
                counter.add((blk * LANES) as u64);
            }
            acc = cand;
            chunk += blk;
        }
        scan_elements(src, chunks * LANES, n - chunks * LANES, acc, r2, r, counter)
    }
}

/// Validate the slice lengths the kernels rely on (once, at the public
/// entry; the per-chunk slicing inside the term sources is then
/// statically in range).
macro_rules! check_len {
    ($n:expr, $($s:expr),+ $(,)?) => {
        $(assert_eq!($s.len(), $n, "kernel: length mismatch");)+
    };
}

macro_rules! backend {
    ($name:ident, $call:ident) => {
        /// One backend of the four accumulation kernels. All backends share
        /// signatures and semantics; see the module docs for which order each
        /// implements.
        pub mod $name {
            use super::*;

            /// Squared Euclidean sum with strict two-stage early abandoning:
            /// `Ok(Σ (a_i − b_i)²)`, or `Err(k)` after consuming `k` terms once
            /// the partial sum provably exceeds `r`. Charges one step per
            /// consumed element.
            // lint: panic-exempt(length equality is validated here once; the kernel body is then in range)
            pub fn sq_dist_abandon(
                a: &[f64],
                b: &[f64],
                r: f64,
                counter: &mut StepCounter,
            ) -> Result<f64, usize> {
                check_len!(a.len(), b);
                $call!(EuclidTerms { a, b }, 0.0, r, counter)
            }

            /// [`sq_dist_abandon`] against the logical concatenation
            /// `first ++ second` (a circularly-rotated view split at the
            /// shift), bit-identical to materialising the rotation first.
            // lint: panic-exempt(length equality is validated here once; the kernel body is then in range)
            pub fn sq_dist_abandon_split(
                a: &[f64],
                first: &[f64],
                second: &[f64],
                r: f64,
                counter: &mut StepCounter,
            ) -> Result<f64, usize> {
                assert_eq!(
                    a.len(),
                    first.len() + second.len(),
                    "kernel: length mismatch"
                );
                $call!(SplitEuclidTerms { a, first, second }, 0.0, r, counter)
            }

            /// `LB_Keogh` accumulation: squared clamp gaps of `q` outside
            /// `[lower, upper]`, early abandoning as [`sq_dist_abandon`].
            // lint: panic-exempt(length equality is validated here once; the kernel body is then in range)
            pub fn clamp_sq_abandon(
                q: &[f64],
                upper: &[f64],
                lower: &[f64],
                r: f64,
                counter: &mut StepCounter,
            ) -> Result<f64, usize> {
                check_len!(q.len(), upper, lower);
                $call!(ClampTerms { q, upper, lower }, 0.0, r, counter)
            }

            /// [`clamp_sq_abandon`] consuming positions in the order given by
            /// the permutation `order` (`Err(k)` counts *terms*, not
            /// positions).
            // lint: panic-exempt(length equality is validated here once; order is a permutation of 0..q.len())
            pub fn clamp_sq_abandon_ordered(
                q: &[f64],
                upper: &[f64],
                lower: &[f64],
                order: &[u32],
                r: f64,
                counter: &mut StepCounter,
            ) -> Result<f64, usize> {
                check_len!(q.len(), upper, lower, order);
                $call!(
                    OrderedClampTerms {
                        q,
                        upper,
                        lower,
                        order
                    },
                    0.0,
                    r,
                    counter
                )
            }

            /// `LB_Improved` second-pass accumulation: interval gaps between
            /// the plain envelope and the widened projection, resuming from
            /// the completed first-pass accumulator `init`.
            // lint: panic-exempt(length equality is validated here once; the kernel body is then in range)
            pub fn interval_gap_sq_abandon(
                init: f64,
                upper: &[f64],
                lower: &[f64],
                proj_up: &[f64],
                proj_lo: &[f64],
                r: f64,
                counter: &mut StepCounter,
            ) -> Result<f64, usize> {
                check_len!(lower.len(), upper, proj_up, proj_lo);
                $call!(
                    IntervalGapTerms {
                        lower,
                        upper,
                        proj_up,
                        proj_lo
                    },
                    init,
                    r,
                    counter
                )
            }
        }
    };
}

macro_rules! call_seq {
    ($src:expr, $init:expr, $r:expr, $counter:expr) => {{
        let src = $src;
        let r = $r;
        scan_elements(&src, 0, Terms::len(&src), $init, r * r, r, $counter)
    }};
}

macro_rules! call_chunked {
    ($src:expr, $init:expr, $r:expr, $counter:expr) => {
        accumulate(&$src, $init, $r, $counter)
    };
}

#[cfg(feature = "simd")]
macro_rules! call_simd {
    ($src:expr, $init:expr, $r:expr, $counter:expr) => {
        simd_backend::accumulate_v(&$src, $init, $r, $counter)
    };
}

backend!(seq, call_seq);
backend!(chunked, call_chunked);
#[cfg(feature = "simd")]
backend!(simd, call_simd);

/// The backend the engine runs: the chunked canonical order (stable
/// default; enable the `simd` feature on nightly for the `std::simd`
/// expression of the same order).
#[cfg(not(feature = "simd"))]
pub use chunked as engine;
/// The backend the engine runs: `std::simd` when the `simd` feature is
/// enabled (nightly), the chunked canonical order otherwise. Both
/// produce bitwise-identical sums, trip positions and step counts.
#[cfg(feature = "simd")]
pub use simd as engine;

#[cfg(test)]
mod tests {
    use super::*;

    fn steps() -> StepCounter {
        StepCounter::new()
    }

    fn series(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37 + phase).sin() + 0.4 * (i as f64 * 0.91).cos())
            .collect()
    }

    fn envelope(n: usize) -> (Vec<f64>, Vec<f64>) {
        let mid = series(n, 1.3);
        let upper: Vec<f64> = mid.iter().map(|x| x + 0.25).collect();
        let lower: Vec<f64> = mid.iter().map(|x| x - 0.25).collect();
        (upper, lower)
    }

    #[test]
    fn chunked_matches_seq_values_on_completion() {
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65, 200, 251, 256] {
            let a = series(n, 0.0);
            let b = series(n, 2.2);
            let s = seq::sq_dist_abandon(&a, &b, f64::INFINITY, &mut steps()).unwrap();
            let c = chunked::sq_dist_abandon(&a, &b, f64::INFINITY, &mut steps()).unwrap();
            let rel = if s == 0.0 {
                c.abs()
            } else {
                ((s - c) / s).abs()
            };
            assert!(rel < 1e-12, "n={n}: seq {s} vs chunked {c}");
        }
    }

    #[test]
    fn completed_scans_charge_one_step_per_element() {
        for n in [0usize, 5, 8, 40, 64, 100, 251] {
            let a = series(n, 0.0);
            let b = series(n, 0.4);
            for f in [seq::sq_dist_abandon, chunked::sq_dist_abandon] {
                let mut s = steps();
                f(&a, &b, f64::INFINITY, &mut s).unwrap();
                assert_eq!(s.steps(), n as u64, "n={n}");
            }
        }
    }

    #[test]
    fn trip_positions_and_steps_match_seq() {
        // A single spike trips the scan right after the spike position in
        // every backend, with the step count equal to the trip position.
        let n = 200;
        for spike in [0usize, 3, 8, 15, 63, 64, 120, 196, 199] {
            let mut a = vec![0.0; n];
            a[spike] = 50.0;
            let b = vec![0.0; n];
            let mut s_seq = steps();
            let p_seq = seq::sq_dist_abandon(&a, &b, 1.0, &mut s_seq).unwrap_err();
            let mut s_chk = steps();
            let p_chk = chunked::sq_dist_abandon(&a, &b, 1.0, &mut s_chk).unwrap_err();
            assert_eq!(p_seq, spike + 1);
            assert_eq!(p_chk, p_seq, "spike at {spike}");
            assert_eq!(s_seq.steps(), p_seq as u64);
            assert_eq!(s_chk.steps(), p_chk as u64, "spike at {spike}");
        }
    }

    #[test]
    fn value_at_exactly_r_is_never_dismissed() {
        // Single exact term: 3² = 9, √9 = 3 with no rounding. The strict
        // two-stage test must admit it in every backend.
        let mut a = vec![0.0; 64];
        a[10] = 3.0;
        let b = vec![0.0; 64];
        for f in [seq::sq_dist_abandon, chunked::sq_dist_abandon] {
            assert_eq!(f(&a, &b, 3.0, &mut steps()), Ok(9.0));
        }
    }

    #[test]
    fn clamp_kernel_matches_branchy_definition() {
        let n = 97;
        let q = series(n, 2.9);
        let (upper, lower) = envelope(n);
        let reference: f64 = (0..n)
            .map(|i| {
                if q[i] > upper[i] {
                    let d = q[i] - upper[i];
                    d * d
                } else if q[i] < lower[i] {
                    let d = q[i] - lower[i];
                    d * d
                } else {
                    0.0
                }
            })
            .sum();
        let s = seq::clamp_sq_abandon(&q, &upper, &lower, f64::INFINITY, &mut steps()).unwrap();
        assert_eq!(s, reference, "seq accumulates the legacy order exactly");
        let c = chunked::clamp_sq_abandon(&q, &upper, &lower, f64::INFINITY, &mut steps()).unwrap();
        assert!(((s - c) / s.max(1e-300)).abs() < 1e-12);
    }

    #[test]
    fn ordered_kernel_gathers_the_permutation() {
        let n = 40;
        let q = series(n, 2.9);
        let (upper, lower) = envelope(n);
        // Reverse order: same completed sum as natural up to reassociation.
        let order: Vec<u32> = (0..n as u32).rev().collect();
        let nat = chunked::clamp_sq_abandon(&q, &upper, &lower, f64::INFINITY, &mut steps());
        let rev = chunked::clamp_sq_abandon_ordered(
            &q,
            &upper,
            &lower,
            &order,
            f64::INFINITY,
            &mut steps(),
        );
        let (nat, rev) = (nat.unwrap(), rev.unwrap());
        assert!((nat - rev).abs() <= 1e-12 * nat.abs().max(1.0));
    }

    #[test]
    fn split_kernel_is_bit_identical_to_materialized() {
        let n = 29;
        let a = series(n, 0.7);
        let base = series(n, 1.9);
        for shift in 0..n {
            let rot: Vec<f64> = (0..n).map(|i| base[(i + shift) % n]).collect();
            for r in [f64::INFINITY, 1.0, 0.2] {
                let mut s1 = steps();
                let mut s2 = steps();
                let plain = chunked::sq_dist_abandon(&a, &rot, r, &mut s1);
                let split =
                    chunked::sq_dist_abandon_split(&a, &base[shift..], &base[..shift], r, &mut s2);
                assert_eq!(plain, split, "shift {shift} r {r}");
                assert_eq!(s1.steps(), s2.steps(), "shift {shift} r {r}");
            }
        }
    }

    #[test]
    fn interval_gap_resumes_from_init() {
        let n = 33;
        let (upper, lower) = envelope(n);
        // Projection envelope strictly inside the plain envelope: every
        // gap term is zero, the kernel returns the init unchanged.
        let pu: Vec<f64> = upper.iter().map(|x| x + 1.0).collect();
        let pl: Vec<f64> = lower.iter().map(|x| x - 1.0).collect();
        let got = chunked::interval_gap_sq_abandon(
            5.0,
            &upper,
            &lower,
            &pu,
            &pl,
            f64::INFINITY,
            &mut steps(),
        );
        assert_eq!(got, Ok(5.0));
        // An init already beyond r² dismisses on the first element, as
        // the legacy per-element loop did.
        let mut s = steps();
        let tripped =
            chunked::interval_gap_sq_abandon(100.0, &upper, &lower, &pu, &pl, 1.0, &mut s);
        assert_eq!(tripped, Err(1));
        assert_eq!(s.steps(), 1);
    }

    #[cfg(feature = "simd")]
    #[test]
    fn simd_is_bit_identical_to_chunked() {
        for n in [1usize, 7, 8, 9, 64, 65, 200, 251] {
            let q = series(n, 2.9);
            let (upper, lower) = envelope(n);
            for r in [f64::INFINITY, 2.0, 0.5] {
                let mut s1 = steps();
                let mut s2 = steps();
                let c = chunked::clamp_sq_abandon(&q, &upper, &lower, r, &mut s1);
                let v = simd::clamp_sq_abandon(&q, &upper, &lower, r, &mut s2);
                assert_eq!(c, v, "n {n} r {r}");
                assert_eq!(s1.steps(), s2.steps(), "n {n} r {r}");
            }
        }
    }
}
