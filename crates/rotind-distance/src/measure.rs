//! A unified handle over the three supported distance measures.
//!
//! The paper's framework is deliberately measure-agnostic (Section 1:
//! *"Our approach works for any of these distance measures"*). Engines,
//! baselines and experiment harnesses take a [`Measure`] so a single code
//! path serves Euclidean, DTW and LCSS experiments.

use crate::dtw::{dtw, dtw_early_abandon, DtwParams};
use crate::euclidean::euclidean_early_abandon;
use crate::lcss::{lcss_distance, LcssParams};
use rotind_ts::StepCounter;

/// One of the paper's three distance measures, with its parameters.
///
/// All three expose a *distance* interface (LCSS is converted to
/// `1 − similarity`), so "smaller is better" uniformly and one best-so-far
/// threshold drives every search algorithm.
///
/// ```
/// use rotind_distance::{Measure, DtwParams};
/// use rotind_ts::StepCounter;
/// let q = [0.0, 1.0, 2.0, 1.0];
/// let c = [0.0, 2.0, 1.0, 1.0];
/// let mut steps = StepCounter::new();
/// let ed = Measure::Euclidean.distance(&q, &c, &mut steps);
/// let dtw = Measure::Dtw(DtwParams::new(2)).distance(&q, &c, &mut steps);
/// assert!(dtw <= ed);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Measure {
    /// Euclidean distance — zero parameters.
    Euclidean,
    /// Sakoe-Chiba–banded Dynamic Time Warping.
    Dtw(DtwParams),
    /// Banded Longest Common SubSequence, distance form.
    Lcss(LcssParams),
}

impl Measure {
    /// The exact distance between two equal-length series.
    pub fn distance(&self, q: &[f64], c: &[f64], counter: &mut StepCounter) -> f64 {
        match self {
            Measure::Euclidean => {
                // Count steps identically to the early-abandoning form.
                euclidean_early_abandon(q, c, f64::INFINITY, counter)
                    // Invariant: the running sum never exceeds r² = ∞.
                    // rotind-lint: allow(no-panic)
                    .expect("infinite radius never abandons")
            }
            Measure::Dtw(p) => dtw(q, c, *p, counter),
            Measure::Lcss(p) => lcss_distance(q, c, *p, counter),
        }
    }

    /// The distance, abandoning with `None` as soon as it provably exceeds
    /// `r`. LCSS cannot abandon (a late run of matches can always rescue
    /// the similarity), so it computes exactly and filters.
    pub fn distance_early_abandon(
        &self,
        q: &[f64],
        c: &[f64],
        r: f64,
        counter: &mut StepCounter,
    ) -> Option<f64> {
        match self {
            Measure::Euclidean => euclidean_early_abandon(q, c, r, counter),
            Measure::Dtw(p) => dtw_early_abandon(q, c, *p, r, counter),
            Measure::Lcss(p) => {
                let d = lcss_distance(q, c, *p, counter);
                if d > r {
                    None
                } else {
                    Some(d)
                }
            }
        }
    }

    /// Whether the measure supports genuine mid-computation abandoning.
    pub fn supports_early_abandon(&self) -> bool {
        !matches!(self, Measure::Lcss(_))
    }

    /// The DTW band `R` if this is a DTW measure (used to widen wedge
    /// envelopes, Section 4.3), zero otherwise.
    pub fn warping_band(&self) -> usize {
        match self {
            Measure::Dtw(p) => p.band,
            _ => 0,
        }
    }

    /// Short human-readable name for reports.
    pub fn name(&self) -> String {
        match self {
            Measure::Euclidean => "Euclidean".to_string(),
            Measure::Dtw(p) => format!("DTW(R={})", p.band),
            Measure::Lcss(p) => format!("LCSS(eps={}, delta={})", p.epsilon, p.delta),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean::euclidean;

    fn steps() -> StepCounter {
        StepCounter::new()
    }

    #[test]
    fn euclidean_agrees_with_direct() {
        let q = [1.0, 2.0, 3.0];
        let c = [3.0, 2.0, 1.0];
        let d = Measure::Euclidean.distance(&q, &c, &mut steps());
        assert!((d - euclidean(&q, &c)).abs() < 1e-12);
    }

    #[test]
    fn dtw_agrees_with_direct() {
        let q = [0.0, 1.0, 0.0, 2.0];
        let c = [1.0, 0.0, 2.0, 0.0];
        let p = DtwParams::new(2);
        let d = Measure::Dtw(p).distance(&q, &c, &mut steps());
        assert_eq!(d, dtw(&q, &c, p, &mut steps()));
    }

    #[test]
    fn lcss_is_a_distance_form() {
        let q = [1.0, 2.0, 3.0];
        let p = LcssParams::new(0.1, 1);
        assert_eq!(Measure::Lcss(p).distance(&q, &q, &mut steps()), 0.0);
    }

    #[test]
    fn early_abandon_consistency() {
        let q: Vec<f64> = (0..16).map(|i| (i as f64 * 0.7).sin()).collect();
        let c: Vec<f64> = (0..16).map(|i| (i as f64 * 0.9).cos()).collect();
        for m in [
            Measure::Euclidean,
            Measure::Dtw(DtwParams::new(3)),
            Measure::Lcss(LcssParams::for_normalized(16)),
        ] {
            let exact = m.distance(&q, &c, &mut steps());
            match m.distance_early_abandon(&q, &c, exact * 0.5, &mut steps()) {
                None => assert!(exact > exact * 0.5),
                Some(d) => assert!((d - exact).abs() < 1e-12),
            }
            let kept = m
                .distance_early_abandon(&q, &c, exact + 1.0, &mut steps())
                .expect("r above exact distance must not abandon");
            assert!((kept - exact).abs() < 1e-12);
        }
    }

    #[test]
    fn metadata() {
        assert!(Measure::Euclidean.supports_early_abandon());
        assert!(Measure::Dtw(DtwParams::new(5)).supports_early_abandon());
        assert!(!Measure::Lcss(LcssParams::new(0.5, 5)).supports_early_abandon());
        assert_eq!(Measure::Dtw(DtwParams::new(5)).warping_band(), 5);
        assert_eq!(Measure::Euclidean.warping_band(), 0);
        assert_eq!(Measure::Dtw(DtwParams::new(3)).name(), "DTW(R=3)");
    }
}
