//! # rotind-distance — distance measures with early abandoning
//!
//! The three distance measures the paper targets (Section 1: *"Euclidean
//! distance, Dynamic Time Warping and Longest Common Subsequence account
//! for the majority of the literature"*), each with the early-abandoning
//! optimisations that the wedge machinery of `rotind-envelope` builds on:
//!
//! * [`euclidean`] — plain and early-abandoning Euclidean distance
//!   (Definition 1 / Table 1 of the paper);
//! * [`dtw`] — Sakoe-Chiba–banded Dynamic Time Warping, in full-matrix,
//!   rolling-row early-abandoning, and path-recovering forms (Section 4.3);
//! * [`lcss`] — banded Longest Common SubSequence similarity and its
//!   distance form (Section 4.3, Figure 14);
//! * [`rotation`] — brute-force rotation-invariant matching:
//!   `Test_All_Rotations` (Table 2) and the database scan (Table 3), for
//!   any of the three measures, with mirror-image and rotation-limited
//!   support;
//! * [`measure`] — a small enum unifying the three measures so engines and
//!   experiment harnesses can be measure-generic.
//!
//! Every routine threads a [`rotind_ts::StepCounter`] and charges one step
//! per accumulated real-value subtraction (per visited cell for the DP
//! measures), reproducing the paper's implementation-free cost metric.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(feature = "simd", feature(portable_simd))]

pub mod dtw;
pub mod euclidean;
pub mod kernels;
pub mod lcss;
pub mod measure;
pub mod rotation;

pub use dtw::DtwParams;
pub use lcss::LcssParams;
pub use measure::Measure;
