//! Dynamic Time Warping with a Sakoe-Chiba band (Section 4.3).
//!
//! DTW aligns locally distorted but globally similar series — e.g. the
//! brow ridge and jaw of two gorilla species mapping to slightly different
//! positions in their centroid-distance profiles (Figure 11). The warping
//! path is constrained to stay within `R` cells of the matrix diagonal
//! (the Sakoe-Chiba band, Figure 12), which both regularises the alignment
//! and reduces the cost from `O(n²)` to `O(nR)`.
//!
//! Three variants are provided:
//!
//! * [`dtw`] — banded DP over two rolling rows, exact;
//! * [`dtw_early_abandon`] — the iterative form the paper advocates
//!   (footnote 2: a recursive implementation can never abandon, the
//!   iterative one can abandon after as few as `R` steps): if every cell
//!   of a DP row already exceeds `r²`, the final distance must exceed `r`;
//! * [`dtw_path`] — full-matrix variant that also recovers the optimal
//!   warping path, for diagnostics and the alignment figures.
//!
//! Cell costs are squared differences and the returned distance is the
//! square root of the accumulated cost, commensurate with Euclidean
//! distance (indeed `R = 0` forces the diagonal path and reproduces it
//! exactly). One step is charged per visited cell.

use rotind_ts::StepCounter;
use std::cell::RefCell;

thread_local! {
    /// Rolling DP rows, reused across calls: the early-abandoning DTW is
    /// invoked once per rotation per database item, and per-call
    /// allocation dominated wall time on the big sweeps.
    static DTW_ROWS: RefCell<(Vec<f64>, Vec<f64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Parameters for banded DTW.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DtwParams {
    /// Sakoe-Chiba band half-width `R`: the warping path may deviate at
    /// most `R` cells from the diagonal. `0` forces the diagonal
    /// (Euclidean) path; `n - 1` or more is an unconstrained warp.
    pub band: usize,
}

impl DtwParams {
    /// Band of exactly `band` cells.
    pub const fn new(band: usize) -> Self {
        DtwParams { band }
    }

    /// Band expressed as a fraction of the series length (e.g. `0.05` for
    /// the common "5% warping window"), rounded to the nearest cell.
    pub fn from_fraction(n: usize, fraction: f64) -> Self {
        let band = (n as f64 * fraction).round().max(0.0) as usize;
        DtwParams { band }
    }
}

impl Default for DtwParams {
    /// The paper's evaluation mostly learns `R ∈ {1, 2, 3}` (Table 8) and
    /// uses `R = 5` for the efficiency studies (Figure 20); `5` is a
    /// sensible default for shape matching.
    fn default() -> Self {
        DtwParams { band: 5 }
    }
}

#[inline]
fn cell_cost(a: f64, b: f64) -> f64 {
    let d = a - b;
    d * d
}

/// Banded DTW distance between equal-length series.
///
/// ```
/// use rotind_distance::dtw::{dtw, DtwParams};
/// use rotind_ts::StepCounter;
/// // A peak shifted by one sample: Euclidean is large, DTW absorbs it.
/// let q = [0.0, 0.0, 10.0, 0.0, 0.0, 0.0];
/// let c = [0.0, 0.0, 0.0, 10.0, 0.0, 0.0];
/// let d = dtw(&q, &c, DtwParams::new(1), &mut StepCounter::new());
/// assert!(d < 1e-9);
/// ```
///
/// # Panics
///
/// Panics when the series differ in length or are empty.
// lint: panic-exempt(a DP row over finite inputs cannot exceed an infinite radius, so early abandon never returns None)
pub fn dtw(q: &[f64], c: &[f64], params: DtwParams, counter: &mut StepCounter) -> f64 {
    dtw_early_abandon(q, c, params, f64::INFINITY, counter)
        // Invariant: a DP row can only exceed r² = ∞ if a cell is +∞,
        // which finite inputs cannot produce.
        // rotind-lint: allow(no-panic)
        .expect("DTW with infinite radius cannot abandon")
}

/// Early-abandoning banded DTW.
///
/// Returns `None` as soon as an entire DP row exceeds `r²` — every warping
/// path must pass through each row, so the true distance necessarily
/// exceeds `r`. `r = f64::INFINITY` computes the exact distance.
// lint: panic-exempt(documented preconditions: the snapshot validates query length and non-emptiness at admission)
pub fn dtw_early_abandon(
    q: &[f64],
    c: &[f64],
    params: DtwParams,
    r: f64,
    counter: &mut StepCounter,
) -> Option<f64> {
    let n = q.len();
    assert_eq!(n, c.len(), "dtw: length mismatch");
    assert!(n > 0, "dtw: empty series");
    let band = params.band.min(n - 1);
    let r2 = r * r;

    // Rolling rows indexed by j. The buffers are thread-local: this
    // function runs once per rotation per database item, and per-call
    // allocation dominated wall time on the big sweeps. Stale cells from
    // two rows ago are never read — every `prev` access is guarded to
    // the previous row's band, and the horizontal predecessor is carried
    // in a local — so the rows need no per-row clearing.
    DTW_ROWS.with(|rows| {
        let (prev, cur) = &mut *rows.borrow_mut();
        prev.clear();
        prev.resize(n, f64::INFINITY);
        cur.clear();
        cur.resize(n, f64::INFINITY);

        for (i, &qi) in q.iter().enumerate() {
            let lo = i.saturating_sub(band);
            let hi = (i + band).min(n - 1);
            let mut row_min = f64::INFINITY;
            // Horizontal predecessor (i, j-1), carried locally: at
            // `j == lo` it sits outside the band (or off the matrix) and
            // is +∞.
            let mut left = f64::INFINITY;
            let cells = cur.iter_mut().enumerate().take(hi + 1).skip(lo);
            for ((j, cell), &cj) in cells.zip(c.iter().skip(lo)) {
                let best_prev = if i == 0 && j == 0 {
                    0.0
                } else {
                    let mut b = left;
                    if i > 0 {
                        // vertical predecessor (i-1, j)
                        if j <= (i - 1) + band {
                            b = b.min(prev.get(j).copied().unwrap_or(f64::INFINITY));
                        }
                        // diagonal predecessor (i-1, j-1)
                        if j > 0 && j > (i - 1).saturating_sub(band) && j - 1 <= (i - 1) + band {
                            b = b.min(prev.get(j - 1).copied().unwrap_or(f64::INFINITY));
                        }
                    }
                    b
                };
                counter.tick();
                let v = if best_prev.is_finite() {
                    best_prev + cell_cost(qi, cj)
                } else {
                    f64::INFINITY
                };
                *cell = v;
                left = v;
                if v < row_min {
                    row_min = v;
                }
            }
            // The boundary is settled in reported-distance space (the
            // returned value is a square root): `fl(r·r)` may round below
            // the cost of a path whose distance equals `r` exactly, so a
            // row crossing `r²` only abandons when `√row_min > r` too.
            // The sqrt is paid once, on the abandon path.
            if row_min > r2 && row_min.sqrt() > r {
                return None;
            }
            std::mem::swap(prev, cur);
        }
        // Some(d) with d > r is possible (the row-min test is necessary,
        // not sufficient, at the corner); callers compare the returned
        // value, as in Table 2 of the paper.
        let total = prev.last().copied().unwrap_or(f64::INFINITY);
        debug_assert!(total.is_finite());
        Some(total.sqrt())
    })
}

/// A warping path: matrix cells `(i, j)` from `(0, 0)` to `(n-1, n-1)`.
pub type WarpingPath = Vec<(usize, usize)>;

/// Full-matrix banded DTW with optimal-path recovery.
///
/// Costs `O(n²)` memory; intended for diagnostics, figures and tests, not
/// for the search hot path.
pub fn dtw_path(q: &[f64], c: &[f64], params: DtwParams) -> (f64, WarpingPath) {
    let n = q.len();
    assert_eq!(n, c.len(), "dtw_path: length mismatch");
    assert!(n > 0, "dtw_path: empty series");
    let band = params.band.min(n - 1);
    let inf = f64::INFINITY;
    let mut dp = vec![inf; n * n];
    // Bounds-checked cell read; out-of-matrix reads yield +∞ (they are
    // already excluded by the `i > 0`/`j > 0` guards below).
    let cell = |dp: &[f64], i: usize, j: usize| dp.get(i * n + j).copied().unwrap_or(inf);

    for (i, &qi) in q.iter().enumerate() {
        let lo = i.saturating_sub(band);
        let hi = (i + band).min(n - 1);
        for (j, &cj) in c.iter().enumerate().take(hi + 1).skip(lo) {
            let best_prev = if i == 0 && j == 0 {
                0.0
            } else {
                let mut b = inf;
                if i > 0 {
                    b = b.min(cell(&dp, i - 1, j));
                    if j > 0 {
                        b = b.min(cell(&dp, i - 1, j - 1));
                    }
                }
                if j > 0 {
                    b = b.min(cell(&dp, i, j - 1));
                }
                b
            };
            if best_prev.is_finite() {
                if let Some(slot) = dp.get_mut(i * n + j) {
                    *slot = best_prev + cell_cost(qi, cj);
                }
            }
        }
    }

    // Backtrack from the corner, preferring the diagonal on ties.
    let mut path = vec![(n - 1, n - 1)];
    let (mut i, mut j) = (n - 1, n - 1);
    while i > 0 || j > 0 {
        let diag = if i > 0 && j > 0 {
            cell(&dp, i - 1, j - 1)
        } else {
            inf
        };
        let up = if i > 0 { cell(&dp, i - 1, j) } else { inf };
        let left = if j > 0 { cell(&dp, i, j - 1) } else { inf };
        if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            i -= 1;
        } else {
            j -= 1;
        }
        path.push((i, j));
    }
    path.reverse();
    (cell(&dp, n - 1, n - 1).sqrt(), path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean::euclidean;

    fn steps() -> StepCounter {
        StepCounter::new()
    }

    #[test]
    fn identical_series_zero() {
        let q = [1.0, 2.0, 3.0, 2.0, 1.0];
        assert_eq!(dtw(&q, &q, DtwParams::new(2), &mut steps()), 0.0);
    }

    #[test]
    fn band_zero_equals_euclidean() {
        let q = [1.0, 5.0, 2.0, 8.0];
        let c = [2.0, 3.0, 4.0, 5.0];
        let d = dtw(&q, &c, DtwParams::new(0), &mut steps());
        assert!((d - euclidean(&q, &c)).abs() < 1e-12);
    }

    #[test]
    fn warping_aligns_shifted_peak() {
        // A peak shifted by one sample: ED is large, DTW(band>=1) small.
        let q = [0.0, 0.0, 10.0, 0.0, 0.0, 0.0];
        let c = [0.0, 0.0, 0.0, 10.0, 0.0, 0.0];
        let ed = euclidean(&q, &c);
        let d1 = dtw(&q, &c, DtwParams::new(1), &mut steps());
        assert!(d1 < ed * 0.1, "dtw {d1} should be far below ed {ed}");
    }

    #[test]
    fn monotone_in_band() {
        let q: Vec<f64> = (0..32).map(|i| (i as f64 * 0.4).sin()).collect();
        let c: Vec<f64> = (0..32).map(|i| (i as f64 * 0.4 + 0.7).sin()).collect();
        let mut last = f64::INFINITY;
        for band in 0..8 {
            let d = dtw(&q, &c, DtwParams::new(band), &mut steps());
            assert!(d <= last + 1e-12, "band {band}: {d} > {last}");
            last = d;
        }
    }

    #[test]
    fn dtw_never_exceeds_euclidean() {
        let q: Vec<f64> = (0..40).map(|i| ((i * 13 % 17) as f64) * 0.3).collect();
        let c: Vec<f64> = (0..40).map(|i| ((i * 7 % 11) as f64) * 0.4).collect();
        for band in [0, 1, 3, 10, 39] {
            let d = dtw(&q, &c, DtwParams::new(band), &mut steps());
            assert!(d <= euclidean(&q, &c) + 1e-12);
        }
    }

    #[test]
    fn early_abandon_matches_exact_when_not_abandoned() {
        let q: Vec<f64> = (0..20).map(|i| (i as f64 * 0.3).cos()).collect();
        let c: Vec<f64> = (0..20).map(|i| (i as f64 * 0.31).cos()).collect();
        let p = DtwParams::new(3);
        let exact = dtw(&q, &c, p, &mut steps());
        let got = dtw_early_abandon(&q, &c, p, exact + 0.1, &mut steps()).unwrap();
        assert!((exact - got).abs() < 1e-12);
    }

    #[test]
    fn early_abandon_triggers_and_saves_steps() {
        let q = vec![100.0; 64];
        let c = vec![0.0; 64];
        let p = DtwParams::new(5);
        let mut full = steps();
        dtw(&q, &c, p, &mut full);
        let mut ab = steps();
        assert!(dtw_early_abandon(&q, &c, p, 1.0, &mut ab).is_none());
        assert!(
            ab.steps() <= (p.band as u64 + 1),
            "abandons within the first row: {} steps",
            ab.steps()
        );
        assert!(ab.steps() < full.steps());
    }

    #[test]
    fn early_abandon_is_admissible() {
        // Whenever None is returned, the true distance must exceed r.
        let q: Vec<f64> = (0..24).map(|i| ((i * 5 % 13) as f64) * 0.5).collect();
        let c: Vec<f64> = (0..24).map(|i| ((i * 11 % 7) as f64) * 0.6).collect();
        let p = DtwParams::new(2);
        let exact = dtw(&q, &c, p, &mut steps());
        for r in [0.1, 0.5 * exact, 0.99 * exact, exact, 1.5 * exact] {
            match dtw_early_abandon(&q, &c, p, r, &mut steps()) {
                None => assert!(exact > r, "abandoned although exact {exact} <= r {r}"),
                Some(d) => assert!((d - exact).abs() < 1e-12),
            }
        }
    }

    #[test]
    fn step_count_is_band_limited() {
        let n = 50;
        let q = vec![1.0; n];
        let c = vec![1.0; n];
        let band = 3;
        let mut s = steps();
        dtw(&q, &c, DtwParams::new(band), &mut s);
        let upper = (n * (2 * band + 1)) as u64;
        assert!(s.steps() <= upper, "{} > {}", s.steps(), upper);
        assert!(s.steps() >= n as u64);
    }

    #[test]
    fn path_endpoints_and_monotonicity() {
        let q: Vec<f64> = (0..16).map(|i| (i as f64 * 0.5).sin()).collect();
        let c: Vec<f64> = (0..16).map(|i| (i as f64 * 0.5 + 1.0).sin()).collect();
        let (d, path) = dtw_path(&q, &c, DtwParams::new(4));
        assert_eq!(*path.first().unwrap(), (0, 0));
        assert_eq!(*path.last().unwrap(), (15, 15));
        for w in path.windows(2) {
            let (i0, j0) = w[0];
            let (i1, j1) = w[1];
            assert!(i1 >= i0 && j1 >= j0 && i1 - i0 <= 1 && j1 - j0 <= 1);
            assert!((i1, j1) != (i0, j0));
        }
        let dp = dtw(&q, &c, DtwParams::new(4), &mut steps());
        assert!(
            (d - dp).abs() < 1e-12,
            "path variant agrees with rolling-row"
        );
        // Path length bound from the paper: n <= T < 2n - 1.
        assert!(path.len() >= 16 && path.len() <= 31);
    }

    #[test]
    fn path_cost_matches_distance() {
        let q = [0.0, 1.0, 2.0, 1.0, 0.0];
        let c = [0.0, 0.0, 2.0, 2.0, 0.0];
        let (d, path) = dtw_path(&q, &c, DtwParams::new(4));
        let cost: f64 = path.iter().map(|&(i, j)| cell_cost(q[i], c[j])).sum();
        assert!((cost.sqrt() - d).abs() < 1e-12);
    }

    #[test]
    fn from_fraction() {
        assert_eq!(DtwParams::from_fraction(100, 0.05).band, 5);
        assert_eq!(DtwParams::from_fraction(251, 0.0).band, 0);
        assert_eq!(DtwParams::from_fraction(10, 0.14).band, 1);
    }

    #[test]
    fn band_larger_than_series_is_unconstrained() {
        let q = [0.0, 3.0, 1.0];
        let c = [3.0, 0.0, 1.0];
        let a = dtw(&q, &c, DtwParams::new(2), &mut steps());
        let b = dtw(&q, &c, DtwParams::new(100), &mut steps());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        dtw(&[1.0], &[1.0, 2.0], DtwParams::new(1), &mut steps());
    }
}
