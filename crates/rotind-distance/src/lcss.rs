//! Longest Common SubSequence similarity (Section 4.3, Figure 14).
//!
//! LCSS is like DTW except that points may go *unmatched*: a broken tang
//! on a projectile point or the missing nose region of the Skhul V skull
//! simply drops out of the alignment instead of forcing an unnatural
//! warp. Two points `qᵢ`, `cⱼ` match when `|qᵢ − cⱼ| ≤ ε` and
//! `|i − j| ≤ δ` (the matching envelope of Figure 14); the similarity is
//! the length of the longest chain of such matches, normalised by `n`.
//!
//! Unlike Euclidean distance (no parameters) or DTW (one), LCSS has two
//! parameters, and the paper notes that tuning them is non-trivial; the
//! defaults here follow the common convention `ε = σ/2` on z-normalised
//! data (σ = 1) and `δ = 5%·n`.

use rotind_ts::StepCounter;

/// Parameters for banded LCSS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LcssParams {
    /// Amplitude matching threshold ε: samples match when their absolute
    /// difference is at most ε.
    pub epsilon: f64,
    /// Temporal matching window δ (in samples): `|i − j| ≤ δ`.
    pub delta: usize,
}

impl LcssParams {
    /// Explicit parameters.
    pub const fn new(epsilon: f64, delta: usize) -> Self {
        LcssParams { epsilon, delta }
    }

    /// Conventional defaults for z-normalised series of length `n`:
    /// `ε = 0.5`, `δ = max(1, 5%·n)`.
    pub fn for_normalized(n: usize) -> Self {
        LcssParams {
            epsilon: 0.5,
            delta: ((n as f64 * 0.05).round() as usize).max(1),
        }
    }
}

/// Length of the longest common subsequence under `params`.
///
/// One step is charged per visited DP cell. `O(n·δ)` time, `O(n)` memory.
///
/// # Panics
///
/// Panics when the series differ in length or are empty.
pub fn lcss_length(q: &[f64], c: &[f64], params: LcssParams, counter: &mut StepCounter) -> usize {
    let n = q.len();
    assert_eq!(n, c.len(), "lcss: length mismatch");
    assert!(n > 0, "lcss: empty series");
    let delta = params.delta.min(n - 1);

    // dp[j] = LCSS(q[..=i], c[..=j]); rolling rows over i.
    let mut prev = vec![0usize; n + 1];
    let mut cur = vec![0usize; n + 1];
    for (i, &qi) in q.iter().enumerate() {
        let lo = i.saturating_sub(delta);
        let hi = (i + delta).min(n - 1);
        // `left` carries cur[j] through the sweep (cur[0] is always 0).
        // Cells outside the band inherit the best seen so far on the
        // row, so the DP stays monotone without charging steps for them;
        // only in-band cells tick the counter.
        let mut left = 0usize;
        let writes = cur.iter_mut().skip(1);
        let prev_pairs = prev.iter().zip(prev.iter().skip(1));
        for (j, ((slot, (&pj, &pj1)), &cj)) in writes.zip(prev_pairs).zip(c).enumerate() {
            let v = if (lo..=hi).contains(&j) {
                counter.tick();
                let matched = (qi - cj).abs() <= params.epsilon;
                if matched {
                    pj + 1
                } else {
                    pj1.max(left)
                }
            } else {
                pj1.max(left)
            };
            *slot = v;
            left = v;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev.last().copied().unwrap_or(0)
}

/// LCSS similarity in `[0, 1]`: `lcss_length / n`.
pub fn lcss_similarity(q: &[f64], c: &[f64], params: LcssParams, counter: &mut StepCounter) -> f64 {
    lcss_length(q, c, params, counter) as f64 / q.len() as f64
}

/// LCSS distance form `1 − similarity`, in `[0, 1]`.
///
/// This is the form the rotation-invariant search minimises, so a single
/// best-so-far threshold works across all three measures.
pub fn lcss_distance(q: &[f64], c: &[f64], params: LcssParams, counter: &mut StepCounter) -> f64 {
    1.0 - lcss_similarity(q, c, params, counter)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steps() -> StepCounter {
        StepCounter::new()
    }

    #[test]
    fn identical_series_full_match() {
        let q = [1.0, 2.0, 3.0, 4.0];
        let p = LcssParams::new(0.1, 2);
        assert_eq!(lcss_length(&q, &q, p, &mut steps()), 4);
        assert_eq!(lcss_similarity(&q, &q, p, &mut steps()), 1.0);
        assert_eq!(lcss_distance(&q, &q, p, &mut steps()), 0.0);
    }

    #[test]
    fn completely_different_no_match() {
        let q = [0.0, 0.0, 0.0];
        let c = [10.0, 10.0, 10.0];
        let p = LcssParams::new(0.5, 2);
        assert_eq!(lcss_length(&q, &c, p, &mut steps()), 0);
        assert_eq!(lcss_distance(&q, &c, p, &mut steps()), 1.0);
    }

    #[test]
    fn tolerates_an_outlier_dtw_cannot_ignore() {
        // One wild sample ("broken tang"): LCSS skips it.
        let q = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let mut c = q;
        c[3] = 500.0;
        let p = LcssParams::new(0.25, 2);
        assert_eq!(lcss_length(&q, &c, p, &mut steps()), 5);
    }

    #[test]
    fn respects_temporal_window() {
        // Matching samples sit one position off the diagonal; δ = 0
        // restricts matches to the diagonal and finds none.
        let q = [1.0, 2.0, 3.0, 4.0];
        let c = [4.0, 1.0, 2.0, 3.0];
        let tight = LcssParams::new(0.1, 0);
        let loose = LcssParams::new(0.1, 1);
        let t = lcss_length(&q, &c, tight, &mut steps());
        let l = lcss_length(&q, &c, loose, &mut steps());
        assert!(l > t, "loose {l} should exceed tight {t}");
    }

    #[test]
    fn classic_subsequence_semantics() {
        // With a huge window and tiny epsilon this is the classic discrete
        // LCS. q = [1,2,3,4,5], c = [2,4,1,3,5] -> LCS {2,3,5} or {1,3,5}.
        let q = [1.0, 2.0, 3.0, 4.0, 5.0];
        let c = [2.0, 4.0, 1.0, 3.0, 5.0];
        let p = LcssParams::new(1e-9, 4);
        assert_eq!(lcss_length(&q, &c, p, &mut steps()), 3);
    }

    #[test]
    fn monotone_in_epsilon_and_delta() {
        let q: Vec<f64> = (0..24).map(|i| (i as f64 * 0.4).sin()).collect();
        let c: Vec<f64> = (0..24).map(|i| (i as f64 * 0.4 + 0.9).sin()).collect();
        let mut last = 0;
        for eps in [0.0, 0.1, 0.3, 0.8, 2.0] {
            let v = lcss_length(&q, &c, LcssParams::new(eps, 3), &mut steps());
            assert!(v >= last);
            last = v;
        }
        let mut last = 0;
        for delta in [0, 1, 2, 5, 23] {
            let v = lcss_length(&q, &c, LcssParams::new(0.2, delta), &mut steps());
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn similarity_bounds() {
        let q: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let c: Vec<f64> = (0..10).map(|i| -(i as f64)).collect();
        let p = LcssParams::for_normalized(10);
        let s = lcss_similarity(&q, &c, p, &mut steps());
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn default_params() {
        let p = LcssParams::for_normalized(100);
        assert_eq!(p.delta, 5);
        assert_eq!(p.epsilon, 0.5);
        let p1 = LcssParams::for_normalized(4);
        assert_eq!(p1.delta, 1, "delta never rounds to zero");
    }

    #[test]
    fn step_count_is_band_limited() {
        let n = 40;
        let q = vec![0.0; n];
        let c = vec![0.0; n];
        let mut s = steps();
        lcss_length(&q, &c, LcssParams::new(0.1, 2), &mut s);
        assert!(s.steps() <= (n * 5) as u64);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        lcss_length(&[1.0], &[1.0, 2.0], LcssParams::new(0.1, 1), &mut steps());
    }
}
