//! Euclidean distance, plain and early-abandoning (Table 1 of the paper).
//!
//! The accumulation itself lives in [`crate::kernels`] (the lane-parallel
//! canonical order shared with the `LB_Keogh` bound kernels); this module
//! keeps the paper-facing API and its dismissal semantics.

use crate::kernels;
use rotind_ts::StepCounter;

/// Squared Euclidean distance `Σ (qᵢ − cᵢ)²`, accumulated in the
/// canonical lane-parallel order of [`crate::kernels`].
///
/// # Panics
///
/// Panics when the slices differ in length; engine code validates lengths
/// once at the API boundary so the hot path never re-checks.
#[inline]
pub fn squared_euclidean(q: &[f64], c: &[f64]) -> f64 {
    let mut scratch = StepCounter::new();
    kernels::engine::sq_dist_abandon(q, c, f64::INFINITY, &mut scratch)
        // Invariant: `acc > r²` is unsatisfiable for r = ∞, so the
        // early-abandon path cannot return Err.
        // rotind-lint: allow(no-panic)
        .expect("infinite radius never abandons")
}

/// Euclidean distance `√Σ (qᵢ − cᵢ)²` (the paper's `ED(Q, C)`).
#[inline]
pub fn euclidean(q: &[f64], c: &[f64]) -> f64 {
    squared_euclidean(q, c).sqrt()
}

/// Early-abandoning Euclidean distance — `EA_Euclidean_Dist` of Table 1.
///
/// Accumulates squared differences, charging one step to `counter` per
/// term; as soon as the accumulator exceeds `r²` the computation abandons
/// and `None` is returned (the paper returns `infinity`), secure in the
/// knowledge that the true distance would exceed `r` (Definition 1).
///
/// Dismissal is *strict in reported-distance space*: `None` is returned
/// only when the value this function would have reported provably
/// exceeds `r`. The cheap squared-space test (`acc > r²`) triggers the
/// abandon, but because `fl(r·r)` can round below the accumulator of a
/// distance that equals `r` exactly as a float, the boundary is settled
/// by `√acc > r` — the square root is only evaluated on the abandon
/// path, and correctly-rounded `sqrt` is monotone, so a prefix already
/// farther than `r` proves the full distance is too. A candidate at
/// exactly distance `r` is therefore never dismissed.
///
/// With `r = f64::INFINITY` this computes the exact distance (never
/// abandons), matching the brute-force invocation of Table 2.
///
/// The sum runs in the canonical lane-parallel order with block-granular
/// abandon checks (see [`crate::kernels`]); dismissal stays strict and a
/// tripped block is replayed per element, so observed trip positions and
/// step counts match the historical scalar loop.
// lint: panic-exempt(length equality is validated at snapshot admission; the kernel asserts the contract)
pub fn euclidean_early_abandon(
    q: &[f64],
    c: &[f64],
    r: f64,
    counter: &mut StepCounter,
) -> Option<f64> {
    kernels::engine::sq_dist_abandon(q, c, r, counter)
        .ok()
        .map(f64::sqrt)
}

/// Early-abandoning Euclidean distance against a rotated view, avoiding
/// materialization of the rotation. `candidate` is compared against
/// `base` circularly shifted by `shift` (row `shift` of the paper's matrix
/// **C**). The boundary semantics match [`euclidean_early_abandon`]:
/// dismissal is strict in reported-distance space.
// lint: panic-exempt(length equality is validated at snapshot admission; the kernel asserts the contract)
pub fn euclidean_early_abandon_rotated(
    candidate: &[f64],
    base: &[f64],
    shift: usize,
    r: f64,
    counter: &mut StepCounter,
) -> Option<f64> {
    let n = base.len();
    assert_eq!(
        candidate.len(),
        n,
        "euclidean_early_abandon_rotated: length mismatch"
    );
    let shift = shift % n.max(1);
    // Two contiguous runs instead of a modulo per element; the split
    // kernel walks the logical rotation `tail ++ head` on the same chunk
    // grid as a materialised rotation, so sums, trip positions and step
    // counts are bit-identical to [`euclidean_early_abandon`] on the
    // materialised series.
    let (head, tail) = base.split_at(shift);
    kernels::engine::sq_dist_abandon_split(candidate, tail, head, r, counter)
        .ok()
        .map(f64::sqrt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotind_ts::rotate::rotated;

    #[test]
    fn plain_euclidean() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(squared_euclidean(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn panics_on_length_mismatch() {
        euclidean(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn early_abandon_exact_when_r_infinite() {
        let q = [1.0, 2.0, 3.0, 4.0];
        let c = [4.0, 3.0, 2.0, 1.0];
        let mut steps = StepCounter::new();
        let d = euclidean_early_abandon(&q, &c, f64::INFINITY, &mut steps).unwrap();
        assert!((d - euclidean(&q, &c)).abs() < 1e-12);
        assert_eq!(steps.steps(), 4, "one step per sample");
    }

    #[test]
    fn early_abandon_saves_steps() {
        let q = [100.0, 0.0, 0.0, 0.0, 0.0];
        let c = [0.0; 5];
        let mut steps = StepCounter::new();
        assert!(euclidean_early_abandon(&q, &c, 1.0, &mut steps).is_none());
        assert_eq!(steps.steps(), 1, "abandons after the first sample");
    }

    #[test]
    fn early_abandon_boundary_not_abandoned() {
        // acc == r² must NOT abandon (paper: abandon when acc > r²).
        let q = [3.0];
        let c = [0.0];
        let mut steps = StepCounter::new();
        let d = euclidean_early_abandon(&q, &c, 3.0, &mut steps).unwrap();
        assert_eq!(d, 3.0);
    }

    #[test]
    fn rotated_variant_matches_materialized() {
        let base: Vec<f64> = (0..13).map(|i| ((i * i) % 7) as f64).collect();
        let candidate: Vec<f64> = (0..13).map(|i| (i as f64 * 0.7).cos()).collect();
        for shift in 0..13 {
            let mut s1 = StepCounter::new();
            let mut s2 = StepCounter::new();
            let rot = rotated(&base, shift);
            let expect = euclidean_early_abandon(&candidate, &rot, f64::INFINITY, &mut s1);
            let got =
                euclidean_early_abandon_rotated(&candidate, &base, shift, f64::INFINITY, &mut s2);
            assert_eq!(expect.is_some(), got.is_some());
            assert!(
                (expect.unwrap() - got.unwrap()).abs() < 1e-12,
                "shift {shift}"
            );
            assert_eq!(s1.steps(), s2.steps());
        }
    }

    #[test]
    fn rotated_variant_abandons_identically() {
        let base: Vec<f64> = (0..16).map(|i| (i as f64).sin() * 3.0).collect();
        let candidate: Vec<f64> = (0..16).map(|i| (i as f64).cos() * 3.0).collect();
        for shift in 0..16 {
            for r in [0.5, 2.0, 8.0] {
                let mut s1 = StepCounter::new();
                let mut s2 = StepCounter::new();
                let rot = rotated(&base, shift);
                let a = euclidean_early_abandon(&candidate, &rot, r, &mut s1);
                let b = euclidean_early_abandon_rotated(&candidate, &base, shift, r, &mut s2);
                assert_eq!(a.is_some(), b.is_some(), "shift {shift} r {r}");
                assert_eq!(s1.steps(), s2.steps(), "shift {shift} r {r}");
            }
        }
    }
}
