//! Moore-neighbour boundary tracing.
//!
//! Extracts the outer boundary of the first foreground component as an
//! ordered pixel sequence — the input to the centroid-distance conversion
//! of Figure 2. Uses the Moore neighbourhood with Jacob's stopping
//! criterion (terminate on re-entering the start pixel from the start
//! direction), which handles one-pixel-wide appendages correctly.

use crate::bitmap::Bitmap;

/// Clockwise Moore neighbourhood starting from the west neighbour.
const NEIGHBORS: [(isize, isize); 8] = [
    (-1, 0),
    (-1, -1),
    (0, -1),
    (1, -1),
    (1, 0),
    (1, 1),
    (0, 1),
    (-1, 1),
];

/// Trace the outer boundary of the foreground component containing the
/// topmost-leftmost foreground pixel. Returns boundary pixels in
/// traversal order (clockwise in image coordinates); `None` for an empty
/// image.
///
/// Isolated single pixels yield a one-element contour.
pub fn trace_boundary(bitmap: &Bitmap) -> Option<Vec<(usize, usize)>> {
    let start = bitmap.first_foreground()?;
    let mut contour = vec![start];
    // Entered the start from the west (we scanned left-to-right), so
    // begin searching from the west neighbour.
    let mut current = start;
    let mut backtrack_dir = 0usize; // index into NEIGHBORS pointing at the backtrack cell
    let start_backtrack = backtrack_dir;

    // An isolated pixel has no foreground neighbour: detect up front.
    let has_neighbor = NEIGHBORS
        .iter()
        .any(|&(dx, dy)| bitmap.get(current.0 as isize + dx, current.1 as isize + dy));
    if !has_neighbor {
        return Some(contour);
    }

    let mut first_move: Option<(usize, usize, usize)> = None; // (x, y, dir) of the first step
    let max_steps = 4 * bitmap.width() * bitmap.height() + 8;
    for _ in 0..max_steps {
        // Scan the Moore neighbourhood clockwise starting just after the
        // backtrack direction.
        let mut found = None;
        for k in 1..=8 {
            let dir = (backtrack_dir + k) % 8;
            let (dx, dy) = NEIGHBORS[dir];
            let nx = current.0 as isize + dx;
            let ny = current.1 as isize + dy;
            if bitmap.get(nx, ny) {
                found = Some((nx as usize, ny as usize, dir));
                break;
            }
        }
        let (nx, ny, dir) = found.expect("connected pixel has a neighbour");
        // Jacob's criterion: stop when the first move repeats exactly.
        if let Some(first) = first_move {
            if (nx, ny, dir) == first && current == start && backtrack_dir == start_backtrack {
                break;
            }
        }
        if first_move.is_none() {
            first_move = Some((nx, ny, dir));
        }
        if (nx, ny) == start && contour.len() > 1 {
            break;
        }
        contour.push((nx, ny));
        // New backtrack: the direction pointing back at the previous
        // pixel, i.e. opposite of `dir`, then step back one so the scan
        // resumes correctly.
        current = (nx, ny);
        backtrack_dir = (dir + 4) % 8;
    }
    Some(contour)
}

/// Arc-length–parameterised resampling of a contour to `n` points.
///
/// Pixel chains have anisotropic spacing (diagonal steps are √2 long);
/// uniform arc-length sampling removes that bias before the centroid
/// conversion.
pub fn resample_contour(contour: &[(usize, usize)], n: usize) -> Vec<(f64, f64)> {
    assert!(n > 0, "resample_contour: n must be >= 1");
    if contour.is_empty() {
        return Vec::new();
    }
    if contour.len() == 1 {
        let (x, y) = contour[0];
        return vec![(x as f64, y as f64); n];
    }
    let pts: Vec<(f64, f64)> = contour.iter().map(|&(x, y)| (x as f64, y as f64)).collect();
    let m = pts.len();
    // Cumulative arc length around the closed contour.
    let mut cum = Vec::with_capacity(m + 1);
    cum.push(0.0);
    for i in 0..m {
        let (x0, y0) = pts[i];
        let (x1, y1) = pts[(i + 1) % m];
        let d = ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt();
        cum.push(cum[i] + d);
    }
    let total = *cum.last().expect("non-empty");
    // rotind-lint: allow(float-eq) exact-zero sentinel
    if total == 0.0 {
        return vec![pts[0]; n];
    }
    let mut out = Vec::with_capacity(n);
    let mut seg = 0usize;
    for i in 0..n {
        let target = total * i as f64 / n as f64;
        while seg + 1 < cum.len() - 1 && cum[seg + 1] <= target {
            seg += 1;
        }
        let seg_len = cum[seg + 1] - cum[seg];
        let t = if seg_len > 0.0 {
            (target - cum[seg]) / seg_len
        } else {
            0.0
        };
        let (x0, y0) = pts[seg];
        let (x1, y1) = pts[(seg + 1) % m];
        out.push((x0 + t * (x1 - x0), y0 + t * (y1 - y0)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::{radial_to_polygon, rasterize_polygon};

    #[test]
    fn empty_image() {
        assert!(trace_boundary(&Bitmap::new(4, 4)).is_none());
    }

    #[test]
    fn single_pixel() {
        let mut b = Bitmap::new(5, 5);
        b.set(2, 2, true);
        assert_eq!(trace_boundary(&b).unwrap(), vec![(2, 2)]);
    }

    #[test]
    fn square_block_boundary() {
        // 4×4 block: boundary is the 12 edge pixels.
        let b = Bitmap::from_fn(8, 8, |x, y| (2..6).contains(&x) && (2..6).contains(&y));
        let contour = trace_boundary(&b).unwrap();
        assert_eq!(contour.len(), 12, "perimeter pixels: {contour:?}");
        // Every contour pixel is a boundary pixel; interior excluded.
        for &(x, y) in &contour {
            assert!(b.is_boundary(x, y), "({x},{y}) not a boundary pixel");
        }
        assert!(!contour.contains(&(3, 3)));
        // Closed: consecutive pixels 8-adjacent, including wrap-around.
        for i in 0..contour.len() {
            let (x0, y0) = contour[i];
            let (x1, y1) = contour[(i + 1) % contour.len()];
            assert!(
                (x0 as isize - x1 as isize).abs() <= 1 && (y0 as isize - y1 as isize).abs() <= 1
            );
        }
    }

    #[test]
    fn disc_boundary_is_roughly_circular() {
        let b = Bitmap::from_fn(41, 41, |x, y| {
            let dx = x as f64 - 20.0;
            let dy = y as f64 - 20.0;
            dx * dx + dy * dy <= 15.0 * 15.0
        });
        let contour = trace_boundary(&b).unwrap();
        // Every traced pixel sits near radius 15.
        for &(x, y) in &contour {
            let r = ((x as f64 - 20.0).powi(2) + (y as f64 - 20.0).powi(2)).sqrt();
            assert!((r - 15.0).abs() < 1.6, "pixel ({x},{y}) at radius {r}");
        }
        // Length ≈ perimeter (between 2πr·(2√2/π)≈ digital bounds).
        assert!(
            contour.len() >= 60 && contour.len() <= 130,
            "{}",
            contour.len()
        );
    }

    #[test]
    fn traces_rasterized_star() {
        let radii: Vec<f64> = (0..128)
            .map(|i| 1.0 + 0.4 * ((5.0 * std::f64::consts::TAU * i as f64 / 128.0).sin()))
            .collect();
        let poly = radial_to_polygon(&radii, 64, 0.9);
        let b = rasterize_polygon(&poly, 64, 64);
        let contour = trace_boundary(&b).unwrap();
        assert!(contour.len() > 100, "star contour length {}", contour.len());
    }

    #[test]
    fn resample_uniform_square() {
        let square = vec![
            (0usize, 0usize),
            (1, 0),
            (2, 0),
            (2, 1),
            (2, 2),
            (1, 2),
            (0, 2),
            (0, 1),
        ];
        let pts = resample_contour(&square, 8);
        assert_eq!(pts.len(), 8);
        assert_eq!(pts[0], (0.0, 0.0));
        // All samples on the square's edge.
        for &(x, y) in &pts {
            let on_edge = x.abs() < 1e-9
                || (x - 2.0).abs() < 1e-9
                || y.abs() < 1e-9
                || (y - 2.0).abs() < 1e-9;
            assert!(on_edge, "({x},{y}) off the square edge");
        }
    }

    #[test]
    fn resample_degenerate() {
        assert!(resample_contour(&[], 4).is_empty());
        let one = resample_contour(&[(3, 4)], 3);
        assert_eq!(one, vec![(3.0, 4.0); 3]);
    }

    #[test]
    fn resample_up_and_down() {
        let tri = vec![(0usize, 0usize), (4, 0), (2, 3)];
        assert_eq!(resample_contour(&tri, 30).len(), 30);
        assert_eq!(resample_contour(&tri, 2).len(), 2);
    }
}
