//! Labelled synthetic datasets mirroring the paper's collections.
//!
//! Every builder is deterministic in its seed, generates radial profiles
//! from the [`crate::generators`] families, applies the distortions the
//! paper's data exhibits (within-class jitter, smooth local warping —
//! the DTW motivation of Figure 11 — and sensor noise), randomly rotates
//! each instance (the invariance under test), resamples to the canonical
//! length and z-normalises.
//!
//! Sizes and class counts follow `DESIGN.md` §4/§5: class structure
//! matches the paper's Table 8 datasets, with the largest collections
//! subsampled to keep leave-one-out evaluation tractable (documented in
//! `EXPERIMENTS.md`).

use crate::generators::blade::{blade_profile, BladeClass};
use crate::generators::butterfly::{butterfly_profile, LEPIDOPTERA};
use crate::generators::skull::{skull_profile, PRIMATES};
use crate::generators::superformula::Superformula;
use crate::generators::warp::{add_noise, random_rotation, smooth_circular};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rotind_ts::normalize::z_normalize_lossy;
use rotind_ts::resample::resample_circular;

/// A labelled collection of equal-length, z-normalised, randomly rotated
/// centroid-distance series.
///
/// ```
/// use rotind_shape::dataset::projectile_points;
/// let ds = projectile_points(40, 64, 7);
/// assert_eq!(ds.len(), 40);
/// assert_eq!(ds.series_len(), 64);
/// assert_eq!(ds.num_classes(), 4);
/// assert!(ds.validate());
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Collection name (used in reports).
    pub name: String,
    /// The series.
    pub items: Vec<Vec<f64>>,
    /// Class label per item.
    pub labels: Vec<usize>,
    /// Class display names (indexed by label).
    pub class_names: Vec<String>,
}

impl Dataset {
    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Series length `n` (0 for an empty dataset).
    pub fn series_len(&self) -> usize {
        self.items.first().map_or(0, Vec::len)
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Check internal consistency (equal lengths, labels in range).
    pub fn validate(&self) -> bool {
        let n = self.series_len();
        self.items.len() == self.labels.len()
            && self.items.iter().all(|s| s.len() == n)
            && self.labels.iter().all(|&l| l < self.class_names.len())
    }

    /// A copy with every series resampled (circularly) to length `n`.
    pub fn resampled(&self, n: usize) -> Dataset {
        Dataset {
            name: self.name.clone(),
            items: self
                .items
                .iter()
                .map(|s| resample_circular(s, n).expect("non-empty series"))
                .collect(),
            labels: self.labels.clone(),
            class_names: self.class_names.clone(),
        }
    }

    /// A deterministic subsample of `m` items (all items when `m >=
    /// len`), preserving label diversity by stratified round-robin.
    pub fn subsample(&self, m: usize, seed: u64) -> Dataset {
        if m >= self.len() {
            return self.clone();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); self.num_classes().max(1)];
        for (i, &l) in self.labels.iter().enumerate() {
            by_class[l].push(i);
        }
        for idxs in &mut by_class {
            // Fisher–Yates.
            for i in (1..idxs.len()).rev() {
                let j = rng.random_range(0..=i);
                idxs.swap(i, j);
            }
        }
        let mut chosen = Vec::with_capacity(m);
        let mut round = 0usize;
        while chosen.len() < m {
            let mut advanced = false;
            for idxs in &by_class {
                if chosen.len() >= m {
                    break;
                }
                if let Some(&i) = idxs.get(round) {
                    chosen.push(i);
                    advanced = true;
                }
            }
            if !advanced {
                break;
            }
            round += 1;
        }
        chosen.sort_unstable();
        Dataset {
            name: format!("{}[{m}]", self.name),
            items: chosen.iter().map(|&i| self.items[i].clone()).collect(),
            labels: chosen.iter().map(|&i| self.labels[i]).collect(),
            class_names: self.class_names.clone(),
        }
    }
}

/// Distortion knobs shared by the builders.
#[derive(Debug, Clone, Copy)]
struct Distortion {
    /// Smooth circular warp amplitude (radians of angular displacement).
    warp: f64,
    /// Additive Gaussian noise σ (on the raw radial profile scale).
    noise: f64,
}

/// Smooth → bend → resample → smooth → noise → z-normalise → random
/// rotation. The smoothing passes band-limit the profile the way
/// rasterisation and contour resampling band-limit real shape data;
/// without them, sample-scale spikes make within-class distances blow
/// up under any angular perturbation.
///
/// The within-class angular distortion is a pair of random *local bends*
/// (a feature displaced a few samples, the rest of the boundary
/// untouched) — the morphological variation of Figure 11 that motivates
/// DTW, rather than a global warp that mostly re-parameterises the
/// whole outline.
fn finalize(radial: &[f64], n: usize, d: Distortion, rng: &mut StdRng) -> Vec<f64> {
    let pre = smooth_circular(radial, (radial.len() / 128).max(1));
    let mut warped = pre;
    if d.warp > 0.0 {
        // Three bends with alternating signs: a net-zero displacement
        // field that a global rotation cannot absorb (a single bend is
        // half-fixed by rotating the whole outline), so Euclidean
        // distance pays for the full local misalignment while DTW
        // recovers it within a small band.
        for b in 0..3 {
            let center = rng.random_range(0.0..std::f64::consts::TAU);
            let width = rng.random_range(0.5..1.0);
            // `d.warp` is the target peak angular displacement (radians);
            // the bend's peak displacement is ≈ 0.42·amount·width.
            let sign = if b % 2 == 0 { 1.0 } else { -1.0 };
            let amount = sign * (d.warp / (0.415 * width)).min(1.3) * rng.random_range(0.6..1.0);
            warped = crate::generators::warp::bend_window(&warped, center, width, amount);
        }
    }
    let series = resample_circular(&warped, n).expect("non-empty profile");
    let mut series = smooth_circular(&series, 1);
    // Noise is relative to the profile's dynamic range: z-normalisation
    // rescales everything afterwards, so absolute noise would swamp
    // low-relief outlines (a near-circular profile has range ≈ 0) while
    // barely touching spiky ones.
    let range = rotind_ts::stats::max(&series) - rotind_ts::stats::min(&series);
    add_noise(&mut series, d.noise * range.max(1e-6), rng);
    let normalized = z_normalize_lossy(&series);
    random_rotation(&normalized, rng).0
}

/// A superformula class: base parameters plus a within-class variation
/// scale.
///
/// Instances perturb the class's base *profile* with a few smooth random
/// bumps rather than jittering the superformula parameters — spiky
/// superformulas are chaotic in their parameters (a 3% nudge can
/// reshape the outline entirely), which makes within-class variance
/// untunable; profile-space bumps give a difficulty knob that moves
/// monotonically with `jitter`.
#[derive(Debug, Clone, Copy)]
struct SfClass {
    name: &'static str,
    base: Superformula,
    /// Amplitude of the within-class profile perturbation, relative to
    /// the profile's dynamic range.
    jitter: f64,
}

impl SfClass {
    const fn new(name: &'static str, m: f64, n1: f64, n2: f64, n3: f64, jitter: f64) -> Self {
        SfClass {
            name,
            base: Superformula::new(m, n1, n2, n3),
            jitter,
        }
    }

    fn instance(&self, samples: usize, rng: &mut StdRng) -> Vec<f64> {
        let mut profile = self.base.profile(samples);
        let range = rotind_ts::stats::max(&profile) - rotind_ts::stats::min(&profile);
        let amp = self.jitter * range.max(0.2);
        // A handful of smooth circular bumps: organ-level variation
        // (a longer lobe, a shallower sinus) rather than noise.
        for _ in 0..4 {
            let center = rng.random_range(0..samples);
            let width = rng.random_range(samples / 24..samples / 6).max(2);
            let a = amp * rng.random_range(-1.0..1.0);
            for d in 0..width {
                let t = d as f64 / width as f64 * std::f64::consts::PI;
                let bump = a * t.sin() * t.sin();
                let idx = (center + d) % samples;
                profile[idx] = (profile[idx] + bump).max(0.05);
            }
        }
        // Mild global scale variation (removed by z-normalisation but it
        // exercises the scale-invariance path).
        let scale = 1.0 + rng.random_range(-0.1..0.1);
        for v in profile.iter_mut() {
            *v *= scale;
        }
        profile
    }
}

fn superformula_dataset(
    name: &str,
    classes: &[SfClass],
    per_class: usize,
    n: usize,
    distortion: Distortion,
    seed: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let samples = 4 * n;
    let mut items = Vec::with_capacity(classes.len() * per_class);
    let mut labels = Vec::with_capacity(classes.len() * per_class);
    for (label, class) in classes.iter().enumerate() {
        for _ in 0..per_class {
            let radial = class.instance(samples, &mut rng);
            items.push(finalize(&radial, n, distortion, &mut rng));
            labels.push(label);
        }
    }
    Dataset {
        name: name.to_string(),
        items,
        labels,
        class_names: classes.iter().map(|c| c.name.to_string()).collect(),
    }
}

/// Canonical classification series length (leave-one-out 1-NN over the
/// Table-8 collections stays tractable at this resolution).
pub const CLASSIFICATION_LEN: usize = 64;

/// "Face": 16 classes × 35 (paper: 16 × 2240 — subsampled). Profile-like
/// asymmetric outlines; moderate articulation (mouth/jaw) favours DTW.
pub fn face(seed: u64) -> Dataset {
    let classes: Vec<SfClass> = (0..16)
        .map(|i| {
            let fi = i as f64;
            SfClass {
                name: "face-class",
                base: Superformula::new(
                    1.0 + (i % 7) as f64,
                    1.2 + 0.22 * fi,
                    2.2 + 0.45 * ((i * 7) % 11) as f64,
                    1.6 + 0.38 * ((i * 3) % 13) as f64,
                ),
                jitter: 0.03,
            }
        })
        .collect();
    superformula_dataset(
        "Face",
        &classes,
        35,
        CLASSIFICATION_LEN,
        Distortion {
            warp: 0.12,
            noise: 0.015,
        },
        seed,
    )
}

/// "Swedish Leaves": 15 classes × 37 (paper: 15 × 1125 — subsampled).
pub fn swedish_leaf(seed: u64) -> Dataset {
    // Five lobe-count groups × three alternating-amplitude variants:
    // lobe counts separate the groups (warp-proof), amplitudes separate
    // classes within a group (value-structured, so DTW keeps them apart
    // while absorbing the bends).
    let classes: Vec<SfClass> = (0..15)
        .map(|i| SfClass {
            name: "leaf-class",
            base: Superformula {
                m: 1.0 + (i / 3) as f64,
                n1: 1.0,
                n2: 2.2,
                n3: 2.2,
                a: 1.0,
                b: 1.0 + 0.45 * (i % 3) as f64,
            },
            jitter: 0.05,
        })
        .collect();
    superformula_dataset(
        "SwedishLeaf",
        &classes,
        37,
        CLASSIFICATION_LEN,
        Distortion {
            warp: 0.75,
            noise: 0.045,
        },
        seed,
    )
}

/// "Chicken": 5 part classes × 89 ≈ 446 (paper: 5 × 446). High
/// within-class variation makes this hard, as in the paper (~20% error).
pub fn chicken(seed: u64) -> Dataset {
    let classes = [
        SfClass::new("breast", 2.0, 0.9, 2.8, 1.9, 0.35),
        SfClass::new("wing", 3.0, 1.1, 1.7, 3.1, 0.35),
        SfClass::new("drumstick", 1.0, 0.8, 2.2, 2.2, 0.35),
        SfClass::new("thigh", 2.0, 1.3, 3.5, 2.4, 0.35),
        SfClass::new("back", 4.0, 1.0, 2.0, 2.6, 0.35),
    ];
    superformula_dataset(
        "Chicken",
        &classes,
        89,
        CLASSIFICATION_LEN,
        Distortion {
            warp: 0.25,
            noise: 0.30,
        },
        seed,
    )
}

/// "MixedBag": 9 wildly different object classes × 18 ≈ 160 (paper:
/// 9 × 160). Mixes every generator family — the easiest collection.
pub fn mixed_bag(seed: u64) -> Dataset {
    let n = CLASSIFICATION_LEN;
    let samples = 4 * n;
    let mut rng = StdRng::seed_from_u64(seed);
    let d = Distortion {
        warp: 0.08,
        noise: 0.03,
    };
    let mut items = Vec::new();
    let mut labels = Vec::new();
    let per_class = 18;
    let mut class_names = Vec::new();

    // Classes 0–3: projectile points.
    for class in BladeClass::ALL {
        let label = class_names.len();
        class_names.push(format!("blade-{}", class.name()));
        for _ in 0..per_class {
            let radial = blade_profile(class, samples, &mut rng);
            items.push(finalize(&radial, n, d, &mut rng));
            labels.push(label);
        }
    }
    // Classes 4–5: two butterflies.
    for sp in &LEPIDOPTERA[..2] {
        let label = class_names.len();
        class_names.push(sp.name.to_string());
        for _ in 0..per_class {
            let radial = butterfly_profile(&sp.params, samples, 0.3, &mut rng);
            items.push(finalize(&radial, n, d, &mut rng));
            labels.push(label);
        }
    }
    // Classes 6–7: two skulls.
    for sp in [&PRIMATES[0], &PRIMATES[2]] {
        let label = class_names.len();
        class_names.push(sp.name.to_string());
        for _ in 0..per_class {
            let radial = skull_profile(&sp.params, samples, 0.4, &mut rng);
            items.push(finalize(&radial, n, d, &mut rng));
            labels.push(label);
        }
    }
    // Class 8: a spiky superformula "gadget".
    let label = class_names.len();
    class_names.push("gadget".to_string());
    let gadget = SfClass::new("gadget", 7.0, 0.6, 2.9, 2.9, 0.05);
    for _ in 0..per_class {
        let radial = gadget.instance(samples, &mut rng);
        items.push(finalize(&radial, n, d, &mut rng));
        labels.push(label);
    }
    Dataset {
        name: "MixedBag".to_string(),
        items,
        labels,
        class_names,
    }
}

/// "OSU Leaves": 6 classes × 74 ≈ 442 (paper: 6 × 442). Strong local
/// warping — the collection where DTW halves the Euclidean error in the
/// paper (33.7% → 15.6%).
pub fn osu_leaf(seed: u64) -> Dataset {
    // All classes share lobe count and sharpness (so DTW cannot erase
    // the class signal by stretching lobe widths) and differ in the
    // relative amplitude of alternating lobes (the `b` axis scale);
    // within-class variation is dominated by local bends, which is what
    // DTW absorbs and Euclidean distance pays for in full.
    let classes: Vec<SfClass> = (0..6)
        .map(|i| SfClass {
            name: "osu-leaf-class",
            base: Superformula {
                m: 4.0,
                n1: 1.2,
                n2: 2.5,
                n3: 2.5,
                a: 1.0,
                b: 1.0 + 0.28 * i as f64,
            },
            jitter: 0.05,
        })
        .collect();
    superformula_dataset(
        "OSULeaf",
        &classes,
        74,
        CLASSIFICATION_LEN,
        Distortion {
            warp: 0.60,
            noise: 0.035,
        },
        seed,
    )
}

/// "Diatoms": 37 species × 10 ≈ 390 (paper: 37 × 781 — subsampled).
/// Many subtly different classes — hard for everything, as in the paper
/// (~27% error, close to human experts).
pub fn diatom(seed: u64) -> Dataset {
    let classes: Vec<SfClass> = (0..37)
        .map(|i| SfClass {
            name: "diatom-species",
            base: Superformula::new(
                2.0 + (i % 5) as f64,
                1.0 + 0.15 * i as f64,
                2.0 + 0.50 * ((i * 11) % 17) as f64,
                2.0 + 0.45 * ((i * 5) % 19) as f64,
            ),
            jitter: 0.04,
        })
        .collect();
    superformula_dataset(
        "Diatom",
        &classes,
        10,
        CLASSIFICATION_LEN,
        Distortion {
            warp: 0.10,
            noise: 0.018,
        },
        seed,
    )
}

/// "Aircraft": 7 types × 30 = 210 (paper: 7 × 210). Highly distinct
/// silhouettes — near-zero error, as in the paper.
pub fn aircraft(seed: u64) -> Dataset {
    let classes = [
        SfClass::new("delta", 3.0, 0.4, 2.2, 1.4, 0.03),
        SfClass::new("swept", 5.0, 0.7, 3.3, 1.1, 0.03),
        SfClass::new("straight", 4.0, 1.6, 4.8, 4.8, 0.03),
        SfClass::new("biplane", 8.0, 1.1, 2.4, 2.4, 0.03),
        SfClass::new("canard", 6.0, 0.5, 1.5, 2.8, 0.03),
        SfClass::new("flying-wing", 2.0, 0.35, 1.8, 1.8, 0.03),
        SfClass::new("helicopter", 9.0, 2.2, 5.5, 3.3, 0.03),
    ];
    superformula_dataset(
        "Aircraft",
        &classes,
        30,
        CLASSIFICATION_LEN,
        Distortion {
            warp: 0.03,
            noise: 0.015,
        },
        seed,
    )
}

/// "Fish": 7 species × 50 = 350 (paper: 7 × 350).
pub fn fish(seed: u64) -> Dataset {
    // Two lobe-count groups with amplitude-graded classes (see the
    // OSULeaf comment: amplitude structure keeps DTW discriminative).
    let classes: Vec<SfClass> = (0..7)
        .map(|i| SfClass {
            name: "fish-species",
            base: Superformula {
                m: if i < 4 { 2.0 } else { 3.0 },
                n1: 1.1,
                n2: 2.4,
                n3: 2.4,
                a: 1.0,
                b: 1.0 + 0.38 * (i % 4) as f64,
            },
            jitter: 0.13,
        })
        .collect();
    superformula_dataset(
        "Fish",
        &classes,
        50,
        CLASSIFICATION_LEN,
        Distortion {
            warp: 0.80,
            noise: 0.04,
        },
        seed,
    )
}

/// "Yoga": 2 poses × 330 = 660 (paper: 2 × 3300 — subsampled). Two
/// similar articulated silhouettes.
pub fn yoga(seed: u64) -> Dataset {
    let classes = [
        SfClass {
            name: "pose-a",
            base: Superformula {
                m: 3.0,
                n1: 1.0,
                n2: 2.4,
                n3: 2.4,
                a: 1.0,
                b: 1.0,
            },
            jitter: 0.07,
        },
        SfClass {
            name: "pose-b",
            base: Superformula {
                m: 3.0,
                n1: 1.0,
                n2: 2.4,
                n3: 2.4,
                a: 1.0,
                b: 1.04,
            },
            jitter: 0.07,
        },
    ];
    superformula_dataset(
        "Yoga",
        &classes,
        330,
        CLASSIFICATION_LEN,
        Distortion {
            warp: 0.45,
            noise: 0.20,
        },
        seed,
    )
}

/// The 16,000-item projectile-point database of Figures 19/20 (length
/// 251, four morphological classes). `m` and `n` are parameters so the
/// sweep harness can generate prefixes cheaply.
pub fn projectile_points(m: usize, n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let samples = 2 * n;
    let d = Distortion {
        warp: 0.05,
        noise: 0.02,
    };
    let mut items = Vec::with_capacity(m);
    let mut labels = Vec::with_capacity(m);
    for i in 0..m {
        let class = BladeClass::ALL[i % BladeClass::ALL.len()];
        let radial = blade_profile(class, samples, &mut rng);
        items.push(finalize(&radial, n, d, &mut rng));
        labels.push(i % BladeClass::ALL.len());
    }
    Dataset {
        name: "ProjectilePoints".to_string(),
        items,
        labels,
        class_names: BladeClass::ALL
            .iter()
            .map(|c| c.name().to_string())
            .collect(),
    }
}

/// The heterogeneous database of Figure 21: the union of all shape
/// classification collections plus 1,000 projectile points, resampled to
/// length `n` (the paper uses 1,024 and 5,844 objects; our shape subset
/// totals ≈ 4,700 — the light-curve items live in `rotind-lightcurve`).
pub fn heterogeneous(n: usize, seed: u64) -> Dataset {
    let parts: Vec<Dataset> = vec![
        face(seed),
        swedish_leaf(seed + 1),
        chicken(seed + 2),
        mixed_bag(seed + 3),
        osu_leaf(seed + 4),
        diatom(seed + 5),
        aircraft(seed + 6),
        fish(seed + 7),
        yoga(seed + 8),
        projectile_points(1000, n, seed + 9),
    ];
    let mut items = Vec::new();
    let mut labels = Vec::new();
    let mut class_names = Vec::new();
    for part in parts {
        let offset = class_names.len();
        let part = part.resampled(n);
        for (series, label) in part.items.into_iter().zip(part.labels) {
            items.push(series);
            labels.push(offset + label);
        }
        class_names.extend(
            part.class_names
                .into_iter()
                .map(|c| format!("{}/{}", part.name, c)),
        );
    }
    Dataset {
        name: "Heterogeneous".to_string(),
        items,
        labels,
        class_names,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table8_builder_is_valid_and_sized() {
        let cases: Vec<(Dataset, usize, usize)> = vec![
            (face(1), 16, 560),
            (swedish_leaf(1), 15, 555),
            (chicken(1), 5, 445),
            (mixed_bag(1), 9, 162),
            (osu_leaf(1), 6, 444),
            (diatom(1), 37, 370),
            (aircraft(1), 7, 210),
            (fish(1), 7, 350),
            (yoga(1), 2, 660),
        ];
        for (ds, classes, size) in cases {
            assert!(ds.validate(), "{} invalid", ds.name);
            assert_eq!(ds.num_classes(), classes, "{}", ds.name);
            assert_eq!(ds.len(), size, "{}", ds.name);
            assert_eq!(ds.series_len(), CLASSIFICATION_LEN, "{}", ds.name);
        }
    }

    #[test]
    fn series_are_normalised() {
        let ds = aircraft(7);
        for s in &ds.items {
            assert!(rotind_ts::stats::mean(s).abs() < 1e-9);
            let sd = rotind_ts::stats::std_dev(s);
            assert!((sd - 1.0).abs() < 1e-9 || sd == 0.0);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = fish(123);
        let b = fish(123);
        assert_eq!(a.items, b.items);
        let c = fish(124);
        assert_ne!(a.items, c.items);
    }

    #[test]
    fn projectile_points_shape() {
        let ds = projectile_points(100, 251, 5);
        assert!(ds.validate());
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.series_len(), 251);
        assert_eq!(ds.num_classes(), 4);
        // Labels cycle.
        assert_eq!(ds.labels[0], 0);
        assert_eq!(ds.labels[5], 1);
    }

    #[test]
    fn heterogeneous_combines_everything() {
        let ds = heterogeneous(128, 9);
        assert!(ds.validate());
        assert_eq!(ds.series_len(), 128);
        assert!(ds.len() > 4000, "size {}", ds.len());
        assert!(ds.num_classes() > 90, "classes {}", ds.num_classes());
    }

    #[test]
    fn resample_and_subsample() {
        let ds = aircraft(3);
        let r = ds.resampled(32);
        assert_eq!(r.series_len(), 32);
        assert_eq!(r.len(), ds.len());
        let s = ds.subsample(50, 1);
        assert_eq!(s.len(), 50);
        assert!(s.validate());
        // Stratified: all 7 classes present in a 50-item subsample.
        let mut seen = [false; 7];
        for &l in &s.labels {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&x| x));
        // Subsample larger than the set is the identity.
        assert_eq!(ds.subsample(10_000, 1).len(), ds.len());
    }

    #[test]
    fn classes_are_separable_in_principle() {
        // Nearest-centroid (over best rotation alignment is overkill
        // here; use rotation-invariant 1-NN on a small subsample) should
        // beat chance on the easy Aircraft set.
        let ds = aircraft(11).subsample(70, 2);
        let mut correct = 0;
        for i in 0..ds.len() {
            let mut best = (f64::INFINITY, 0usize);
            for j in 0..ds.len() {
                if i == j {
                    continue;
                }
                let d = rotind_ts::rotate::rotated(&ds.items[j], 0)
                    .iter()
                    .zip(&ds.items[i])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>();
                // Cheap proxy: min over a coarse rotation grid.
                let dmin = (0..ds.series_len())
                    .step_by(4)
                    .map(|s| {
                        rotind_ts::rotate::rotated(&ds.items[j], s)
                            .iter()
                            .zip(&ds.items[i])
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum::<f64>()
                    })
                    .fold(d, f64::min);
                if dmin < best.0 {
                    best = (dmin, ds.labels[j]);
                }
            }
            if best.1 == ds.labels[i] {
                correct += 1;
            }
        }
        let accuracy = correct as f64 / ds.len() as f64;
        assert!(
            accuracy > 0.5,
            "aircraft 1-NN accuracy {accuracy} barely beats chance (1/7)"
        );
    }
}
