//! # rotind-shape — the shape substrate
//!
//! The paper's Figure 2 pipeline: a 2-D shape bitmap is boundary-traced,
//! the distance from every boundary point to the shape centroid becomes a
//! time series of length `n`, and rotating the shape becomes circularly
//! shifting the series. This crate implements that pipeline from scratch
//! and provides the synthetic datasets that stand in for the paper's
//! image collections (see `DESIGN.md` §4 for the substitution rationale):
//!
//! * [`bitmap`] — a monochrome raster;
//! * [`poly`] — polygon scan-line rasterisation;
//! * [`contour`] — Moore-neighbour boundary tracing;
//! * [`centroid`] — centroid-distance series extraction (bitmap pipeline
//!   and the fast direct-polygon path), plus major-axis landmarking for
//!   the Figure 3 brittleness demonstration;
//! * [`generators`] — parametric shape families: superformula organisms,
//!   projectile-point blades, primate/reptile skull profiles, butterflies
//!   with articulated wings;
//! * [`dataset`] — labelled datasets mirroring the paper's ten Table-8
//!   collections, the 16,000-item projectile-point database and the
//!   heterogeneous database.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap;
pub mod centroid;
pub mod contour;
pub mod dataset;
pub mod generators;
pub mod poly;

pub use bitmap::Bitmap;
pub use dataset::Dataset;
