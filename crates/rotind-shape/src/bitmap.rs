//! A monochrome raster image.

/// A width × height grid of boolean pixels (`true` = foreground).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    width: usize,
    height: usize,
    pixels: Vec<bool>,
}

impl Bitmap {
    /// An all-background bitmap.
    ///
    /// # Panics
    ///
    /// Panics on zero width or height.
    // lint: panic-exempt(documented precondition: shape rasters always have positive dimensions)
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "Bitmap::new: zero dimension");
        Bitmap {
            width,
            height,
            pixels: vec![false; width * height],
        }
    }

    /// Build by evaluating `f(x, y)` for every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut b = Bitmap::new(width, height);
        for y in 0..height {
            for x in 0..width {
                if f(x, y) {
                    b.set(x, y, true);
                }
            }
        }
        b
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel value; out-of-range coordinates read as background.
    #[inline]
    // lint: panic-exempt(the guard above returns background for any out-of-range coordinate)
    pub fn get(&self, x: isize, y: isize) -> bool {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return false;
        }
        self.pixels[y as usize * self.width + x as usize]
    }

    /// Set a pixel.
    ///
    /// # Panics
    ///
    /// Panics when the coordinate is out of range.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: bool) {
        assert!(
            x < self.width && y < self.height,
            "Bitmap::set out of range"
        );
        self.pixels[y * self.width + x] = value;
    }

    /// Number of foreground pixels.
    pub fn count_foreground(&self) -> usize {
        self.pixels.iter().filter(|&&p| p).count()
    }

    /// The first (topmost, then leftmost) foreground pixel, if any.
    pub fn first_foreground(&self) -> Option<(usize, usize)> {
        self.pixels
            .iter()
            .position(|&p| p)
            .map(|i| (i % self.width, i / self.width))
    }

    /// `true` when the pixel is foreground and at least one of its 4
    /// neighbours is background (or the image edge).
    pub fn is_boundary(&self, x: usize, y: usize) -> bool {
        let (xi, yi) = (x as isize, y as isize);
        self.get(xi, yi)
            && (!self.get(xi - 1, yi)
                || !self.get(xi + 1, yi)
                || !self.get(xi, yi - 1)
                || !self.get(xi, yi + 1))
    }

    /// ASCII rendering (for debugging and examples): `#` foreground,
    /// `.` background.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                out.push(if self.pixels[y * self.width + x] {
                    '#'
                } else {
                    '.'
                });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut b = Bitmap::new(4, 3);
        assert_eq!(b.width(), 4);
        assert_eq!(b.height(), 3);
        assert_eq!(b.count_foreground(), 0);
        b.set(2, 1, true);
        assert!(b.get(2, 1));
        assert!(!b.get(1, 1));
        assert_eq!(b.count_foreground(), 1);
        assert_eq!(b.first_foreground(), Some((2, 1)));
    }

    #[test]
    fn out_of_range_reads_background() {
        let b = Bitmap::from_fn(2, 2, |_, _| true);
        assert!(!b.get(-1, 0));
        assert!(!b.get(0, -1));
        assert!(!b.get(2, 0));
        assert!(!b.get(0, 2));
    }

    #[test]
    fn boundary_detection() {
        // 3×3 block inside 5×5: center is interior, edges are boundary.
        let b = Bitmap::from_fn(5, 5, |x, y| (1..=3).contains(&x) && (1..=3).contains(&y));
        assert!(b.is_boundary(1, 1));
        assert!(b.is_boundary(3, 2));
        assert!(!b.is_boundary(2, 2), "interior pixel");
        assert!(!b.is_boundary(0, 0), "background pixel");
    }

    #[test]
    fn full_image_boundary_is_edge() {
        let b = Bitmap::from_fn(3, 3, |_, _| true);
        assert!(b.is_boundary(0, 0));
        assert!(b.is_boundary(2, 2));
        assert!(!b.is_boundary(1, 1));
    }

    #[test]
    fn render_shape() {
        let b = Bitmap::from_fn(3, 2, |x, y| x == y);
        assert_eq!(b.render(), "#..\n.#.\n");
    }

    #[test]
    #[should_panic(expected = "zero dimension")]
    fn zero_dimension_panics() {
        Bitmap::new(0, 5);
    }
}
