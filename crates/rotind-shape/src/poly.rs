//! Polygon scan-line rasterisation.

use crate::bitmap::Bitmap;

/// Rasterise a closed polygon (vertices in order, implicitly closed)
/// into a bitmap of the given size using even–odd scan-line filling.
/// Vertex coordinates are in pixel units.
pub fn rasterize_polygon(vertices: &[(f64, f64)], width: usize, height: usize) -> Bitmap {
    let mut bitmap = Bitmap::new(width, height);
    if vertices.len() < 3 {
        return bitmap;
    }
    let m = vertices.len();
    for y in 0..height {
        // Sample at the pixel centre.
        let yc = y as f64 + 0.5;
        let mut crossings: Vec<f64> = Vec::new();
        for i in 0..m {
            let (x0, y0) = vertices[i];
            let (x1, y1) = vertices[(i + 1) % m];
            // Half-open rule avoids double-counting shared vertices.
            if (y0 <= yc && y1 > yc) || (y1 <= yc && y0 > yc) {
                let t = (yc - y0) / (y1 - y0);
                crossings.push(x0 + t * (x1 - x0));
            }
        }
        crossings.sort_by(f64::total_cmp);
        for pair in crossings.chunks_exact(2) {
            let start = pair[0].ceil().max(0.0) as usize;
            let end = pair[1].floor().min(width as f64 - 1.0);
            if end < 0.0 {
                continue;
            }
            for x in start..=end as usize {
                if (x as f64 + 0.5) >= pair[0] && (x as f64 + 0.5) <= pair[1] {
                    bitmap.set(x, y, true);
                }
            }
        }
    }
    bitmap
}

/// Convert a radial profile `r(φ)` (uniformly sampled angles, counter-
/// clockwise from the positive x-axis) into polygon vertices centred in a
/// `size × size` image and scaled so the largest radius fills `fill` of
/// the half-width.
pub fn radial_to_polygon(radii: &[f64], size: usize, fill: f64) -> Vec<(f64, f64)> {
    let n = radii.len();
    if n == 0 {
        return Vec::new();
    }
    let max_r = radii.iter().copied().fold(f64::MIN, f64::max).max(1e-9);
    let c = size as f64 / 2.0;
    let scale = c * fill / max_r;
    (0..n)
        .map(|i| {
            let phi = std::f64::consts::TAU * i as f64 / n as f64;
            let r = radii[i].max(0.0) * scale;
            (c + r * phi.cos(), c + r * phi.sin())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_a_square() {
        let square = [(2.0, 2.0), (8.0, 2.0), (8.0, 8.0), (2.0, 8.0)];
        let b = rasterize_polygon(&square, 10, 10);
        assert!(b.get(5, 5));
        assert!(b.get(2, 2));
        assert!(!b.get(0, 0));
        assert!(!b.get(9, 9));
        // Area ≈ 36 pixels.
        let area = b.count_foreground();
        assert!((30..=42).contains(&area), "area {area}");
    }

    #[test]
    fn triangle_orientation_irrelevant() {
        let cw = [(5.0, 1.0), (1.0, 9.0), (9.0, 9.0)];
        let ccw = [(5.0, 1.0), (9.0, 9.0), (1.0, 9.0)];
        let a = rasterize_polygon(&cw, 11, 11);
        let b = rasterize_polygon(&ccw, 11, 11);
        assert_eq!(a, b);
        assert!(a.get(5, 6));
    }

    #[test]
    fn degenerate_polygon_is_empty() {
        assert_eq!(rasterize_polygon(&[], 4, 4).count_foreground(), 0);
        assert_eq!(
            rasterize_polygon(&[(1.0, 1.0), (2.0, 2.0)], 4, 4).count_foreground(),
            0
        );
    }

    #[test]
    fn radial_circle_is_roundish() {
        let radii = vec![1.0; 64];
        let poly = radial_to_polygon(&radii, 32, 0.9);
        let b = rasterize_polygon(&poly, 32, 32);
        let area = b.count_foreground() as f64;
        // Circle radius ≈ 14.4 → area ≈ 651.
        let expected = std::f64::consts::PI * 14.4 * 14.4;
        assert!((area - expected).abs() / expected < 0.1, "area {area}");
        assert!(b.get(16, 16), "centre filled");
    }

    #[test]
    fn radial_scaling_fills_requested_fraction() {
        let radii = vec![2.0; 16];
        let poly = radial_to_polygon(&radii, 100, 0.5);
        // Max extent from centre should be ≈ 25.
        let max_dx = poly
            .iter()
            .map(|&(x, _)| (x - 50.0).abs())
            .fold(f64::MIN, f64::max);
        assert!((max_dx - 25.0).abs() < 1.0, "max_dx {max_dx}");
    }

    #[test]
    fn polygon_outside_canvas_is_clipped() {
        let poly = [(-10.0, -10.0), (5.0, -10.0), (5.0, 5.0), (-10.0, 5.0)];
        let b = rasterize_polygon(&poly, 8, 8);
        assert!(b.get(0, 0));
        assert!(b.get(4, 4));
        assert!(!b.get(6, 6));
    }
}
