//! Shared perturbations: Gaussian noise, smooth circular warps, random
//! rotations.
//!
//! The smooth warp shifts *where* boundary features fall without changing
//! their shape much — exactly the local misalignment that motivates DTW
//! (Figure 11: the Lowland Gorilla's larger braincase moves the brow
//! ridge and jaw within the series).

use rand::Rng;
use std::f64::consts::TAU;

/// A standard-normal sample via Box–Muller (the `rand` crate alone ships
/// no Gaussian distribution).
pub fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos()
}

/// Add i.i.d. Gaussian noise with standard deviation `sigma`.
pub fn add_noise(series: &mut [f64], sigma: f64, rng: &mut impl Rng) {
    if sigma <= 0.0 {
        return;
    }
    for v in series.iter_mut() {
        *v += sigma * gaussian(rng);
    }
}

/// Smoothly warp a circular series: sample position `i` reads from the
/// circular position `i + amplitude·n/TAU·sin(cycles·φ_i + phase)`,
/// linearly interpolated. `amplitude` is in radians of angular
/// displacement; small values (≤ 0.15) keep the warp locally invertible.
pub fn smooth_circular_warp(series: &[f64], amplitude: f64, cycles: f64, phase: f64) -> Vec<f64> {
    let n = series.len();
    // rotind-lint: allow(float-eq) exact-zero sentinel
    if n == 0 || amplitude == 0.0 {
        return series.to_vec();
    }
    let nf = n as f64;
    (0..n)
        .map(|i| {
            let phi = TAU * i as f64 / nf;
            let displaced = i as f64 + amplitude * nf / TAU * (cycles * phi + phase).sin();
            circular_lerp(series, displaced)
        })
        .collect()
}

/// Warp only an angular window `[center − width/2, center + width/2]`
/// (radians), bending features inside it by up to `amount` of the window
/// width while leaving the rest of the boundary untouched — the
/// "bent hindwing" articulation of Figure 18.
pub fn bend_window(series: &[f64], center: f64, width: f64, amount: f64) -> Vec<f64> {
    let n = series.len();
    // rotind-lint: allow(float-eq) exact-zero sentinel
    if n == 0 || amount == 0.0 || width <= 0.0 {
        return series.to_vec();
    }
    let nf = n as f64;
    (0..n)
        .map(|i| {
            let phi = TAU * i as f64 / nf;
            // Signed angular distance to the window centre in (−π, π].
            let mut delta = phi - center;
            while delta > std::f64::consts::PI {
                delta -= TAU;
            }
            while delta <= -std::f64::consts::PI {
                delta += TAU;
            }
            let t = delta / (width / 2.0);
            if t.abs() >= 1.0 {
                return series[i];
            }
            // Smooth bump (1−t²)² keeps the warp C¹ at the window edge.
            let bump = (1.0 - t * t).powi(2);
            let displaced = i as f64 + amount * (width / 2.0) * nf / TAU * bump * t.signum();
            circular_lerp(series, displaced)
        })
        .collect()
}

/// Circular moving-average smoothing with window half-width `radius`
/// (window size `2·radius + 1`). Real centroid-distance series are
/// band-limited by rasterisation and contour resampling; synthetic
/// profiles with sample-scale spikes decorrelate under any angular
/// perturbation unless similarly smoothed.
pub fn smooth_circular(series: &[f64], radius: usize) -> Vec<f64> {
    let n = series.len();
    if n == 0 || radius == 0 {
        return series.to_vec();
    }
    let w = (2 * radius + 1) as f64;
    (0..n)
        .map(|i| {
            let mut acc = 0.0;
            for d in 0..=2 * radius {
                let idx = (i + n + d - radius) % n;
                acc += series[idx];
            }
            acc / w
        })
        .collect()
}

/// Linear interpolation at a fractional circular position.
fn circular_lerp(series: &[f64], pos: f64) -> f64 {
    let n = series.len() as f64;
    let wrapped = pos.rem_euclid(n);
    let lo = wrapped.floor() as usize % series.len();
    let hi = (lo + 1) % series.len();
    let t = wrapped - wrapped.floor();
    series[lo] + t * (series[hi] - series[lo])
}

/// Rotate by a uniformly random shift, returning the shift used.
pub fn random_rotation(series: &[f64], rng: &mut impl Rng) -> (Vec<f64>, usize) {
    let n = series.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let shift = rng.random_range(0..n);
    (rotind_ts::rotate::rotated(series, shift), shift)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn gaussian_moments() {
        let mut r = rng();
        let samples: Vec<f64> = (0..20000).map(|_| gaussian(&mut r)).collect();
        let mean = rotind_ts::stats::mean(&samples);
        let std = rotind_ts::stats::std_dev(&samples);
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((std - 1.0).abs() < 0.03, "std {std}");
    }

    #[test]
    fn noise_changes_values_zero_sigma_does_not() {
        let mut r = rng();
        let mut a = vec![1.0; 32];
        add_noise(&mut a, 0.0, &mut r);
        assert_eq!(a, vec![1.0; 32]);
        add_noise(&mut a, 0.5, &mut r);
        assert!(a.iter().any(|&v| (v - 1.0).abs() > 1e-6));
    }

    #[test]
    fn warp_preserves_mean_roughly_and_zero_amplitude_exactly() {
        let series: Vec<f64> = (0..64).map(|i| (TAU * i as f64 / 64.0).sin()).collect();
        assert_eq!(smooth_circular_warp(&series, 0.0, 2.0, 0.3), series);
        let warped = smooth_circular_warp(&series, 0.1, 2.0, 0.3);
        assert_eq!(warped.len(), 64);
        assert!((rotind_ts::stats::mean(&warped) - rotind_ts::stats::mean(&series)).abs() < 0.05);
        // Values stay within the original range (interpolation).
        let lo = rotind_ts::stats::min(&series) - 1e-9;
        let hi = rotind_ts::stats::max(&series) + 1e-9;
        assert!(warped.iter().all(|&v| v >= lo && v <= hi));
    }

    #[test]
    fn warp_moves_the_peak() {
        let mut series = vec![0.0; 64];
        series[16] = 1.0;
        series[15] = 0.5;
        series[17] = 0.5;
        let warped = smooth_circular_warp(&series, 0.12, 1.0, 0.0);
        let orig_peak = 16;
        let new_peak = warped
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_ne!(orig_peak, new_peak, "peak should move under the warp");
    }

    #[test]
    fn bend_window_is_local() {
        let series: Vec<f64> = (0..128)
            .map(|i| (3.0 * TAU * i as f64 / 128.0).sin())
            .collect();
        let center = TAU * 0.25;
        let width = TAU * 0.2;
        let bent = bend_window(&series, center, width, 0.6);
        for i in 0..128 {
            let phi = TAU * i as f64 / 128.0;
            let mut delta = phi - center;
            while delta > std::f64::consts::PI {
                delta -= TAU;
            }
            if delta.abs() > width / 2.0 + 1e-9 {
                assert_eq!(bent[i], series[i], "sample {i} outside window changed");
            }
        }
        assert_ne!(bent, series, "window itself must change");
    }

    #[test]
    fn smooth_circular_basics() {
        // radius 0 is the identity; empty input stays empty.
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert_eq!(smooth_circular(&xs, 0), xs.to_vec());
        assert!(smooth_circular(&[], 2).is_empty());
        // A constant series is a fixed point.
        assert_eq!(smooth_circular(&[2.0; 6], 2), vec![2.0; 6]);
    }

    #[test]
    fn smooth_circular_is_a_circular_moving_average() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let sm = smooth_circular(&xs, 1);
        // Window 3, wrapping: position 0 averages {4, 1, 2}.
        assert!((sm[0] - 7.0 / 3.0).abs() < 1e-12);
        assert!((sm[1] - 2.0).abs() < 1e-12);
        assert!((sm[3] - (3.0 + 4.0 + 1.0) / 3.0).abs() < 1e-12);
        // Mean is preserved exactly.
        assert!((rotind_ts::stats::mean(&sm) - rotind_ts::stats::mean(&xs)).abs() < 1e-12);
    }

    #[test]
    fn smooth_circular_commutes_with_rotation() {
        let xs: Vec<f64> = (0..32).map(|i| ((i * i) % 11) as f64).collect();
        let a = smooth_circular(&rotind_ts::rotate::rotated(&xs, 7), 2);
        let b = rotind_ts::rotate::rotated(&smooth_circular(&xs, 2), 7);
        assert!(rotind_ts::stats::approx_eq_slices(&a, &b, 1e-12));
    }

    #[test]
    fn smooth_circular_reduces_spikes() {
        let mut xs = vec![0.0; 16];
        xs[8] = 16.0;
        let sm = smooth_circular(&xs, 1);
        assert!(sm[8] < xs[8]);
        assert!(
            (sm.iter().sum::<f64>() - 16.0).abs() < 1e-9,
            "mass preserved"
        );
    }

    #[test]
    fn random_rotation_is_a_rotation() {
        let mut r = rng();
        let series: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let (rot, shift) = random_rotation(&series, &mut r);
        assert_eq!(rot, rotind_ts::rotate::rotated(&series, shift));
        assert!(shift < 40);
    }
}
