//! Lepidoptera outlines with articulated wings (Figure 18).
//!
//! Three species presets mirror the paper's articulation experiment:
//! two very similar *Actias* moths and the unrelated *Chorinea amazon*.
//! [`bend_hindwing`] applies the "randomly tweaked hindwing" distortion;
//! the experiment checks that centroid-distance matching still pairs
//! each bent copy with its original.

use crate::generators::warp::bend_window;
use rand::Rng;
use std::f64::consts::{PI, TAU};

/// Butterfly/moth outline parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ButterflyParams {
    /// Forewing length.
    pub forewing: f64,
    /// Hindwing length.
    pub hindwing: f64,
    /// Hindwing tail extension (the long *Actias* tails).
    pub tail: f64,
    /// Wing lobe angular width.
    pub lobe_width: f64,
    /// Body radius.
    pub body: f64,
}

/// A named species preset.
#[derive(Debug, Clone, Copy)]
pub struct ButterflySpecies {
    /// Display name.
    pub name: &'static str,
    /// Outline parameters.
    pub params: ButterflyParams,
}

/// The three Lepidoptera of the Figure 18 articulation experiment.
pub const LEPIDOPTERA: [ButterflySpecies; 3] = [
    ButterflySpecies {
        name: "Actias maenas",
        params: ButterflyParams {
            forewing: 1.0,
            hindwing: 0.8,
            tail: 0.9,
            lobe_width: 0.30,
            body: 0.45,
        },
    },
    ButterflySpecies {
        name: "Actias philippinica",
        params: ButterflyParams {
            forewing: 0.90,
            hindwing: 0.73,
            tail: 0.78,
            lobe_width: 0.33,
            body: 0.46,
        },
    },
    ButterflySpecies {
        name: "Chorinea amazon",
        params: ButterflyParams {
            forewing: 0.7,
            hindwing: 0.5,
            tail: 0.35,
            lobe_width: 0.18,
            body: 0.35,
        },
    },
];

fn bump(phi: f64, center: f64, width: f64) -> f64 {
    let mut d = phi - center;
    while d > PI {
        d -= TAU;
    }
    while d < -PI {
        d += TAU;
    }
    (-(d / width) * (d / width)).exp()
}

/// Angular centre of the right hindwing lobe (the one Figure 18 bends).
pub const RIGHT_HINDWING_CENTER: f64 = -0.35 * PI;

/// The radial outline of one specimen: body disc plus four wing lobes
/// (forewings up-left/up-right, hindwings down-left/down-right) and
/// optional hindwing tails. `jitter` scales within-species variation.
pub fn butterfly_profile(
    params: &ButterflyParams,
    samples: usize,
    jitter: f64,
    rng: &mut impl Rng,
) -> Vec<f64> {
    let mut v = |scale: f64| -> f64 {
        // rotind-lint: allow(float-eq) exact-zero sentinel
        if jitter == 0.0 {
            0.0
        } else {
            rng.random_range(-1.0..1.0) * scale * jitter
        }
    };
    let fw = params.forewing + v(0.05);
    let hw = params.hindwing + v(0.05);
    let tail = params.tail + v(0.05);
    let lw = params.lobe_width + v(0.02);
    let body = params.body + v(0.02);
    (0..samples)
        .map(|i| {
            let phi = TAU * i as f64 / samples as f64;
            let mut r = body;
            // Forewings sweep upward (+y): lobes at 0.25π and 0.75π.
            r += fw * (bump(phi, 0.25 * PI, lw) + bump(phi, 0.75 * PI, lw));
            // Hindwings sweep downward: lobes at −0.35π and −0.65π.
            r += hw * (bump(phi, RIGHT_HINDWING_CENTER, lw) + bump(phi, -0.65 * PI, lw));
            // Tails: narrow spikes below the hindwings.
            r += tail * (bump(phi, -0.45 * PI, 0.07) + bump(phi, -0.55 * PI, 0.07));
            r.max(0.05)
        })
        .collect()
}

/// Bend the right hindwing: a local articulation distortion confined to
/// the hindwing's angular window, leaving the rest of the outline
/// untouched (the grey-highlighted "tweak" of Figure 18).
pub fn bend_hindwing(profile: &[f64], amount: f64) -> Vec<f64> {
    // The window covers the smooth outer hindwing lobe but stops short of
    // the razor-thin tail spikes at −0.45π/−0.55π: bending a 3-sample
    // spike would be a tear, not an articulation.
    bend_window(profile, (-0.28 * PI).rem_euclid(TAU), 0.22 * PI, amount)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn euclid(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    fn nominal(i: usize, samples: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(0);
        butterfly_profile(&LEPIDOPTERA[i].params, samples, 0.0, &mut rng)
    }

    #[test]
    fn profiles_valid() {
        for i in 0..3 {
            let p = nominal(i, 256);
            assert_eq!(p.len(), 256);
            assert!(p.iter().all(|r| r.is_finite() && *r > 0.0));
        }
    }

    #[test]
    fn actias_pair_is_closer_than_chorinea() {
        let maenas = nominal(0, 256);
        let philippinica = nominal(1, 256);
        let chorinea = nominal(2, 256);
        assert!(euclid(&maenas, &philippinica) < euclid(&maenas, &chorinea));
        assert!(euclid(&maenas, &philippinica) < euclid(&philippinica, &chorinea));
    }

    #[test]
    fn bend_is_local_and_mild() {
        let p = nominal(0, 256);
        let bent = bend_hindwing(&p, 0.35);
        assert_eq!(bent.len(), p.len());
        let changed = p
            .iter()
            .zip(&bent)
            .filter(|(a, b)| (*a - *b).abs() > 1e-9)
            .count();
        assert!(changed > 0, "bend must change something");
        assert!(
            changed < p.len() / 3,
            "bend must stay local: {changed}/{} samples changed",
            p.len()
        );
        // Articulation preserves identity: the bent copy stays far closer
        // to its original than to the other Actias.
        let other = nominal(1, 256);
        assert!(euclid(&bent, &p) < euclid(&bent, &other));
    }

    #[test]
    fn zero_bend_is_identity() {
        let p = nominal(2, 128);
        assert_eq!(bend_hindwing(&p, 0.0), p);
    }

    #[test]
    fn wings_dominate_body() {
        let p = nominal(0, 360);
        // Forewing lobe at 0.25π (index 45 of 360).
        assert!(p[45] > LEPIDOPTERA[0].params.body + 0.5);
    }
}
