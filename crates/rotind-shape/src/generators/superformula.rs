//! The Gielis superformula — a compact parametric family spanning
//! organic and geometric outlines (leaves, diatoms, starfish, polygons),
//! used to synthesise class-structured shape datasets.

use std::f64::consts::TAU;

/// Parameters of the superformula
/// `r(φ) = (|cos(mφ/4)/a|^{n₂} + |sin(mφ/4)/b|^{n₃})^{−1/n₁}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Superformula {
    /// Rotational symmetry parameter (number of lobes ≈ `m`).
    pub m: f64,
    /// Overall exponent (smaller → spikier).
    pub n1: f64,
    /// Cosine-term exponent.
    pub n2: f64,
    /// Sine-term exponent.
    pub n3: f64,
    /// Cosine-term scale.
    pub a: f64,
    /// Sine-term scale.
    pub b: f64,
}

impl Superformula {
    /// A named parameter set.
    pub const fn new(m: f64, n1: f64, n2: f64, n3: f64) -> Self {
        Superformula {
            m,
            n1,
            n2,
            n3,
            a: 1.0,
            b: 1.0,
        }
    }

    /// Radius at angle `phi`; clamped into `[0.05, 20]` to keep
    /// degenerate parameter draws usable.
    pub fn radius(&self, phi: f64) -> f64 {
        let t = self.m * phi / 4.0;
        let term1 = (t.cos() / self.a).abs().powf(self.n2);
        let term2 = (t.sin() / self.b).abs().powf(self.n3);
        let sum = term1 + term2;
        if sum <= 0.0 || !sum.is_finite() {
            return 1.0;
        }
        sum.powf(-1.0 / self.n1).clamp(0.05, 20.0)
    }

    /// The radial profile over `samples` uniformly spaced angles.
    pub fn profile(&self, samples: usize) -> Vec<f64> {
        (0..samples)
            .map(|i| self.radius(TAU * i as f64 / samples as f64))
            .collect()
    }
}

/// Convenience wrapper: the profile of a plain parameter tuple.
///
/// ```
/// use rotind_shape::generators::superformula;
/// let star = superformula(5.0, 2.0, 7.0, 7.0, 128);
/// assert_eq!(star.len(), 128);
/// assert!(star.iter().all(|r| r.is_finite() && *r > 0.0));
/// ```
pub fn superformula(m: f64, n1: f64, n2: f64, n3: f64, samples: usize) -> Vec<f64> {
    Superformula::new(m, n1, n2, n3).profile(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circle_for_trivial_params() {
        // m = 0 → constant radius 2^{-1/n1} · a terms... with n2=n3=2,
        // a=b=1: r = (cos²+sin²)^{-1/n1} at t=0 → both terms constant.
        let sf = Superformula::new(0.0, 2.0, 2.0, 2.0);
        let p = sf.profile(32);
        let first = p[0];
        assert!(p.iter().all(|&r| (r - first).abs() < 1e-12));
    }

    #[test]
    fn symmetry_matches_m() {
        // m = 4 with equal exponents → profile has period n/4.
        let p = superformula(4.0, 6.0, 6.0, 6.0, 64);
        for i in 0..64 {
            let j = (i + 16) % 64;
            assert!((p[i] - p[j]).abs() < 1e-9, "period violated at {i}");
        }
    }

    #[test]
    fn profiles_differ_across_parameters() {
        let a = superformula(5.0, 2.0, 7.0, 7.0, 64);
        let b = superformula(3.0, 1.0, 4.0, 4.0, 64);
        let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 0.5, "distinct parameters should differ: {diff}");
    }

    #[test]
    fn values_always_positive_finite() {
        for &(m, n1, n2, n3) in &[
            (7.0, 0.2, 1.7, 1.7),
            (2.0, 1.0, 4.0, 8.0),
            (19.0, 9.0, 9.0, 9.0),
            (6.0, 0.1, 0.1, 0.1),
        ] {
            let p = superformula(m, n1, n2, n3, 128);
            assert!(
                p.iter().all(|r| r.is_finite() && *r > 0.0),
                "{m} {n1} {n2} {n3}"
            );
        }
    }

    #[test]
    fn profile_length() {
        assert_eq!(superformula(3.0, 1.0, 1.0, 1.0, 251).len(), 251);
        assert!(superformula(3.0, 1.0, 1.0, 1.0, 0).is_empty());
    }
}
