//! Projectile-point ("arrowhead") outlines.
//!
//! Synthetic stand-ins for the UCR Lithic Technology Lab collection
//! (Section 4.3, Figure 15): elongated bifaces whose classes differ in
//! hafting morphology — the stem and notch features archaeologists
//! type points by. The named classes are inspired by the paper's
//! Figure 15 examples (Edwards, Langtry, Golondrina).

use rand::Rng;
use std::f64::consts::{PI, TAU};

/// Projectile-point morphological classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BladeClass {
    /// Unstemmed leaf-shaped point (Golondrina-like base).
    Lanceolate,
    /// Expanding stem with barbed shoulders (Edwards-like).
    Stemmed,
    /// Notches cut into the sides near the base (Langtry-like).
    SideNotched,
    /// Notches cut into the base corners.
    BasalNotched,
}

impl BladeClass {
    /// All classes, in label order.
    pub const ALL: [BladeClass; 4] = [
        BladeClass::Lanceolate,
        BladeClass::Stemmed,
        BladeClass::SideNotched,
        BladeClass::BasalNotched,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            BladeClass::Lanceolate => "lanceolate",
            BladeClass::Stemmed => "stemmed",
            BladeClass::SideNotched => "side-notched",
            BladeClass::BasalNotched => "basal-notched",
        }
    }
}

/// A smooth bump `exp(−(Δφ/width)²)` centred at `center` (circular).
fn bump(phi: f64, center: f64, width: f64) -> f64 {
    let mut d = phi - center;
    while d > PI {
        d -= TAU;
    }
    while d < -PI {
        d += TAU;
    }
    (-(d / width) * (d / width)).exp()
}

/// The radial profile of one projectile point. The tip points at
/// `φ = 0`; the base is at `φ = π`. `rng` jitters the within-class
/// morphology (size, elongation, feature depths) so no two points are
/// identical.
pub fn blade_profile(class: BladeClass, samples: usize, rng: &mut impl Rng) -> Vec<f64> {
    let elongation = 2.2 + rng.random_range(-0.3..0.3);
    let width_scale = 1.0 + rng.random_range(-0.1..0.1);
    let tip = 0.55 + rng.random_range(-0.1..0.1);
    let tip_width = 0.28 + rng.random_range(-0.04..0.04);
    let (stem, stem_width, notch, notch_pos, notch_width) = match class {
        BladeClass::Lanceolate => (0.0, 0.3, 0.0, 0.0, 0.2),
        BladeClass::Stemmed => (
            0.45 + rng.random_range(-0.08..0.08),
            0.35 + rng.random_range(-0.05..0.05),
            0.0,
            0.0,
            0.2,
        ),
        BladeClass::SideNotched => (
            0.0,
            0.3,
            0.5 + rng.random_range(-0.08..0.08),
            0.62 * PI,
            0.16 + rng.random_range(-0.02..0.02),
        ),
        BladeClass::BasalNotched => (
            0.0,
            0.3,
            0.55 + rng.random_range(-0.08..0.08),
            0.88 * PI,
            0.14 + rng.random_range(-0.02..0.02),
        ),
    };
    (0..samples)
        .map(|i| {
            let phi = TAU * i as f64 / samples as f64;
            // Elongated ellipse: long axis toward the tip.
            let c = phi.cos() / elongation;
            let s = phi.sin() / width_scale;
            let mut r = 1.0 / (c * c + s * s).sqrt().max(1e-6);
            r = r.min(3.5);
            // Sharp tip at φ = 0.
            r += tip * bump(phi, 0.0, tip_width) * elongation;
            // Stem: a protrusion at the base (φ = π).
            r += stem * bump(phi, PI, stem_width);
            // Notches: symmetric dips.
            r -= notch * (bump(phi, notch_pos, notch_width) + bump(phi, -notch_pos, notch_width));
            r.max(0.1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn profiles_are_valid() {
        for class in BladeClass::ALL {
            let p = blade_profile(class, 251, &mut rng(1));
            assert_eq!(p.len(), 251);
            assert!(p.iter().all(|r| r.is_finite() && *r > 0.0), "{class:?}");
        }
    }

    #[test]
    fn tip_is_the_global_maximum_region() {
        for class in BladeClass::ALL {
            let p = blade_profile(class, 360, &mut rng(7));
            let max_idx = p
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            // Tip at φ=0 → index near 0 or near 359.
            assert!(
                !(25..=335).contains(&max_idx),
                "{class:?}: max at {max_idx}"
            );
        }
    }

    #[test]
    fn side_notched_dips_relative_to_lanceolate() {
        // At the notch angle, the side-notched profile must dip below a
        // same-seed lanceolate (jitter aside).
        let notched = blade_profile(BladeClass::SideNotched, 360, &mut rng(3));
        let plain = blade_profile(BladeClass::Lanceolate, 360, &mut rng(3));
        let idx = (0.62 * 180.0) as usize; // φ = 0.62π in 360 samples
        assert!(
            notched[idx] < plain[idx] - 0.1,
            "notch missing: {} vs {}",
            notched[idx],
            plain[idx]
        );
    }

    #[test]
    fn stemmed_protrudes_at_base() {
        let stemmed = blade_profile(BladeClass::Stemmed, 360, &mut rng(5));
        let plain = blade_profile(BladeClass::Lanceolate, 360, &mut rng(5));
        assert!(
            stemmed[180] > plain[180] + 0.1,
            "stem missing: {} vs {}",
            stemmed[180],
            plain[180]
        );
    }

    #[test]
    fn jitter_makes_instances_distinct_but_similar() {
        // Average over several seed pairs: any single pair can be
        // unlucky, but across draws the class structure must dominate
        // the jitter.
        let d = |x: &[f64], y: &[f64]| -> f64 {
            x.iter()
                .zip(y)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        };
        let mut within = 0.0;
        let mut between = 0.0;
        for seed in 10..18u64 {
            let a = blade_profile(BladeClass::Stemmed, 251, &mut rng(seed));
            let b = blade_profile(BladeClass::Stemmed, 251, &mut rng(seed + 100));
            let c = blade_profile(BladeClass::SideNotched, 251, &mut rng(seed));
            assert!(d(&a, &b) > 1e-6, "instances must differ (seed {seed})");
            within += d(&a, &b);
            between += d(&a, &c);
        }
        assert!(
            between > within,
            "mean between-class {between} should exceed within-class {within}"
        );
    }
}
