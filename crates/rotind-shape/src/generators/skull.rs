//! Synthetic skull lateral/superior profiles for the clustering
//! "sanity check" experiments (Figures 3, 16 and 17).
//!
//! Each species is a parameter set controlling braincase doming,
//! brow-ridge prominence, snout prognathism and jaw depth; specimens of
//! one species share parameters up to jitter, so group-average
//! clustering should pair them — the success criterion of Figure 16.

use rand::Rng;
use std::f64::consts::{PI, TAU};

/// Parameters of a skull profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkullParams {
    /// Braincase height (dome bump at the top, φ ≈ π/2).
    pub braincase: f64,
    /// Brow-ridge prominence (bump just forward of the dome).
    pub brow: f64,
    /// Snout/prognathism (elongation toward φ = 0).
    pub snout: f64,
    /// Jaw depth (bump below, φ ≈ −π/3).
    pub jaw: f64,
    /// Overall elongation of the cranial vault.
    pub elongation: f64,
}

/// A named species preset with a taxonomic group tag (used to colour the
/// Figure 16/17 subtrees).
#[derive(Debug, Clone, Copy)]
pub struct Species {
    /// Display name.
    pub name: &'static str,
    /// Taxonomic group (subtrees of the reference dendrogram).
    pub group: &'static str,
    /// Profile parameters.
    pub params: SkullParams,
}

/// The eight primate specimens of Figure 16 (four taxa × two specimens;
/// juveniles and the Skhul V ancestor get their own parameter nudges).
pub const PRIMATES: [Species; 8] = [
    Species {
        name: "Human",
        group: "Homo",
        params: SkullParams {
            braincase: 1.00,
            brow: 0.05,
            snout: 0.10,
            jaw: 0.35,
            elongation: 1.00,
        },
    },
    Species {
        name: "Human ancestor (Skhul V)",
        group: "Homo",
        params: SkullParams {
            braincase: 0.90,
            brow: 0.22,
            snout: 0.18,
            jaw: 0.38,
            elongation: 1.05,
        },
    },
    Species {
        name: "Orangutan",
        group: "Pongo",
        params: SkullParams {
            braincase: 0.55,
            brow: 0.28,
            snout: 0.65,
            jaw: 0.55,
            elongation: 1.30,
        },
    },
    Species {
        name: "Orangutan (juvenile)",
        group: "Pongo",
        params: SkullParams {
            braincase: 0.65,
            brow: 0.18,
            snout: 0.50,
            jaw: 0.48,
            elongation: 1.22,
        },
    },
    Species {
        name: "Red Howler Monkey",
        group: "Alouatta",
        params: SkullParams {
            braincase: 0.40,
            brow: 0.12,
            snout: 0.45,
            jaw: 0.80,
            elongation: 1.15,
        },
    },
    Species {
        name: "Mantled Howler Monkey",
        group: "Alouatta",
        params: SkullParams {
            braincase: 0.42,
            brow: 0.13,
            snout: 0.43,
            jaw: 0.78,
            elongation: 1.17,
        },
    },
    Species {
        name: "De Brazza monkey",
        group: "Cercopithecus",
        params: SkullParams {
            braincase: 0.60,
            brow: 0.15,
            snout: 0.30,
            jaw: 0.50,
            elongation: 1.05,
        },
    },
    Species {
        name: "De Brazza monkey (juvenile)",
        group: "Cercopithecus",
        params: SkullParams {
            braincase: 0.68,
            brow: 0.10,
            snout: 0.24,
            jaw: 0.45,
            elongation: 1.00,
        },
    },
];

/// The three primate skulls of the Figure 3 landmark-brittleness
/// demonstration: two congeneric owl monkeys and an orangutan.
pub const FIGURE3_TRIO: [Species; 3] = [
    Species {
        name: "Northern Gray-Necked Owl Monkey",
        group: "Aotus",
        params: SkullParams {
            braincase: 0.50,
            brow: 0.08,
            snout: 0.25,
            jaw: 0.55,
            elongation: 1.08,
        },
    },
    Species {
        name: "Owl Monkey (species unknown)",
        group: "Aotus",
        params: SkullParams {
            braincase: 0.52,
            brow: 0.09,
            snout: 0.27,
            jaw: 0.57,
            elongation: 1.10,
        },
    },
    Species {
        name: "Orangutan",
        group: "Pongo",
        params: SkullParams {
            braincase: 0.55,
            brow: 0.28,
            snout: 0.65,
            jaw: 0.55,
            elongation: 1.30,
        },
    },
];

/// The fourteen reptile specimens of Figure 17, grouped as in the paper
/// (horned lizards, crocodylians, turtles, a night lizard and a worm
/// lizard).
pub const REPTILES: [Species; 14] = [
    Species {
        name: "Phrynosoma mcallii",
        group: "Iguania",
        params: SkullParams {
            braincase: 0.35,
            brow: 0.55,
            snout: 0.25,
            jaw: 0.30,
            elongation: 0.95,
        },
    },
    Species {
        name: "Phrynosoma ditmarsi",
        group: "Iguania",
        params: SkullParams {
            braincase: 0.38,
            brow: 0.60,
            snout: 0.22,
            jaw: 0.30,
            elongation: 0.92,
        },
    },
    Species {
        name: "Phrynosoma taurus",
        group: "Iguania",
        params: SkullParams {
            braincase: 0.36,
            brow: 0.63,
            snout: 0.24,
            jaw: 0.31,
            elongation: 0.94,
        },
    },
    Species {
        name: "Phrynosoma douglassii",
        group: "Iguania",
        params: SkullParams {
            braincase: 0.37,
            brow: 0.58,
            snout: 0.23,
            jaw: 0.29,
            elongation: 0.93,
        },
    },
    Species {
        name: "Phrynosoma hernandesi",
        group: "Iguania",
        params: SkullParams {
            braincase: 0.37,
            brow: 0.59,
            snout: 0.23,
            jaw: 0.30,
            elongation: 0.93,
        },
    },
    Species {
        name: "Alligator mississippiensis",
        group: "Alligatorinae",
        params: SkullParams {
            braincase: 0.18,
            brow: 0.10,
            snout: 1.10,
            jaw: 0.25,
            elongation: 1.75,
        },
    },
    Species {
        name: "Caiman crocodilus",
        group: "Alligatorinae",
        params: SkullParams {
            braincase: 0.20,
            brow: 0.12,
            snout: 1.00,
            jaw: 0.26,
            elongation: 1.70,
        },
    },
    Species {
        name: "Crocodylus cataphractus",
        group: "Crocodylidae",
        params: SkullParams {
            braincase: 0.15,
            brow: 0.08,
            snout: 1.35,
            jaw: 0.22,
            elongation: 1.95,
        },
    },
    Species {
        name: "Tomistoma schlegelii",
        group: "Crocodylidae",
        params: SkullParams {
            braincase: 0.14,
            brow: 0.07,
            snout: 1.45,
            jaw: 0.21,
            elongation: 2.00,
        },
    },
    Species {
        name: "Crocodylus johnstoni",
        group: "Crocodylidae",
        params: SkullParams {
            braincase: 0.16,
            brow: 0.08,
            snout: 1.30,
            jaw: 0.23,
            elongation: 1.90,
        },
    },
    Species {
        name: "Elseya dentata",
        group: "Chelonia",
        params: SkullParams {
            braincase: 0.55,
            brow: 0.05,
            snout: 0.18,
            jaw: 0.40,
            elongation: 1.05,
        },
    },
    Species {
        name: "Glyptemys muhlenbergii",
        group: "Chelonia",
        params: SkullParams {
            braincase: 0.58,
            brow: 0.05,
            snout: 0.16,
            jaw: 0.42,
            elongation: 1.03,
        },
    },
    Species {
        name: "Xantusia vigilis",
        group: "Squamata-other",
        params: SkullParams {
            braincase: 0.45,
            brow: 0.10,
            snout: 0.35,
            jaw: 0.35,
            elongation: 1.12,
        },
    },
    Species {
        name: "Cricosaura typica",
        group: "Squamata-other",
        params: SkullParams {
            braincase: 0.44,
            brow: 0.11,
            snout: 0.37,
            jaw: 0.36,
            elongation: 1.13,
        },
    },
];

fn bump(phi: f64, center: f64, width: f64) -> f64 {
    let mut d = phi - center;
    while d > PI {
        d -= TAU;
    }
    while d < -PI {
        d += TAU;
    }
    (-(d / width) * (d / width)).exp()
}

/// The radial profile of one skull specimen; `jitter` (0 for the nominal
/// specimen) scales random within-species variation.
pub fn skull_profile(
    params: &SkullParams,
    samples: usize,
    jitter: f64,
    rng: &mut impl Rng,
) -> Vec<f64> {
    let j = |rng: &mut dyn rand::RngCore, scale: f64| -> f64 {
        // rotind-lint: allow(float-eq) exact-zero sentinel
        if jitter == 0.0 {
            0.0
        } else {
            let r = rng;
            r.random_range(-1.0..1.0) * scale * jitter
        }
    };
    let braincase = params.braincase + j(rng, 0.06);
    let brow = params.brow + j(rng, 0.04);
    let snout = params.snout + j(rng, 0.06);
    let jaw = params.jaw + j(rng, 0.05);
    let elongation = params.elongation + j(rng, 0.05);
    (0..samples)
        .map(|i| {
            let phi = TAU * i as f64 / samples as f64;
            // Base cranial ellipse (snout direction = φ = 0).
            let c = phi.cos() / elongation;
            let s = phi.sin();
            let mut r = 1.0 / (c * c + s * s).sqrt().max(1e-6);
            r = r.min(3.0);
            // Braincase dome on top.
            r += braincase * bump(phi, 0.5 * PI, 0.55);
            // Brow ridge between dome and snout.
            r += brow * bump(phi, 0.22 * PI, 0.18);
            // Snout protrusion.
            r += snout * bump(phi, 0.0, 0.30);
            // Jaw below.
            r += jaw * bump(phi, -0.3 * PI, 0.35);
            r.max(0.1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn euclid(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn profiles_valid_for_all_presets() {
        let mut rng = StdRng::seed_from_u64(0);
        for sp in PRIMATES
            .iter()
            .chain(REPTILES.iter())
            .chain(FIGURE3_TRIO.iter())
        {
            let p = skull_profile(&sp.params, 128, 1.0, &mut rng);
            assert_eq!(p.len(), 128);
            assert!(p.iter().all(|r| r.is_finite() && *r > 0.0), "{}", sp.name);
        }
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(999);
        let a = skull_profile(&PRIMATES[0].params, 64, 0.0, &mut r1);
        let b = skull_profile(&PRIMATES[0].params, 64, 0.0, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn congeners_are_nearer_than_distant_taxa() {
        let mut rng = StdRng::seed_from_u64(2);
        // Two howler monkeys vs an orangutan.
        let howler_red = skull_profile(&PRIMATES[4].params, 128, 0.3, &mut rng);
        let howler_mantled = skull_profile(&PRIMATES[5].params, 128, 0.3, &mut rng);
        let orangutan = skull_profile(&PRIMATES[2].params, 128, 0.3, &mut rng);
        assert!(euclid(&howler_red, &howler_mantled) < euclid(&howler_red, &orangutan));
    }

    #[test]
    fn crocodylians_have_long_snouts() {
        let mut rng = StdRng::seed_from_u64(3);
        let croc = skull_profile(&REPTILES[7].params, 360, 0.0, &mut rng);
        let turtle = skull_profile(&REPTILES[10].params, 360, 0.0, &mut rng);
        // Radius at the snout (φ=0) dominates for the crocodile.
        assert!(croc[0] > turtle[0] + 0.5);
    }

    #[test]
    fn brow_ridge_distinguishes_skhul_from_modern_human() {
        let mut rng = StdRng::seed_from_u64(4);
        let human = skull_profile(&PRIMATES[0].params, 360, 0.0, &mut rng);
        let skhul = skull_profile(&PRIMATES[1].params, 360, 0.0, &mut rng);
        let brow_idx = (0.22 * 180.0) as usize; // φ = 0.22π
        assert!(skhul[brow_idx] > human[brow_idx]);
    }
}
