//! Regular and star polygon radial profiles.
//!
//! Simple geometric families used by tests and examples (the "gadget"
//! end of the shape spectrum): exact radial profiles of regular `k`-gons
//! and of star polygons with alternating outer/inner radii.

use std::f64::consts::{PI, TAU};

/// Radial profile of a regular `k`-gon with circumradius `r`, sampled at
/// `samples` uniform angles. Derived in closed form: within each edge
/// sector the boundary is a chord at apothem distance `r·cos(π/k)`.
///
/// # Panics
///
/// Panics for `k < 3` or non-positive `r`.
pub fn regular_polygon(k: usize, r: f64, samples: usize) -> Vec<f64> {
    assert!(k >= 3, "regular_polygon: need at least 3 vertices");
    assert!(r > 0.0, "regular_polygon: radius must be positive");
    let sector = TAU / k as f64;
    let apothem = r * (PI / k as f64).cos();
    (0..samples)
        .map(|i| {
            let phi = TAU * i as f64 / samples as f64;
            // Angle within the current sector, centred on the edge midpoint.
            let local = (phi + sector / 2.0).rem_euclid(sector) - sector / 2.0;
            apothem / local.cos()
        })
        .collect()
}

/// Radial profile of a `{k}`-pointed star: vertices alternate between
/// `outer` and `inner` radii, edges are straight chords between
/// consecutive vertices.
///
/// # Panics
///
/// Panics for `k < 2` or non-positive/inverted radii.
pub fn star_polygon(k: usize, outer: f64, inner: f64, samples: usize) -> Vec<f64> {
    assert!(k >= 2, "star_polygon: need at least 2 points");
    assert!(
        outer > 0.0 && inner > 0.0 && inner <= outer,
        "star_polygon: need 0 < inner <= outer"
    );
    // 2k vertices alternating outer/inner.
    let m = 2 * k;
    let verts: Vec<(f64, f64)> = (0..m)
        .map(|v| {
            let r = if v % 2 == 0 { outer } else { inner };
            let a = TAU * v as f64 / m as f64;
            (r * a.cos(), r * a.sin())
        })
        .collect();
    (0..samples)
        .map(|i| {
            let phi = TAU * i as f64 / samples as f64;
            // Find the edge sector containing phi and intersect the ray
            // with that chord.
            let sector = TAU / m as f64;
            let e = ((phi / sector).floor() as usize) % m;
            let (x0, y0) = verts[e];
            let (x1, y1) = verts[(e + 1) % m];
            // Ray (cos phi, sin phi)·t intersects segment (x0,y0)-(x1,y1):
            // solve t·d × (p1-p0) alignment via 2×2 system.
            let (dx, dy) = (phi.cos(), phi.sin());
            let (ex, ey) = (x1 - x0, y1 - y0);
            let det = dx * (-ey) - dy * (-ex);
            if det.abs() < 1e-12 {
                return (x0 * x0 + y0 * y0).sqrt();
            }
            let t = (x0 * (-ey) - y0 * (-ex)) / det;
            t.max(1e-9)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_polygon_vertices_and_apothem() {
        // Square with circumradius √2: radius at 45° (vertex) is √2,
        // at 0° (edge midpoint) is the apothem 1.
        let p = regular_polygon(4, 2f64.sqrt(), 360);
        assert!((p[45] - 2f64.sqrt()).abs() < 1e-3, "vertex: {}", p[45]);
        assert!((p[0] - 1.0).abs() < 1e-9, "apothem: {}", p[0]);
        assert!((p[90] - 2f64.sqrt()).abs() < 1e-2 || (p[135] - 2f64.sqrt()).abs() < 1e-2);
    }

    #[test]
    fn regular_polygon_symmetry() {
        let k = 6;
        let samples = 360;
        let p = regular_polygon(k, 1.0, samples);
        let period = samples / k;
        for i in 0..samples {
            let j = (i + period) % samples;
            assert!((p[i] - p[j]).abs() < 1e-9, "six-fold symmetry at {i}");
        }
    }

    #[test]
    fn many_sided_polygon_approaches_circle() {
        let p = regular_polygon(64, 1.0, 256);
        for &r in &p {
            assert!((r - 1.0).abs() < 0.005, "r = {r}");
        }
    }

    #[test]
    fn star_polygon_alternates() {
        let p = star_polygon(5, 2.0, 1.0, 720);
        // Outer vertex at phi = 0, inner vertex at phi = 36°.
        assert!((p[0] - 2.0).abs() < 1e-6);
        assert!((p[72] - 1.0).abs() < 1e-2, "inner vertex: {}", p[72]);
        // Profile stays within [inner·cos-ish, outer].
        assert!(p.iter().all(|&r| r > 0.3 && r <= 2.0 + 1e-9));
        // Five-fold symmetry.
        for i in 0..720 {
            let j = (i + 144) % 720;
            assert!((p[i] - p[j]).abs() < 1e-6, "five-fold symmetry at {i}");
        }
    }

    #[test]
    fn star_with_equal_radii_is_regular_polygon() {
        // The star's vertex 0 is at φ = 0 while the regular polygon is
        // edge-centred at φ = 0: the profiles differ by half a sector
        // (22.5° = 45 samples of 720).
        let star = star_polygon(4, 1.5, 1.5, 720);
        let poly = rotind_ts::rotate::rotated(&regular_polygon(8, 1.5, 720), 720 - 45);
        for (i, (a, b)) in star.iter().zip(&poly).enumerate() {
            assert!((a - b).abs() < 1e-6, "sample {i}: {a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn regular_polygon_rejects_degenerate() {
        regular_polygon(2, 1.0, 16);
    }

    #[test]
    #[should_panic(expected = "inner <= outer")]
    fn star_rejects_inverted_radii() {
        star_polygon(5, 1.0, 2.0, 16);
    }
}
