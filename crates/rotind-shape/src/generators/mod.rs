//! Parametric shape families.
//!
//! These generators stand in for the paper's image collections (the
//! substitution is documented in `DESIGN.md` §4): each produces a
//! *radial profile* `r(φ)` over uniformly spaced angles — which, for a
//! star-convex shape, is exactly the Figure-2 centroid-distance series —
//! that downstream code perturbs, warps, rotates and normalises into
//! labelled datasets.

pub mod blade;
pub mod butterfly;
pub mod polygon;
pub mod skull;
pub mod superformula;
pub mod warp;

pub use superformula::superformula;
