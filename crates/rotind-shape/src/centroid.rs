//! Centroid-distance series extraction (Figure 2) and major-axis
//! landmarking (Figure 3).

use crate::bitmap::Bitmap;
use crate::contour::{resample_contour, trace_boundary};
use rotind_ts::TsError;

/// Convert an ordered boundary point sequence to a centroid-distance
/// series of length `n`: the contour is resampled uniformly by arc
/// length and the distance from each sample to the boundary centroid
/// becomes the series (Figure 2B/C).
///
/// # Errors
///
/// [`TsError::Empty`] for an empty contour.
pub fn centroid_series(contour: &[(f64, f64)], n: usize) -> Result<Vec<f64>, TsError> {
    if contour.is_empty() {
        return Err(TsError::Empty);
    }
    if n == 0 {
        return Err(TsError::invalid_param("n", "must be >= 1"));
    }
    let cx = contour.iter().map(|p| p.0).sum::<f64>() / contour.len() as f64;
    let cy = contour.iter().map(|p| p.1).sum::<f64>() / contour.len() as f64;
    Ok(contour
        .iter()
        .map(|&(x, y)| ((x - cx).powi(2) + (y - cy).powi(2)).sqrt())
        .collect::<Vec<f64>>())
    .map(|d| rotind_ts::resample::resample_circular(&d, n).expect("non-empty"))
}

/// The full Figure 2 pipeline: bitmap → boundary trace → arc-length
/// resample (at 4·n points for accuracy) → centroid-distance series of
/// length `n`.
///
/// ```
/// use rotind_shape::{bitmap::Bitmap, centroid::shape_to_series};
/// // A filled disc: its centroid-distance series is (nearly) constant.
/// let disc = Bitmap::from_fn(41, 41, |x, y| {
///     let (dx, dy) = (x as f64 - 20.0, y as f64 - 20.0);
///     dx * dx + dy * dy <= 15.0 * 15.0
/// });
/// let series = shape_to_series(&disc, 32).unwrap();
/// let mean = series.iter().sum::<f64>() / 32.0;
/// assert!(series.iter().all(|r| (r - mean).abs() / mean < 0.1));
/// ```
///
/// # Errors
///
/// [`TsError::Empty`] when the bitmap has no foreground.
pub fn shape_to_series(bitmap: &Bitmap, n: usize) -> Result<Vec<f64>, TsError> {
    let contour = trace_boundary(bitmap).ok_or(TsError::Empty)?;
    let dense = resample_contour(&contour, (4 * n).max(contour.len()));
    centroid_series(&dense, n)
}

/// The fast direct path for parametric shapes: a radial profile `r(φ)`
/// over uniformly spaced angles *is* a centroid-distance series when the
/// shape is star-convex about its centre; resample to `n`.
pub fn radial_profile_to_series(radii: &[f64], n: usize) -> Result<Vec<f64>, TsError> {
    if radii.is_empty() {
        return Err(TsError::Empty);
    }
    rotind_ts::resample::resample_circular(radii, n)
}

/// Rotate a centroid-distance series so it starts at the shape's major
/// axis — the domain-independent landmarking of Section 2.1 that
/// Figure 3 shows to be brittle (*"a single extra pixel can change the
/// rotation by 90 degrees"*).
///
/// Treating the series as a radial profile over uniform angles, the
/// major axis direction maximises `r(φ)² + r(φ+π)²` (the diameter
/// through the centroid); the series is circularly shifted to start
/// there.
pub fn align_to_major_axis(series: &[f64]) -> Vec<f64> {
    let n = series.len();
    if n == 0 {
        return Vec::new();
    }
    let mut best_shift = 0usize;
    let mut best_diam = f64::NEG_INFINITY;
    for s in 0..n {
        let opposite = (s + n / 2) % n;
        let diam = series[s] * series[s] + series[opposite] * series[opposite];
        if diam > best_diam {
            best_diam = diam;
            best_shift = s;
        }
    }
    rotind_ts::rotate::rotated(series, best_shift)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::{radial_to_polygon, rasterize_polygon};
    use rotind_ts::rotate::rotated;

    #[test]
    fn circle_gives_constant_series() {
        let b = Bitmap::from_fn(61, 61, |x, y| {
            let dx = x as f64 - 30.0;
            let dy = y as f64 - 30.0;
            dx * dx + dy * dy <= 20.0 * 20.0
        });
        let series = shape_to_series(&b, 64).unwrap();
        assert_eq!(series.len(), 64);
        let mean = rotind_ts::stats::mean(&series);
        for &v in &series {
            assert!((v - mean).abs() / mean < 0.06, "radius {v} vs mean {mean}");
        }
        assert!((mean - 20.0).abs() < 1.5);
    }

    #[test]
    fn star_series_has_correct_period() {
        // A 5-lobed star's centroid profile has five peaks.
        let radii: Vec<f64> = (0..256)
            .map(|i| 10.0 + 3.0 * (5.0 * std::f64::consts::TAU * i as f64 / 256.0).cos())
            .collect();
        let poly = radial_to_polygon(&radii, 200, 0.9);
        let b = rasterize_polygon(&poly, 200, 200);
        let series = shape_to_series(&b, 128).unwrap();
        let zn = rotind_ts::normalize::z_normalize(&series).unwrap();
        // Count upward zero crossings ≈ 5.
        let crossings = zn.windows(2).filter(|w| w[0] < 0.0 && w[1] >= 0.0).count()
            + usize::from(zn[zn.len() - 1] < 0.0 && zn[0] >= 0.0);
        assert!(
            (4..=6).contains(&crossings),
            "expected ~5 lobes, saw {crossings} crossings"
        );
    }

    #[test]
    fn rotated_bitmap_gives_circularly_shifted_series() {
        // Rotating the underlying shape by 90° shifts the series by n/4.
        let radii: Vec<f64> = (0..256)
            .map(|i| {
                let phi = std::f64::consts::TAU * i as f64 / 256.0;
                10.0 + 2.0 * (3.0 * phi).cos() + 1.0 * (phi).sin()
            })
            .collect();
        let n = 64;
        let s0 = {
            let poly = radial_to_polygon(&radii, 200, 0.9);
            shape_to_series(&rasterize_polygon(&poly, 200, 200), n).unwrap()
        };
        let s90 = {
            let rot: Vec<f64> = rotated(&radii, 64); // 90° of 256 samples
            let poly = radial_to_polygon(&rot, 200, 0.9);
            shape_to_series(&rasterize_polygon(&poly, 200, 200), n).unwrap()
        };
        // s90 should match s0 circularly shifted by n/4, up to raster
        // noise. Compare best alignment error to worst.
        let err = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        // The boundary trace starts at a data-dependent pixel, so the two
        // series differ by an arbitrary circular shift; what must hold is
        // that SOME rotation aligns them far better than the worst one.
        let best = (0..n)
            .map(|s| err(&s0, &rotated(&s90, s)))
            .fold(f64::INFINITY, f64::min);
        let worst = (0..n)
            .map(|s| err(&s0, &rotated(&s90, s)))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(best < worst * 0.3, "series genuinely rotation-structured");
    }

    #[test]
    fn direct_path_matches_bitmap_path_for_star_convex_shape() {
        let radii: Vec<f64> = (0..512)
            .map(|i| {
                let phi = std::f64::consts::TAU * i as f64 / 512.0;
                10.0 + 2.0 * (2.0 * phi).cos()
            })
            .collect();
        let n = 64;
        let direct = radial_profile_to_series(&radii, n).unwrap();
        let poly = radial_to_polygon(&radii, 400, 0.9);
        let raster = shape_to_series(&rasterize_polygon(&poly, 400, 400), n).unwrap();
        // Compare z-normalised versions at the best circular alignment
        // (the raster trace starts at an arbitrary boundary point).
        let zd = rotind_ts::normalize::z_normalize(&direct).unwrap();
        let zr = rotind_ts::normalize::z_normalize(&raster).unwrap();
        let best = (0..n)
            .map(|s| {
                zd.iter()
                    .zip(&rotated(&zr, s))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt()
            })
            .fold(f64::INFINITY, f64::min);
        assert!(best < 0.15 * (n as f64).sqrt(), "pipelines diverge: {best}");
    }

    #[test]
    fn major_axis_alignment_is_rotation_canonicalising() {
        // For a clean ellipse-like profile, aligning any rotation yields
        // the same series.
        let series: Vec<f64> = (0..60)
            .map(|i| 5.0 + 2.0 * (2.0 * std::f64::consts::TAU * i as f64 / 60.0).cos())
            .collect();
        let a = align_to_major_axis(&series);
        let b = align_to_major_axis(&rotated(&series, 17));
        let err: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(err < 1e-9, "canonical alignment differs: {err}");
    }

    #[test]
    fn major_axis_alignment_is_brittle_to_a_spike() {
        // The paper's point: one perturbed sample ("a single extra
        // pixel") can swing the landmark by ~90°.
        let series: Vec<f64> = (0..60)
            .map(|i| 5.0 + 2.0 * (2.0 * std::f64::consts::TAU * i as f64 / 60.0).cos())
            .collect();
        let mut spiked = series.clone();
        spiked[15] += 3.0; // spike at 90° to the true major axis
        let clean = align_to_major_axis(&series);
        let bent = align_to_major_axis(&spiked);
        // The two alignments start at very different rotations.
        let err: f64 = clean.iter().zip(&bent).map(|(x, y)| (x - y).abs()).sum();
        assert!(err > 1.0, "spike failed to move the landmark: {err}");
    }

    #[test]
    fn error_paths() {
        assert!(matches!(centroid_series(&[], 8), Err(TsError::Empty)));
        assert!(centroid_series(&[(0.0, 0.0)], 0).is_err());
        assert!(matches!(
            shape_to_series(&Bitmap::new(4, 4), 8),
            Err(TsError::Empty)
        ));
        assert!(matches!(
            radial_profile_to_series(&[], 8),
            Err(TsError::Empty)
        ));
        assert!(align_to_major_axis(&[]).is_empty());
    }
}
