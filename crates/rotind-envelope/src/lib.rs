//! # rotind-envelope — wedges and the LB_Keogh lower-bound family
//!
//! The geometric core of the paper (Section 4): a set of candidate
//! rotations is summarised by its **wedge** `W = {U, L}` — the smallest
//! envelope enclosing every member from above and below (Figure 6) — and
//! the **LB_Keogh** function lower-bounds the distance from any query to
//! *every* member of the wedge at once (Proposition 1). Wedges nest
//! hierarchically (Figure 7), and widening a wedge by the warping band
//! `R` extends the bound to DTW (Proposition 2, Figure 13); an analogous
//! envelope argument upper-bounds LCSS similarity.
//!
//! * [`envelope`] — pointwise min/max envelopes, including `O(n)`
//!   sliding-window widening via the branch-free van Herk / Gil–Werman
//!   block kernel (the historical monotonic deque is kept as the scalar
//!   reference);
//! * [`wedge`] — the wedge type: construction from rotations, merging,
//!   area (the quality heuristic of Figure 8);
//! * [`lb_keogh`] — `LB_Keogh` and its early-abandoning form (Table 5),
//!   plus the DTW and LCSS variants and the cascade tiers: the `O(1)`
//!   endpoint bound `lb_kim`, reordered early abandoning, and Lemire's
//!   two-pass `lb_improved`;
//! * [`hierarchy`] — the hierarchical wedge tree derived from a
//!   group-average dendrogram over the query's rotations (Figures 9/10),
//!   the structure the H-Merge search of `rotind-index` traverses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod envelope;
pub mod hierarchy;
pub mod lb_keogh;
pub mod wedge;

pub use hierarchy::WedgeTree;
pub use wedge::Wedge;
