//! Pointwise envelopes over sets of series.

/// Pointwise (upper, lower) envelope of a non-empty set of equal-length
/// series: `U_i = max_s C_si`, `L_i = min_s C_si` (Section 4.1).
///
/// # Panics
///
/// Panics when `series` is empty or lengths differ.
// lint: panic-exempt(documented preconditions: wedge construction always passes a non-empty, equal-length row set)
pub fn envelope_of<S: AsRef<[f64]>>(series: &[S]) -> (Vec<f64>, Vec<f64>) {
    assert!(!series.is_empty(), "envelope_of: empty set");
    let n = series[0].as_ref().len();
    let mut upper = series[0].as_ref().to_vec();
    let mut lower = upper.clone();
    for s in &series[1..] {
        let s = s.as_ref();
        assert_eq!(s.len(), n, "envelope_of: length mismatch");
        for i in 0..n {
            if s[i] > upper[i] {
                upper[i] = s[i];
            }
            if s[i] < lower[i] {
                lower[i] = s[i];
            }
        }
    }
    (upper, lower)
}

/// Sliding-window maximum with radius `r` and *clamped* (non-circular)
/// boundaries: `out[i] = max(xs[max(0, i−r) ..= min(n−1, i+r)])`.
///
/// This is the paper's `DTW_U_i = max(U_{i−R} : U_{i+R})` (Section 4.3).
/// Implemented with a monotonic deque in `O(n)`.
pub fn sliding_max(xs: &[f64], r: usize) -> Vec<f64> {
    let mut scratch = SlidingScratch::new();
    let mut out = Vec::new();
    sliding_max_into(xs, r, &mut scratch, &mut out);
    out
}

/// Sliding-window minimum, the mirror image of [`sliding_max`]
/// (`DTW_L_i = min(L_{i−R} : L_{i+R})`).
pub fn sliding_min(xs: &[f64], r: usize) -> Vec<f64> {
    let mut scratch = SlidingScratch::new();
    let mut out = Vec::new();
    sliding_min_into(xs, r, &mut scratch, &mut out);
    out
}

/// Reusable workspace for the monotonic-deque kernel. One instance can
/// serve any number of [`sliding_max_into`] / [`sliding_min_into`] calls
/// of any length; the deque's backing storage is retained between calls
/// so a loop over many envelopes (the hierarchy build, for instance)
/// performs no per-call allocation beyond the output it keeps.
#[derive(Debug, Default)]
pub struct SlidingScratch {
    deque: std::collections::VecDeque<usize>,
}

impl SlidingScratch {
    /// An empty workspace.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Buffer-reusing form of [`sliding_max`]: clears `out` and fills it
/// with the windowed maxima, reusing both `out`'s capacity and the
/// deque inside `scratch`.
pub fn sliding_max_into(xs: &[f64], r: usize, scratch: &mut SlidingScratch, out: &mut Vec<f64>) {
    sliding_extreme_into(xs, r, |a, b| a >= b, scratch, out);
}

/// Buffer-reusing form of [`sliding_min`].
pub fn sliding_min_into(xs: &[f64], r: usize, scratch: &mut SlidingScratch, out: &mut Vec<f64>) {
    sliding_extreme_into(xs, r, |a, b| a <= b, scratch, out);
}

/// Shared monotonic-deque kernel; `dominates(a, b)` is `a >= b` for max,
/// `a <= b` for min.
// lint: panic-exempt(the deque holds only indices already pushed from 0..n)
fn sliding_extreme_into(
    xs: &[f64],
    r: usize,
    dominates: fn(f64, f64) -> bool,
    scratch: &mut SlidingScratch,
    out: &mut Vec<f64>,
) {
    out.clear();
    let n = xs.len();
    if n == 0 {
        return;
    }
    if r == 0 {
        out.extend_from_slice(xs);
        return;
    }
    out.reserve(n);
    // Deque of indices whose values decrease (for max) front-to-back.
    let deque = &mut scratch.deque;
    deque.clear();
    // Window for position i is [i-r, i+r]; slide the right edge.
    let mut right = 0usize;
    for i in 0..n {
        let hi = (i + r).min(n - 1);
        while right <= hi {
            while let Some(&back) = deque.back() {
                if dominates(xs[right], xs[back]) {
                    deque.pop_back();
                } else {
                    break;
                }
            }
            deque.push_back(right);
            right += 1;
        }
        let lo = i.saturating_sub(r);
        while let Some(&front) = deque.front() {
            if front < lo {
                deque.pop_front();
            } else {
                break;
            }
        }
        // Invariant: `right` was pushed before the trim, and trimming only
        // removes indices < lo <= i <= right, so the deque retains >= 1.
        // rotind-lint: allow(no-panic)
        out.push(xs[*deque.front().expect("window is non-empty")]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_of_two() {
        let a = [1.0, 5.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        let (u, l) = envelope_of(&[&a[..], &b[..]]);
        assert_eq!(u, vec![2.0, 5.0, 6.0]);
        assert_eq!(l, vec![1.0, 4.0, 3.0]);
    }

    #[test]
    fn envelope_of_single_is_identity() {
        let a = [3.0, 1.0, 4.0];
        let (u, l) = envelope_of(&[&a[..]]);
        assert_eq!(u, a.to_vec());
        assert_eq!(l, a.to_vec());
    }

    #[test]
    fn envelope_contains_all_members() {
        let set: Vec<Vec<f64>> = (0..5)
            .map(|k| (0..32).map(|i| ((i + 3 * k) as f64 * 0.7).sin()).collect())
            .collect();
        let (u, l) = envelope_of(&set);
        for s in &set {
            for i in 0..32 {
                assert!(l[i] <= s[i] && s[i] <= u[i]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn envelope_of_empty_panics() {
        envelope_of::<&[f64]>(&[]);
    }

    fn naive_sliding_max(xs: &[f64], r: usize) -> Vec<f64> {
        let n = xs.len();
        (0..n)
            .map(|i| {
                let lo = i.saturating_sub(r);
                let hi = (i + r).min(n - 1);
                xs[lo..=hi]
                    .iter()
                    .copied()
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect()
    }

    fn naive_sliding_min(xs: &[f64], r: usize) -> Vec<f64> {
        let n = xs.len();
        (0..n)
            .map(|i| {
                let lo = i.saturating_sub(r);
                let hi = (i + r).min(n - 1);
                xs[lo..=hi].iter().copied().fold(f64::INFINITY, f64::min)
            })
            .collect()
    }

    #[test]
    fn sliding_extremes_match_naive() {
        let xs: Vec<f64> = (0..50)
            .map(|i| ((i * 7919 % 101) as f64) * 0.1 - 5.0)
            .collect();
        for r in [0usize, 1, 2, 5, 10, 49, 100] {
            assert_eq!(sliding_max(&xs, r), naive_sliding_max(&xs, r), "max r={r}");
            assert_eq!(sliding_min(&xs, r), naive_sliding_min(&xs, r), "min r={r}");
        }
    }

    #[test]
    fn sliding_radius_zero_is_identity() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert_eq!(sliding_max(&xs, 0), xs.to_vec());
        assert_eq!(sliding_min(&xs, 0), xs.to_vec());
    }

    #[test]
    fn sliding_empty() {
        assert!(sliding_max(&[], 3).is_empty());
        assert!(sliding_min(&[], 3).is_empty());
    }

    #[test]
    fn widened_envelope_contains_original() {
        let xs: Vec<f64> = (0..40).map(|i| (i as f64 * 0.33).sin()).collect();
        for r in [1usize, 3, 8] {
            let u = sliding_max(&xs, r);
            let l = sliding_min(&xs, r);
            for i in 0..xs.len() {
                assert!(l[i] <= xs[i] && xs[i] <= u[i]);
            }
        }
    }

    #[test]
    fn into_variants_reuse_buffers_and_match_allocating_forms() {
        let mut scratch = SlidingScratch::new();
        let mut out = vec![99.0; 7]; // stale content must be discarded
        let xs: Vec<f64> = (0..64).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
        for r in [0usize, 1, 4, 63, 80] {
            sliding_max_into(&xs, r, &mut scratch, &mut out);
            assert_eq!(out, sliding_max(&xs, r), "max r={r}");
            sliding_min_into(&xs, r, &mut scratch, &mut out);
            assert_eq!(out, sliding_min(&xs, r), "min r={r}");
        }
        // Shrinking input: out must shrink with it, not keep a stale tail.
        sliding_max_into(&[1.0, 2.0], 1, &mut scratch, &mut out);
        assert_eq!(out, vec![2.0, 2.0]);
        sliding_min_into(&[], 3, &mut scratch, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn widening_is_monotone_in_radius() {
        let xs: Vec<f64> = (0..30).map(|i| ((i * i) % 13) as f64).collect();
        let u1 = sliding_max(&xs, 1);
        let u4 = sliding_max(&xs, 4);
        let l1 = sliding_min(&xs, 1);
        let l4 = sliding_min(&xs, 4);
        for i in 0..30 {
            assert!(u4[i] >= u1[i]);
            assert!(l4[i] <= l1[i]);
        }
    }
}
