//! Pointwise envelopes over sets of series.

/// Pointwise (upper, lower) envelope of a non-empty set of equal-length
/// series: `U_i = max_s C_si`, `L_i = min_s C_si` (Section 4.1).
///
/// # Panics
///
/// Panics when `series` is empty or lengths differ.
// lint: panic-exempt(documented preconditions: wedge construction always passes a non-empty, equal-length row set)
pub fn envelope_of<S: AsRef<[f64]>>(series: &[S]) -> (Vec<f64>, Vec<f64>) {
    assert!(!series.is_empty(), "envelope_of: empty set");
    let n = series[0].as_ref().len();
    let mut upper = series[0].as_ref().to_vec();
    let mut lower = upper.clone();
    for s in &series[1..] {
        let s = s.as_ref();
        assert_eq!(s.len(), n, "envelope_of: length mismatch");
        for i in 0..n {
            if s[i] > upper[i] {
                upper[i] = s[i];
            }
            if s[i] < lower[i] {
                lower[i] = s[i];
            }
        }
    }
    (upper, lower)
}

/// Sliding-window maximum with radius `r` and *clamped* (non-circular)
/// boundaries: `out[i] = max(xs[max(0, i−r) ..= min(n−1, i+r)])`.
///
/// This is the paper's `DTW_U_i = max(U_{i−R} : U_{i+R})` (Section 4.3).
/// Implemented with a monotonic deque in `O(n)`.
pub fn sliding_max(xs: &[f64], r: usize) -> Vec<f64> {
    let mut scratch = SlidingScratch::new();
    let mut out = Vec::new();
    sliding_max_into(xs, r, &mut scratch, &mut out);
    out
}

/// Sliding-window minimum, the mirror image of [`sliding_max`]
/// (`DTW_L_i = min(L_{i−R} : L_{i+R})`).
pub fn sliding_min(xs: &[f64], r: usize) -> Vec<f64> {
    let mut scratch = SlidingScratch::new();
    let mut out = Vec::new();
    sliding_min_into(xs, r, &mut scratch, &mut out);
    out
}

/// Reusable workspace for the sliding-extreme kernels. One instance can
/// serve any number of [`sliding_max_into`] / [`sliding_min_into`] calls
/// of any length; the block prefix/suffix buffers (and the deque of the
/// historical reference kernel) are retained between calls so a loop
/// over many envelopes (the hierarchy build, for instance) performs no
/// per-call allocation beyond the output it keeps.
#[derive(Debug, Default)]
pub struct SlidingScratch {
    prefix: Vec<f64>,
    suffix: Vec<f64>,
    deque: std::collections::VecDeque<usize>,
}

impl SlidingScratch {
    /// An empty workspace.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Buffer-reusing form of [`sliding_max`]: clears `out` and fills it
/// with the windowed maxima, reusing `out`'s capacity and the block
/// buffers inside `scratch`.
pub fn sliding_max_into(xs: &[f64], r: usize, scratch: &mut SlidingScratch, out: &mut Vec<f64>) {
    sliding_extreme_into(xs, r, |a, b| a >= b, |a, b| a > b, scratch, out);
}

/// Buffer-reusing form of [`sliding_min`].
pub fn sliding_min_into(xs: &[f64], r: usize, scratch: &mut SlidingScratch, out: &mut Vec<f64>) {
    sliding_extreme_into(xs, r, |a, b| a <= b, |a, b| a < b, scratch, out);
}

/// Shared van Herk / Gil–Werman sliding-extreme kernel: two branch-light
/// linear passes over blocks of the window width `w = 2r + 1` (a running
/// prefix extreme within each block and a running suffix extreme within
/// each block), then one select per output position:
///
/// * window inside one block (only at a clamped array edge) —
///   `prefix[hi]` when the window starts at the block, else
///   `suffix[lo]` (which then ends exactly at the array edge);
/// * window spanning two adjacent blocks — the better of `suffix[lo]`
///   (covering `lo..` to the block seam) and `prefix[hi]` (covering the
///   seam `..=hi`).
///
/// Replaces the monotonic deque on the build path: same `O(n)` bound but
/// no pointer-chasing, no data-dependent branching, and the per-element
/// work is a compare/select the autovectoriser handles. The tie rules
/// are engineered to keep the *latest* position among equal values —
/// `replaces` admits ties on the forward pass, `strict` rejects them on
/// the backward pass and at the combine — which is exactly the deque's
/// domination rule, so the two kernels agree bit for bit (±0.0 included)
/// on every NaN-free input.
// lint: panic-exempt(prefix/suffix are sized to n and every index is lo <= i <= hi < n by construction)
fn sliding_extreme_into(
    xs: &[f64],
    r: usize,
    replaces: impl Fn(f64, f64) -> bool,
    strict: impl Fn(f64, f64) -> bool,
    scratch: &mut SlidingScratch,
    out: &mut Vec<f64>,
) {
    out.clear();
    let n = xs.len();
    if n == 0 {
        return;
    }
    if r == 0 {
        out.extend_from_slice(xs);
        return;
    }
    let w = 2 * r + 1;
    let prefix = &mut scratch.prefix;
    let suffix = &mut scratch.suffix;
    prefix.clear();
    prefix.reserve(n);
    suffix.clear();
    suffix.resize(n, 0.0);
    // Forward pass: running extreme within each w-block.
    let mut run = 0.0;
    let mut left_in_block = 0usize;
    for &x in xs {
        run = if left_in_block == 0 || replaces(x, run) {
            left_in_block = if left_in_block == 0 { w } else { left_in_block };
            x
        } else {
            run
        };
        left_in_block -= 1;
        prefix.push(run);
    }
    // Backward pass: running extreme from each position to its block end
    // (ties keep the running value, i.e. the later position). `pos_mod`
    // tracks `(i + 1) % w` by countdown so the loop divides only once.
    let mut run = 0.0;
    let mut pos_mod = n % w;
    for i in (0..n).rev() {
        // rotind-lint: allow(no-index) — i ranges over 0..n of same-length buffers
        let x = xs[i];
        let at_block_end = pos_mod == 0 || i + 1 == n;
        run = if at_block_end || strict(x, run) {
            x
        } else {
            run
        };
        // rotind-lint: allow(no-index)
        suffix[i] = run;
        pos_mod = if pos_mod == 0 { w - 1 } else { pos_mod - 1 };
    }
    // Combine, in three regions so the hot middle is division- and
    // branch-light.
    //
    // Left edge (`i < r`): the window is `[0, i + r]` with `i + r <
    // 2r < w`, one block starting at 0 — `prefix[i + r]` covers it.
    let left_end = r.min(n);
    for i in 0..left_end {
        out.push(prefix[(i + r).min(n - 1)]);
    }
    // Middle (`r <= i < n − r`): the window is exactly `[i − r, i + r]`.
    // When it spans two blocks the select below is the textbook van Herk
    // combine; when it happens to be one whole block (`lo % w == 0`,
    // `hi = lo + w − 1`), `suffix[lo]` and `prefix[hi]` both cover that
    // exact block with the same keep-latest tie rule, so they are
    // bit-equal and the select is still exact.
    if n > 2 * r {
        let m = n - 2 * r;
        for (&s, &p) in suffix[..m].iter().zip(&prefix[2 * r..]) {
            out.push(if strict(s, p) { s } else { p });
        }
    }
    // Right edge (`i >= max(r, n − r)`): the window is `[i − r, n − 1]`.
    // Only `min(r, n)` positions, so the per-position division is cold.
    let right_start = left_end.max(n.saturating_sub(r));
    let last_block = (n - 1) / w;
    for i in right_start..n {
        let lo = i - r;
        let v = if lo / w == last_block {
            // One block ending at the array edge: `suffix[lo]` covers it
            // (or the whole block does, when the window starts it).
            if lo.is_multiple_of(w) {
                prefix[n - 1]
            } else {
                suffix[lo]
            }
        } else if strict(suffix[lo], prefix[n - 1]) {
            suffix[lo]
        } else {
            prefix[n - 1]
        };
        out.push(v);
    }
}

/// The historical monotonic-deque sliding maximum, kept as the scalar
/// reference the van Herk kernel is equivalence-tested (and benched)
/// against.
pub fn sliding_max_into_seq(
    xs: &[f64],
    r: usize,
    scratch: &mut SlidingScratch,
    out: &mut Vec<f64>,
) {
    sliding_extreme_into_deque(xs, r, |a, b| a >= b, scratch, out);
}

/// The historical monotonic-deque sliding minimum; see
/// [`sliding_max_into_seq`].
pub fn sliding_min_into_seq(
    xs: &[f64],
    r: usize,
    scratch: &mut SlidingScratch,
    out: &mut Vec<f64>,
) {
    sliding_extreme_into_deque(xs, r, |a, b| a <= b, scratch, out);
}

/// Monotonic-deque kernel; `dominates(a, b)` is `a >= b` for max,
/// `a <= b` for min.
// lint: panic-exempt(the deque holds only indices already pushed from 0..n)
fn sliding_extreme_into_deque(
    xs: &[f64],
    r: usize,
    dominates: impl Fn(f64, f64) -> bool,
    scratch: &mut SlidingScratch,
    out: &mut Vec<f64>,
) {
    out.clear();
    let n = xs.len();
    if n == 0 {
        return;
    }
    if r == 0 {
        out.extend_from_slice(xs);
        return;
    }
    out.reserve(n);
    // Deque of indices whose values decrease (for max) front-to-back.
    let deque = &mut scratch.deque;
    deque.clear();
    // Window for position i is [i-r, i+r]; slide the right edge.
    let mut right = 0usize;
    for i in 0..n {
        let hi = (i + r).min(n - 1);
        while right <= hi {
            while let Some(&back) = deque.back() {
                if dominates(xs[right], xs[back]) {
                    deque.pop_back();
                } else {
                    break;
                }
            }
            deque.push_back(right);
            right += 1;
        }
        let lo = i.saturating_sub(r);
        while let Some(&front) = deque.front() {
            if front < lo {
                deque.pop_front();
            } else {
                break;
            }
        }
        // Invariant: `right` was pushed before the trim, and trimming only
        // removes indices < lo <= i <= right, so the deque retains >= 1.
        // rotind-lint: allow(no-panic)
        out.push(xs[*deque.front().expect("window is non-empty")]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_of_two() {
        let a = [1.0, 5.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        let (u, l) = envelope_of(&[&a[..], &b[..]]);
        assert_eq!(u, vec![2.0, 5.0, 6.0]);
        assert_eq!(l, vec![1.0, 4.0, 3.0]);
    }

    #[test]
    fn envelope_of_single_is_identity() {
        let a = [3.0, 1.0, 4.0];
        let (u, l) = envelope_of(&[&a[..]]);
        assert_eq!(u, a.to_vec());
        assert_eq!(l, a.to_vec());
    }

    #[test]
    fn envelope_contains_all_members() {
        let set: Vec<Vec<f64>> = (0..5)
            .map(|k| (0..32).map(|i| ((i + 3 * k) as f64 * 0.7).sin()).collect())
            .collect();
        let (u, l) = envelope_of(&set);
        for s in &set {
            for i in 0..32 {
                assert!(l[i] <= s[i] && s[i] <= u[i]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn envelope_of_empty_panics() {
        envelope_of::<&[f64]>(&[]);
    }

    fn naive_sliding_max(xs: &[f64], r: usize) -> Vec<f64> {
        let n = xs.len();
        (0..n)
            .map(|i| {
                let lo = i.saturating_sub(r);
                let hi = (i + r).min(n - 1);
                xs[lo..=hi]
                    .iter()
                    .copied()
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect()
    }

    fn naive_sliding_min(xs: &[f64], r: usize) -> Vec<f64> {
        let n = xs.len();
        (0..n)
            .map(|i| {
                let lo = i.saturating_sub(r);
                let hi = (i + r).min(n - 1);
                xs[lo..=hi].iter().copied().fold(f64::INFINITY, f64::min)
            })
            .collect()
    }

    #[test]
    fn sliding_extremes_match_naive() {
        let xs: Vec<f64> = (0..50)
            .map(|i| ((i * 7919 % 101) as f64) * 0.1 - 5.0)
            .collect();
        for r in [0usize, 1, 2, 5, 10, 49, 100] {
            assert_eq!(sliding_max(&xs, r), naive_sliding_max(&xs, r), "max r={r}");
            assert_eq!(sliding_min(&xs, r), naive_sliding_min(&xs, r), "min r={r}");
        }
    }

    #[test]
    fn sliding_radius_zero_is_identity() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert_eq!(sliding_max(&xs, 0), xs.to_vec());
        assert_eq!(sliding_min(&xs, 0), xs.to_vec());
    }

    #[test]
    fn sliding_empty() {
        assert!(sliding_max(&[], 3).is_empty());
        assert!(sliding_min(&[], 3).is_empty());
    }

    #[test]
    fn widened_envelope_contains_original() {
        let xs: Vec<f64> = (0..40).map(|i| (i as f64 * 0.33).sin()).collect();
        for r in [1usize, 3, 8] {
            let u = sliding_max(&xs, r);
            let l = sliding_min(&xs, r);
            for i in 0..xs.len() {
                assert!(l[i] <= xs[i] && xs[i] <= u[i]);
            }
        }
    }

    #[test]
    fn into_variants_reuse_buffers_and_match_allocating_forms() {
        let mut scratch = SlidingScratch::new();
        let mut out = vec![99.0; 7]; // stale content must be discarded
        let xs: Vec<f64> = (0..64).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
        for r in [0usize, 1, 4, 63, 80] {
            sliding_max_into(&xs, r, &mut scratch, &mut out);
            assert_eq!(out, sliding_max(&xs, r), "max r={r}");
            sliding_min_into(&xs, r, &mut scratch, &mut out);
            assert_eq!(out, sliding_min(&xs, r), "min r={r}");
        }
        // Shrinking input: out must shrink with it, not keep a stale tail.
        sliding_max_into(&[1.0, 2.0], 1, &mut scratch, &mut out);
        assert_eq!(out, vec![2.0, 2.0]);
        sliding_min_into(&[], 3, &mut scratch, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn van_herk_matches_deque_bitwise() {
        // The block kernel must agree with the historical deque bit for
        // bit, including the keep-latest rule on ±0.0 ties.
        let mut signed_zeros: Vec<f64> = (0..37)
            .map(|i| match i % 4 {
                0 => 0.0,
                1 => -0.0,
                2 => (i as f64 * 0.3).sin(),
                _ => -(i as f64 * 0.7).cos().abs(),
            })
            .collect();
        signed_zeros[11] = 0.0;
        signed_zeros[12] = -0.0;
        let wavy: Vec<f64> = (0..80)
            .map(|i| ((i * 7919 % 101) as f64) * 0.1 - 5.0)
            .collect();
        let mut scratch = SlidingScratch::new();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for xs in [&signed_zeros, &wavy] {
            for r in [0usize, 1, 2, 3, 5, 11, 36, 100] {
                sliding_max_into(xs, r, &mut scratch, &mut a);
                sliding_max_into_seq(xs, r, &mut scratch, &mut b);
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&a), bits(&b), "max r={r}");
                sliding_min_into(xs, r, &mut scratch, &mut a);
                sliding_min_into_seq(xs, r, &mut scratch, &mut b);
                assert_eq!(bits(&a), bits(&b), "min r={r}");
            }
        }
    }

    #[test]
    fn widening_is_monotone_in_radius() {
        let xs: Vec<f64> = (0..30).map(|i| ((i * i) % 13) as f64).collect();
        let u1 = sliding_max(&xs, 1);
        let u4 = sliding_max(&xs, 4);
        let l1 = sliding_min(&xs, 1);
        let l4 = sliding_min(&xs, 4);
        for i in 0..30 {
            assert!(u4[i] >= u1[i]);
            assert!(l4[i] <= l1[i]);
        }
    }
}
