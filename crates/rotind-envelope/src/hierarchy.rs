//! Hierarchically nested wedges (Section 4.1, Figures 7, 9 and 10).
//!
//! The `n` admitted rotations of a query are clustered by group-average
//! linkage (using the `O(n²)` shift-profile distance matrix), and every
//! dendrogram node is materialised as a wedge: leaves are single
//! rotations, internal nodes merge their children's envelopes. Cutting
//! the dendrogram at `K` yields the paper's wedge set
//! `W = {W_set(1), …, W_set(K)}`, a partition of the rotations; the
//! H-Merge search descends from the cut towards the leaves only where the
//! lower bound fails to prune.

use crate::wedge::Wedge;
use rotind_cluster::linkage::{cluster, Linkage};
use rotind_cluster::rotation_shift::rotation_distance_matrix;
use rotind_cluster::Dendrogram;
use rotind_ts::rotate::{Rotation, RotationMatrix};

/// A rotation matrix, its dendrogram, and a wedge for every node.
///
/// The construction cost is the paper's `O(n²)` wedge-build startup:
/// `O(n²)` for the shift-profile distance matrix, `O(n²)` for NN-chain
/// clustering, and `O(n²)` to materialise all `2·rows − 1` wedges.
#[derive(Debug, Clone)]
pub struct WedgeTree {
    matrix: RotationMatrix,
    dendrogram: Dendrogram,
    /// Plain wedge per node (node ids follow the dendrogram convention).
    wedges: Vec<Wedge>,
    /// Envelopes used for lower bounding: widened copies when `band > 0`.
    lb_wedges: Option<Vec<Wedge>>,
    band: usize,
}

impl WedgeTree {
    /// Build the tree over all rows of `matrix`, clustering with
    /// `linkage` (the paper uses group-average) and widening lower-bound
    /// envelopes by the DTW band `band` (0 for Euclidean/LCSS).
    pub fn build(matrix: RotationMatrix, linkage: Linkage, band: usize) -> Self {
        let dist = rotation_distance_matrix(&matrix);
        let dendrogram = cluster(&dist, linkage);
        Self::from_dendrogram(matrix, dendrogram, band)
    }

    /// Build with the paper's defaults: group-average linkage.
    pub fn new(matrix: RotationMatrix, band: usize) -> Self {
        Self::build(matrix, Linkage::Average, band)
    }

    /// Assemble wedges for a pre-computed dendrogram (exposed for ablation
    /// benches that compare linkages and for tests with handcrafted
    /// trees).
    ///
    /// # Panics
    ///
    /// Panics when the dendrogram's leaf count differs from the number of
    /// rotations in `matrix`.
    // lint: panic-exempt(documented precondition: the builder derives the dendrogram from the same matrix)
    pub fn from_dendrogram(matrix: RotationMatrix, dendrogram: Dendrogram, band: usize) -> Self {
        let rows = matrix.num_rotations();
        assert_eq!(
            dendrogram.num_leaves(),
            rows,
            "dendrogram must have one leaf per rotation"
        );
        let mut wedges: Vec<Wedge> = Vec::with_capacity(dendrogram.num_nodes());
        for leaf in 0..rows {
            wedges.push(Wedge::from_rows(&matrix, &[leaf]));
        }
        for merge in dendrogram.merges() {
            let w = Wedge::merge(&wedges[merge.left], &wedges[merge.right]);
            wedges.push(w);
        }
        let lb_wedges = (band > 0).then(|| {
            // One deque workspace serves all 2·rows − 1 widenings.
            let mut scratch = crate::envelope::SlidingScratch::new();
            wedges
                .iter()
                .map(|w| w.widened_with(band, &mut scratch))
                .collect()
        });
        WedgeTree {
            matrix,
            dendrogram,
            wedges,
            lb_wedges,
            band,
        }
    }

    /// The underlying rotation matrix.
    pub fn matrix(&self) -> &RotationMatrix {
        &self.matrix
    }

    /// The dendrogram over the rotations.
    pub fn dendrogram(&self) -> &Dendrogram {
        &self.dendrogram
    }

    /// The DTW band the lower-bound envelopes were widened by.
    pub fn band(&self) -> usize {
        self.band
    }

    /// Number of rotations (= leaves = the maximum wedge-set size `K`).
    pub fn max_k(&self) -> usize {
        self.dendrogram.num_leaves()
    }

    /// Root node id.
    pub fn root(&self) -> usize {
        // Invariant: construction rejects empty input, so the dendrogram
        // always has at least one leaf and therefore a root.
        // rotind-lint: allow(no-panic)
        self.dendrogram.root().expect("non-empty tree")
    }

    /// `true` when `node` is a single-rotation leaf.
    pub fn is_leaf(&self, node: usize) -> bool {
        self.dendrogram.is_leaf(node)
    }

    /// Children of an internal node.
    pub fn children(&self, node: usize) -> Option<(usize, usize)> {
        self.dendrogram.children(node)
    }

    /// The plain (unwidened) wedge at `node`.
    // lint: panic-exempt(node ids come from this hierarchy's own dendrogram, one wedge per node)
    pub fn wedge(&self, node: usize) -> &Wedge {
        &self.wedges[node]
    }

    /// The lower-bounding envelope at `node`: widened by the band for DTW,
    /// the plain wedge otherwise.
    // lint: witness-exempt(accessor: returns a precomputed envelope, computes no bound — admissibility is witnessed where the envelope is consumed, in lb_keogh_early_abandon_at)
    pub fn lb_wedge(&self, node: usize) -> &Wedge {
        match &self.lb_wedges {
            // lint: panic-exempt(lb_wedges, when present, holds one wedge per node — the same id space as wedges)
            Some(w) => &w[node],
            None => &self.wedges[node],
        }
    }

    /// The rotation at a leaf node.
    ///
    /// # Panics
    ///
    /// Panics when `node` is internal.
    // lint: panic-exempt(documented precondition: the engine only asks for rotations at leaves of this hierarchy)
    pub fn leaf_rotation(&self, node: usize) -> Rotation {
        assert!(self.is_leaf(node), "leaf_rotation on internal node {node}");
        self.matrix.rotations()[node]
    }

    /// Materialise the rotated series at a leaf node.
    // lint: panic-exempt(documented precondition: the engine only materialises leaves of this hierarchy)
    pub fn leaf_series(&self, node: usize) -> Vec<f64> {
        assert!(self.is_leaf(node), "leaf_series on internal node {node}");
        self.matrix.row(node).to_vec()
    }

    /// Node ids forming the wedge set of size `k` (clamped to
    /// `[1, max_k]`) — the dendrogram cut of Figure 10.
    pub fn cut_nodes(&self, k: usize) -> Vec<usize> {
        self.dendrogram.cut_nodes(k)
    }

    /// Total envelope area of the size-`k` wedge set (ablation metric).
    pub fn cut_area(&self, k: usize) -> f64 {
        self.cut_nodes(k)
            .iter()
            .map(|&n| self.wedges[n].area())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.29).sin() + 0.5 * (i as f64 * 0.07).cos())
            .collect()
    }

    fn tree(n: usize, band: usize) -> WedgeTree {
        let m = RotationMatrix::full(&signal(n)).unwrap();
        WedgeTree::new(m, band)
    }

    #[test]
    fn structure_counts() {
        let t = tree(16, 0);
        assert_eq!(t.max_k(), 16);
        assert_eq!(t.dendrogram().num_nodes(), 31);
        assert!(!t.is_leaf(t.root()));
        assert_eq!(t.band(), 0);
    }

    #[test]
    fn every_internal_wedge_contains_its_leaves() {
        let t = tree(20, 0);
        for node in 0..t.dendrogram().num_nodes() {
            for leaf in t.dendrogram().members(node) {
                let series = t.leaf_series(leaf);
                assert!(
                    t.wedge(node).contains(&series),
                    "node {node} misses leaf {leaf}"
                );
            }
        }
    }

    #[test]
    fn wedge_members_match_dendrogram_members() {
        let t = tree(12, 0);
        for node in 0..t.dendrogram().num_nodes() {
            let mut from_wedge: Vec<usize> =
                t.wedge(node).members().iter().map(|r| r.shift).collect();
            let mut from_tree: Vec<usize> = t
                .dendrogram()
                .members(node)
                .iter()
                .map(|&l| t.leaf_rotation(l).shift)
                .collect();
            from_wedge.sort_unstable();
            from_tree.sort_unstable();
            assert_eq!(from_wedge, from_tree, "node {node}");
        }
    }

    #[test]
    fn cut_nodes_partition_rotations() {
        let t = tree(24, 0);
        for k in [1usize, 2, 5, 12, 24] {
            let cut = t.cut_nodes(k);
            assert_eq!(cut.len(), k);
            let mut shifts: Vec<usize> = cut
                .iter()
                .flat_map(|&n| t.wedge(n).members().iter().map(|r| r.shift))
                .collect();
            shifts.sort_unstable();
            assert_eq!(shifts, (0..24).collect::<Vec<_>>(), "k = {k}");
        }
    }

    #[test]
    fn clustering_groups_adjacent_rotations_of_smooth_series() {
        // For a single smooth bump, a small-K cut should place rotation 0
        // with its circular neighbours rather than with the antipode.
        let n = 32;
        let c: Vec<f64> = (0..n)
            .map(|i| (i as f64 / n as f64 * std::f64::consts::TAU).sin())
            .collect();
        let m = RotationMatrix::full(&c).unwrap();
        let t = WedgeTree::new(m, 0);
        let cut = t.cut_nodes(4);
        // Find the wedge holding rotation 0; it must also hold rotation 1
        // or rotation n−1 (a circular neighbour).
        let holder = cut
            .iter()
            .find(|&&node| t.wedge(node).members().iter().any(|r| r.shift == 0))
            .copied()
            .expect("some wedge holds rotation 0");
        let has_neighbor = t
            .wedge(holder)
            .members()
            .iter()
            .any(|r| r.shift == 1 || r.shift == n - 1);
        assert!(
            has_neighbor || t.wedge(holder).cardinality() == 1,
            "rotation 0 grouped without circular neighbours"
        );
    }

    #[test]
    fn lb_wedges_widened_only_for_dtw() {
        let t0 = tree(16, 0);
        assert_eq!(t0.lb_wedge(3).upper(), t0.wedge(3).upper());
        let t2 = tree(16, 2);
        let root = t2.root();
        assert!(t2.lb_wedge(root).area() >= t2.wedge(root).area());
        // Widened leaf envelopes still contain the leaf series.
        for leaf in 0..t2.max_k() {
            assert!(t2.lb_wedge(leaf).contains(&t2.leaf_series(leaf)));
        }
    }

    #[test]
    fn cut_area_extremes() {
        // Note per-wedge areas are NOT additive across a split (heavily
        // overlapping children can sum to more than their parent), so
        // only the extremes are certain: the K = 1 cut is the root wedge
        // and the K = max cut is all singletons with zero area.
        let t = tree(24, 0);
        assert_eq!(t.cut_area(24), 0.0, "singleton wedges have zero area");
        let root_area = t.wedge(t.root()).area();
        assert!(root_area > 0.0);
        assert_eq!(t.cut_area(1), root_area);
        // Each child's area is bounded by its parent's.
        for node in 0..t.dendrogram().num_nodes() {
            if let Some((l, r)) = t.children(node) {
                assert!(t.wedge(l).area() <= t.wedge(node).area() + 1e-12);
                assert!(t.wedge(r).area() <= t.wedge(node).area() + 1e-12);
            }
        }
    }

    #[test]
    fn works_with_mirror_and_limited_matrices() {
        let c = signal(14);
        let mm = RotationMatrix::with_mirror(&c).unwrap();
        let tm = WedgeTree::new(mm, 1);
        assert_eq!(tm.max_k(), 28);
        let lm = RotationMatrix::limited(&c, 3).unwrap();
        let tl = WedgeTree::new(lm, 0);
        assert_eq!(tl.max_k(), 7);
    }
}
