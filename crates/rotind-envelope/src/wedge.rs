//! The wedge type `W = {U, L}` (Section 4.1, Figure 6).

use crate::envelope::{envelope_of, sliding_max_into, sliding_min_into, SlidingScratch};
use rotind_distance::kernels::LANES;
use rotind_ts::rotate::{Rotation, RotationMatrix};

/// A wedge: the smallest bounding envelope enclosing a set of candidate
/// rotations from above (`upper`) and below (`lower`), together with the
/// rotations it covers.
///
/// The two envelopes live in one packed structure-of-arrays slab —
/// `upper` at offset 0, `lower` at a lane-aligned stride — so the clamp
/// kernels stream both from a single contiguous allocation; the padding
/// between and after them is deterministically zero (which keeps the
/// derived `PartialEq`/`Clone` meaningful).
///
/// ```
/// use rotind_envelope::Wedge;
/// use rotind_ts::rotate::RotationMatrix;
/// let series = [1.0, 5.0, 2.0, 8.0];
/// let matrix = RotationMatrix::full(&series).unwrap();
/// let wedge = Wedge::from_rows(&matrix, &[0, 1]);
/// assert_eq!(wedge.upper(), &[5.0, 5.0, 8.0, 8.0]);
/// assert_eq!(wedge.lower(), &[1.0, 2.0, 2.0, 1.0]);
/// assert!(wedge.contains(&[3.0, 4.0, 5.0, 2.0]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Wedge {
    /// Packed envelope slab of length `2 * stride`, where `stride` is
    /// `n` rounded up to the kernel lane count: `upper` occupies
    /// `[0, n)`, `lower` occupies `[stride, stride + n)`, all padding
    /// is 0.0.
    env: Vec<f64>,
    /// Series length `n`.
    n: usize,
    members: Vec<Rotation>,
    /// Position permutation for reordered early abandoning: positions
    /// sorted by decreasing expected contribution to `LB_Keogh`. A pure
    /// function of `(upper, lower)`, computed once at construction.
    order: Vec<u32>,
}

/// Lane-aligned stride of the envelope slab for series length `n`.
#[inline]
fn slab_stride(n: usize) -> usize {
    n.next_multiple_of(LANES)
}

/// Positions sorted so the terms most likely to dominate an `LB_Keogh`
/// accumulation come first: primary key is the envelope's distance from
/// zero (`gap(0, [L_i, U_i])`, descending — intervals far from the
/// baseline force a contribution from any roughly-centred candidate),
/// tie-broken by envelope width ascending (narrow intervals reject more
/// candidates) and finally by index so the permutation is deterministic.
// lint: panic-exempt(every index comes from 0..upper.len() and the slices are equal-length by the caller's contract)
fn abandon_order_of(upper: &[f64], lower: &[f64]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..upper.len() as u32).collect();
    order.sort_by(|&a, &b| {
        let (a, b) = (a as usize, b as usize);
        let gap = |i: usize| {
            if lower[i] > 0.0 {
                lower[i]
            } else if upper[i] < 0.0 {
                -upper[i]
            } else {
                0.0
            }
        };
        gap(b)
            .total_cmp(&gap(a))
            .then((upper[a] - lower[a]).total_cmp(&(upper[b] - lower[b])))
            .then(a.cmp(&b))
    });
    order
}

impl Wedge {
    /// Pack an (upper, lower) envelope pair into the SoA slab.
    // lint: panic-exempt(n <= stride and 2*stride is the slab length by construction, so every slice is in range)
    fn pack(upper: &[f64], lower: &[f64], members: Vec<Rotation>) -> Self {
        debug_assert_eq!(upper.len(), lower.len());
        let n = upper.len();
        let stride = slab_stride(n);
        let mut env = vec![0.0; 2 * stride];
        // rotind-lint: allow(no-index) — n <= stride <= env.len()/2 by construction
        env[..n].copy_from_slice(upper);
        env[stride..stride + n].copy_from_slice(lower);
        Wedge {
            order: abandon_order_of(upper, lower),
            env,
            n,
            members,
        }
    }

    /// A degenerate wedge over a single candidate sequence — the case in
    /// which `LB_Keogh` collapses to the exact Euclidean distance.
    pub fn from_single(series: &[f64], rotation: Rotation) -> Self {
        Wedge::pack(series, series, vec![rotation])
    }

    /// The wedge over the given rows of a rotation matrix.
    ///
    /// # Panics
    ///
    /// Panics when `rows` is empty or contains an out-of-range row index.
    // lint: panic-exempt(documented precondition: cut member lists are non-empty rows of the same matrix)
    pub fn from_rows(matrix: &RotationMatrix, rows: &[usize]) -> Self {
        assert!(!rows.is_empty(), "Wedge::from_rows: empty row set");
        let series: Vec<Vec<f64>> = rows.iter().map(|&r| matrix.row(r).to_vec()).collect();
        let (upper, lower) = envelope_of(&series);
        Wedge::pack(
            &upper,
            &lower,
            rows.iter().map(|&r| matrix.rotations()[r]).collect(),
        )
    }

    /// Merge two wedges into their combined envelope (Figure 7:
    /// `W((1,2),3)` from `W(1,2)` and `W3`). The elementwise max/min run
    /// straight into the merged slab, lane-parallel.
    ///
    /// # Panics
    ///
    /// Panics when the wedges differ in length.
    // lint: panic-exempt(documented precondition: wedges of one hierarchy share the series length)
    pub fn merge(a: &Wedge, b: &Wedge) -> Self {
        assert_eq!(a.len(), b.len(), "Wedge::merge: length mismatch");
        let n = a.n;
        let stride = slab_stride(n);
        let mut env = vec![0.0; 2 * stride];
        {
            let (up, lo) = env.split_at_mut(stride);
            for ((dst, x), y) in up.iter_mut().zip(a.upper()).zip(b.upper()) {
                *dst = x.max(*y);
            }
            for ((dst, x), y) in lo.iter_mut().zip(a.lower()).zip(b.lower()) {
                *dst = x.min(*y);
            }
        }
        let mut members = a.members.clone();
        members.extend_from_slice(&b.members);
        // rotind-lint: allow(no-index) — n <= stride by construction
        let order = abandon_order_of(&env[..n], &env[stride..stride + n]);
        Wedge {
            order,
            env,
            n,
            members,
        }
    }

    /// Widen the envelope by the warping radius `R` (Section 4.3):
    /// `DTW_U_i = max(U_{i−R} : U_{i+R})`, `DTW_L_i = min(L_{i−R} :
    /// L_{i+R})`. With `R = 0` this is a clone.
    pub fn widened(&self, radius: usize) -> Self {
        self.widened_with(radius, &mut SlidingScratch::new())
    }

    /// [`Wedge::widened`] with caller-owned scratch: the sliding-window
    /// workspace is reused across calls, so building the `2n − 1` widened
    /// envelopes of a hierarchy allocates only the buffers it keeps.
    pub fn widened_with(&self, radius: usize, scratch: &mut SlidingScratch) -> Self {
        let mut upper = Vec::new();
        let mut lower = Vec::new();
        sliding_max_into(self.upper(), radius, scratch, &mut upper);
        sliding_min_into(self.lower(), radius, scratch, &mut lower);
        Wedge::pack(&upper, &lower, self.members.clone())
    }

    /// Series length `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the wedge covers a zero-length series (never for a
    /// constructed wedge).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Upper envelope `U` — the first row of the SoA slab.
    // lint: panic-exempt(n <= env.len()/2 is a struct invariant enforced by pack/merge)
    #[inline]
    pub fn upper(&self) -> &[f64] {
        // rotind-lint: allow(no-index) — n <= env.len()/2 is a struct invariant
        &self.env[..self.n]
    }

    /// Lower envelope `L` — the second, lane-aligned row of the SoA slab.
    // lint: panic-exempt(stride + n == env.len() is a struct invariant enforced by pack/merge)
    #[inline]
    pub fn lower(&self) -> &[f64] {
        let stride = slab_stride(self.n);
        // rotind-lint: allow(no-index) — stride + n == env.len() is a struct invariant
        &self.env[stride..stride + self.n]
    }

    /// The rotations covered by this wedge.
    #[inline]
    pub fn members(&self) -> &[Rotation] {
        &self.members
    }

    /// Positions in decreasing expected-contribution order, for reordered
    /// early abandoning of `LB_Keogh` (cascade tier 3). Always a
    /// permutation of `0..len()`.
    #[inline]
    pub fn abandon_order(&self) -> &[u32] {
        &self.order
    }

    /// Number of covered rotations (the paper's `cardinality(T)`).
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.members.len()
    }

    /// Wedge area `Σ (U_i − L_i)` — the utility heuristic of Figure 8:
    /// fat wedges produce loose lower bounds.
    pub fn area(&self) -> f64 {
        self.upper()
            .iter()
            .zip(self.lower())
            .map(|(u, l)| u - l)
            .sum()
    }

    /// `true` when `series` lies within the envelope at every position.
    pub fn contains(&self, series: &[f64]) -> bool {
        series.len() == self.len()
            && series
                .iter()
                .zip(self.lower())
                .zip(self.upper())
                .all(|((&x, &l), &u)| l <= x && x <= u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotind_ts::rotate::rotated;

    fn signal(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.61).sin() * 2.0).collect()
    }

    #[test]
    fn single_wedge_is_the_series() {
        let s = signal(16);
        let w = Wedge::from_single(&s, Rotation::shift(0));
        assert_eq!(w.upper(), &s[..]);
        assert_eq!(w.lower(), &s[..]);
        assert_eq!(w.area(), 0.0);
        assert_eq!(w.cardinality(), 1);
        assert!(w.contains(&s));
    }

    #[test]
    fn from_rows_bounds_members() {
        let c = signal(20);
        let m = RotationMatrix::full(&c).unwrap();
        let w = Wedge::from_rows(&m, &[0, 3, 7]);
        assert_eq!(w.cardinality(), 3);
        for &row in &[0usize, 3, 7] {
            assert!(w.contains(&m.row(row).to_vec()), "row {row} escapes wedge");
        }
        // A rotation outside the wedge set is typically NOT contained.
        assert!(!w.contains(&m.row(10).to_vec()));
    }

    #[test]
    fn merge_contains_both_children() {
        let c = signal(24);
        let m = RotationMatrix::full(&c).unwrap();
        let a = Wedge::from_rows(&m, &[0, 1]);
        let b = Wedge::from_rows(&m, &[5, 6]);
        let merged = Wedge::merge(&a, &b);
        assert_eq!(merged.cardinality(), 4);
        for row in [0usize, 1, 5, 6] {
            assert!(merged.contains(&rotated(&c, row)));
        }
        // Merged area dominates each child's area (Figure 8).
        assert!(merged.area() >= a.area());
        assert!(merged.area() >= b.area());
    }

    #[test]
    fn merge_equals_from_rows() {
        let c = signal(18);
        let m = RotationMatrix::full(&c).unwrap();
        let a = Wedge::from_rows(&m, &[2, 4]);
        let b = Wedge::from_rows(&m, &[9]);
        let merged = Wedge::merge(&a, &b);
        let direct = Wedge::from_rows(&m, &[2, 4, 9]);
        assert_eq!(merged.upper(), direct.upper());
        assert_eq!(merged.lower(), direct.lower());
    }

    #[test]
    fn widened_contains_original_and_grows_area() {
        let c = signal(32);
        let m = RotationMatrix::full(&c).unwrap();
        let w = Wedge::from_rows(&m, &[0, 2, 4]);
        let wide = w.widened(3);
        for i in 0..w.len() {
            assert!(wide.upper()[i] >= w.upper()[i]);
            assert!(wide.lower()[i] <= w.lower()[i]);
        }
        assert!(wide.area() >= w.area());
        assert_eq!(wide.members(), w.members());
        assert_eq!(w.widened(0).upper(), w.upper());
    }

    #[test]
    fn abandon_order_is_a_permutation_sorted_by_contribution() {
        let c = signal(24);
        let m = RotationMatrix::full(&c).unwrap();
        for w in [
            Wedge::from_rows(&m, &[0, 5, 11]),
            Wedge::from_single(&c, Rotation::shift(0)),
            Wedge::from_rows(&m, &[0, 5, 11]).widened(3),
        ] {
            let mut seen: Vec<u32> = w.abandon_order().to_vec();
            seen.sort_unstable();
            assert_eq!(seen, (0..w.len() as u32).collect::<Vec<_>>());
            // Primary key (distance of the envelope interval from zero)
            // must be non-increasing along the order.
            let gap = |i: usize| {
                let (u, l) = (w.upper()[i], w.lower()[i]);
                if l > 0.0 {
                    l
                } else if u < 0.0 {
                    -u
                } else {
                    0.0
                }
            };
            for pair in w.abandon_order().windows(2) {
                assert!(gap(pair[0] as usize) >= gap(pair[1] as usize));
            }
        }
    }

    #[test]
    fn widened_with_matches_widened() {
        let c = signal(40);
        let m = RotationMatrix::full(&c).unwrap();
        let w = Wedge::from_rows(&m, &[1, 2, 8]);
        let mut scratch = SlidingScratch::new();
        for r in [0usize, 2, 7] {
            assert_eq!(w.widened_with(r, &mut scratch), w.widened(r));
        }
    }

    #[test]
    fn contains_rejects_wrong_length() {
        let w = Wedge::from_single(&signal(8), Rotation::shift(0));
        assert!(!w.contains(&signal(9)));
    }

    #[test]
    #[should_panic(expected = "empty row set")]
    fn from_rows_rejects_empty() {
        let c = signal(8);
        let m = RotationMatrix::full(&c).unwrap();
        Wedge::from_rows(&m, &[]);
    }
}
