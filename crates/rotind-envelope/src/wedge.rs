//! The wedge type `W = {U, L}` (Section 4.1, Figure 6).

use crate::envelope::{envelope_of, sliding_max, sliding_min};
use rotind_ts::rotate::{Rotation, RotationMatrix};

/// A wedge: the smallest bounding envelope enclosing a set of candidate
/// rotations from above (`upper`) and below (`lower`), together with the
/// rotations it covers.
///
/// ```
/// use rotind_envelope::Wedge;
/// use rotind_ts::rotate::RotationMatrix;
/// let series = [1.0, 5.0, 2.0, 8.0];
/// let matrix = RotationMatrix::full(&series).unwrap();
/// let wedge = Wedge::from_rows(&matrix, &[0, 1]);
/// assert_eq!(wedge.upper(), &[5.0, 5.0, 8.0, 8.0]);
/// assert_eq!(wedge.lower(), &[1.0, 2.0, 2.0, 1.0]);
/// assert!(wedge.contains(&[3.0, 4.0, 5.0, 2.0]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Wedge {
    upper: Vec<f64>,
    lower: Vec<f64>,
    members: Vec<Rotation>,
}

impl Wedge {
    /// A degenerate wedge over a single candidate sequence — the case in
    /// which `LB_Keogh` collapses to the exact Euclidean distance.
    pub fn from_single(series: &[f64], rotation: Rotation) -> Self {
        Wedge {
            upper: series.to_vec(),
            lower: series.to_vec(),
            members: vec![rotation],
        }
    }

    /// The wedge over the given rows of a rotation matrix.
    ///
    /// # Panics
    ///
    /// Panics when `rows` is empty or contains an out-of-range row index.
    pub fn from_rows(matrix: &RotationMatrix, rows: &[usize]) -> Self {
        assert!(!rows.is_empty(), "Wedge::from_rows: empty row set");
        let series: Vec<Vec<f64>> = rows.iter().map(|&r| matrix.row(r).to_vec()).collect();
        let (upper, lower) = envelope_of(&series);
        Wedge {
            upper,
            lower,
            members: rows.iter().map(|&r| matrix.rotations()[r]).collect(),
        }
    }

    /// Merge two wedges into their combined envelope (Figure 7:
    /// `W((1,2),3)` from `W(1,2)` and `W3`).
    ///
    /// # Panics
    ///
    /// Panics when the wedges differ in length.
    pub fn merge(a: &Wedge, b: &Wedge) -> Self {
        assert_eq!(a.len(), b.len(), "Wedge::merge: length mismatch");
        let upper = a
            .upper
            .iter()
            .zip(&b.upper)
            .map(|(x, y)| x.max(*y))
            .collect();
        let lower = a
            .lower
            .iter()
            .zip(&b.lower)
            .map(|(x, y)| x.min(*y))
            .collect();
        let mut members = a.members.clone();
        members.extend_from_slice(&b.members);
        Wedge {
            upper,
            lower,
            members,
        }
    }

    /// Widen the envelope by the warping radius `R` (Section 4.3):
    /// `DTW_U_i = max(U_{i−R} : U_{i+R})`, `DTW_L_i = min(L_{i−R} :
    /// L_{i+R})`. With `R = 0` this is a clone.
    pub fn widened(&self, radius: usize) -> Self {
        Wedge {
            upper: sliding_max(&self.upper, radius),
            lower: sliding_min(&self.lower, radius),
            members: self.members.clone(),
        }
    }

    /// Series length `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.upper.len()
    }

    /// `true` when the wedge covers a zero-length series (never for a
    /// constructed wedge).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.upper.is_empty()
    }

    /// Upper envelope `U`.
    #[inline]
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Lower envelope `L`.
    #[inline]
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// The rotations covered by this wedge.
    #[inline]
    pub fn members(&self) -> &[Rotation] {
        &self.members
    }

    /// Number of covered rotations (the paper's `cardinality(T)`).
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.members.len()
    }

    /// Wedge area `Σ (U_i − L_i)` — the utility heuristic of Figure 8:
    /// fat wedges produce loose lower bounds.
    pub fn area(&self) -> f64 {
        self.upper.iter().zip(&self.lower).map(|(u, l)| u - l).sum()
    }

    /// `true` when `series` lies within the envelope at every position.
    pub fn contains(&self, series: &[f64]) -> bool {
        series.len() == self.len()
            && series
                .iter()
                .enumerate()
                .all(|(i, &x)| self.lower[i] <= x && x <= self.upper[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotind_ts::rotate::rotated;

    fn signal(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.61).sin() * 2.0).collect()
    }

    #[test]
    fn single_wedge_is_the_series() {
        let s = signal(16);
        let w = Wedge::from_single(&s, Rotation::shift(0));
        assert_eq!(w.upper(), &s[..]);
        assert_eq!(w.lower(), &s[..]);
        assert_eq!(w.area(), 0.0);
        assert_eq!(w.cardinality(), 1);
        assert!(w.contains(&s));
    }

    #[test]
    fn from_rows_bounds_members() {
        let c = signal(20);
        let m = RotationMatrix::full(&c).unwrap();
        let w = Wedge::from_rows(&m, &[0, 3, 7]);
        assert_eq!(w.cardinality(), 3);
        for &row in &[0usize, 3, 7] {
            assert!(w.contains(&m.row(row).to_vec()), "row {row} escapes wedge");
        }
        // A rotation outside the wedge set is typically NOT contained.
        assert!(!w.contains(&m.row(10).to_vec()));
    }

    #[test]
    fn merge_contains_both_children() {
        let c = signal(24);
        let m = RotationMatrix::full(&c).unwrap();
        let a = Wedge::from_rows(&m, &[0, 1]);
        let b = Wedge::from_rows(&m, &[5, 6]);
        let merged = Wedge::merge(&a, &b);
        assert_eq!(merged.cardinality(), 4);
        for row in [0usize, 1, 5, 6] {
            assert!(merged.contains(&rotated(&c, row)));
        }
        // Merged area dominates each child's area (Figure 8).
        assert!(merged.area() >= a.area());
        assert!(merged.area() >= b.area());
    }

    #[test]
    fn merge_equals_from_rows() {
        let c = signal(18);
        let m = RotationMatrix::full(&c).unwrap();
        let a = Wedge::from_rows(&m, &[2, 4]);
        let b = Wedge::from_rows(&m, &[9]);
        let merged = Wedge::merge(&a, &b);
        let direct = Wedge::from_rows(&m, &[2, 4, 9]);
        assert_eq!(merged.upper(), direct.upper());
        assert_eq!(merged.lower(), direct.lower());
    }

    #[test]
    fn widened_contains_original_and_grows_area() {
        let c = signal(32);
        let m = RotationMatrix::full(&c).unwrap();
        let w = Wedge::from_rows(&m, &[0, 2, 4]);
        let wide = w.widened(3);
        for i in 0..w.len() {
            assert!(wide.upper()[i] >= w.upper()[i]);
            assert!(wide.lower()[i] <= w.lower()[i]);
        }
        assert!(wide.area() >= w.area());
        assert_eq!(wide.members(), w.members());
        assert_eq!(w.widened(0).upper(), w.upper());
    }

    #[test]
    fn contains_rejects_wrong_length() {
        let w = Wedge::from_single(&signal(8), Rotation::shift(0));
        assert!(!w.contains(&signal(9)));
    }

    #[test]
    #[should_panic(expected = "empty row set")]
    fn from_rows_rejects_empty() {
        let c = signal(8);
        let m = RotationMatrix::full(&c).unwrap();
        Wedge::from_rows(&m, &[]);
    }
}
