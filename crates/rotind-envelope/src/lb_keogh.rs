//! The LB_Keogh family of envelope lower bounds.
//!
//! For a query `Q` and a wedge `W = {U, L}` enclosing candidates
//! `C1..Ck`:
//!
//! ```text
//! LB_Keogh(Q, W) = sqrt( Σᵢ  (qᵢ−Uᵢ)²  if qᵢ > Uᵢ
//!                        (qᵢ−Lᵢ)²  if qᵢ < Lᵢ
//!                        0          otherwise )
//! ```
//!
//! **Proposition 1**: `LB_Keogh(Q, W) ≤ ED(Q, Cs)` for every member `Cs`.
//! **Proposition 2**: with the wedge widened by the warping radius `R`,
//! `LB_Keogh(Q, DTW_W) ≤ DTW_R(Q, Cs)`. The same envelope argument gives
//! an *upper* bound on LCSS similarity, i.e. a lower bound on the LCSS
//! distance form. All three are exercised by the property tests.

use crate::wedge::Wedge;
use rotind_distance::kernels;
use rotind_distance::lcss::LcssParams;
use rotind_ts::StepCounter;

/// Plain `LB_Keogh(Q, W)`; one step per position.
///
/// ```
/// use rotind_envelope::{Wedge, lb_keogh::lb_keogh};
/// use rotind_ts::rotate::{Rotation, RotationMatrix};
/// use rotind_ts::StepCounter;
/// let c = [0.0, 1.0, 2.0, 1.0, 0.0, -1.0];
/// let matrix = RotationMatrix::full(&c).unwrap();
/// let wedge = Wedge::from_rows(&matrix, &[0, 1, 2]);
/// let q = [5.0, 5.0, 5.0, 5.0, 5.0, 5.0];
/// let lb = lb_keogh(&q, &wedge, &mut StepCounter::new());
/// // Proposition 1: lb never exceeds the Euclidean distance to any member.
/// for row in 0..3 {
///     let member = matrix.row(row).to_vec();
///     let ed: f64 = q.iter().zip(&member).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
///     assert!(lb <= ed + 1e-12);
/// }
/// ```
///
/// # Panics
///
/// Panics when `q.len() != wedge.len()`.
// lint: panic-exempt(acc > r-squared is unsatisfiable for an infinite radius, so early abandon never returns None)
pub fn lb_keogh(q: &[f64], wedge: &Wedge, counter: &mut StepCounter) -> f64 {
    lb_keogh_early_abandon(q, wedge, f64::INFINITY, counter)
        // Invariant: `acc > r²` is unsatisfiable for r = ∞, so the
        // early-abandon path cannot return None.
        // rotind-lint: allow(no-panic)
        .expect("infinite radius never abandons")
}

/// Dynamic half of the exactness gate: in debug builds, assert that a
/// lower bound is admissible against a true distance computed for the
/// same pair. Call this wherever both values exist (the static
/// `lb-coverage` lint guarantees a property test exists; this catches
/// the regressions that slip between property-test runs). Non-finite
/// inputs are ignored — an overflowed distance is not a soundness bug.
///
/// Compiled out entirely in release builds.
#[inline]
pub fn debug_assert_admissible(lb: f64, true_distance: f64) {
    debug_assert!(
        !(lb.is_finite() && true_distance.is_finite()) || lb <= true_distance + SOUNDNESS_EPS,
        "unsound lower bound: lb {lb} > true distance {true_distance} + {SOUNDNESS_EPS}"
    );
}

/// Absolute slack for [`debug_assert_admissible`]: generous enough for
/// accumulated f64 rounding over long series, far below any real
/// tightening bug (which shows up at the magnitude of the data).
pub const SOUNDNESS_EPS: f64 = 1e-6;

/// `EA_LB_Keogh` (Table 5): early-abandoning LB_Keogh. Returns `None` as
/// soon as the accumulated bound exceeds `r²` — at that point *no* member
/// of the wedge can be within `r` of the query.
///
/// Dismissal is strict in reported-bound space: because `fl(r·r)` can
/// round below the accumulator of a bound equal to `r` as a float, the
/// boundary is settled by `√acc > r` (evaluated only on the abandon
/// path). A wedge whose bound equals `r` exactly is always admitted.
pub fn lb_keogh_early_abandon(
    q: &[f64],
    wedge: &Wedge,
    r: f64,
    counter: &mut StepCounter,
) -> Option<f64> {
    lb_keogh_early_abandon_at(q, wedge, r, counter).ok()
}

/// [`lb_keogh_early_abandon`] that also reports *where* an abandon
/// happened: `Err(position)` carries the number of query positions
/// consumed before the accumulated bound provably exceeded `r`. Search
/// telemetry (the `SearchObserver` in `rotind-obs`) uses the position to
/// build abandon-depth histograms; the bound itself is unchanged.
// lint: panic-exempt(query/wedge length equality is validated at snapshot admission; the assert documents the kernel contract)
pub fn lb_keogh_early_abandon_at(
    q: &[f64],
    wedge: &Wedge,
    r: f64,
    counter: &mut StepCounter,
) -> Result<f64, usize> {
    assert_eq!(q.len(), wedge.len(), "lb_keogh: length mismatch");
    let upper = wedge.upper();
    let lower = wedge.lower();
    // The clamp-and-accumulate runs lane-parallel in the canonical
    // kernel order; abandon positions and step counts match the
    // historical per-element loop (block check + scalar replay).
    let acc = kernels::engine::clamp_sq_abandon(q, upper, lower, r, counter)?;
    let lb = acc.sqrt();
    // Debug-only self-check of Proposition 1: every series inside the
    // envelope (the envelope curves themselves included, since L ≤ U
    // pointwise) must sit at least `lb` away from the query. A witness
    // closer than the bound means the bound over-tightened.
    #[cfg(debug_assertions)]
    {
        let ed = |w: &[f64]| {
            q.iter()
                .zip(w)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        };
        debug_assert_admissible(lb, ed(upper));
        debug_assert_admissible(lb, ed(lower));
    }
    Ok(lb)
}

/// `LB_Kim`-style endpoint bound (cascade tier 1): the `LB_Keogh` sum
/// restricted to the first and last positions, hence computable in
/// `O(1)` with no per-candidate preparation.
///
/// Admissibility: the two terms are a subset of the `LB_Keogh` terms, so
/// `lb_kim(Q, W) ≤ LB_Keogh(Q, W) ≤ d(Q, Cs)` for every member `Cs` —
/// under Euclidean distance directly, and under banded DTW when `W` is
/// the band-widened envelope, because every warping path contains the
/// boundary cells `(0, 0)` and `(n−1, n−1)` and widening covers the
/// in-band neighbours of each endpoint. The classic LB_Kim also uses
/// global min/max terms; those are omitted here because extracting the
/// candidate's extrema would cost `O(n)` per candidate, defeating the
/// point of a constant-time first tier.
///
/// Two steps are charged (one for a length-1 series).
// lint: panic-exempt(query/wedge length equality is validated at snapshot admission; the assert documents the kernel contract)
pub fn lb_kim(q: &[f64], wedge: &Wedge, counter: &mut StepCounter) -> f64 {
    assert_eq!(q.len(), wedge.len(), "lb_kim: length mismatch");
    let n = q.len();
    if n == 0 {
        return 0.0;
    }
    let gap = |x: f64, u: f64, l: f64| {
        if x > u {
            x - u
        } else if x < l {
            l - x
        } else {
            0.0
        }
    };
    counter.tick();
    let first = gap(q[0], wedge.upper()[0], wedge.lower()[0]);
    let mut acc = first * first;
    if n > 1 {
        counter.tick();
        let last = gap(q[n - 1], wedge.upper()[n - 1], wedge.lower()[n - 1]);
        acc += last * last;
    }
    let lb = acc.sqrt();
    // Witness: the endpoint sum can never exceed the full LB_Keogh sum
    // (whose own witness covers the envelope argument).
    #[cfg(debug_assertions)]
    debug_assert_admissible(lb, lb_keogh(q, wedge, &mut StepCounter::new()));
    lb
}

/// Reordered early-abandoning `LB_Keogh` (cascade tier 3): identical sum
/// to [`lb_keogh_early_abandon_at`], but the terms are accumulated in
/// the wedge's precomputed decreasing expected-contribution order
/// ([`Wedge::abandon_order`]) so the `r` threshold is typically crossed
/// after a handful of terms. `Err(k)` reports the number of *terms*
/// consumed (not a series position). The completed sum is mathematically
/// the same as the natural-order one but may differ in the last float
/// bits, so exact-distance paths (Euclidean singleton leaves, where the
/// bound *is* the returned distance) must keep the natural order.
// lint: panic-exempt(query/wedge length equality is validated at snapshot admission; the assert documents the kernel contract)
pub fn lb_keogh_reordered_early_abandon_at(
    q: &[f64],
    wedge: &Wedge,
    r: f64,
    counter: &mut StepCounter,
) -> Result<f64, usize> {
    assert_eq!(q.len(), wedge.len(), "lb_keogh reordered: length mismatch");
    let upper = wedge.upper();
    let lower = wedge.lower();
    let acc = kernels::engine::clamp_sq_abandon_ordered(
        q,
        upper,
        lower,
        wedge.abandon_order(),
        r,
        counter,
    )?;
    let lb = acc.sqrt();
    #[cfg(debug_assertions)]
    {
        let ed = |w: &[f64]| {
            q.iter()
                .zip(w)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        };
        debug_assert_admissible(lb, ed(upper));
        debug_assert_admissible(lb, ed(lower));
    }
    Ok(lb)
}

/// Reusable projection + sliding-window buffers for the envelope bounds
/// that need per-call working storage: the `LB_Improved` second pass and
/// the widened LCSS envelope. Owned by the caller (the engine keeps one
/// per candidate context) so the query hot path performs no per-call
/// allocation.
#[derive(Debug, Default)]
pub struct ImprovedScratch {
    proj: Vec<f64>,
    proj_up: Vec<f64>,
    proj_lo: Vec<f64>,
    win: crate::envelope::SlidingScratch,
}

impl ImprovedScratch {
    /// An empty workspace; buffers grow to the series length on first
    /// use and are retained across calls.
    pub fn new() -> Self {
        Self::default()
    }
}

/// `LB_Improved` (Lemire's two-pass bound, arXiv:0811.3301, generalised
/// from single series to wedges — cascade tier 4): the first pass is
/// `LB_Keogh(Q, W^R)` against the band-widened envelope; the second pass
/// projects the candidate onto that envelope (`hᵢ = clamp(qᵢ, L^R_i,
/// U^R_i)`), widens the projection by the band, and adds the gap between
/// the *plain* envelope `[L_j, U_j]` and the widened projection interval
/// at every position. The total never falls below the first pass alone.
///
/// Admissibility (Proposition 2 extended): for any member `Cs` and any
/// in-band warping-path cell `(i, j)` (`|i−j| ≤ R`, so `Cs_j ∈ [L_j,
/// U_j] ⊆ [L^R_i, U^R_i]`), `qᵢ − hᵢ` and `hᵢ − Cs_j` share a sign,
/// hence `(qᵢ − Cs_j)² ≥ (qᵢ − hᵢ)² + (hᵢ − Cs_j)²`. Summing over the
/// path, the first addend dominates the first pass (every `i` occurs on
/// the path) and the second dominates the second pass (every `j` occurs
/// with some in-band `i`, and `min_{|i−j|≤R} (hᵢ − Cs_j)²` is at least
/// the interval-to-interval gap accumulated here). With `R = 0` the
/// projection lies inside the plain envelope and the second pass is
/// identically zero — the bound is only worth running for DTW.
///
/// Charges one step per position in each pass plus `n` for building the
/// projection envelope.
///
/// # Panics
///
/// Panics when the lengths of `q`, `wedge` and `lb_wedge` differ.
pub fn lb_improved(
    q: &[f64],
    wedge: &Wedge,
    lb_wedge: &Wedge,
    band: usize,
    counter: &mut StepCounter,
) -> f64 {
    let first = lb_keogh(q, lb_wedge, counter);
    lb_improved_second_pass(
        q,
        wedge,
        lb_wedge,
        band,
        first * first,
        f64::INFINITY,
        &mut ImprovedScratch::new(),
        counter,
    )
    // Invariant: an infinite radius never dismisses.
    // rotind-lint: allow(no-panic)
    .expect("infinite radius never abandons")
}

/// Second pass of [`lb_improved`], resuming from a completed first-pass
/// accumulator `first_pass_acc` (the *squared* `LB_Keogh(Q, W^R)` sum) —
/// the form the bound cascade uses, since tier 3 has already paid for
/// the first pass. Dismissal against `r` is strict in reported-bound
/// space (`acc > r²` and `√acc > r`), mirroring
/// [`lb_keogh_early_abandon_at`]; `None` means no member can be within
/// `r`.
// lint: panic-exempt(both wedges come from one hierarchy sharing the validated series length)
#[allow(clippy::too_many_arguments)] // mirrors the cascade's tier-call shape; scratch rides along
pub fn lb_improved_second_pass(
    q: &[f64],
    wedge: &Wedge,
    lb_wedge: &Wedge,
    band: usize,
    first_pass_acc: f64,
    r: f64,
    scratch: &mut ImprovedScratch,
    counter: &mut StepCounter,
) -> Option<f64> {
    let n = q.len();
    assert_eq!(n, wedge.len(), "lb_improved: length mismatch");
    assert_eq!(n, lb_wedge.len(), "lb_improved: widened length mismatch");
    let s = scratch;
    s.proj.clear();
    s.proj.reserve(n);
    let (wu, wl) = (lb_wedge.upper(), lb_wedge.lower());
    s.proj
        .extend(q.iter().zip(wl).zip(wu).map(|((&x, &l), &u)| x.clamp(l, u)));
    crate::envelope::sliding_max_into(&s.proj, band, &mut s.win, &mut s.proj_up);
    crate::envelope::sliding_min_into(&s.proj, band, &mut s.win, &mut s.proj_lo);
    // The projection and its widened envelope cost ~n real-value
    // operations; charge them so step counts stay honest.
    counter.add(n as u64);
    let acc = kernels::engine::interval_gap_sq_abandon(
        first_pass_acc,
        wedge.upper(),
        wedge.lower(),
        &s.proj_up,
        &s.proj_lo,
        r,
        counter,
    )
    .ok()?;
    let lb = acc.sqrt();
    // Witness: the envelope curves are themselves enclosed by the wedge
    // (L ≤ U pointwise), so the bound must not exceed the banded DTW
    // distance to either curve.
    #[cfg(debug_assertions)]
    {
        use rotind_distance::dtw::{dtw, DtwParams};
        let mut scratch_steps = StepCounter::new();
        let params = DtwParams::new(band);
        debug_assert_admissible(lb, dtw(q, wedge.upper(), params, &mut scratch_steps));
        debug_assert_admissible(lb, dtw(q, wedge.lower(), params, &mut scratch_steps));
    }
    Some(lb)
}

/// LCSS envelope bound: an *upper* bound on the LCSS match count of the
/// query against every wedge member, hence a lower bound on the LCSS
/// distance form `1 − count/n`.
///
/// A position `i` can participate in a match with some member only if
/// `qᵢ` falls within the wedge envelope widened by the temporal window
/// `δ` and the amplitude threshold `ε` (cf. the "matching envelope" of
/// Figure 14). Counting such positions can only overestimate the true
/// match count.
// lint: panic-exempt(query/wedge length equality is validated at snapshot admission; the assert documents the kernel contract)
// lint: witness-exempt(pure delegation to lcss_distance_lower_bound_with, which carries the [0, 1] admissibility witness on the shared return path)
pub fn lcss_distance_lower_bound(
    q: &[f64],
    wedge: &Wedge,
    params: LcssParams,
    counter: &mut StepCounter,
) -> f64 {
    lcss_distance_lower_bound_with(q, wedge, params, &mut ImprovedScratch::new(), counter)
}

/// [`lcss_distance_lower_bound`] with caller-owned scratch: the
/// `δ`-widened envelope is built into reused sliding-window buffers
/// instead of materialising a whole widened [`Wedge`] (members, abandon
/// order and all) per call, making the LCSS scan hot path
/// allocation-free per candidate.
// lint: panic-exempt(query/wedge length equality is validated at snapshot admission; the assert documents the kernel contract)
pub fn lcss_distance_lower_bound_with(
    q: &[f64],
    wedge: &Wedge,
    params: LcssParams,
    scratch: &mut ImprovedScratch,
    counter: &mut StepCounter,
) -> f64 {
    assert_eq!(q.len(), wedge.len(), "lcss bound: length mismatch");
    let s = scratch;
    crate::envelope::sliding_max_into(wedge.upper(), params.delta, &mut s.win, &mut s.proj_up);
    crate::envelope::sliding_min_into(wedge.lower(), params.delta, &mut s.win, &mut s.proj_lo);
    // One step per scanned position, as the historical per-element loop
    // charged (the widening rides free there and here alike, keeping
    // committed step baselines identical).
    counter.add(q.len() as u64);
    let possible = q
        .iter()
        .zip(&s.proj_lo)
        .zip(&s.proj_up)
        .filter(|((&x, &l), &u)| x >= l - params.epsilon && x <= u + params.epsilon)
        .count();
    let lb = 1.0 - possible as f64 / q.len() as f64;
    // Admissibility witness: the LCSS distance lives in [0, 1], so any
    // bound outside that interval is inadmissible on its face (the full
    // member-wise `lb <= lcss_distance` check is the proptest's job —
    // members are not available here).
    debug_assert!((0.0..=1.0).contains(&lb), "lcss bound {lb} escapes [0, 1]");
    lb
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotind_distance::dtw::{dtw, DtwParams};
    use rotind_distance::euclidean::euclidean;
    use rotind_distance::lcss::lcss_distance;
    use rotind_ts::rotate::{Rotation, RotationMatrix};

    fn steps() -> StepCounter {
        StepCounter::new()
    }

    fn signal(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37 + phase).sin() + 0.4 * (i as f64 * 0.91).cos())
            .collect()
    }

    #[test]
    fn degenerates_to_euclidean_on_singleton() {
        let c = signal(24, 0.0);
        let q = signal(24, 1.0);
        let w = Wedge::from_single(&c, Rotation::shift(0));
        let lb = lb_keogh(&q, &w, &mut steps());
        assert!((lb - euclidean(&q, &c)).abs() < 1e-12);
    }

    #[test]
    fn proposition_1_lower_bounds_every_member() {
        let c = signal(32, 0.0);
        let m = RotationMatrix::full(&c).unwrap();
        let rows: Vec<usize> = vec![0, 1, 2, 5, 9, 20];
        let w = Wedge::from_rows(&m, &rows);
        let q = signal(32, 2.2);
        let lb = lb_keogh(&q, &w, &mut steps());
        for &row in &rows {
            let d = euclidean(&q, &m.row(row).to_vec());
            assert!(lb <= d + 1e-12, "row {row}: lb {lb} > ed {d}");
        }
    }

    #[test]
    fn zero_inside_the_wedge() {
        let c = signal(16, 0.0);
        let m = RotationMatrix::full(&c).unwrap();
        let w = Wedge::from_rows(&m, &[0, 1, 2, 3]);
        // Any member is inside its own wedge → bound 0.
        let lb = lb_keogh(&m.row(2).to_vec(), &w, &mut steps());
        assert_eq!(lb, 0.0);
    }

    #[test]
    fn early_abandon_agrees_with_plain() {
        let c = signal(40, 0.0);
        let m = RotationMatrix::full(&c).unwrap();
        let w = Wedge::from_rows(&m, &[0, 4, 8]);
        let q = signal(40, 2.8);
        let exact = lb_keogh(&q, &w, &mut steps());
        // A shrunken radius only forces an abandon when the exact bound
        // is positive: at exact == 0 the radius 0.9·exact is also 0, the
        // accumulator never exceeds r² = 0, and Some(0) is the correct
        // (inclusive) answer — asserting an abandon there is spurious.
        if exact > 0.0 {
            match lb_keogh_early_abandon(&q, &w, exact * 0.9, &mut steps()) {
                None => {} // abandoned, consistent with exact > 0.9·exact
                Some(_) => panic!("must abandon below the exact bound"),
            }
        }
        let kept = lb_keogh_early_abandon(&q, &w, exact + 1.0, &mut steps()).unwrap();
        assert!((kept - exact).abs() < 1e-12);
    }

    #[test]
    fn zero_radius_zero_bound_is_admitted() {
        // r == 0 with the query inside the wedge: the accumulator stays
        // 0, `0 > 0²` never fires, and the bound is returned — dismissal
        // is strict, so a candidate at exactly the radius survives.
        let c = signal(16, 0.0);
        let m = RotationMatrix::full(&c).unwrap();
        let w = Wedge::from_rows(&m, &[0, 1, 2, 3]);
        let inside = m.row(1).to_vec();
        let got = lb_keogh_early_abandon(&inside, &w, 0.0, &mut steps());
        assert_eq!(got, Some(0.0));
        // The degenerate radius 0.9 · 0.0 behaves identically.
        let shrunk = lb_keogh_early_abandon(&inside, &w, 0.0 * 0.9, &mut steps());
        assert_eq!(shrunk, Some(0.0));
    }

    #[test]
    fn zero_radius_positive_bound_abandons_immediately() {
        // r == 0 with the query outside the envelope: the first positive
        // contribution exceeds r² = 0 and the scan abandons right there.
        let c = vec![0.0; 8];
        let w = Wedge::from_single(&c, Rotation::shift(0));
        let mut q = vec![0.0; 8];
        q[0] = 1.0;
        let mut s = steps();
        assert_eq!(lb_keogh_early_abandon_at(&q, &w, 0.0, &mut s), Err(1));
        assert_eq!(s.steps(), 1);
    }

    #[test]
    fn early_abandon_saves_steps() {
        let n = 128;
        let c = vec![0.0; n];
        let w = Wedge::from_single(&c, Rotation::shift(0));
        let mut q = vec![0.0; n];
        q[0] = 100.0;
        let mut s = steps();
        assert!(lb_keogh_early_abandon(&q, &w, 1.0, &mut s).is_none());
        assert_eq!(s.steps(), 1);
    }

    #[test]
    fn abandon_position_matches_step_count() {
        let n = 64;
        let c = vec![0.0; n];
        let w = Wedge::from_single(&c, Rotation::shift(0));
        for spike_at in [0usize, 13, 40, 63] {
            let mut q = vec![0.0; n];
            q[spike_at] = 100.0;
            let mut s = steps();
            let pos = lb_keogh_early_abandon_at(&q, &w, 1.0, &mut s)
                .expect_err("spiked query must abandon");
            assert_eq!(pos, spike_at + 1, "abandons right after the spike");
            assert_eq!(s.steps(), pos as u64, "position equals the steps paid");
        }
        // Without a spike and a generous radius there is no abandon.
        let q = vec![0.0; n];
        let val = lb_keogh_early_abandon_at(&q, &w, 1.0, &mut steps()).unwrap();
        assert_eq!(val, 0.0);
    }

    #[test]
    fn merged_wedge_bound_is_looser() {
        // Figure 8: bigger wedges give smaller (looser) bounds.
        let c = signal(28, 0.0);
        let m = RotationMatrix::full(&c).unwrap();
        let small = Wedge::from_rows(&m, &[0, 1]);
        let big = Wedge::merge(&small, &Wedge::from_rows(&m, &[14]));
        let q = signal(28, 1.7);
        let lb_small = lb_keogh(&q, &small, &mut steps());
        let lb_big = lb_keogh(&q, &big, &mut steps());
        assert!(lb_big <= lb_small + 1e-12);
    }

    #[test]
    fn proposition_2_lower_bounds_dtw() {
        let c = signal(30, 0.0);
        let m = RotationMatrix::full(&c).unwrap();
        let rows: Vec<usize> = vec![0, 3, 6, 12];
        let w = Wedge::from_rows(&m, &rows);
        let q = signal(30, 2.5);
        for band in [0usize, 1, 3, 7] {
            let wide = w.widened(band);
            let lb = lb_keogh(&q, &wide, &mut steps());
            for &row in &rows {
                let d = dtw(&q, &m.row(row).to_vec(), DtwParams::new(band), &mut steps());
                assert!(lb <= d + 1e-9, "band {band}, row {row}: lb {lb} > dtw {d}");
            }
        }
    }

    #[test]
    fn lcss_bound_is_admissible() {
        let c = signal(26, 0.0);
        let m = RotationMatrix::full(&c).unwrap();
        let rows: Vec<usize> = vec![0, 2, 4];
        let w = Wedge::from_rows(&m, &rows);
        let q = signal(26, 1.2);
        let params = LcssParams::for_normalized(26);
        let lb = lcss_distance_lower_bound(&q, &w, params, &mut steps());
        for &row in &rows {
            let d = lcss_distance(&q, &m.row(row).to_vec(), params, &mut steps());
            assert!(lb <= d + 1e-12, "row {row}: lb {lb} > lcss {d}");
        }
    }

    #[test]
    fn lcss_bound_detects_gross_mismatch() {
        let c = vec![0.0; 20];
        let w = Wedge::from_single(&c, Rotation::shift(0));
        let q = vec![100.0; 20];
        let params = LcssParams::new(0.5, 2);
        let lb = lcss_distance_lower_bound(&q, &w, params, &mut steps());
        assert_eq!(lb, 1.0, "no position can possibly match");
    }

    #[test]
    fn lb_kim_is_admissible_and_costs_two_steps() {
        let c = signal(30, 0.0);
        let m = RotationMatrix::full(&c).unwrap();
        let rows: Vec<usize> = vec![0, 2, 7, 19];
        let w = Wedge::from_rows(&m, &rows);
        let q = signal(30, 2.1);
        let mut s = steps();
        let kim = lb_kim(&q, &w, &mut s);
        assert_eq!(s.steps(), 2, "endpoint bound is O(1)");
        let keogh = lb_keogh(&q, &w, &mut steps());
        assert!(kim <= keogh + 1e-12, "kim {kim} > keogh {keogh}");
        for &row in &rows {
            let d = euclidean(&q, &m.row(row).to_vec());
            assert!(kim <= d + 1e-12, "row {row}: kim {kim} > ed {d}");
        }
        // Widened wedge: admissible against banded DTW (boundary cells).
        for band in [1usize, 4] {
            let kim_w = lb_kim(&q, &w.widened(band), &mut steps());
            for &row in &rows {
                let d = dtw(&q, &m.row(row).to_vec(), DtwParams::new(band), &mut steps());
                assert!(kim_w <= d + 1e-9, "band {band} row {row}");
            }
        }
    }

    #[test]
    fn reordered_keogh_matches_natural_sum_and_abandons_sooner() {
        let c = signal(48, 0.0);
        let m = RotationMatrix::full(&c).unwrap();
        let w = Wedge::from_rows(&m, &[0, 3, 9, 30]);
        let q = signal(48, 2.6);
        let natural = lb_keogh(&q, &w, &mut steps());
        let reordered = lb_keogh_reordered_early_abandon_at(&q, &w, f64::INFINITY, &mut steps())
            .expect("infinite radius never abandons");
        assert!(
            (natural - reordered).abs() < 1e-9,
            "same sum up to fp reassociation"
        );
        // A far spike late in the series: natural order pays almost the
        // whole scan, the contribution order pays one term.
        let n = 64;
        let mut member = vec![0.0; n];
        member[n - 2] = 100.0;
        let spiked = Wedge::from_single(&member, Rotation::shift(0));
        let q0 = vec![0.0; n];
        let mut nat = steps();
        let pos = lb_keogh_early_abandon_at(&q0, &spiked, 1.0, &mut nat)
            .expect_err("spike forces abandon");
        assert_eq!(pos, n - 1);
        let mut reo = steps();
        let terms = lb_keogh_reordered_early_abandon_at(&q0, &spiked, 1.0, &mut reo)
            .expect_err("spike forces abandon");
        assert_eq!(terms, 1, "largest contribution is accumulated first");
        assert!(reo.steps() < nat.steps());
    }

    #[test]
    fn lb_improved_dominates_lb_keogh_and_stays_admissible() {
        let c = signal(36, 0.0);
        let m = RotationMatrix::full(&c).unwrap();
        let rows: Vec<usize> = vec![0, 4, 11, 18];
        let w = Wedge::from_rows(&m, &rows);
        let q = signal(36, 2.9);
        for band in [0usize, 1, 3, 6] {
            let wide = w.widened(band);
            let keogh = lb_keogh(&q, &wide, &mut steps());
            let improved = lb_improved(&q, &w, &wide, band, &mut steps());
            assert!(
                improved >= keogh - 1e-12,
                "band {band}: improved {improved} < keogh {keogh}"
            );
            for &row in &rows {
                let d = dtw(&q, &m.row(row).to_vec(), DtwParams::new(band), &mut steps());
                assert!(
                    improved <= d + 1e-9,
                    "band {band} row {row}: improved {improved} > dtw {d}"
                );
            }
        }
    }

    #[test]
    fn lb_improved_second_pass_dismissal_is_strict() {
        let c = signal(32, 0.0);
        let m = RotationMatrix::full(&c).unwrap();
        let w = Wedge::from_rows(&m, &[0, 5]);
        let wide = w.widened(2);
        let q = signal(32, 1.9);
        let first = lb_keogh(&q, &wide, &mut steps());
        let full = lb_improved(&q, &w, &wide, 2, &mut steps());
        assert!(full > 0.0, "test needs a non-trivial bound");
        let mut scratch = ImprovedScratch::new();
        // Radius exactly at the bound: inclusive, never dismissed.
        let at = lb_improved_second_pass(
            &q,
            &w,
            &wide,
            2,
            first * first,
            full,
            &mut scratch,
            &mut steps(),
        );
        assert_eq!(at, Some(full));
        // Radius below the bound: dismissed.
        let below = lb_improved_second_pass(
            &q,
            &w,
            &wide,
            2,
            first * first,
            full * 0.99,
            &mut scratch,
            &mut steps(),
        );
        assert_eq!(below, None);
    }

    #[test]
    fn lb_improved_second_pass_is_zero_at_band_zero() {
        let c = signal(20, 0.0);
        let m = RotationMatrix::full(&c).unwrap();
        let w = Wedge::from_rows(&m, &[0, 2, 6]);
        let q = signal(20, 3.3);
        let keogh = lb_keogh(&q, &w, &mut steps());
        let improved = lb_improved(&q, &w, &w, 0, &mut steps());
        assert!(
            (improved - keogh).abs() < 1e-12,
            "projection lies inside the plain envelope, second pass adds 0"
        );
    }

    #[test]
    fn step_accounting() {
        let c = signal(33, 0.0);
        let w = Wedge::from_single(&c, Rotation::shift(0));
        let q = signal(33, 0.5);
        let mut s = steps();
        lb_keogh(&q, &w, &mut s);
        assert_eq!(s.steps(), 33);
    }
}
