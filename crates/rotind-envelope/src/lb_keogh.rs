//! The LB_Keogh family of envelope lower bounds.
//!
//! For a query `Q` and a wedge `W = {U, L}` enclosing candidates
//! `C1..Ck`:
//!
//! ```text
//! LB_Keogh(Q, W) = sqrt( Σᵢ  (qᵢ−Uᵢ)²  if qᵢ > Uᵢ
//!                        (qᵢ−Lᵢ)²  if qᵢ < Lᵢ
//!                        0          otherwise )
//! ```
//!
//! **Proposition 1**: `LB_Keogh(Q, W) ≤ ED(Q, Cs)` for every member `Cs`.
//! **Proposition 2**: with the wedge widened by the warping radius `R`,
//! `LB_Keogh(Q, DTW_W) ≤ DTW_R(Q, Cs)`. The same envelope argument gives
//! an *upper* bound on LCSS similarity, i.e. a lower bound on the LCSS
//! distance form. All three are exercised by the property tests.

use crate::wedge::Wedge;
use rotind_distance::lcss::LcssParams;
use rotind_ts::StepCounter;

/// Plain `LB_Keogh(Q, W)`; one step per position.
///
/// ```
/// use rotind_envelope::{Wedge, lb_keogh::lb_keogh};
/// use rotind_ts::rotate::{Rotation, RotationMatrix};
/// use rotind_ts::StepCounter;
/// let c = [0.0, 1.0, 2.0, 1.0, 0.0, -1.0];
/// let matrix = RotationMatrix::full(&c).unwrap();
/// let wedge = Wedge::from_rows(&matrix, &[0, 1, 2]);
/// let q = [5.0, 5.0, 5.0, 5.0, 5.0, 5.0];
/// let lb = lb_keogh(&q, &wedge, &mut StepCounter::new());
/// // Proposition 1: lb never exceeds the Euclidean distance to any member.
/// for row in 0..3 {
///     let member = matrix.row(row).to_vec();
///     let ed: f64 = q.iter().zip(&member).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
///     assert!(lb <= ed + 1e-12);
/// }
/// ```
///
/// # Panics
///
/// Panics when `q.len() != wedge.len()`.
pub fn lb_keogh(q: &[f64], wedge: &Wedge, counter: &mut StepCounter) -> f64 {
    lb_keogh_early_abandon(q, wedge, f64::INFINITY, counter)
        // Invariant: `acc > r²` is unsatisfiable for r = ∞, so the
        // early-abandon path cannot return None.
        // rotind-lint: allow(no-panic)
        .expect("infinite radius never abandons")
}

/// Dynamic half of the exactness gate: in debug builds, assert that a
/// lower bound is admissible against a true distance computed for the
/// same pair. Call this wherever both values exist (the static
/// `lb-coverage` lint guarantees a property test exists; this catches
/// the regressions that slip between property-test runs). Non-finite
/// inputs are ignored — an overflowed distance is not a soundness bug.
///
/// Compiled out entirely in release builds.
#[inline]
pub fn debug_assert_admissible(lb: f64, true_distance: f64) {
    debug_assert!(
        !(lb.is_finite() && true_distance.is_finite()) || lb <= true_distance + SOUNDNESS_EPS,
        "unsound lower bound: lb {lb} > true distance {true_distance} + {SOUNDNESS_EPS}"
    );
}

/// Absolute slack for [`debug_assert_admissible`]: generous enough for
/// accumulated f64 rounding over long series, far below any real
/// tightening bug (which shows up at the magnitude of the data).
pub const SOUNDNESS_EPS: f64 = 1e-6;

/// `EA_LB_Keogh` (Table 5): early-abandoning LB_Keogh. Returns `None` as
/// soon as the accumulated bound exceeds `r²` — at that point *no* member
/// of the wedge can be within `r` of the query.
///
/// Dismissal is strict in reported-bound space: because `fl(r·r)` can
/// round below the accumulator of a bound equal to `r` as a float, the
/// boundary is settled by `√acc > r` (evaluated only on the abandon
/// path). A wedge whose bound equals `r` exactly is always admitted.
pub fn lb_keogh_early_abandon(
    q: &[f64],
    wedge: &Wedge,
    r: f64,
    counter: &mut StepCounter,
) -> Option<f64> {
    lb_keogh_early_abandon_at(q, wedge, r, counter).ok()
}

/// [`lb_keogh_early_abandon`] that also reports *where* an abandon
/// happened: `Err(position)` carries the number of query positions
/// consumed before the accumulated bound provably exceeded `r`. Search
/// telemetry (the `SearchObserver` in `rotind-obs`) uses the position to
/// build abandon-depth histograms; the bound itself is unchanged.
pub fn lb_keogh_early_abandon_at(
    q: &[f64],
    wedge: &Wedge,
    r: f64,
    counter: &mut StepCounter,
) -> Result<f64, usize> {
    assert_eq!(q.len(), wedge.len(), "lb_keogh: length mismatch");
    let r2 = r * r;
    let upper = wedge.upper();
    let lower = wedge.lower();
    let mut acc = 0.0;
    for i in 0..q.len() {
        let x = q[i];
        counter.tick();
        if x > upper[i] {
            let d = x - upper[i];
            acc += d * d;
        } else if x < lower[i] {
            let d = x - lower[i];
            acc += d * d;
        }
        if acc > r2 && acc.sqrt() > r {
            return Err(i + 1);
        }
    }
    let lb = acc.sqrt();
    // Debug-only self-check of Proposition 1: every series inside the
    // envelope (the envelope curves themselves included, since L ≤ U
    // pointwise) must sit at least `lb` away from the query. A witness
    // closer than the bound means the bound over-tightened.
    #[cfg(debug_assertions)]
    {
        let ed = |w: &[f64]| {
            q.iter()
                .zip(w)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        };
        debug_assert_admissible(lb, ed(upper));
        debug_assert_admissible(lb, ed(lower));
    }
    Ok(lb)
}

/// LCSS envelope bound: an *upper* bound on the LCSS match count of the
/// query against every wedge member, hence a lower bound on the LCSS
/// distance form `1 − count/n`.
///
/// A position `i` can participate in a match with some member only if
/// `qᵢ` falls within the wedge envelope widened by the temporal window
/// `δ` and the amplitude threshold `ε` (cf. the "matching envelope" of
/// Figure 14). Counting such positions can only overestimate the true
/// match count.
pub fn lcss_distance_lower_bound(
    q: &[f64],
    wedge: &Wedge,
    params: LcssParams,
    counter: &mut StepCounter,
) -> f64 {
    assert_eq!(q.len(), wedge.len(), "lcss bound: length mismatch");
    let widened = wedge.widened(params.delta);
    let mut possible = 0usize;
    #[allow(clippy::needless_range_loop)] // index used across multiple slices
    for i in 0..q.len() {
        counter.tick();
        if q[i] >= widened.lower()[i] - params.epsilon
            && q[i] <= widened.upper()[i] + params.epsilon
        {
            possible += 1;
        }
    }
    let lb = 1.0 - possible as f64 / q.len() as f64;
    // Admissibility witness: the LCSS distance lives in [0, 1], so any
    // bound outside that interval is inadmissible on its face (the full
    // member-wise `lb <= lcss_distance` check is the proptest's job —
    // members are not available here).
    debug_assert!((0.0..=1.0).contains(&lb), "lcss bound {lb} escapes [0, 1]");
    lb
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotind_distance::dtw::{dtw, DtwParams};
    use rotind_distance::euclidean::euclidean;
    use rotind_distance::lcss::lcss_distance;
    use rotind_ts::rotate::{Rotation, RotationMatrix};

    fn steps() -> StepCounter {
        StepCounter::new()
    }

    fn signal(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37 + phase).sin() + 0.4 * (i as f64 * 0.91).cos())
            .collect()
    }

    #[test]
    fn degenerates_to_euclidean_on_singleton() {
        let c = signal(24, 0.0);
        let q = signal(24, 1.0);
        let w = Wedge::from_single(&c, Rotation::shift(0));
        let lb = lb_keogh(&q, &w, &mut steps());
        assert!((lb - euclidean(&q, &c)).abs() < 1e-12);
    }

    #[test]
    fn proposition_1_lower_bounds_every_member() {
        let c = signal(32, 0.0);
        let m = RotationMatrix::full(&c).unwrap();
        let rows: Vec<usize> = vec![0, 1, 2, 5, 9, 20];
        let w = Wedge::from_rows(&m, &rows);
        let q = signal(32, 2.2);
        let lb = lb_keogh(&q, &w, &mut steps());
        for &row in &rows {
            let d = euclidean(&q, &m.row(row).to_vec());
            assert!(lb <= d + 1e-12, "row {row}: lb {lb} > ed {d}");
        }
    }

    #[test]
    fn zero_inside_the_wedge() {
        let c = signal(16, 0.0);
        let m = RotationMatrix::full(&c).unwrap();
        let w = Wedge::from_rows(&m, &[0, 1, 2, 3]);
        // Any member is inside its own wedge → bound 0.
        let lb = lb_keogh(&m.row(2).to_vec(), &w, &mut steps());
        assert_eq!(lb, 0.0);
    }

    #[test]
    fn early_abandon_agrees_with_plain() {
        let c = signal(40, 0.0);
        let m = RotationMatrix::full(&c).unwrap();
        let w = Wedge::from_rows(&m, &[0, 4, 8]);
        let q = signal(40, 2.8);
        let exact = lb_keogh(&q, &w, &mut steps());
        // A shrunken radius only forces an abandon when the exact bound
        // is positive: at exact == 0 the radius 0.9·exact is also 0, the
        // accumulator never exceeds r² = 0, and Some(0) is the correct
        // (inclusive) answer — asserting an abandon there is spurious.
        if exact > 0.0 {
            match lb_keogh_early_abandon(&q, &w, exact * 0.9, &mut steps()) {
                None => {} // abandoned, consistent with exact > 0.9·exact
                Some(_) => panic!("must abandon below the exact bound"),
            }
        }
        let kept = lb_keogh_early_abandon(&q, &w, exact + 1.0, &mut steps()).unwrap();
        assert!((kept - exact).abs() < 1e-12);
    }

    #[test]
    fn zero_radius_zero_bound_is_admitted() {
        // r == 0 with the query inside the wedge: the accumulator stays
        // 0, `0 > 0²` never fires, and the bound is returned — dismissal
        // is strict, so a candidate at exactly the radius survives.
        let c = signal(16, 0.0);
        let m = RotationMatrix::full(&c).unwrap();
        let w = Wedge::from_rows(&m, &[0, 1, 2, 3]);
        let inside = m.row(1).to_vec();
        let got = lb_keogh_early_abandon(&inside, &w, 0.0, &mut steps());
        assert_eq!(got, Some(0.0));
        // The degenerate radius 0.9 · 0.0 behaves identically.
        let shrunk = lb_keogh_early_abandon(&inside, &w, 0.0 * 0.9, &mut steps());
        assert_eq!(shrunk, Some(0.0));
    }

    #[test]
    fn zero_radius_positive_bound_abandons_immediately() {
        // r == 0 with the query outside the envelope: the first positive
        // contribution exceeds r² = 0 and the scan abandons right there.
        let c = vec![0.0; 8];
        let w = Wedge::from_single(&c, Rotation::shift(0));
        let mut q = vec![0.0; 8];
        q[0] = 1.0;
        let mut s = steps();
        assert_eq!(lb_keogh_early_abandon_at(&q, &w, 0.0, &mut s), Err(1));
        assert_eq!(s.steps(), 1);
    }

    #[test]
    fn early_abandon_saves_steps() {
        let n = 128;
        let c = vec![0.0; n];
        let w = Wedge::from_single(&c, Rotation::shift(0));
        let mut q = vec![0.0; n];
        q[0] = 100.0;
        let mut s = steps();
        assert!(lb_keogh_early_abandon(&q, &w, 1.0, &mut s).is_none());
        assert_eq!(s.steps(), 1);
    }

    #[test]
    fn abandon_position_matches_step_count() {
        let n = 64;
        let c = vec![0.0; n];
        let w = Wedge::from_single(&c, Rotation::shift(0));
        for spike_at in [0usize, 13, 40, 63] {
            let mut q = vec![0.0; n];
            q[spike_at] = 100.0;
            let mut s = steps();
            let pos = lb_keogh_early_abandon_at(&q, &w, 1.0, &mut s)
                .expect_err("spiked query must abandon");
            assert_eq!(pos, spike_at + 1, "abandons right after the spike");
            assert_eq!(s.steps(), pos as u64, "position equals the steps paid");
        }
        // Without a spike and a generous radius there is no abandon.
        let q = vec![0.0; n];
        let val = lb_keogh_early_abandon_at(&q, &w, 1.0, &mut steps()).unwrap();
        assert_eq!(val, 0.0);
    }

    #[test]
    fn merged_wedge_bound_is_looser() {
        // Figure 8: bigger wedges give smaller (looser) bounds.
        let c = signal(28, 0.0);
        let m = RotationMatrix::full(&c).unwrap();
        let small = Wedge::from_rows(&m, &[0, 1]);
        let big = Wedge::merge(&small, &Wedge::from_rows(&m, &[14]));
        let q = signal(28, 1.7);
        let lb_small = lb_keogh(&q, &small, &mut steps());
        let lb_big = lb_keogh(&q, &big, &mut steps());
        assert!(lb_big <= lb_small + 1e-12);
    }

    #[test]
    fn proposition_2_lower_bounds_dtw() {
        let c = signal(30, 0.0);
        let m = RotationMatrix::full(&c).unwrap();
        let rows: Vec<usize> = vec![0, 3, 6, 12];
        let w = Wedge::from_rows(&m, &rows);
        let q = signal(30, 2.5);
        for band in [0usize, 1, 3, 7] {
            let wide = w.widened(band);
            let lb = lb_keogh(&q, &wide, &mut steps());
            for &row in &rows {
                let d = dtw(&q, &m.row(row).to_vec(), DtwParams::new(band), &mut steps());
                assert!(lb <= d + 1e-9, "band {band}, row {row}: lb {lb} > dtw {d}");
            }
        }
    }

    #[test]
    fn lcss_bound_is_admissible() {
        let c = signal(26, 0.0);
        let m = RotationMatrix::full(&c).unwrap();
        let rows: Vec<usize> = vec![0, 2, 4];
        let w = Wedge::from_rows(&m, &rows);
        let q = signal(26, 1.2);
        let params = LcssParams::for_normalized(26);
        let lb = lcss_distance_lower_bound(&q, &w, params, &mut steps());
        for &row in &rows {
            let d = lcss_distance(&q, &m.row(row).to_vec(), params, &mut steps());
            assert!(lb <= d + 1e-12, "row {row}: lb {lb} > lcss {d}");
        }
    }

    #[test]
    fn lcss_bound_detects_gross_mismatch() {
        let c = vec![0.0; 20];
        let w = Wedge::from_single(&c, Rotation::shift(0));
        let q = vec![100.0; 20];
        let params = LcssParams::new(0.5, 2);
        let lb = lcss_distance_lower_bound(&q, &w, params, &mut steps());
        assert_eq!(lb, 1.0, "no position can possibly match");
    }

    #[test]
    fn step_accounting() {
        let c = signal(33, 0.0);
        let w = Wedge::from_single(&c, Rotation::shift(0));
        let q = signal(33, 0.5);
        let mut s = steps();
        lb_keogh(&q, &w, &mut s);
        assert_eq!(s.steps(), 33);
    }
}
