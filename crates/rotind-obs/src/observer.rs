//! The [`SearchObserver`] callback trait threaded through the wedge
//! engine.
//!
//! Every callback has an empty default body, and the engine's search
//! entry points are generic over the observer, so a search running with
//! [`NoopObserver`] monomorphizes to *exactly* the un-instrumented code
//! (verified by the `observer_overhead` benchmark in `rotind-bench`).
//! Observers must never influence the search — they receive values, they
//! do not return any.

/// One tier of the admissible-bound cascade the engine runs per
/// (candidate, wedge) pair, in strictly increasing cost order. Lives
/// here (not in `rotind-index`) so observers can attribute prunes to
/// tiers without a dependency cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CascadeTier {
    /// Tier 1: the `O(1)` endpoint (LB_Kim-style) bound.
    Kim,
    /// Tier 2: the reduced-space (PAA) bound.
    Reduced,
    /// Tier 3: full LB_Keogh with (reordered) early abandoning.
    Keogh,
    /// Tier 4: the LB_Improved second pass.
    Improved,
}

impl CascadeTier {
    /// All tiers in cascade (increasing cost) order.
    pub const ALL: [CascadeTier; 4] = [
        CascadeTier::Kim,
        CascadeTier::Reduced,
        CascadeTier::Keogh,
        CascadeTier::Improved,
    ];

    /// Dense index of this tier in [`CascadeTier::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            CascadeTier::Kim => 0,
            CascadeTier::Reduced => 1,
            CascadeTier::Keogh => 2,
            CascadeTier::Improved => 3,
        }
    }

    /// Stable lowercase name (matches the `ROTIND_CASCADE` env values).
    #[inline]
    pub fn name(self) -> &'static str {
        match self {
            CascadeTier::Kim => "kim",
            CascadeTier::Reduced => "reduced",
            CascadeTier::Keogh => "keogh",
            CascadeTier::Improved => "improved",
        }
    }
}

/// A nestable phase of query execution, reported through
/// [`SearchObserver::on_phase_start`] / [`on_phase_end`] so a profiler
/// can build the span tree `query → wedge-merge → tier → distance`
/// (DESIGN.md §13).
///
/// Phases strictly nest: a `start` is always matched by an `end` of the
/// same phase before the enclosing phase ends, even when the search
/// inside is cut short by a budget.
///
/// [`on_phase_end`]: SearchObserver::on_phase_end
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfilePhase {
    /// One whole query: a `nearest`/`k_nearest`/`range` call.
    Query,
    /// One H-Merge candidate evaluation — the full cascade walk for a
    /// single database series.
    WedgeMerge,
    /// One cascade-tier bound evaluation inside a wedge merge.
    Tier(CascadeTier),
    /// One true distance call at a leaf (a single rotation).
    Distance,
}

impl ProfilePhase {
    /// Stable dotted name used in span trees, folded stacks and chrome
    /// trace events.
    #[inline]
    pub fn name(self) -> &'static str {
        match self {
            ProfilePhase::Query => "query",
            ProfilePhase::WedgeMerge => "wedge_merge",
            ProfilePhase::Tier(CascadeTier::Kim) => "tier.kim",
            ProfilePhase::Tier(CascadeTier::Reduced) => "tier.reduced",
            ProfilePhase::Tier(CascadeTier::Keogh) => "tier.keogh",
            ProfilePhase::Tier(CascadeTier::Improved) => "tier.improved",
            ProfilePhase::Distance => "distance",
        }
    }
}

/// Receives fine-grained events from a wedge search.
///
/// `level` in [`on_wedge_tested`](SearchObserver::on_wedge_tested) is the
/// descent depth below the H-Merge cut: the K cut wedges are level 0,
/// their children level 1, and so on down to the leaves.
pub trait SearchObserver {
    /// A wedge lower bound was computed. `pruned` is true when `lb`
    /// exceeded `best_so_far` and the subtree was discarded.
    #[inline]
    fn on_wedge_tested(&mut self, level: usize, lb: f64, best_so_far: f64, pruned: bool) {
        let _ = (level, lb, best_so_far, pruned);
    }

    /// A true distance was evaluated at a leaf (a single rotation).
    #[inline]
    fn on_leaf_distance(&mut self, distance: f64) {
        let _ = distance;
    }

    /// A lower-bound accumulation abandoned early at `position` (the
    /// number of series points consumed before the running sum crossed
    /// the best-so-far threshold).
    #[inline]
    fn on_early_abandon(&mut self, position: usize) {
        let _ = position;
    }

    /// The dynamic K planner moved from `old` to `new` wedges.
    /// `probing` is true when the change starts a measurement probe
    /// rather than adopting a measured winner.
    #[inline]
    fn on_k_change(&mut self, old: usize, new: usize, probing: bool) {
        let _ = (old, new, probing);
    }

    /// One cascade tier evaluated its bound for a (candidate, wedge)
    /// pair: `pruned` is true when this tier dismissed the wedge (no
    /// later tier ran). Fired *in addition to*
    /// [`on_wedge_tested`](SearchObserver::on_wedge_tested), which keeps
    /// its historical per-wedge semantics.
    #[inline]
    fn on_cascade_tier(&mut self, tier: CascadeTier, pruned: bool) {
        let _ = (tier, pruned);
    }

    /// A profiling phase opened. `steps` is the query counter's value
    /// at entry; the matching [`on_phase_end`] reports the value at
    /// exit, so a profiler attributes `end - start` steps to the phase
    /// without the engine paying for any clock read (wall-clock, when
    /// wanted, is the *observer's* job to measure inside the callback —
    /// [`NoopObserver`] pays literally nothing).
    ///
    /// [`on_phase_end`]: SearchObserver::on_phase_end
    #[inline]
    fn on_phase_start(&mut self, phase: ProfilePhase, steps: u64) {
        let _ = (phase, steps);
    }

    /// The innermost open phase closed; `phase` always matches the
    /// unmatched [`on_phase_start`]. `steps` is the query counter's
    /// value at exit.
    ///
    /// [`on_phase_start`]: SearchObserver::on_phase_start
    #[inline]
    fn on_phase_end(&mut self, phase: ProfilePhase, steps: u64) {
        let _ = (phase, steps);
    }
}

/// The do-nothing observer: the default for un-instrumented searches.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl SearchObserver for NoopObserver {}

/// A [`SearchObserver`] that can be split across worker threads and
/// recombined afterwards.
///
/// The parallel scan in `rotind-index` calls [`fork`] once per worker
/// thread to obtain an empty observer of the same configuration, moves
/// each child into its thread, and after the scope ends calls [`join`]
/// on the children **in thread-index order** — so joins are
/// deterministic and the merged aggregate equals the sum of the
/// per-thread parts. Event *interleaving* across threads is not
/// preserved (it does not exist); only aggregates are.
///
/// [`fork`]: ForkJoinObserver::fork
/// [`join`]: ForkJoinObserver::join
pub trait ForkJoinObserver: SearchObserver + Send {
    /// An empty observer with this observer's configuration, ready to
    /// record one worker's events.
    fn fork(&self) -> Self
    where
        Self: Sized;

    /// Fold a worker's recorded observations back into this observer.
    fn join(&mut self, child: Self)
    where
        Self: Sized;
}

impl ForkJoinObserver for NoopObserver {
    #[inline]
    fn fork(&self) -> Self {
        NoopObserver
    }

    #[inline]
    fn join(&mut self, _child: Self) {}
}

impl<O: SearchObserver + ?Sized> SearchObserver for &mut O {
    #[inline]
    fn on_wedge_tested(&mut self, level: usize, lb: f64, best_so_far: f64, pruned: bool) {
        (**self).on_wedge_tested(level, lb, best_so_far, pruned);
    }

    #[inline]
    fn on_leaf_distance(&mut self, distance: f64) {
        (**self).on_leaf_distance(distance);
    }

    #[inline]
    fn on_early_abandon(&mut self, position: usize) {
        (**self).on_early_abandon(position);
    }

    #[inline]
    fn on_k_change(&mut self, old: usize, new: usize, probing: bool) {
        (**self).on_k_change(old, new, probing);
    }

    #[inline]
    fn on_cascade_tier(&mut self, tier: CascadeTier, pruned: bool) {
        (**self).on_cascade_tier(tier, pruned);
    }

    #[inline]
    fn on_phase_start(&mut self, phase: ProfilePhase, steps: u64) {
        (**self).on_phase_start(phase, steps);
    }

    #[inline]
    fn on_phase_end(&mut self, phase: ProfilePhase, steps: u64) {
        (**self).on_phase_end(phase, steps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct CountingObserver {
        wedges: usize,
        leaves: usize,
        abandons: usize,
        k_changes: usize,
        tiers: usize,
        phases: usize,
    }

    impl SearchObserver for CountingObserver {
        fn on_wedge_tested(&mut self, _: usize, _: f64, _: f64, _: bool) {
            self.wedges += 1;
        }
        fn on_leaf_distance(&mut self, _: f64) {
            self.leaves += 1;
        }
        fn on_early_abandon(&mut self, _: usize) {
            self.abandons += 1;
        }
        fn on_k_change(&mut self, _: usize, _: usize, _: bool) {
            self.k_changes += 1;
        }
        fn on_cascade_tier(&mut self, _: CascadeTier, _: bool) {
            self.tiers += 1;
        }
        fn on_phase_start(&mut self, _: ProfilePhase, _: u64) {
            self.phases += 1;
        }
        fn on_phase_end(&mut self, _: ProfilePhase, _: u64) {
            self.phases += 1;
        }
    }

    fn drive<O: SearchObserver>(obs: &mut O) {
        obs.on_wedge_tested(0, 1.0, 2.0, false);
        obs.on_leaf_distance(1.5);
        obs.on_early_abandon(17);
        obs.on_k_change(8, 4, true);
        obs.on_cascade_tier(CascadeTier::Kim, true);
        obs.on_phase_start(ProfilePhase::Query, 0);
        obs.on_phase_end(ProfilePhase::Query, 10);
    }

    #[test]
    fn noop_observer_accepts_all_events() {
        drive(&mut NoopObserver);
    }

    #[test]
    fn mut_ref_forwards_all_events() {
        let mut obs = CountingObserver::default();
        // Drive through a &mut to exercise the forwarding impl, as the
        // engine's nested calls do.
        drive(&mut &mut obs);
        assert_eq!(
            (
                obs.wedges,
                obs.leaves,
                obs.abandons,
                obs.k_changes,
                obs.tiers,
                obs.phases
            ),
            (1, 1, 1, 1, 1, 2)
        );
    }

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(ProfilePhase::Query.name(), "query");
        assert_eq!(ProfilePhase::WedgeMerge.name(), "wedge_merge");
        assert_eq!(ProfilePhase::Tier(CascadeTier::Kim).name(), "tier.kim");
        assert_eq!(
            ProfilePhase::Tier(CascadeTier::Improved).name(),
            "tier.improved"
        );
        assert_eq!(ProfilePhase::Distance.name(), "distance");
    }

    #[test]
    fn tier_order_and_names_are_stable() {
        assert_eq!(CascadeTier::ALL.len(), 4);
        for (i, tier) in CascadeTier::ALL.iter().enumerate() {
            assert_eq!(tier.index(), i, "ALL is in cascade order");
        }
        let names: Vec<&str> = CascadeTier::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(names, ["kim", "reduced", "keogh", "improved"]);
    }
}
