//! [`QueryTrace`]: a ready-made [`SearchObserver`] that summarises one
//! (or many) wedge searches.
//!
//! The trace answers the questions `num_steps` alone cannot:
//!
//! - **Where does pruning happen?** Wedge tests and prunes are counted
//!   per descent level below the H-Merge cut (level 0 = the K cut
//!   wedges themselves).
//! - **How tight is LB_Keogh?** Each true leaf distance is paired with
//!   the lower bound that admitted it, and the ratio `lb / true_dist`
//!   is recorded in a `[0, 1]` histogram — mass near 1 means the bound
//!   is doing almost all the work.
//! - **How deep do early abandons run?** Abandon positions are recorded
//!   as the fraction of the series consumed before the running sum
//!   crossed the threshold.
//! - **What did the K planner do?** Every K change is logged with its
//!   position in the search (wedge-test sequence number) and whether it
//!   was a probe or an adoption.

use crate::metrics::{Histogram, MetricsRegistry};
use crate::observer::{CascadeTier, ForkJoinObserver, SearchObserver};
use std::fmt::Write as _;

/// One dynamic-K transition, in search order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KChange {
    /// Number of wedge tests performed before the change.
    pub seq: u64,
    /// K before the change.
    pub old: usize,
    /// K after the change.
    pub new: usize,
    /// True when the change starts a measurement probe, false when it
    /// adopts a measured winner.
    pub probing: bool,
}

/// Aggregating observer for wedge searches; see the module docs.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    series_len: usize,
    tested_by_level: Vec<u64>,
    pruned_by_level: Vec<u64>,
    leaf_count: u64,
    abandon_count: u64,
    tightness: Histogram,
    abandon_depth: Histogram,
    k_timeline: Vec<KChange>,
    wedge_seq: u64,
    last_unpruned_lb: Option<f64>,
    tier_tested: [u64; CascadeTier::ALL.len()],
    tier_pruned: [u64; CascadeTier::ALL.len()],
}

impl QueryTrace {
    /// A fresh trace for series of length `series_len` (used to express
    /// abandon depths as fractions; pass the query length).
    pub fn new(series_len: usize) -> Self {
        QueryTrace {
            series_len: series_len.max(1),
            tested_by_level: Vec::new(),
            pruned_by_level: Vec::new(),
            leaf_count: 0,
            abandon_count: 0,
            tightness: Histogram::ratio(),
            abandon_depth: Histogram::ratio(),
            k_timeline: Vec::new(),
            wedge_seq: 0,
            last_unpruned_lb: None,
            tier_tested: [0; CascadeTier::ALL.len()],
            tier_pruned: [0; CascadeTier::ALL.len()],
        }
    }

    /// Number of levels with at least one wedge test.
    pub fn levels(&self) -> usize {
        self.tested_by_level.len()
    }

    /// Wedge tests at `level` (0 = the H-Merge cut).
    pub fn tested(&self, level: usize) -> u64 {
        self.tested_by_level.get(level).copied().unwrap_or(0)
    }

    /// Prunes at `level`.
    pub fn pruned(&self, level: usize) -> u64 {
        self.pruned_by_level.get(level).copied().unwrap_or(0)
    }

    /// Fraction of wedge tests at `level` that pruned their subtree,
    /// or `None` when nothing was tested there.
    pub fn prune_rate(&self, level: usize) -> Option<f64> {
        let tested = self.tested(level);
        (tested > 0).then(|| self.pruned(level) as f64 / tested as f64)
    }

    /// Prune rate pooled over `level..` (used for the "level 2+"
    /// reporting column).
    pub fn prune_rate_from(&self, level: usize) -> Option<f64> {
        let tested: u64 = self.tested_by_level.iter().skip(level).sum();
        let pruned: u64 = self.pruned_by_level.iter().skip(level).sum();
        (tested > 0).then(|| pruned as f64 / tested as f64)
    }

    /// Total wedge tests across all levels.
    pub fn wedges_tested(&self) -> u64 {
        self.tested_by_level.iter().sum()
    }

    /// Total true leaf-distance evaluations.
    pub fn leaf_distances(&self) -> u64 {
        self.leaf_count
    }

    /// Total early abandons.
    pub fn early_abandons(&self) -> u64 {
        self.abandon_count
    }

    /// The `lb / true_dist` tightness histogram.
    pub fn tightness(&self) -> &Histogram {
        &self.tightness
    }

    /// The abandon-depth histogram (fraction of the series consumed).
    pub fn abandon_depth(&self) -> &Histogram {
        &self.abandon_depth
    }

    /// The K-planner timeline, in search order.
    pub fn k_timeline(&self) -> &[KChange] {
        &self.k_timeline
    }

    /// Bound evaluations by cascade tier.
    pub fn tier_tested(&self, tier: CascadeTier) -> u64 {
        self.tier_tested[tier.index()]
    }

    /// Dismissals attributed to a cascade tier (the tier whose bound
    /// exceeded best-so-far; later tiers never ran for that pair).
    pub fn tier_pruned(&self, tier: CascadeTier) -> u64 {
        self.tier_pruned[tier.index()]
    }

    /// Fraction of a tier's evaluations that pruned, or `None` when the
    /// tier never ran.
    pub fn tier_prune_rate(&self, tier: CascadeTier) -> Option<f64> {
        let tested = self.tier_tested(tier);
        (tested > 0).then(|| self.tier_pruned(tier) as f64 / tested as f64)
    }

    /// Total dismissals attributed to any cascade tier.
    pub fn tier_pruned_total(&self) -> u64 {
        self.tier_pruned.iter().sum()
    }

    /// Fold `other` into this trace (accumulate across queries).
    /// K changes keep their per-query sequence numbers.
    // lint: panic-exempt(both level vectors are resized to the shared maximum before the writes)
    pub fn merge(&mut self, other: &QueryTrace) {
        let levels = self.tested_by_level.len().max(other.tested_by_level.len());
        self.tested_by_level.resize(levels, 0);
        self.pruned_by_level.resize(levels, 0);
        for (i, &v) in other.tested_by_level.iter().enumerate() {
            self.tested_by_level[i] += v;
        }
        for (i, &v) in other.pruned_by_level.iter().enumerate() {
            self.pruned_by_level[i] += v;
        }
        self.leaf_count = self.leaf_count.saturating_add(other.leaf_count);
        self.abandon_count = self.abandon_count.saturating_add(other.abandon_count);
        self.tightness.merge(&other.tightness);
        self.abandon_depth.merge(&other.abandon_depth);
        self.k_timeline.extend_from_slice(&other.k_timeline);
        self.wedge_seq += other.wedge_seq;
        for i in 0..CascadeTier::ALL.len() {
            self.tier_tested[i] = self.tier_tested[i].saturating_add(other.tier_tested[i]);
            self.tier_pruned[i] = self.tier_pruned[i].saturating_add(other.tier_pruned[i]);
        }
    }

    /// Export the trace into a [`MetricsRegistry`] under `rotind_`
    /// metric names (see DESIGN.md, "Observability").
    pub fn export_to(&self, registry: &mut MetricsRegistry) {
        for level in 0..self.levels() {
            registry.counter_add(
                &format!("rotind_wedges_tested_l{level}"),
                self.tested(level),
            );
            registry.counter_add(
                &format!("rotind_wedges_pruned_l{level}"),
                self.pruned(level),
            );
        }
        for tier in CascadeTier::ALL {
            registry.counter_add(
                &format!("rotind_cascade_tested_{}", tier.name()),
                self.tier_tested(tier),
            );
            registry.counter_add(
                &format!("rotind_cascade_pruned_{}", tier.name()),
                self.tier_pruned(tier),
            );
        }
        registry.counter_add("rotind_leaf_distances_total", self.leaf_count);
        registry.counter_add("rotind_early_abandons_total", self.abandon_count);
        registry.counter_add("rotind_k_changes_total", self.k_timeline.len() as u64);
        registry
            .histogram("rotind_lb_tightness_ratio", Histogram::ratio)
            .merge(&self.tightness);
        registry
            .histogram("rotind_abandon_depth_fraction", Histogram::ratio)
            .merge(&self.abandon_depth);
        if let Some(last) = self.k_timeline.last() {
            registry.gauge_set("rotind_planner_k", last.new as f64);
        }
        for change in &self.k_timeline {
            registry.record_event(
                "k_change",
                &[
                    ("seq", change.seq as f64),
                    ("old", change.old as f64),
                    ("new", change.new as f64),
                    ("probing", if change.probing { 1.0 } else { 0.0 }),
                ],
            );
        }
    }

    /// Human-readable multi-line summary of the trace.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "wedge tests: {} | leaf distances: {} | early abandons: {}",
            self.wedges_tested(),
            self.leaf_count,
            self.abandon_count
        );
        for level in 0..self.levels() {
            let rate = self.prune_rate(level).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "  level {level}: tested {:>8}  pruned {:>8}  ({:.1}% pruned)",
                self.tested(level),
                self.pruned(level),
                100.0 * rate
            );
        }
        if self.tier_tested.iter().any(|&t| t > 0) {
            let _ = write!(out, "cascade tiers:");
            for tier in CascadeTier::ALL {
                if self.tier_tested(tier) > 0 {
                    let _ = write!(
                        out,
                        " [{} tested {} pruned {} ({:.1}%)]",
                        tier.name(),
                        self.tier_tested(tier),
                        self.tier_pruned(tier),
                        100.0 * self.tier_prune_rate(tier).unwrap_or(0.0)
                    );
                }
            }
            let _ = writeln!(out);
        }
        if let Some(mean) = self.tightness.mean() {
            let _ = writeln!(
                out,
                "lb tightness (lb/true over {} admitted leaves): mean {:.3}",
                self.tightness.count(),
                mean
            );
        }
        if let Some(mean) = self.abandon_depth.mean() {
            let _ = writeln!(
                out,
                "abandon depth (fraction of series): mean {:.3} over {} abandons",
                mean,
                self.abandon_depth.count()
            );
        }
        if self.k_timeline.is_empty() {
            let _ = writeln!(out, "k timeline: (no changes)");
        } else {
            let _ = write!(out, "k timeline:");
            for c in &self.k_timeline {
                let tag = if c.probing { "probe" } else { "adopt" };
                let _ = write!(out, " [{}@{} {}->{}]", tag, c.seq, c.old, c.new);
            }
            let _ = writeln!(out);
        }
        out
    }

    fn level_slot(&mut self, level: usize) {
        if level >= self.tested_by_level.len() {
            self.tested_by_level.resize(level + 1, 0);
            self.pruned_by_level.resize(level + 1, 0);
        }
    }
}

impl Default for QueryTrace {
    fn default() -> Self {
        QueryTrace::new(1)
    }
}

impl SearchObserver for QueryTrace {
    // lint: panic-exempt(level_slot grows both per-level vectors past level before the increments)
    fn on_wedge_tested(&mut self, level: usize, lb: f64, best_so_far: f64, pruned: bool) {
        let _ = best_so_far;
        self.wedge_seq += 1;
        self.level_slot(level);
        self.tested_by_level[level] += 1;
        if pruned {
            self.pruned_by_level[level] += 1;
        } else {
            // The engine fires the leaf's own wedge test immediately
            // before its true distance, so this pairs exactly.
            self.last_unpruned_lb = Some(lb);
        }
    }

    fn on_leaf_distance(&mut self, distance: f64) {
        self.leaf_count = self.leaf_count.saturating_add(1);
        if let Some(lb) = self.last_unpruned_lb.take() {
            let ratio = if distance > f64::EPSILON {
                (lb / distance).clamp(0.0, 1.0)
            } else {
                1.0 // exact match: the bound cannot be tighter
            };
            self.tightness.observe(ratio);
        }
    }

    fn on_early_abandon(&mut self, position: usize) {
        self.abandon_count = self.abandon_count.saturating_add(1);
        let fraction = (position as f64 / self.series_len as f64).clamp(0.0, 1.0);
        self.abandon_depth.observe(fraction);
    }

    fn on_k_change(&mut self, old: usize, new: usize, probing: bool) {
        self.k_timeline.push(KChange {
            seq: self.wedge_seq,
            old,
            new,
            probing,
        });
    }

    // lint: panic-exempt(CascadeTier::index is below the fixed tier-array length by construction)
    fn on_cascade_tier(&mut self, tier: CascadeTier, pruned: bool) {
        let i = tier.index();
        self.tier_tested[i] = self.tier_tested[i].saturating_add(1);
        if pruned {
            self.tier_pruned[i] = self.tier_pruned[i].saturating_add(1);
        }
    }
}

impl ForkJoinObserver for QueryTrace {
    /// A fresh trace for the same series length, ready for one worker.
    fn fork(&self) -> Self {
        QueryTrace::new(self.series_len)
    }

    /// [`QueryTrace::merge`] by value: aggregates add, the child's
    /// K timeline is appended after this trace's entries.
    fn join(&mut self, child: Self) {
        self.merge(&child);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_grow_and_count() {
        let mut t = QueryTrace::new(100);
        t.on_wedge_tested(0, 1.0, 5.0, true);
        t.on_wedge_tested(0, 1.0, 5.0, false);
        t.on_wedge_tested(2, 3.0, 5.0, true);
        assert_eq!(t.levels(), 3);
        assert_eq!(t.tested(0), 2);
        assert_eq!(t.pruned(0), 1);
        assert_eq!(t.tested(1), 0);
        assert_eq!(t.pruned(2), 1);
        assert_eq!(t.wedges_tested(), 3);
        assert_eq!(t.prune_rate(0), Some(0.5));
        assert_eq!(t.prune_rate(1), None);
        assert_eq!(t.prune_rate_from(1), Some(1.0));
    }

    #[test]
    fn tightness_pairs_lb_with_next_leaf() {
        let mut t = QueryTrace::new(100);
        t.on_wedge_tested(0, 4.0, 10.0, false);
        t.on_leaf_distance(5.0); // ratio 0.8
                                 // A pruned wedge must not leave a stale lb behind.
        t.on_wedge_tested(0, 9.0, 10.0, true);
        t.on_leaf_distance(2.0); // unpaired: no ratio recorded
        assert_eq!(t.leaf_distances(), 2);
        assert_eq!(t.tightness().count(), 1);
        assert!((t.tightness().mean().unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn zero_distance_leaf_counts_as_fully_tight() {
        let mut t = QueryTrace::new(10);
        t.on_wedge_tested(0, 0.0, 1.0, false);
        t.on_leaf_distance(0.0);
        assert!((t.tightness().mean().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn abandon_depth_is_fractional() {
        let mut t = QueryTrace::new(200);
        t.on_early_abandon(50); // 0.25
        t.on_early_abandon(150); // 0.75
        assert_eq!(t.early_abandons(), 2);
        assert!((t.abandon_depth().mean().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn k_timeline_records_sequence_position() {
        let mut t = QueryTrace::new(10);
        t.on_wedge_tested(0, 1.0, 2.0, true);
        t.on_wedge_tested(0, 1.0, 2.0, true);
        t.on_k_change(8, 4, true);
        t.on_wedge_tested(0, 1.0, 2.0, true);
        t.on_k_change(4, 8, false);
        let timeline = t.k_timeline();
        assert_eq!(timeline.len(), 2);
        assert_eq!(
            timeline[0],
            KChange {
                seq: 2,
                old: 8,
                new: 4,
                probing: true
            }
        );
        assert_eq!(timeline[1].seq, 3);
        assert!(!timeline[1].probing);
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = QueryTrace::new(100);
        a.on_wedge_tested(0, 1.0, 2.0, true);
        a.on_early_abandon(10);
        let mut b = QueryTrace::new(100);
        b.on_wedge_tested(1, 1.0, 2.0, false);
        b.on_leaf_distance(2.0);
        b.on_k_change(8, 4, false);
        a.merge(&b);
        assert_eq!(a.tested(0), 1);
        assert_eq!(a.tested(1), 1);
        assert_eq!(a.leaf_distances(), 1);
        assert_eq!(a.early_abandons(), 1);
        assert_eq!(a.k_timeline().len(), 1);
        assert_eq!(a.tightness().count(), 1);
    }

    #[test]
    fn fork_is_empty_join_accumulates() {
        let mut parent = QueryTrace::new(64);
        parent.on_wedge_tested(0, 1.0, 2.0, true);
        let mut child = parent.fork();
        assert_eq!(child.wedges_tested(), 0, "fork starts empty");
        assert_eq!(child.series_len, 64, "fork keeps the series length");
        child.on_wedge_tested(0, 1.0, 2.0, false);
        child.on_leaf_distance(2.0);
        child.on_early_abandon(16); // fraction 0.25 needs series_len 64
        parent.join(child);
        assert_eq!(parent.wedges_tested(), 2);
        assert_eq!(parent.leaf_distances(), 1);
        assert_eq!(parent.early_abandons(), 1);
        assert!((parent.abandon_depth().mean().unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tier_counters_accumulate_merge_and_report() {
        let mut a = QueryTrace::new(32);
        a.on_cascade_tier(CascadeTier::Kim, false);
        a.on_cascade_tier(CascadeTier::Keogh, true);
        let mut b = QueryTrace::new(32);
        b.on_cascade_tier(CascadeTier::Kim, true);
        a.merge(&b);
        assert_eq!(a.tier_tested(CascadeTier::Kim), 2);
        assert_eq!(a.tier_pruned(CascadeTier::Kim), 1);
        assert_eq!(a.tier_prune_rate(CascadeTier::Kim), Some(0.5));
        assert_eq!(a.tier_prune_rate(CascadeTier::Improved), None);
        assert_eq!(a.tier_pruned_total(), 2);
        let report = a.report();
        assert!(report.contains("cascade tiers:"), "{report}");
        assert!(report.contains("[kim tested 2 pruned 1"), "{report}");
        let mut reg = MetricsRegistry::new();
        a.export_to(&mut reg);
        assert_eq!(reg.counter("rotind_cascade_tested_kim"), 2);
        assert_eq!(reg.counter("rotind_cascade_pruned_keogh"), 1);
    }

    #[test]
    fn export_to_registry() {
        let mut t = QueryTrace::new(100);
        t.on_wedge_tested(0, 1.0, 2.0, true);
        t.on_wedge_tested(0, 1.0, 2.0, false);
        t.on_leaf_distance(2.0);
        t.on_k_change(8, 4, false);
        let mut reg = MetricsRegistry::new();
        t.export_to(&mut reg);
        assert_eq!(reg.counter("rotind_wedges_tested_l0"), 2);
        assert_eq!(reg.counter("rotind_wedges_pruned_l0"), 1);
        assert_eq!(reg.counter("rotind_leaf_distances_total"), 1);
        assert_eq!(reg.counter("rotind_k_changes_total"), 1);
        assert_eq!(reg.gauge("rotind_planner_k"), Some(4.0));
        assert_eq!(reg.event_count(), 1);
        let text = reg.render_prometheus();
        assert!(text.contains("rotind_lb_tightness_ratio_count 1"));
    }

    #[test]
    fn report_mentions_all_sections() {
        let mut t = QueryTrace::new(100);
        t.on_wedge_tested(0, 1.0, 2.0, false);
        t.on_leaf_distance(2.0);
        t.on_early_abandon(25);
        t.on_k_change(8, 16, true);
        let report = t.report();
        assert!(report.contains("level 0"));
        assert!(report.contains("lb tightness"));
        assert!(report.contains("abandon depth"));
        assert!(report.contains("k timeline"));
        assert!(report.contains("probe@1 8->16"));
    }
}
