//! Observability for the rotind wedge engine.
//!
//! The paper reports efficiency in `num_steps` — an implementation-free
//! operation count (Section 5.3). That tells you *how much* work a search
//! did, but not *where* the pruning happened, how tight the LB_Keogh
//! bounds were, or how the dynamic K planner moved. This crate adds that
//! visibility without perturbing the measurements it reports on:
//!
//! - [`MetricsRegistry`] — counters, gauges and fixed-bucket histograms
//!   with Prometheus-style text exposition and JSONL event export.
//! - [`Span`] — RAII timers recording wall-clock *alongside* a
//!   [`StepCounter`](rotind_ts::StepCounter) snapshot, so wall-clock and
//!   the paper's step metric can be compared per phase.
//! - [`SearchObserver`] — a callback trait threaded through the wedge
//!   engine. The default [`NoopObserver`] monomorphizes to nothing, so
//!   un-observed searches pay zero overhead. [`ForkJoinObserver`]
//!   extends it with fork/join so the parallel scan can give each
//!   worker thread its own observer and merge them deterministically.
//! - [`QueryTrace`] — a ready-made observer summarising a search:
//!   per-level prune counts, LB-tightness ratios, early-abandon depths
//!   and the K-planner timeline.
//! - [`Profiler`] — a query-level profiling observer building a
//!   hierarchical [`ProfileTree`] (query → wedge-merge → cascade tier →
//!   distance) with wall-clock *and* steps per node, exportable as
//!   chrome://tracing JSON and collapsed-stack flamegraph text, plus
//!   streaming [`LogHistogram`] latency quantiles and per-tier
//!   [`TierCost`] economics (DESIGN.md §13).
//! - [`QueryBudget`] — a [`BudgetHook`] capping a query's steps and/or
//!   wall-clock; budgeted searches return a typed partial result
//!   ([`BudgetOutcome`]) instead of overrunning. [`NoBudget`] is the
//!   zero-cost default, and [`SharedBudget`] pools one budget across
//!   the parallel scan's workers.
//!
//! The crate depends only on `rotind-ts` (for the step counter) and the
//! standard library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod envcfg;
pub mod metrics;
pub mod observer;
pub mod profile;
pub mod span;
pub mod trace;

pub use budget::{
    BudgetHook, BudgetOutcome, BudgetReason, Exhausted, ManualClock, NoBudget, QueryBudget,
    SharedBudget, SharedBudgetHook, DEADLINE_POLL_STEPS,
};
pub use envcfg::env_positive_usize;
pub use metrics::{Histogram, LogHistogram, MetricsRegistry};
pub use observer::{CascadeTier, ForkJoinObserver, NoopObserver, ProfilePhase, SearchObserver};
pub use profile::{ProfileNode, ProfileTree, Profiler, TierCost};
pub use span::{global_span_report, reset_global_spans, Span, SpanRecord};
pub use trace::{KChange, QueryTrace};
