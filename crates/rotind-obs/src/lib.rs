//! Observability for the rotind wedge engine.
//!
//! The paper reports efficiency in `num_steps` — an implementation-free
//! operation count (Section 5.3). That tells you *how much* work a search
//! did, but not *where* the pruning happened, how tight the LB_Keogh
//! bounds were, or how the dynamic K planner moved. This crate adds that
//! visibility without perturbing the measurements it reports on:
//!
//! - [`MetricsRegistry`] — counters, gauges and fixed-bucket histograms
//!   with Prometheus-style text exposition and JSONL event export.
//! - [`Span`] — RAII timers recording wall-clock *alongside* a
//!   [`StepCounter`](rotind_ts::StepCounter) snapshot, so wall-clock and
//!   the paper's step metric can be compared per phase.
//! - [`SearchObserver`] — a callback trait threaded through the wedge
//!   engine. The default [`NoopObserver`] monomorphizes to nothing, so
//!   un-observed searches pay zero overhead. [`ForkJoinObserver`]
//!   extends it with fork/join so the parallel scan can give each
//!   worker thread its own observer and merge them deterministically.
//! - [`QueryTrace`] — a ready-made observer summarising a search:
//!   per-level prune counts, LB-tightness ratios, early-abandon depths
//!   and the K-planner timeline.
//!
//! The crate depends only on `rotind-ts` (for the step counter) and the
//! standard library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod observer;
pub mod span;
pub mod trace;

pub use metrics::{Histogram, MetricsRegistry};
pub use observer::{CascadeTier, ForkJoinObserver, NoopObserver, SearchObserver};
pub use span::{global_span_report, reset_global_spans, Span, SpanRecord};
pub use trace::{KChange, QueryTrace};
