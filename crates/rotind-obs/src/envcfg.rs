//! Environment-variable configuration with *loud* fallbacks.
//!
//! The runtime knobs (`ROTIND_THREADS`, the `ROTIND_SERVE_*` family)
//! used to fall back to their defaults silently on unparseable or
//! zero values — an operator typo like `ROTIND_THREADS=fourx` would
//! quietly run the default thread count and skew every measurement
//! taken under it. [`env_positive_usize`] keeps the fallback (a bad
//! knob must never abort a serving process) but emits a one-line
//! stderr warning naming the variable and the rejected value, once
//! per variable per process.
//!
//! The parse/fallback decision lives in the pure [`resolve`] so tests
//! can assert both the fallback value and the exact warning text
//! without mutating process environment or capturing stderr.

use std::collections::BTreeSet;
use std::sync::{Mutex, OnceLock};

/// Variables already warned about, so a knob read in a per-query path
/// warns once instead of flooding stderr.
static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();

/// Decide the effective value for a positive-integer knob.
///
/// Returns the parsed value, or `default` plus the warning line that
/// should reach stderr. `None` (unset) is a silent fallback — absence
/// is the normal case, not an operator error. Set-but-invalid (empty,
/// unparseable, or zero) falls back loudly.
pub fn resolve(name: &str, raw: Option<&str>, default: usize) -> (usize, Option<String>) {
    let Some(raw) = raw else {
        return (default, None);
    };
    match raw.trim().parse::<usize>() {
        Ok(v) if v >= 1 => (v, None),
        Ok(_) => (
            default,
            Some(format!(
                "rotind: ignoring {name}={raw:?} (must be >= 1); using default {default}"
            )),
        ),
        Err(_) => (
            default,
            Some(format!(
                "rotind: ignoring {name}={raw:?} (not a positive integer); using default {default}"
            )),
        ),
    }
}

/// Read the environment knob `name` as a positive integer, falling
/// back to `default` with a one-line stderr warning when the variable
/// is set to something unusable. Unset is a silent fallback.
pub fn env_positive_usize(name: &str, default: usize) -> usize {
    let raw = std::env::var(name).ok();
    let (value, warning) = resolve(name, raw.as_deref(), default);
    if let Some(warning) = warning {
        let warned = WARNED.get_or_init(|| Mutex::new(BTreeSet::new()));
        let fresh = warned
            .lock()
            .map(|mut set| set.insert(name.to_string()))
            .unwrap_or(true);
        if fresh {
            // Operator-facing diagnostic: the whole point of this
            // module is that the fallback is *not* silent.
            // rotind-lint: allow(no-print)
            eprintln!("{warning}");
        }
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_falls_back_silently() {
        assert_eq!(resolve("ROTIND_THREADS", None, 4), (4, None));
    }

    #[test]
    fn valid_values_parse() {
        assert_eq!(resolve("ROTIND_THREADS", Some("8"), 4), (8, None));
        assert_eq!(resolve("ROTIND_THREADS", Some(" 2 "), 4), (2, None));
        assert_eq!(resolve("ROTIND_THREADS", Some("1"), 4), (1, None));
    }

    #[test]
    fn zero_falls_back_with_warning() {
        let (v, w) = resolve("ROTIND_THREADS", Some("0"), 4);
        assert_eq!(v, 4);
        let w = w.expect("zero must warn");
        assert!(w.contains("ROTIND_THREADS"), "warning names the variable");
        assert!(w.contains("\"0\""), "warning names the bad value");
        assert!(w.contains("default 4"), "warning names the fallback");
    }

    #[test]
    fn garbage_falls_back_with_warning() {
        let (v, w) = resolve("ROTIND_SERVE_WORKERS", Some("fourx"), 2);
        assert_eq!(v, 2);
        let w = w.expect("garbage must warn");
        assert!(w.contains("ROTIND_SERVE_WORKERS"));
        assert!(w.contains("\"fourx\""));
        assert!(w.contains("not a positive integer"));
    }

    #[test]
    fn negative_and_empty_fall_back() {
        assert_eq!(resolve("X", Some("-3"), 7).0, 7);
        assert_eq!(resolve("X", Some(""), 7).0, 7);
        assert!(resolve("X", Some("-3"), 7).1.is_some());
        assert!(resolve("X", Some(""), 7).1.is_some());
    }

    #[test]
    fn env_reader_uses_default_for_unset() {
        // Reading a variable that is never set exercises the wrapper
        // without mutating process environment (tests run threaded).
        assert_eq!(env_positive_usize("ROTIND_TEST_NEVER_SET_KNOB", 3), 3);
    }
}
