//! RAII span timers: wall-clock and step-count per named phase.
//!
//! A [`Span`] records how long a phase took in *two* currencies: seconds
//! (wall-clock) and `num_steps` (the paper's implementation-free cost
//! metric, Section 5.3). Recording both side by side is the point — it
//! lets a harness confirm that step counts track real time on the
//! machine at hand, or spot when they diverge (cache effects, allocator
//! noise).
//!
//! Spans aggregate into a process-global table keyed by span name;
//! [`global_span_report`] renders it and [`reset_global_spans`] clears
//! it between experiments. Dropping a span without calling
//! [`Span::finish`] records wall-clock and bumps the row's `dropped`
//! sentinel: there is no counter to diff against at drop time, so the
//! row's step total *would* silently under-report — the sentinel makes
//! that visible instead of losing it (see
//! [`SpanRecord::dropped`]).

use rotind_ts::StepCounter;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

#[derive(Debug, Default, Clone, Copy)]
struct SpanAgg {
    count: u64,
    total_nanos: u128,
    total_steps: u64,
    dropped: u64,
}

fn global_table() -> &'static Mutex<BTreeMap<&'static str, SpanAgg>> {
    static TABLE: OnceLock<Mutex<BTreeMap<&'static str, SpanAgg>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// One aggregated row of the global span table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// The span name passed to [`Span::enter`].
    pub name: &'static str,
    /// How many spans with this name finished.
    pub count: u64,
    /// Total wall-clock across those spans, in seconds.
    pub total_seconds: f64,
    /// Total steps recorded via [`Span::finish`].
    pub total_steps: u64,
    /// How many of those spans were dropped without [`Span::finish`].
    /// Their step counts are unknown (no counter to diff at drop time),
    /// so a nonzero value flags `total_steps` as a lower bound rather
    /// than letting the table silently under-report.
    pub dropped: u64,
}

/// An in-flight timed phase. Create with [`Span::enter`], end with
/// [`Span::finish`] (wall-clock + steps) or by dropping it (wall-clock
/// only).
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Instant,
    steps_at_enter: u64,
    done: bool,
}

impl Span {
    /// Start a span. `name` should be a dotted phase path such as
    /// `"hmerge.descend"` or `"query.nearest"`.
    pub fn enter(name: &'static str) -> Span {
        Span {
            name,
            start: Instant::now(),
            steps_at_enter: 0,
            done: false,
        }
    }

    /// Start a span that snapshots `counter` now, so that
    /// [`finish`](Self::finish) records the steps spent inside the span
    /// rather than the counter's absolute value.
    pub fn enter_with(name: &'static str, counter: &StepCounter) -> Span {
        Span {
            name,
            start: Instant::now(),
            steps_at_enter: counter.steps(),
            done: false,
        }
    }

    /// End the span, recording wall-clock and the steps accumulated in
    /// `counter` since [`enter_with`](Self::enter_with) (or since zero
    /// for [`enter`](Self::enter)).
    pub fn finish(mut self, counter: &StepCounter) {
        let steps = counter.steps().saturating_sub(self.steps_at_enter);
        self.record(steps, false);
    }

    fn record(&mut self, steps: u64, was_dropped: bool) {
        self.done = true;
        let nanos = self.start.elapsed().as_nanos();
        let mut table = global_table().lock().expect("span table poisoned");
        let agg = table.entry(self.name).or_default();
        agg.count = agg.count.saturating_add(1);
        agg.total_nanos = agg.total_nanos.saturating_add(nanos);
        agg.total_steps = agg.total_steps.saturating_add(steps);
        if was_dropped {
            agg.dropped = agg.dropped.saturating_add(1);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.done {
            self.record(0, true);
        }
    }
}

/// Snapshot the global span table, sorted by name.
pub fn global_spans() -> Vec<SpanRecord> {
    let table = global_table().lock().expect("span table poisoned");
    table
        .iter()
        .map(|(name, agg)| SpanRecord {
            name,
            count: agg.count,
            total_seconds: agg.total_nanos as f64 / 1e9,
            total_steps: agg.total_steps,
            dropped: agg.dropped,
        })
        .collect()
}

/// Clear the global span table (between experiments).
pub fn reset_global_spans() {
    global_table().lock().expect("span table poisoned").clear();
}

/// Render the global span table as an aligned text report with
/// per-call means for both wall-clock and steps.
pub fn global_span_report() -> String {
    let spans = global_spans();
    if spans.is_empty() {
        return "no spans recorded\n".to_string();
    }
    let name_width = spans
        .iter()
        .map(|s| s.name.len())
        .max()
        .unwrap_or(4)
        .max("span".len());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<name_width$}  {:>8}  {:>12}  {:>14}  {:>12}  {:>8}",
        "span", "count", "total s", "steps", "steps/call", "dropped"
    );
    for s in &spans {
        let per_call = if s.count > 0 {
            s.total_steps as f64 / s.count as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<name_width$}  {:>8}  {:>12.6}  {:>14}  {:>12.1}  {:>8}",
            s.name, s.count, s.total_seconds, s.total_steps, per_call, s.dropped
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global table is shared across the test binary, so each test
    // uses unique span names rather than resetting the table (tests run
    // concurrently).

    fn find(name: &str) -> Option<SpanRecord> {
        global_spans().into_iter().find(|s| s.name == name)
    }

    #[test]
    fn finish_records_steps_delta() {
        let mut counter = StepCounter::new();
        counter.add(100);
        let span = Span::enter_with("test.finish_delta", &counter);
        counter.add(42);
        span.finish(&counter);
        let rec = find("test.finish_delta").expect("span recorded");
        assert_eq!(rec.count, 1);
        assert_eq!(rec.total_steps, 42);
        assert!(rec.total_seconds >= 0.0);
    }

    #[test]
    fn drop_records_wall_clock_and_dropped_sentinel() {
        {
            let _span = Span::enter("test.drop_only");
        }
        let rec = find("test.drop_only").expect("span recorded");
        assert_eq!(rec.count, 1);
        assert_eq!(rec.total_steps, 0);
        assert_eq!(rec.dropped, 1, "drop path must flag the missing steps");
    }

    /// Regression for the drop-without-finish asymmetry: a mix of
    /// finished and dropped spans under one name must keep the finished
    /// steps AND expose exactly how many spans lost theirs, so the table
    /// never under-reports silently.
    #[test]
    fn mixed_finish_and_drop_never_under_reports() {
        let mut counter = StepCounter::new();
        counter.add(50);
        Span::enter("test.mixed_drop").finish(&counter);
        {
            let _dropped = Span::enter("test.mixed_drop");
        }
        {
            let _dropped = Span::enter("test.mixed_drop");
        }
        let rec = find("test.mixed_drop").expect("span recorded");
        assert_eq!(rec.count, 3, "dropped spans still count calls");
        assert_eq!(rec.total_steps, 50, "finished steps survive the drops");
        assert_eq!(rec.dropped, 2, "each unfinished span is flagged");
        assert!(global_span_report().contains("dropped"));
    }

    #[test]
    fn finished_spans_report_zero_dropped() {
        Span::enter("test.clean_finish").finish(&StepCounter::new());
        let rec = find("test.clean_finish").expect("span recorded");
        assert_eq!(rec.dropped, 0);
    }

    #[test]
    fn spans_aggregate_by_name() {
        let counter = StepCounter::new();
        for _ in 0..3 {
            Span::enter("test.aggregate").finish(&counter);
        }
        let rec = find("test.aggregate").expect("span recorded");
        assert_eq!(rec.count, 3);
    }

    #[test]
    fn enter_without_counter_then_finish_uses_absolute_steps() {
        let mut counter = StepCounter::new();
        counter.add(7);
        Span::enter("test.absolute").finish(&counter);
        let rec = find("test.absolute").expect("span recorded");
        assert_eq!(rec.total_steps, 7);
    }

    #[test]
    fn report_renders_rows() {
        Span::enter("test.report_row").finish(&StepCounter::new());
        let report = global_span_report();
        assert!(report.contains("test.report_row"));
        assert!(report.lines().next().unwrap().contains("steps/call"));
    }
}
