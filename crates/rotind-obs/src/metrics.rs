//! Metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! The registry is a plain value — no global state, no locks, no
//! background threads. Harnesses own one, feed it during a run, and
//! render it at the end either as Prometheus-style exposition text
//! ([`MetricsRegistry::render_prometheus`]) or as one JSON object per
//! recorded event ([`MetricsRegistry::export_jsonl`]).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A fixed-bucket histogram in the Prometheus style: cumulative bucket
/// counts at explicit upper bounds plus an implicit `+Inf` bucket, a
/// running sum and a total count.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `counts[i]` is the number of observations `<= bounds[i]`;
    /// `counts[bounds.len()]` is the `+Inf` bucket. Counts are
    /// *non-cumulative* internally and accumulated at render time.
    counts: Vec<u64>,
    sum: f64,
    total: u64,
}

impl Histogram {
    /// A histogram with the given ascending upper bounds.
    ///
    /// # Panics
    /// Panics when `bounds` is empty or not strictly ascending.
    // lint: panic-exempt(documented precondition: registry histograms are built from static ascending bound lists)
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            sum: 0.0,
            total: 0,
        }
    }

    /// `n` equal-width buckets covering `[lo, hi]`.
    pub fn linear(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0 && hi > lo, "need n > 0 and hi > lo");
        // `lo + span * i / n` (not an accumulated width) keeps bounds
        // like 0.3 exact, so exposition labels stay clean.
        Histogram::new(
            (1..=n)
                .map(|i| lo + (hi - lo) * i as f64 / n as f64)
                .collect(),
        )
    }

    /// Buckets for a ratio in `[0, 1]`: 0.1, 0.2, …, 1.0.
    pub fn ratio() -> Self {
        Histogram::linear(0.0, 1.0, 10)
    }

    /// Record one observation.
    // lint: panic-exempt(counts has bounds.len() + 1 slots, and position never exceeds bounds.len())
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.total += 1;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or `None` before the first one.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum / self.total as f64)
    }

    /// `(upper_bound, count)` per bucket, non-cumulative; the final
    /// entry has bound `f64::INFINITY`.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
    }

    /// Fold another histogram with identical bounds into this one.
    ///
    /// # Panics
    /// Panics when the bucket bounds differ.
    // lint: panic-exempt(documented precondition: merged registries are created from the same static bounds)
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds must match");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.total += other.total;
    }
}

/// Sub-bucket resolution of [`LogHistogram`]: each power of two splits
/// into `2^LOG_SUB_BITS` linear sub-buckets, so any reported quantile
/// is within `1/2^LOG_SUB_BITS` (6.25%) of a true sample value —
/// and *exact* for values below `2^LOG_SUB_BITS`.
const LOG_SUB_BITS: u32 = 4;
const LOG_SUB: usize = 1 << LOG_SUB_BITS;
/// 16 exact low buckets + 16 sub-buckets for each of the 60 remaining
/// powers of two of the `u64` range.
const LOG_BUCKETS: usize = LOG_SUB + (64 - LOG_SUB_BITS as usize) * LOG_SUB;

/// A streaming log-bucketed histogram over `u64` samples (latencies in
/// nanoseconds, step counts) — HDR-style: log2 major buckets, linear
/// sub-buckets, fixed memory, O(1) observe.
///
/// Unlike [`Histogram`] the bucket layout is universal (covers all of
/// `u64` at bounded relative error), so merging never needs matching
/// bounds: two `LogHistogram`s always merge, and because the state is
/// pure integer counts the merge is exactly associative and
/// commutative — per-thread histograms can be folded in any order and
/// export identical buckets (property-tested in `tests/profiling.rs`).
///
/// ```
/// use rotind_obs::LogHistogram;
/// let mut h = LogHistogram::new();
/// for v in [10, 20, 30, 40, 50, 60, 70, 80, 90, 1000] {
///     h.observe(v);
/// }
/// assert_eq!(h.count(), 10);
/// assert!(h.quantile(0.5).unwrap() <= 60);
/// assert!(h.quantile(0.99).unwrap() >= 900);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    /// Exact integer sum (`u128` so that merge stays associative —
    /// float accumulation would not be).
    sum: u128,
    total: u64,
    min: u64,
    max: u64,
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.total)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram. The bucket layout is fixed, so there is
    /// nothing to configure.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; LOG_BUCKETS],
            sum: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value < LOG_SUB as u64 {
            return value as usize;
        }
        // Highest set bit h >= LOG_SUB_BITS; the sub-bucket is the next
        // LOG_SUB_BITS bits below it.
        let h = 63 - value.leading_zeros();
        let major = (h - LOG_SUB_BITS) as usize;
        let sub = ((value >> (h - LOG_SUB_BITS)) & (LOG_SUB as u64 - 1)) as usize;
        LOG_SUB + major * LOG_SUB + sub
    }

    /// Inclusive upper bound of the bucket at `idx` — the largest value
    /// that lands in it.
    fn bucket_high(idx: usize) -> u64 {
        if idx < LOG_SUB {
            return idx as u64;
        }
        let major = ((idx - LOG_SUB) / LOG_SUB) as u32;
        let sub = ((idx - LOG_SUB) % LOG_SUB) as u128;
        // Values here have highest bit at `major + LOG_SUB_BITS`; the
        // low `major` bits are free, so the top of the bucket is all
        // ones below the sub-bucket prefix. Computed in u128 because
        // the topmost bucket's bound is exactly 2^64 - 1.
        let high = ((LOG_SUB as u128 + sub + 1) << major) - 1;
        u64::try_from(high).unwrap_or(u64::MAX)
    }

    /// Record one sample.
    #[inline]
    // lint: panic-exempt(bucket_index is below LOG_BUCKETS for every u64 by construction)
    pub fn observe(&mut self, value: u64) {
        // `bucket_index` is < LOG_BUCKETS for every u64 by construction.
        // rotind-lint: allow(no-index)
        self.counts[Self::bucket_index(value)] += 1;
        self.sum += value as u128;
        self.total += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Record a [`std::time::Duration`] in nanoseconds (saturating at
    /// `u64::MAX` ≈ 584 years).
    #[inline]
    pub fn observe_duration(&mut self, d: std::time::Duration) {
        self.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean sample, or `None` before the first one.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// Smallest sample seen (exact), or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest sample seen (exact), or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// holding the rank-`⌈q·n⌉` sample, clamped to the exact observed
    /// `[min, max]`. Within 6.25% of the true sample value; exact for
    /// samples below 16.
    ///
    /// Edge cases are fully defined: `None` when the histogram is
    /// empty or `q` is NaN; `q <= 0.0` is the exact observed minimum;
    /// `q >= 1.0` is the exact observed maximum. The result is
    /// monotone non-decreasing in `q` (property-tested in
    /// `tests/profiling.rs`).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 || q.is_nan() {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_high(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Fold another histogram into this one. The layout is universal,
    /// so this never fails; integer state makes it exactly associative
    /// and commutative across any merge order.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// `(inclusive_upper_bound, count)` for each non-empty bucket, in
    /// ascending order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| (Self::bucket_high(idx), c))
    }
}

/// A JSONL-exportable event: a name plus numeric fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    name: String,
    fields: Vec<(String, f64)>,
}

/// Registry of named counters, gauges, histograms and events.
///
/// ```
/// use rotind_obs::{Histogram, MetricsRegistry};
/// let mut reg = MetricsRegistry::new();
/// reg.counter_add("rotind_queries_total", 1);
/// reg.gauge_set("rotind_planner_k", 8.0);
/// reg.histogram("rotind_lb_tightness", Histogram::ratio).observe(0.85);
/// let text = reg.render_prometheus();
/// assert!(text.contains("rotind_queries_total 1"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    log_histograms: BTreeMap<String, LogHistogram>,
    events: Vec<Event>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named monotonic counter (created at zero).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set the named gauge to `value`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// The named histogram, created with `make` on first use.
    pub fn histogram(&mut self, name: &str, make: impl FnOnce() -> Histogram) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_insert_with(make)
    }

    /// The named log-bucketed histogram, created empty on first use
    /// (the layout is universal, so no constructor is needed).
    pub fn log_histogram(&mut self, name: &str) -> &mut LogHistogram {
        self.log_histograms.entry(name.to_string()).or_default()
    }

    /// Read access to a log-bucketed histogram, when present.
    pub fn log_histogram_get(&self, name: &str) -> Option<&LogHistogram> {
        self.log_histograms.get(name)
    }

    /// Current value of a counter (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, when set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record a structured event for JSONL export.
    pub fn record_event(&mut self, name: &str, fields: &[(&str, f64)]) {
        self.events.push(Event {
            name: name.to_string(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }

    /// Number of recorded events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Prometheus-style text exposition of counters, gauges and
    /// histograms (events are JSONL-only).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", fmt_value(*value));
        }
        for (name, hist) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (bound, count) in hist.buckets() {
                cumulative += count;
                let le = if bound.is_infinite() {
                    "+Inf".to_string()
                } else {
                    fmt_value(bound)
                };
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_sum {}", fmt_value(hist.sum()));
            let _ = writeln!(out, "{name}_count {}", hist.count());
        }
        for (name, hist) in &self.log_histograms {
            // Log-bucketed histograms expose quantiles directly, which
            // maps onto the Prometheus summary type.
            let _ = writeln!(out, "# TYPE {name} summary");
            for q in [0.5, 0.95, 0.99] {
                if let Some(v) = hist.quantile(q) {
                    let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
                }
            }
            let _ = writeln!(out, "{name}_sum {}", hist.sum());
            let _ = writeln!(out, "{name}_count {}", hist.count());
        }
        out
    }

    /// Fold another registry into this one: counters add, gauges take
    /// `other`'s value (a join adopts the child's last write), matching
    /// histograms merge and new ones are copied in, events are appended
    /// after this registry's events. Used to combine per-thread
    /// registries after a parallel scan — joining children in thread
    /// order makes the result deterministic.
    ///
    /// # Panics
    /// Panics when `self` and `other` define the same histogram with
    /// different bucket bounds (see [`Histogram::merge`]).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in &other.counters {
            self.counter_add(name, *value);
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(name.clone(), *value);
        }
        for (name, hist) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(hist),
                None => {
                    self.histograms.insert(name.clone(), hist.clone());
                }
            }
        }
        for (name, hist) in &other.log_histograms {
            self.log_histogram(name).merge(hist);
        }
        self.events.extend(other.events.iter().cloned());
    }

    /// One JSON object per recorded event, newline-separated.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            let _ = write!(out, "{{\"event\":\"{}\"", escape_json(&event.name));
            for (key, value) in &event.fields {
                let _ = write!(out, ",\"{}\":{}", escape_json(key), fmt_value(*value));
            }
            out.push_str("}\n");
        }
        out
    }
}

/// Render a float the way Prometheus and JSON both accept: integral
/// values without a trailing `.0` noise-free, non-finite values quoted
/// out as extreme sentinels would break JSON, so clamp to literals.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 3.0, 10.0] {
            h.observe(v);
        }
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets[0], (1.0, 1));
        assert_eq!(buckets[1], (2.0, 1));
        assert_eq!(buckets[2], (4.0, 1));
        assert_eq!(buckets[3].1, 1, "+Inf bucket");
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 15.0).abs() < 1e-12);
        assert!((h.mean().unwrap() - 3.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_linear_and_ratio() {
        let h = Histogram::linear(0.0, 1.0, 4);
        let bounds: Vec<f64> = h.buckets().map(|(b, _)| b).collect();
        assert!((bounds[0] - 0.25).abs() < 1e-12);
        assert!((bounds[3] - 1.0).abs() < 1e-12);
        assert!(bounds[4].is_infinite());
        assert_eq!(Histogram::ratio().buckets().count(), 11);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::ratio();
        let mut b = Histogram::ratio();
        a.observe(0.15);
        b.observe(0.95);
        b.observe(0.15);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        let second_bucket = a.buckets().nth(1).unwrap();
        assert_eq!(second_bucket.1, 2, "two observations in (0.1, 0.2]");
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(vec![2.0, 1.0]);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("q_total", 2);
        reg.counter_add("q_total", 1);
        reg.gauge_set("k_current", 8.0);
        reg.histogram("tightness", Histogram::ratio).observe(0.42);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE q_total counter\nq_total 3\n"));
        assert!(text.contains("# TYPE k_current gauge\nk_current 8\n"));
        assert!(text.contains("tightness_bucket{le=\"0.5\"} 1"));
        assert!(text.contains("tightness_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("tightness_count 1"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("h", || Histogram::new(vec![1.0, 2.0]));
        h.observe(0.5);
        h.observe(1.5);
        let text = reg.render_prometheus();
        assert!(text.contains("h_bucket{le=\"1\"} 1"));
        assert!(text.contains("h_bucket{le=\"2\"} 2"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 2"));
    }

    #[test]
    fn registry_merge_combines_all_kinds() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 2);
        a.gauge_set("g", 1.0);
        a.histogram("h", Histogram::ratio).observe(0.2);
        a.record_event("e", &[("x", 1.0)]);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 3);
        b.counter_add("only_b", 1);
        b.gauge_set("g", 5.0);
        b.histogram("h", Histogram::ratio).observe(0.8);
        b.histogram("h2", Histogram::ratio).observe(0.5);
        b.record_event("e", &[("x", 2.0)]);
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.counter("only_b"), 1);
        assert_eq!(a.gauge("g"), Some(5.0), "merge adopts the child gauge");
        assert_eq!(a.histogram("h", Histogram::ratio).count(), 2);
        assert_eq!(a.histogram("h2", Histogram::ratio).count(), 1);
        assert_eq!(a.event_count(), 2);
        let jsonl = a.export_jsonl();
        let lines: Vec<_> = jsonl.lines().collect();
        assert!(lines[0].contains("\"x\":1"), "own events come first");
        assert!(lines[1].contains("\"x\":2"));
    }

    #[test]
    #[should_panic(expected = "bounds must match")]
    fn registry_merge_rejects_mismatched_histograms() {
        let mut a = MetricsRegistry::new();
        a.histogram("h", Histogram::ratio).observe(0.2);
        let mut b = MetricsRegistry::new();
        b.histogram("h", || Histogram::linear(0.0, 2.0, 4))
            .observe(0.5);
        a.merge(&b);
    }

    #[test]
    fn log_histogram_exact_below_sixteen() {
        let mut h = LogHistogram::new();
        for v in 0..16u64 {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.5), Some(7));
        assert_eq!(h.quantile(1.0), Some(15));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(15));
        assert_eq!(h.sum(), 120);
    }

    #[test]
    fn log_histogram_quantile_within_resolution() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.observe(v);
        }
        let p50 = h.quantile(0.5).unwrap() as f64;
        let p99 = h.quantile(0.99).unwrap() as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.0625, "p50 = {p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.0625, "p99 = {p99}");
    }

    #[test]
    fn log_histogram_bucket_roundtrip_covers_u64() {
        // Every sample must land in a bucket whose reported bound is
        // >= the sample and within the documented relative error.
        for &v in &[
            0,
            1,
            15,
            16,
            17,
            255,
            256,
            1_000_000,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = LogHistogram::bucket_index(v);
            let high = LogHistogram::bucket_high(idx);
            assert!(high >= v, "bucket_high({idx}) = {high} < {v}");
            if v >= 16 {
                assert!((high - v) as f64 <= v as f64 * 0.0625, "{v} -> {high}");
            }
        }
    }

    #[test]
    fn log_histogram_quantile_edge_cases() {
        let empty = LogHistogram::new();
        assert_eq!(empty.quantile(0.5), None);
        assert_eq!(empty.quantile(f64::NAN), None);
        let mut h = LogHistogram::new();
        for v in [100u64, 2_000, 30_000] {
            h.observe(v);
        }
        assert_eq!(h.quantile(f64::NAN), None, "NaN rank is meaningless");
        assert_eq!(h.quantile(0.0), Some(100), "q <= 0 is the exact min");
        assert_eq!(h.quantile(-3.0), Some(100));
        assert_eq!(h.quantile(f64::NEG_INFINITY), Some(100));
        assert_eq!(h.quantile(1.0), Some(30_000), "q >= 1 is the exact max");
        assert_eq!(h.quantile(7.0), Some(30_000));
        assert_eq!(h.quantile(f64::INFINITY), Some(30_000));
    }

    #[test]
    fn log_histogram_quantile_monotone_in_q() {
        let mut h = LogHistogram::new();
        for v in [1u64, 7, 19, 400, 90_000, 90_000, 12] {
            h.observe(v);
        }
        let mut prev = 0u64;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.quantile(q).unwrap();
            assert!(v >= prev, "quantile({q}) = {v} < quantile(prev) = {prev}");
            prev = v;
        }
    }

    #[test]
    fn log_histogram_merge_is_exact() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for v in [3u64, 900, 17, 40_000, 5] {
            whole.observe(v);
        }
        a.observe(3);
        a.observe(900);
        b.observe(17);
        b.observe(40_000);
        b.observe(5);
        a.merge(&b);
        assert_eq!(a, whole, "merge equals observing the union");
    }

    #[test]
    fn log_histogram_empty_and_duration() {
        let mut h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        h.observe_duration(std::time::Duration::from_nanos(1500));
        assert_eq!(h.count(), 1);
        assert!(h.quantile(0.5).unwrap() >= 1500);
    }

    #[test]
    fn registry_log_histograms_merge_and_render() {
        let mut a = MetricsRegistry::new();
        a.log_histogram("rotind_query_latency_ns").observe(1000);
        let mut b = MetricsRegistry::new();
        b.log_histogram("rotind_query_latency_ns").observe(2000);
        a.merge(&b);
        assert_eq!(
            a.log_histogram_get("rotind_query_latency_ns")
                .unwrap()
                .count(),
            2
        );
        let text = a.render_prometheus();
        assert!(text.contains("# TYPE rotind_query_latency_ns summary"));
        assert!(text.contains("rotind_query_latency_ns{quantile=\"0.5\"}"));
        assert!(text.contains("rotind_query_latency_ns_count 2"));
    }

    #[test]
    fn jsonl_events() {
        let mut reg = MetricsRegistry::new();
        reg.record_event("query_done", &[("steps", 1234.0), ("k", 8.0)]);
        reg.record_event("k_change", &[("old", 8.0), ("new", 4.0)]);
        let jsonl = reg.export_jsonl();
        let lines: Vec<_> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"event\":\"query_done\",\"steps\":1234,\"k\":8}"
        );
        assert_eq!(lines[1], "{\"event\":\"k_change\",\"old\":8,\"new\":4}");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny"), "x\\u000ay");
    }

    #[test]
    fn counter_and_gauge_readback() {
        let mut reg = MetricsRegistry::new();
        assert_eq!(reg.counter("missing"), 0);
        assert_eq!(reg.gauge("missing"), None);
        reg.counter_add("c", 7);
        reg.gauge_set("g", -1.25);
        assert_eq!(reg.counter("c"), 7);
        assert_eq!(reg.gauge("g"), Some(-1.25));
    }
}
