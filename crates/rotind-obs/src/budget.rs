//! Query budgets: bounded-cost search with typed partial results.
//!
//! A [`BudgetHook`] is threaded through the engine's hot loop exactly
//! like the observer: the search entry points are generic over it, and
//! the no-budget case is the zero-sized [`NoBudget`], whose
//! [`check`](BudgetHook::check) is a constant `true` — so an
//! un-budgeted search monomorphizes to the exact un-instrumented code
//! and stays bit-identical (property-tested in `tests/profiling.rs`).
//!
//! A real [`QueryBudget`] caps the paper's `num_steps` metric and/or
//! wall-clock. The engine checks it once per **dismissal boundary** —
//! per candidate series, never inside a bound accumulation — so a trip
//! is detected within one candidate's worth of work. Exhaustion is
//! *sticky*: once a budget trips it stays tripped, the scan loops
//! simply stop admitting new candidates, and the caller gets back a
//! typed [`Exhausted`] partial result instead of an answer it might
//! mistake for exact.
//!
//! Deadline checks are **amortized**: reading the monotonic clock is a
//! vDSO call, and paying it at every dismissal boundary puts a syscall
//! in the scan hot path. The clock is consulted on the *first* check
//! (so an already-expired deadline trips before any work is admitted)
//! and thereafter only every [`DEADLINE_POLL_STEPS`] steps — a window
//! of work far under a millisecond, so trip latency stays bounded
//! while the common (non-tripping) check is pure integer arithmetic.
//! Deadlines can also race a [`ManualClock`] instead of the wall
//! clock, which makes `Deadline` trips deterministic in tests and lets
//! the serve crate's tests pin trip points exactly.
//!
//! [`SharedBudget`] extends the same semantics across the parallel
//! scan: workers charge their local step deltas into one atomic pool,
//! and any worker tripping it stops all of them at their next check.

// Under `--features loom-tests` the pool's atomics come from the
// vendored loom stand-in, so `loom::model` closures can explore every
// interleaving of `SharedBudget` charges (see tests/loom_model.rs in
// rotind-index and DESIGN.md §14). Outside a model the loom types are
// transparent passthroughs, so behaviour is unchanged.
#[cfg(feature = "loom-tests")]
use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};
#[cfg(not(feature = "loom-tests"))]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Steps between deadline clock reads once the first check has passed.
///
/// A step is roughly one pointwise distance operation (a few
/// nanoseconds), so 4096 steps is tens of microseconds of work — trip
/// latency stays three orders of magnitude under a millisecond while
/// the clock read is amortized over thousands of checks.
pub const DEADLINE_POLL_STEPS: u64 = 4096;

/// Force a clock read at least every this many checks even when the
/// step counter is not advancing. Purely a stall backstop: the engine
/// charges at least one step per dismissal boundary, so the step
/// window normally fires first — but a hook driven by a stalled
/// counter must still converge on its deadline.
const DEADLINE_POLL_CHECKS: u32 = 4096;

/// Why a budget tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetReason {
    /// The step cap was exceeded.
    Steps,
    /// The wall-clock deadline passed.
    Deadline,
}

/// A partial result from a budget-limited search.
///
/// `partial` is everything the search had established when the budget
/// tripped: for nearest-neighbour queries the best candidate admitted
/// so far (which is exact over the *scanned prefix* of the database),
/// for range queries the hits found so far.
#[derive(Debug, Clone, PartialEq)]
pub struct Exhausted<T> {
    /// The best answer over the portion of the database scanned before
    /// the budget tripped.
    pub partial: T,
    /// Which limit tripped first.
    pub reason: BudgetReason,
    /// Steps spent when the search stopped.
    pub steps_spent: u64,
}

/// The outcome of a budgeted search: either the exact answer, or a
/// typed partial one. Deliberately not a `Result` — exhaustion is not
/// an error, and the partial result is still admissible over its
/// scanned prefix.
#[derive(Debug, Clone, PartialEq)]
pub enum BudgetOutcome<T> {
    /// The budget never tripped; this answer is exact, bit-identical to
    /// the un-budgeted search.
    Complete(T),
    /// The budget tripped mid-scan.
    Exhausted(Exhausted<T>),
}

impl<T> BudgetOutcome<T> {
    /// The answer, exact or partial, discarding the outcome tag.
    pub fn into_inner(self) -> T {
        match self {
            BudgetOutcome::Complete(v) => v,
            BudgetOutcome::Exhausted(e) => e.partial,
        }
    }

    /// True for [`BudgetOutcome::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, BudgetOutcome::Complete(_))
    }

    /// Apply `f` to the answer, keeping the outcome tag (and, when
    /// exhausted, the trip metadata).
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> BudgetOutcome<U> {
        match self {
            BudgetOutcome::Complete(v) => BudgetOutcome::Complete(f(v)),
            BudgetOutcome::Exhausted(e) => BudgetOutcome::Exhausted(Exhausted {
                partial: f(e.partial),
                reason: e.reason,
                steps_spent: e.steps_spent,
            }),
        }
    }
}

/// The budget side of the engine's hot loop, mirroring
/// [`SearchObserver`](crate::SearchObserver): generic, defaulted to a
/// zero-sized no-op, never able to change a result other than by
/// stopping the scan early.
pub trait BudgetHook {
    /// Called at each dismissal boundary with the query counter's
    /// current total. Returns `true` while the search may continue.
    /// Implementations must be *sticky*: once this returns `false` it
    /// returns `false` forever.
    fn check(&mut self, steps_now: u64) -> bool;

    /// Why the budget tripped, when it has.
    fn trip_reason(&self) -> Option<BudgetReason>;
}

/// The no-budget hook: a ZST whose `check` is a constant `true`, so
/// budget-generic code compiles down to the un-budgeted loop.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoBudget;

impl BudgetHook for NoBudget {
    #[inline(always)]
    fn check(&mut self, _steps_now: u64) -> bool {
        true
    }

    #[inline(always)]
    fn trip_reason(&self) -> Option<BudgetReason> {
        None
    }
}

/// A hand-advanced nanosecond clock for deterministic deadline trips.
///
/// Wall-clock deadlines are inherently racy to test: whether
/// [`BudgetOutcome::Exhausted`] carries `reason: Deadline` depends on
/// scheduler timing. Injecting a `ManualClock` into
/// [`QueryBudget::with_clock`] makes the trip point a pure function of
/// when the test advances the clock. Clones share the same underlying
/// time, so a test can hold one handle while a budget owns another.
///
/// The clock also counts how often it was read, so tests can assert
/// the amortized polling really skips clock reads between
/// [`DEADLINE_POLL_STEPS`] windows.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    inner: Arc<ManualClockInner>,
}

// The clock deliberately uses std atomics even under `loom-tests`: it
// is test infrastructure, not part of the shared-budget protocol that
// loom models, and loom permits unmodeled std atomics alongside its
// own types.
#[derive(Debug, Default)]
struct ManualClockInner {
    now_ns: std::sync::atomic::AtomicU64,
    clock_reads: std::sync::atomic::AtomicU64,
}

impl ManualClock {
    /// A clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Move the clock forward by `d`.
    pub fn advance(&self, d: Duration) {
        let ns = duration_ns(d);
        // Saturating CAS add: a wrapped clock would un-trip deadlines.
        let mut current = self.inner.now_ns.load(std::sync::atomic::Ordering::Acquire);
        loop {
            let next = current.saturating_add(ns);
            match self.inner.now_ns.compare_exchange_weak(
                current,
                next,
                std::sync::atomic::Ordering::AcqRel,
                std::sync::atomic::Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Current time as a duration since the clock's epoch.
    pub fn now(&self) -> Duration {
        Duration::from_nanos(self.inner.now_ns.load(std::sync::atomic::Ordering::Acquire))
    }

    /// Current time in nanoseconds, counted as a read.
    fn read_ns(&self) -> u64 {
        // A plain wrapping add is fine for the read tally: it is test
        // telemetry about *how often* the clock was consulted, never
        // fed back into deadline math.
        self.inner
            .clock_reads
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.inner.now_ns.load(std::sync::atomic::Ordering::Acquire)
    }

    /// How many times a deadline check has read this clock.
    pub fn reads(&self) -> u64 {
        self.inner
            .clock_reads
            .load(std::sync::atomic::Ordering::Acquire)
    }
}

/// Convert a duration to nanoseconds, saturating at `u64::MAX`
/// (~584 years — effectively "no deadline").
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// An absolute deadline against either the wall clock or a
/// [`ManualClock`].
#[derive(Debug, Clone)]
enum Deadline {
    /// Real monotonic time.
    Wall(Instant),
    /// Deterministic test/serve time.
    Manual {
        /// The clock the deadline races.
        clock: ManualClock,
        /// Absolute trip point on that clock, in nanoseconds.
        at_ns: u64,
    },
}

impl Deadline {
    /// A deadline `d` from now on the given clock (wall when `None`).
    fn after(clock: Option<&ManualClock>, d: Duration) -> Self {
        match clock {
            None => Deadline::Wall(Instant::now() + d),
            Some(c) => Deadline::Manual {
                clock: c.clone(),
                at_ns: c
                    .inner
                    .now_ns
                    .load(std::sync::atomic::Ordering::Acquire)
                    .saturating_add(duration_ns(d)),
            },
        }
    }

    /// Has the deadline passed? This is the (amortized) clock read.
    fn passed(&self) -> bool {
        match self {
            Deadline::Wall(at) => Instant::now() >= *at,
            Deadline::Manual { clock, at_ns } => clock.read_ns() >= *at_ns,
        }
    }

    /// The wall-clock trip point, when this is a wall deadline.
    fn wall_instant(&self) -> Option<Instant> {
        match self {
            Deadline::Wall(at) => Some(*at),
            Deadline::Manual { .. } => None,
        }
    }
}

/// Amortization state for deadline polling: the clock is consulted
/// when `steps_now` reaches `next_steps` (zero initially, so the first
/// check always polls) or after [`DEADLINE_POLL_CHECKS`] checks
/// without a poll, whichever comes first.
#[derive(Debug, Clone, Copy)]
struct PollState {
    /// Step total at which the next clock read is due.
    next_steps: u64,
    /// Checks since the last clock read.
    checks_since_poll: u32,
}

impl PollState {
    /// Fresh state whose first `due` is always true.
    fn new() -> Self {
        PollState {
            next_steps: 0,
            checks_since_poll: 0,
        }
    }

    /// True when the deadline should be consulted at this check.
    fn due(&mut self, steps_now: u64) -> bool {
        self.checks_since_poll = self.checks_since_poll.saturating_add(1);
        if steps_now >= self.next_steps || self.checks_since_poll >= DEADLINE_POLL_CHECKS {
            self.next_steps = steps_now.saturating_add(DEADLINE_POLL_STEPS);
            self.checks_since_poll = 0;
            true
        } else {
            false
        }
    }
}

/// A per-query budget: a cap on `num_steps`, a wall-clock deadline, or
/// both. Step caps are deterministic and machine-independent (they
/// count the paper's Section 5.3 metric); deadlines are for serving.
#[derive(Debug, Clone)]
pub struct QueryBudget {
    max_steps: Option<u64>,
    deadline: Option<Deadline>,
    tripped: Option<BudgetReason>,
    poll: PollState,
}

impl QueryBudget {
    /// A budget with both limits optional. `max_wall` is measured from
    /// now.
    pub fn new(max_steps: Option<u64>, max_wall: Option<Duration>) -> Self {
        QueryBudget {
            max_steps,
            deadline: max_wall.map(|d| Deadline::after(None, d)),
            tripped: None,
            poll: PollState::new(),
        }
    }

    /// Like [`new`](Self::new), but the deadline races `clock` instead
    /// of the wall clock — deterministic `Deadline` trips for tests
    /// and the serve crate's shutdown paths.
    pub fn with_clock(
        max_steps: Option<u64>,
        max_wall: Option<Duration>,
        clock: &ManualClock,
    ) -> Self {
        QueryBudget {
            max_steps,
            deadline: max_wall.map(|d| Deadline::after(Some(clock), d)),
            tripped: None,
            poll: PollState::new(),
        }
    }

    /// Cap the query at `n` steps (deterministic across machines).
    pub fn max_steps(n: u64) -> Self {
        Self::new(Some(n), None)
    }

    /// Give the query `d` of wall-clock from now.
    pub fn deadline(d: Duration) -> Self {
        Self::new(None, Some(d))
    }

    /// The configured step cap, when any.
    pub fn step_limit(&self) -> Option<u64> {
        self.max_steps
    }

    /// The absolute wall-clock deadline, when any (`None` for budgets
    /// racing a [`ManualClock`]).
    pub fn deadline_instant(&self) -> Option<Instant> {
        self.deadline.as_ref().and_then(Deadline::wall_instant)
    }
}

impl BudgetHook for QueryBudget {
    #[inline]
    fn check(&mut self, steps_now: u64) -> bool {
        if self.tripped.is_some() {
            return false;
        }
        if let Some(max) = self.max_steps {
            if steps_now >= max {
                self.tripped = Some(BudgetReason::Steps);
                return false;
            }
        }
        if let Some(deadline) = &self.deadline {
            if self.poll.due(steps_now) && deadline.passed() {
                self.tripped = Some(BudgetReason::Deadline);
                return false;
            }
        }
        true
    }

    #[inline]
    fn trip_reason(&self) -> Option<BudgetReason> {
        self.tripped
    }
}

/// One budget pool shared by the workers of a parallel scan.
///
/// Each worker holds a [`SharedBudgetHook`] that charges its local step
/// *delta* into the pool at every check; the pool trips when the total
/// crosses the cap (or the deadline passes), and the trip flag makes
/// every other worker's next check fail. The charge uses a
/// compare-exchange saturating add — the pool total must never wrap,
/// for the same reason [`StepCounter`](rotind_ts::StepCounter)
/// saturates. Deadline polling is amortized *per worker* (each hook
/// carries its own poll state), so the pool itself never reads the
/// clock.
#[derive(Debug)]
pub struct SharedBudget {
    max_steps: Option<u64>,
    deadline: Option<Deadline>,
    spent_pool: AtomicU64,
    tripped_steps: AtomicBool,
    tripped_deadline: AtomicBool,
}

impl SharedBudget {
    /// A pool with the same limits as `budget` (including its already
    /// fixed deadline, so sequential and parallel runs race the same
    /// clock).
    pub fn from_budget(budget: &QueryBudget) -> Self {
        SharedBudget {
            max_steps: budget.max_steps,
            deadline: budget.deadline.clone(),
            spent_pool: AtomicU64::new(0),
            tripped_steps: AtomicBool::new(false),
            tripped_deadline: AtomicBool::new(false),
        }
    }

    /// A fresh per-worker hook charging into this pool.
    pub fn hook(&self) -> SharedBudgetHook<'_> {
        SharedBudgetHook {
            shared: self,
            reported: 0,
            poll: PollState::new(),
        }
    }

    /// Total steps charged into the pool so far.
    pub fn spent(&self) -> u64 {
        self.spent_pool.load(Ordering::Acquire)
    }

    /// Why the pool tripped, when it has. Steps win ties: a step trip
    /// is deterministic, a deadline trip is not, and the flag is used
    /// to label the [`Exhausted`] result.
    pub fn trip_reason(&self) -> Option<BudgetReason> {
        if self.tripped_steps.load(Ordering::Acquire) {
            Some(BudgetReason::Steps)
        } else if self.tripped_deadline.load(Ordering::Acquire) {
            Some(BudgetReason::Deadline)
        } else {
            None
        }
    }

    /// Saturating atomic add via compare-exchange (no `fetch_add`: it
    /// would wrap, and telemetry must never wrap). Returns the new
    /// total.
    fn charge(&self, delta: u64) -> u64 {
        let mut current = self.spent_pool.load(Ordering::Acquire);
        loop {
            let next = current.saturating_add(delta);
            match self.spent_pool.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return next,
                Err(actual) => current = actual,
            }
        }
    }
}

/// A worker-thread view of a [`SharedBudget`]; implements
/// [`BudgetHook`] over the worker's own counter.
#[derive(Debug)]
pub struct SharedBudgetHook<'a> {
    shared: &'a SharedBudget,
    /// The worker-local step total already charged into the pool.
    reported: u64,
    /// Per-worker deadline polling amortization.
    poll: PollState,
}

impl BudgetHook for SharedBudgetHook<'_> {
    fn check(&mut self, steps_now: u64) -> bool {
        let delta = steps_now.saturating_sub(self.reported);
        self.reported = steps_now;
        let total = if delta > 0 {
            self.shared.charge(delta)
        } else {
            self.shared.spent()
        };
        if self.shared.tripped_steps.load(Ordering::Acquire)
            || self.shared.tripped_deadline.load(Ordering::Acquire)
        {
            return false;
        }
        if let Some(max) = self.shared.max_steps {
            if total >= max {
                self.shared.tripped_steps.store(true, Ordering::Release);
                return false;
            }
        }
        if let Some(deadline) = &self.shared.deadline {
            if self.poll.due(steps_now) && deadline.passed() {
                self.shared.tripped_deadline.store(true, Ordering::Release);
                return false;
            }
        }
        true
    }

    fn trip_reason(&self) -> Option<BudgetReason> {
        self.shared.trip_reason()
    }
}

impl<B: BudgetHook + ?Sized> BudgetHook for &mut B {
    #[inline]
    fn check(&mut self, steps_now: u64) -> bool {
        (**self).check(steps_now)
    }

    #[inline]
    fn trip_reason(&self) -> Option<BudgetReason> {
        (**self).trip_reason()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_budget_never_trips() {
        let mut b = NoBudget;
        assert!(b.check(0));
        assert!(b.check(u64::MAX));
        assert_eq!(b.trip_reason(), None);
    }

    #[test]
    fn step_budget_trips_at_cap_and_stays_tripped() {
        let mut b = QueryBudget::max_steps(100);
        assert!(b.check(0));
        assert!(b.check(99));
        assert!(!b.check(100), "cap is inclusive: spent >= max trips");
        assert_eq!(b.trip_reason(), Some(BudgetReason::Steps));
        assert!(!b.check(0), "tripping is sticky even if steps rewind");
    }

    #[test]
    fn deadline_budget_trips_once_past() {
        let mut b = QueryBudget::deadline(Duration::from_secs(3600));
        assert!(b.check(1_000_000), "an hour out, nowhere near tripping");
        let mut expired = QueryBudget::deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert!(!expired.check(0), "first check always polls the clock");
        assert_eq!(expired.trip_reason(), Some(BudgetReason::Deadline));
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let mut b = QueryBudget::new(None, None);
        assert!(b.check(u64::MAX));
        assert_eq!(b.trip_reason(), None);
    }

    #[test]
    fn manual_clock_deadline_is_deterministic() {
        let clock = ManualClock::new();
        let mut b = QueryBudget::with_clock(None, Some(Duration::from_millis(5)), &clock);
        assert!(b.check(0), "clock at 0, deadline at 5ms");
        clock.advance(Duration::from_millis(4));
        // Force a poll by jumping past the poll window.
        assert!(b.check(DEADLINE_POLL_STEPS), "4ms < 5ms deadline");
        clock.advance(Duration::from_millis(1));
        assert!(!b.check(DEADLINE_POLL_STEPS * 2), "5ms >= 5ms trips");
        assert_eq!(b.trip_reason(), Some(BudgetReason::Deadline));
        clock.advance(Duration::from_secs(1));
        assert!(!b.check(0), "deadline trips are sticky");
    }

    #[test]
    fn deadline_polling_is_amortized() {
        let clock = ManualClock::new();
        let mut b = QueryBudget::with_clock(None, Some(Duration::from_secs(1)), &clock);
        assert!(b.check(0), "first check polls");
        let after_first = clock.reads();
        assert_eq!(after_first, 1, "exactly one read on the first check");
        // Checks inside the poll window must not read the clock.
        for steps in 1..DEADLINE_POLL_STEPS {
            assert!(b.check(steps));
        }
        assert_eq!(
            clock.reads(),
            after_first,
            "no clock reads inside the {DEADLINE_POLL_STEPS}-step window"
        );
        assert!(b.check(DEADLINE_POLL_STEPS), "window boundary polls again");
        assert_eq!(clock.reads(), after_first + 1);
    }

    #[test]
    fn stalled_steps_still_poll_eventually() {
        let clock = ManualClock::new();
        let mut b = QueryBudget::with_clock(None, Some(Duration::ZERO), &clock);
        clock.advance(Duration::from_nanos(1));
        // Consume the first (always-polling) check before expiring:
        // deadline was 0ns from a 0ns clock, so it is already past —
        // the first check trips immediately.
        assert!(!b.check(0), "expired manual deadline trips on first check");
    }

    #[test]
    fn stalled_steps_poll_after_check_limit() {
        let clock = ManualClock::new();
        let mut b = QueryBudget::with_clock(None, Some(Duration::from_millis(1)), &clock);
        assert!(b.check(10), "first check polls, deadline not yet passed");
        clock.advance(Duration::from_millis(2));
        // The step counter never advances past the poll window, but the
        // check-count guard must force a poll within
        // DEADLINE_POLL_CHECKS checks.
        let mut tripped = false;
        for _ in 0..(DEADLINE_POLL_CHECKS + 1) {
            if !b.check(10) {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "stalled counter still converges on its deadline");
        assert_eq!(b.trip_reason(), Some(BudgetReason::Deadline));
    }

    #[test]
    fn shared_budget_pools_worker_deltas() {
        let pool = SharedBudget::from_budget(&QueryBudget::max_steps(100));
        let mut w0 = pool.hook();
        let mut w1 = pool.hook();
        assert!(w0.check(40), "40 total");
        assert!(w1.check(50), "90 total");
        assert!(!w1.check(60), "100 total trips the pool");
        assert!(!w0.check(41), "other workers see the trip immediately");
        assert_eq!(pool.trip_reason(), Some(BudgetReason::Steps));
        assert!(pool.spent() >= 100);
    }

    #[test]
    fn shared_hook_charges_deltas_not_totals() {
        let pool = SharedBudget::from_budget(&QueryBudget::max_steps(1000));
        let mut w = pool.hook();
        assert!(w.check(10));
        assert!(w.check(25));
        assert!(w.check(25), "no new steps, no new charge");
        assert_eq!(pool.spent(), 25, "monotone local totals charge once");
    }

    #[test]
    fn shared_charge_saturates() {
        let pool = SharedBudget::from_budget(&QueryBudget::new(None, None));
        let mut w = pool.hook();
        assert!(w.check(u64::MAX - 1));
        let mut w2 = pool.hook();
        assert!(w2.check(10));
        assert_eq!(pool.spent(), u64::MAX, "pool saturates, never wraps");
    }

    #[test]
    fn shared_manual_deadline_trips_all_workers() {
        let clock = ManualClock::new();
        let budget = QueryBudget::with_clock(None, Some(Duration::from_millis(1)), &clock);
        let pool = SharedBudget::from_budget(&budget);
        let mut w0 = pool.hook();
        let mut w1 = pool.hook();
        assert!(w0.check(5));
        assert!(w1.check(5));
        clock.advance(Duration::from_millis(2));
        // The first check armed w0's poll window at 5 + POLL_STEPS, so
        // jump past it to force the next clock read.
        assert!(
            !w0.check(DEADLINE_POLL_STEPS + 5),
            "past-deadline poll trips"
        );
        assert!(!w1.check(6), "other workers see the trip without polling");
        assert_eq!(pool.trip_reason(), Some(BudgetReason::Deadline));
    }

    #[test]
    fn outcome_accessors() {
        let complete: BudgetOutcome<u32> = BudgetOutcome::Complete(7);
        assert!(complete.is_complete());
        assert_eq!(complete.into_inner(), 7);
        let exhausted: BudgetOutcome<u32> = BudgetOutcome::Exhausted(Exhausted {
            partial: 3,
            reason: BudgetReason::Steps,
            steps_spent: 100,
        });
        assert!(!exhausted.is_complete());
        assert_eq!(exhausted.into_inner(), 3);
    }
}
