//! Query budgets: bounded-cost search with typed partial results.
//!
//! A [`BudgetHook`] is threaded through the engine's hot loop exactly
//! like the observer: the search entry points are generic over it, and
//! the no-budget case is the zero-sized [`NoBudget`], whose
//! [`check`](BudgetHook::check) is a constant `true` — so an
//! un-budgeted search monomorphizes to the exact un-instrumented code
//! and stays bit-identical (property-tested in `tests/profiling.rs`).
//!
//! A real [`QueryBudget`] caps the paper's `num_steps` metric and/or
//! wall-clock. The engine checks it once per **dismissal boundary** —
//! per candidate series, never inside a bound accumulation — so a trip
//! is detected within one candidate's worth of work. Exhaustion is
//! *sticky*: once a budget trips it stays tripped, the scan loops
//! simply stop admitting new candidates, and the caller gets back a
//! typed [`Exhausted`] partial result instead of an answer it might
//! mistake for exact.
//!
//! [`SharedBudget`] extends the same semantics across the parallel
//! scan: workers charge their local step deltas into one atomic pool,
//! and any worker tripping it stops all of them at their next check.

// Under `--features loom-tests` the pool's atomics come from the
// vendored loom stand-in, so `loom::model` closures can explore every
// interleaving of `SharedBudget` charges (see tests/loom_model.rs in
// rotind-index and DESIGN.md §14). Outside a model the loom types are
// transparent passthroughs, so behaviour is unchanged.
#[cfg(feature = "loom-tests")]
use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};
#[cfg(not(feature = "loom-tests"))]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Why a budget tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetReason {
    /// The step cap was exceeded.
    Steps,
    /// The wall-clock deadline passed.
    Deadline,
}

/// A partial result from a budget-limited search.
///
/// `partial` is everything the search had established when the budget
/// tripped: for nearest-neighbour queries the best candidate admitted
/// so far (which is exact over the *scanned prefix* of the database),
/// for range queries the hits found so far.
#[derive(Debug, Clone, PartialEq)]
pub struct Exhausted<T> {
    /// The best answer over the portion of the database scanned before
    /// the budget tripped.
    pub partial: T,
    /// Which limit tripped first.
    pub reason: BudgetReason,
    /// Steps spent when the search stopped.
    pub steps_spent: u64,
}

/// The outcome of a budgeted search: either the exact answer, or a
/// typed partial one. Deliberately not a `Result` — exhaustion is not
/// an error, and the partial result is still admissible over its
/// scanned prefix.
#[derive(Debug, Clone, PartialEq)]
pub enum BudgetOutcome<T> {
    /// The budget never tripped; this answer is exact, bit-identical to
    /// the un-budgeted search.
    Complete(T),
    /// The budget tripped mid-scan.
    Exhausted(Exhausted<T>),
}

impl<T> BudgetOutcome<T> {
    /// The answer, exact or partial, discarding the outcome tag.
    pub fn into_inner(self) -> T {
        match self {
            BudgetOutcome::Complete(v) => v,
            BudgetOutcome::Exhausted(e) => e.partial,
        }
    }

    /// True for [`BudgetOutcome::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, BudgetOutcome::Complete(_))
    }

    /// Apply `f` to the answer, keeping the outcome tag (and, when
    /// exhausted, the trip metadata).
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> BudgetOutcome<U> {
        match self {
            BudgetOutcome::Complete(v) => BudgetOutcome::Complete(f(v)),
            BudgetOutcome::Exhausted(e) => BudgetOutcome::Exhausted(Exhausted {
                partial: f(e.partial),
                reason: e.reason,
                steps_spent: e.steps_spent,
            }),
        }
    }
}

/// The budget side of the engine's hot loop, mirroring
/// [`SearchObserver`](crate::SearchObserver): generic, defaulted to a
/// zero-sized no-op, never able to change a result other than by
/// stopping the scan early.
pub trait BudgetHook {
    /// Called at each dismissal boundary with the query counter's
    /// current total. Returns `true` while the search may continue.
    /// Implementations must be *sticky*: once this returns `false` it
    /// returns `false` forever.
    fn check(&mut self, steps_now: u64) -> bool;

    /// Why the budget tripped, when it has.
    fn trip_reason(&self) -> Option<BudgetReason>;
}

/// The no-budget hook: a ZST whose `check` is a constant `true`, so
/// budget-generic code compiles down to the un-budgeted loop.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoBudget;

impl BudgetHook for NoBudget {
    #[inline(always)]
    fn check(&mut self, _steps_now: u64) -> bool {
        true
    }

    #[inline(always)]
    fn trip_reason(&self) -> Option<BudgetReason> {
        None
    }
}

/// A per-query budget: a cap on `num_steps`, a wall-clock deadline, or
/// both. Step caps are deterministic and machine-independent (they
/// count the paper's Section 5.3 metric); deadlines are for serving.
#[derive(Debug, Clone)]
pub struct QueryBudget {
    max_steps: Option<u64>,
    deadline: Option<Instant>,
    tripped: Option<BudgetReason>,
}

impl QueryBudget {
    /// A budget with both limits optional. `max_wall` is measured from
    /// now.
    pub fn new(max_steps: Option<u64>, max_wall: Option<Duration>) -> Self {
        QueryBudget {
            max_steps,
            deadline: max_wall.map(|d| Instant::now() + d),
            tripped: None,
        }
    }

    /// Cap the query at `n` steps (deterministic across machines).
    pub fn max_steps(n: u64) -> Self {
        Self::new(Some(n), None)
    }

    /// Give the query `d` of wall-clock from now.
    pub fn deadline(d: Duration) -> Self {
        Self::new(None, Some(d))
    }

    /// The configured step cap, when any.
    pub fn step_limit(&self) -> Option<u64> {
        self.max_steps
    }

    /// The absolute deadline, when any.
    pub fn deadline_instant(&self) -> Option<Instant> {
        self.deadline
    }
}

impl BudgetHook for QueryBudget {
    #[inline]
    fn check(&mut self, steps_now: u64) -> bool {
        if self.tripped.is_some() {
            return false;
        }
        if let Some(max) = self.max_steps {
            if steps_now >= max {
                self.tripped = Some(BudgetReason::Steps);
                return false;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.tripped = Some(BudgetReason::Deadline);
                return false;
            }
        }
        true
    }

    #[inline]
    fn trip_reason(&self) -> Option<BudgetReason> {
        self.tripped
    }
}

/// One budget pool shared by the workers of a parallel scan.
///
/// Each worker holds a [`SharedBudgetHook`] that charges its local step
/// *delta* into the pool at every check; the pool trips when the total
/// crosses the cap (or the deadline passes), and the trip flag makes
/// every other worker's next check fail. The charge uses a
/// compare-exchange saturating add — the pool total must never wrap,
/// for the same reason [`StepCounter`](rotind_ts::StepCounter)
/// saturates.
#[derive(Debug)]
pub struct SharedBudget {
    max_steps: Option<u64>,
    deadline: Option<Instant>,
    spent_pool: AtomicU64,
    tripped_steps: AtomicBool,
    tripped_deadline: AtomicBool,
}

impl SharedBudget {
    /// A pool with the same limits as `budget` (including its already
    /// fixed deadline, so sequential and parallel runs race the same
    /// clock).
    pub fn from_budget(budget: &QueryBudget) -> Self {
        SharedBudget {
            max_steps: budget.max_steps,
            deadline: budget.deadline,
            spent_pool: AtomicU64::new(0),
            tripped_steps: AtomicBool::new(false),
            tripped_deadline: AtomicBool::new(false),
        }
    }

    /// A fresh per-worker hook charging into this pool.
    pub fn hook(&self) -> SharedBudgetHook<'_> {
        SharedBudgetHook {
            shared: self,
            reported: 0,
        }
    }

    /// Total steps charged into the pool so far.
    pub fn spent(&self) -> u64 {
        self.spent_pool.load(Ordering::Acquire)
    }

    /// Why the pool tripped, when it has. Steps win ties: a step trip
    /// is deterministic, a deadline trip is not, and the flag is used
    /// to label the [`Exhausted`] result.
    pub fn trip_reason(&self) -> Option<BudgetReason> {
        if self.tripped_steps.load(Ordering::Acquire) {
            Some(BudgetReason::Steps)
        } else if self.tripped_deadline.load(Ordering::Acquire) {
            Some(BudgetReason::Deadline)
        } else {
            None
        }
    }

    /// Saturating atomic add via compare-exchange (no `fetch_add`: it
    /// would wrap, and telemetry must never wrap). Returns the new
    /// total.
    fn charge(&self, delta: u64) -> u64 {
        let mut current = self.spent_pool.load(Ordering::Acquire);
        loop {
            let next = current.saturating_add(delta);
            match self.spent_pool.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return next,
                Err(actual) => current = actual,
            }
        }
    }
}

/// A worker-thread view of a [`SharedBudget`]; implements
/// [`BudgetHook`] over the worker's own counter.
#[derive(Debug)]
pub struct SharedBudgetHook<'a> {
    shared: &'a SharedBudget,
    /// The worker-local step total already charged into the pool.
    reported: u64,
}

impl BudgetHook for SharedBudgetHook<'_> {
    fn check(&mut self, steps_now: u64) -> bool {
        let delta = steps_now.saturating_sub(self.reported);
        self.reported = steps_now;
        let total = if delta > 0 {
            self.shared.charge(delta)
        } else {
            self.shared.spent()
        };
        if self.shared.tripped_steps.load(Ordering::Acquire)
            || self.shared.tripped_deadline.load(Ordering::Acquire)
        {
            return false;
        }
        if let Some(max) = self.shared.max_steps {
            if total >= max {
                self.shared.tripped_steps.store(true, Ordering::Release);
                return false;
            }
        }
        if let Some(deadline) = self.shared.deadline {
            if Instant::now() >= deadline {
                self.shared.tripped_deadline.store(true, Ordering::Release);
                return false;
            }
        }
        true
    }

    fn trip_reason(&self) -> Option<BudgetReason> {
        self.shared.trip_reason()
    }
}

impl<B: BudgetHook + ?Sized> BudgetHook for &mut B {
    #[inline]
    fn check(&mut self, steps_now: u64) -> bool {
        (**self).check(steps_now)
    }

    #[inline]
    fn trip_reason(&self) -> Option<BudgetReason> {
        (**self).trip_reason()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_budget_never_trips() {
        let mut b = NoBudget;
        assert!(b.check(0));
        assert!(b.check(u64::MAX));
        assert_eq!(b.trip_reason(), None);
    }

    #[test]
    fn step_budget_trips_at_cap_and_stays_tripped() {
        let mut b = QueryBudget::max_steps(100);
        assert!(b.check(0));
        assert!(b.check(99));
        assert!(!b.check(100), "cap is inclusive: spent >= max trips");
        assert_eq!(b.trip_reason(), Some(BudgetReason::Steps));
        assert!(!b.check(0), "tripping is sticky even if steps rewind");
    }

    #[test]
    fn deadline_budget_trips_once_past() {
        let mut b = QueryBudget::deadline(Duration::from_secs(3600));
        assert!(b.check(1_000_000), "an hour out, nowhere near tripping");
        let mut expired = QueryBudget::deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert!(!expired.check(0));
        assert_eq!(expired.trip_reason(), Some(BudgetReason::Deadline));
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let mut b = QueryBudget::new(None, None);
        assert!(b.check(u64::MAX));
        assert_eq!(b.trip_reason(), None);
    }

    #[test]
    fn shared_budget_pools_worker_deltas() {
        let pool = SharedBudget::from_budget(&QueryBudget::max_steps(100));
        let mut w0 = pool.hook();
        let mut w1 = pool.hook();
        assert!(w0.check(40), "40 total");
        assert!(w1.check(50), "90 total");
        assert!(!w1.check(60), "100 total trips the pool");
        assert!(!w0.check(41), "other workers see the trip immediately");
        assert_eq!(pool.trip_reason(), Some(BudgetReason::Steps));
        assert!(pool.spent() >= 100);
    }

    #[test]
    fn shared_hook_charges_deltas_not_totals() {
        let pool = SharedBudget::from_budget(&QueryBudget::max_steps(1000));
        let mut w = pool.hook();
        assert!(w.check(10));
        assert!(w.check(25));
        assert!(w.check(25), "no new steps, no new charge");
        assert_eq!(pool.spent(), 25, "monotone local totals charge once");
    }

    #[test]
    fn shared_charge_saturates() {
        let pool = SharedBudget::from_budget(&QueryBudget::new(None, None));
        let mut w = pool.hook();
        assert!(w.check(u64::MAX - 1));
        let mut w2 = pool.hook();
        assert!(w2.check(10));
        assert_eq!(pool.spent(), u64::MAX, "pool saturates, never wraps");
    }

    #[test]
    fn outcome_accessors() {
        let complete: BudgetOutcome<u32> = BudgetOutcome::Complete(7);
        assert!(complete.is_complete());
        assert_eq!(complete.into_inner(), 7);
        let exhausted: BudgetOutcome<u32> = BudgetOutcome::Exhausted(Exhausted {
            partial: 3,
            reason: BudgetReason::Steps,
            steps_spent: 100,
        });
        assert!(!exhausted.is_complete());
        assert_eq!(exhausted.into_inner(), 3);
    }
}
