//! Query-level profiling: hierarchical span trees, latency quantiles,
//! per-tier cost accounting.
//!
//! [`Profiler`] is a [`SearchObserver`] that turns the engine's
//! [`ProfilePhase`] events into a [`ProfileTree`]: spans nest per query
//! (`query → wedge_merge → tier.* / distance`) and aggregate **by name
//! within their parent**, so the tree stays a handful of nodes no
//! matter how many candidates a query scans — each node carries a call
//! count, total wall-clock and total `num_steps`. The tree exports as
//! chrome://tracing JSON ([`ProfileTree::to_chrome_trace`]) and as
//! collapsed stacks for flamegraph tooling
//! ([`ProfileTree::to_folded`]).
//!
//! Wall-clock is measured *inside* the observer callbacks — the engine
//! only reports counter values — so searches running with
//! [`NoopObserver`](crate::NoopObserver) never touch a clock.
//!
//! The profiler also keeps streaming [`LogHistogram`]s of per-query
//! latency and steps (p50/p95/p99), and per-tier cost rows
//! ([`TierCost`]: tested, pruned, nanoseconds) whose
//! prune-rate-per-microsecond is the signal the ROADMAP's self-tuning
//! cascade will feed on.

use crate::metrics::{LogHistogram, MetricsRegistry};
use crate::observer::{CascadeTier, ForkJoinObserver, ProfilePhase, SearchObserver};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// One aggregated node of a [`ProfileTree`]: all spans with this name
/// under the same parent path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileNode {
    count: u64,
    total_ns: u128,
    total_steps: u64,
    children: BTreeMap<&'static str, ProfileNode>,
}

impl ProfileNode {
    /// How many spans aggregated into this node.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total wall-clock across those spans, in nanoseconds.
    pub fn total_ns(&self) -> u128 {
        self.total_ns
    }

    /// Total `num_steps` across those spans.
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }

    /// Child nodes in name order.
    pub fn children(&self) -> impl Iterator<Item = (&'static str, &ProfileNode)> {
        self.children.iter().map(|(name, node)| (*name, node))
    }

    /// The named child, when present.
    pub fn child(&self, name: &str) -> Option<&ProfileNode> {
        self.children.get(name)
    }

    fn merge(&mut self, other: &ProfileNode) {
        self.count = self.count.saturating_add(other.count);
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.total_steps = self.total_steps.saturating_add(other.total_steps);
        for (name, child) in &other.children {
            self.children.entry(*name).or_default().merge(child);
        }
    }
}

/// A tree of aggregated profiling spans, rooted at the phase names the
/// engine opened at top level (in practice a single `query` root).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileTree {
    roots: BTreeMap<&'static str, ProfileNode>,
}

impl ProfileTree {
    /// Root nodes in name order.
    pub fn roots(&self) -> impl Iterator<Item = (&'static str, &ProfileNode)> {
        self.roots.iter().map(|(name, node)| (*name, node))
    }

    /// The named root, when present.
    pub fn root(&self, name: &str) -> Option<&ProfileNode> {
        self.roots.get(name)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    // lint: panic-exempt(path_of always yields at least the phase's own name)
    fn node_mut(&mut self, path: &[&'static str]) -> &mut ProfileNode {
        // `path_of` always yields at least the phase's own name.
        // rotind-lint: allow(no-panic)
        let (first, rest) = path.split_first().expect("profile path is never empty");
        let mut node = self.roots.entry(*first).or_default();
        for name in rest {
            node = node.children.entry(*name).or_default();
        }
        node
    }

    fn record(&mut self, path: &[&'static str], ns: u128, steps: u64) {
        let node = self.node_mut(path);
        node.count = node.count.saturating_add(1);
        node.total_ns = node.total_ns.saturating_add(ns);
        node.total_steps = node.total_steps.saturating_add(steps);
    }

    /// Fold another tree into this one (same-path nodes add).
    pub fn merge(&mut self, other: &ProfileTree) {
        for (name, node) in &other.roots {
            self.roots.entry(*name).or_default().merge(node);
        }
    }

    /// The tree as chrome://tracing JSON (the "trace event" format,
    /// `ph: "X"` complete events). Aggregated nodes are laid out on a
    /// synthetic timeline — children packed sequentially from their
    /// parent's start — so span *widths* are true total costs while
    /// positions are schematic. Load via chrome://tracing or
    /// <https://ui.perfetto.dev>.
    pub fn to_chrome_trace(&self) -> String {
        let mut events = Vec::new();
        let mut cursor_us = 0.0f64;
        for (name, node) in &self.roots {
            Self::emit_chrome(name, node, cursor_us, &mut events);
            cursor_us += node.total_ns as f64 / 1_000.0;
        }
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        out.push_str(&events.join(","));
        out.push_str("]}\n");
        out
    }

    fn emit_chrome(name: &str, node: &ProfileNode, start_us: f64, events: &mut Vec<String>) {
        let dur_us = node.total_ns as f64 / 1_000.0;
        events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":{:.3},\"dur\":{:.3},\
             \"args\":{{\"count\":{},\"steps\":{}}}}}",
            name, start_us, dur_us, node.count, node.total_steps
        ));
        let mut cursor = start_us;
        for (child_name, child) in &node.children {
            Self::emit_chrome(child_name, child, cursor, events);
            cursor += child.total_ns as f64 / 1_000.0;
        }
    }

    /// The tree as collapsed stacks ("folded" format): one line per
    /// path, semicolon-separated frames, weighted by **self**
    /// nanoseconds (total minus children, so flamegraph totals are not
    /// double-counted). Pipe into `flamegraph.pl` or paste into
    /// <https://www.speedscope.app>.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for (name, node) in &self.roots {
            Self::emit_folded(name.to_string(), node, &mut out);
        }
        out
    }

    fn emit_folded(path: String, node: &ProfileNode, out: &mut String) {
        let child_ns: u128 = node.children.values().map(|c| c.total_ns).sum();
        let self_ns = node.total_ns.saturating_sub(child_ns);
        if self_ns > 0 || node.children.is_empty() {
            let _ = writeln!(out, "{path} {self_ns}");
        }
        for (child_name, child) in &node.children {
            Self::emit_folded(format!("{path};{child_name}"), child, out);
        }
    }

    /// An aligned text rendering with per-node totals and means.
    pub fn report(&self) -> String {
        if self.roots.is_empty() {
            return "no profile recorded\n".to_string();
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28}  {:>10}  {:>12}  {:>14}  {:>12}",
            "phase", "count", "total ms", "steps", "ns/call"
        );
        for (name, node) in &self.roots {
            Self::emit_report(name, node, 0, &mut out);
        }
        out
    }

    fn emit_report(name: &str, node: &ProfileNode, depth: usize, out: &mut String) {
        let label = format!("{}{}", "  ".repeat(depth), name);
        let per_call = if node.count > 0 {
            node.total_ns as f64 / node.count as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<28}  {:>10}  {:>12.3}  {:>14}  {:>12.0}",
            label,
            node.count,
            node.total_ns as f64 / 1e6,
            node.total_steps,
            per_call
        );
        for (child_name, child) in &node.children {
            Self::emit_report(child_name, child, depth + 1, out);
        }
    }
}

/// Online cost accounting for one cascade tier: how often it ran, how
/// often it dismissed, and what it cost in wall-clock.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TierCost {
    /// Bound evaluations this tier ran.
    pub tested: u64,
    /// Of those, how many dismissed the candidate (no later tier ran).
    pub pruned: u64,
    /// Total wall-clock spent inside this tier, in nanoseconds.
    pub total_ns: u128,
}

impl TierCost {
    /// Prunes per microsecond spent — the tier's economic yield, the
    /// quantity a self-tuning cascade maximizes. `None` until the tier
    /// has accumulated measurable time.
    pub fn prunes_per_us(&self) -> Option<f64> {
        (self.total_ns > 0).then(|| self.pruned as f64 * 1_000.0 / self.total_ns as f64)
    }

    fn merge(&mut self, other: &TierCost) {
        self.tested = self.tested.saturating_add(other.tested);
        self.pruned = self.pruned.saturating_add(other.pruned);
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
    }
}

/// The profiling observer: builds a [`ProfileTree`] plus latency/step
/// histograms and per-tier [`TierCost`] rows from one or more observed
/// queries.
///
/// ```
/// use rotind_obs::{Profiler, ProfilePhase, SearchObserver};
/// let mut p = Profiler::new();
/// p.on_phase_start(ProfilePhase::Query, 0);
/// p.on_phase_start(ProfilePhase::Distance, 10);
/// p.on_phase_end(ProfilePhase::Distance, 50);
/// p.on_phase_end(ProfilePhase::Query, 60);
/// let tree = p.tree();
/// assert_eq!(tree.root("query").unwrap().total_steps(), 60);
/// assert_eq!(tree.root("query").unwrap().child("distance").unwrap().total_steps(), 40);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    tree: ProfileTree,
    /// Open phases, outermost first: (phase, entered_at, steps_at_entry).
    stack: Vec<(ProfilePhase, Instant, u64)>,
    query_latency_ns: LogHistogram,
    query_steps: LogHistogram,
    tiers: [TierCost; 4],
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The aggregated span tree.
    pub fn tree(&self) -> &ProfileTree {
        &self.tree
    }

    /// Streaming histogram of per-query wall-clock, in nanoseconds.
    pub fn query_latency_ns(&self) -> &LogHistogram {
        &self.query_latency_ns
    }

    /// Streaming histogram of per-query `num_steps`.
    pub fn query_steps(&self) -> &LogHistogram {
        &self.query_steps
    }

    /// Per-tier cost rows, indexed like [`CascadeTier::ALL`].
    pub fn tier_costs(&self) -> &[TierCost; 4] {
        &self.tiers
    }

    /// Export histograms and tier economics into a registry under
    /// `rotind_*` metric names.
    pub fn export_to(&self, registry: &mut MetricsRegistry) {
        registry
            .log_histogram("rotind_query_latency_ns")
            .merge(&self.query_latency_ns);
        registry
            .log_histogram("rotind_query_steps")
            .merge(&self.query_steps);
        for tier in CascadeTier::ALL {
            // `CascadeTier::index()` is < ALL.len() by construction.
            // rotind-lint: allow(no-index)
            let cost = &self.tiers[tier.index()];
            let name = tier.name();
            registry.counter_add(
                &format!("rotind_tier_tested_total{{tier=\"{name}\"}}"),
                cost.tested,
            );
            registry.counter_add(
                &format!("rotind_tier_pruned_total{{tier=\"{name}\"}}"),
                cost.pruned,
            );
            registry.counter_add(
                &format!("rotind_tier_ns_total{{tier=\"{name}\"}}"),
                u64::try_from(cost.total_ns).unwrap_or(u64::MAX),
            );
            if let Some(rate) = cost.prunes_per_us() {
                registry.gauge_set(
                    &format!("rotind_tier_prunes_per_us{{tier=\"{name}\"}}"),
                    rate,
                );
            }
        }
    }

    /// A text report: the span tree, latency quantiles, and the
    /// per-tier economics table.
    pub fn report(&self) -> String {
        let mut out = self.tree.report();
        if let (Some(p50), Some(p95), Some(p99)) = (
            self.query_latency_ns.quantile(0.5),
            self.query_latency_ns.quantile(0.95),
            self.query_latency_ns.quantile(0.99),
        ) {
            let _ = writeln!(
                out,
                "latency p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  over {} queries",
                p50 as f64 / 1e6,
                p95 as f64 / 1e6,
                p99 as f64 / 1e6,
                self.query_latency_ns.count()
            );
        }
        let _ = writeln!(
            out,
            "{:<10}  {:>10}  {:>10}  {:>12}  {:>14}",
            "tier", "tested", "pruned", "total ms", "prunes/us"
        );
        for tier in CascadeTier::ALL {
            // `CascadeTier::index()` is < ALL.len() by construction.
            // rotind-lint: allow(no-index)
            let cost = &self.tiers[tier.index()];
            let rate = cost
                .prunes_per_us()
                .map(|r| format!("{r:.3}"))
                .unwrap_or_else(|| "-".to_string());
            let _ = writeln!(
                out,
                "{:<10}  {:>10}  {:>10}  {:>12.3}  {:>14}",
                tier.name(),
                cost.tested,
                cost.pruned,
                cost.total_ns as f64 / 1e6,
                rate
            );
        }
        out
    }

    fn path_of(&self, leaf: ProfilePhase) -> Vec<&'static str> {
        self.stack
            .iter()
            .map(|(phase, _, _)| phase.name())
            .chain(std::iter::once(leaf.name()))
            .collect()
    }
}

impl SearchObserver for Profiler {
    #[inline]
    fn on_phase_start(&mut self, phase: ProfilePhase, steps: u64) {
        self.stack.push((phase, Instant::now(), steps));
    }

    // lint: panic-exempt(CascadeTier::index is below ALL.len() by construction)
    fn on_phase_end(&mut self, phase: ProfilePhase, steps: u64) {
        // The engine strictly nests phases; a mismatched end would mean
        // a bug upstream — drop it rather than corrupt the tree or
        // panic mid-telemetry.
        let Some(&(top, entered_at, steps_at_entry)) = self.stack.last() else {
            return;
        };
        if top != phase {
            return;
        }
        self.stack.pop();
        let ns = entered_at.elapsed().as_nanos();
        let step_delta = steps.saturating_sub(steps_at_entry);
        let path = self.path_of(phase);
        self.tree.record(&path, ns, step_delta);
        match phase {
            ProfilePhase::Query => {
                self.query_latency_ns
                    .observe(u64::try_from(ns).unwrap_or(u64::MAX));
                self.query_steps.observe(step_delta);
            }
            ProfilePhase::Tier(tier) => {
                // `CascadeTier::index()` is < ALL.len() by construction.
                // rotind-lint: allow(no-index)
                let cost = &mut self.tiers[tier.index()];
                cost.total_ns = cost.total_ns.saturating_add(ns);
            }
            _ => {}
        }
    }

    #[inline]
    // lint: panic-exempt(CascadeTier::index is below ALL.len() by construction)
    fn on_cascade_tier(&mut self, tier: CascadeTier, pruned: bool) {
        // `CascadeTier::index()` is < ALL.len() by construction.
        // rotind-lint: allow(no-index)
        let cost = &mut self.tiers[tier.index()];
        cost.tested = cost.tested.saturating_add(1);
        if pruned {
            cost.pruned = cost.pruned.saturating_add(1);
        }
    }
}

impl ForkJoinObserver for Profiler {
    fn fork(&self) -> Self {
        Profiler::new()
    }

    fn join(&mut self, child: Self) {
        self.tree.merge(&child.tree);
        self.query_latency_ns.merge(&child.query_latency_ns);
        self.query_steps.merge(&child.query_steps);
        for (mine, theirs) in self.tiers.iter_mut().zip(&child.tiers) {
            mine.merge(theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_one_query(p: &mut Profiler) {
        p.on_phase_start(ProfilePhase::Query, 0);
        p.on_phase_start(ProfilePhase::WedgeMerge, 0);
        p.on_phase_start(ProfilePhase::Tier(CascadeTier::Kim), 0);
        p.on_cascade_tier(CascadeTier::Kim, true);
        p.on_phase_end(ProfilePhase::Tier(CascadeTier::Kim), 4);
        p.on_phase_end(ProfilePhase::WedgeMerge, 4);
        p.on_phase_start(ProfilePhase::WedgeMerge, 4);
        p.on_phase_start(ProfilePhase::Tier(CascadeTier::Kim), 4);
        p.on_cascade_tier(CascadeTier::Kim, false);
        p.on_phase_end(ProfilePhase::Tier(CascadeTier::Kim), 8);
        p.on_phase_start(ProfilePhase::Distance, 8);
        p.on_phase_end(ProfilePhase::Distance, 108);
        p.on_phase_end(ProfilePhase::WedgeMerge, 108);
        p.on_phase_end(ProfilePhase::Query, 110);
    }

    #[test]
    fn tree_nests_and_aggregates_by_name() {
        let mut p = Profiler::new();
        drive_one_query(&mut p);
        let query = p.tree().root("query").expect("query root");
        assert_eq!(query.count(), 1);
        assert_eq!(query.total_steps(), 110);
        let merge = query.child("wedge_merge").expect("wedge_merge child");
        assert_eq!(merge.count(), 2, "two candidates aggregate into one node");
        assert_eq!(merge.total_steps(), 108);
        assert_eq!(merge.child("tier.kim").unwrap().count(), 2);
        assert_eq!(merge.child("tier.kim").unwrap().total_steps(), 8);
        assert_eq!(merge.child("distance").unwrap().total_steps(), 100);
        assert!(p.tree().root("wedge_merge").is_none(), "no stray roots");
    }

    #[test]
    fn latency_and_steps_histograms_track_queries() {
        let mut p = Profiler::new();
        drive_one_query(&mut p);
        drive_one_query(&mut p);
        assert_eq!(p.query_latency_ns().count(), 2);
        assert_eq!(p.query_steps().count(), 2);
        assert_eq!(p.query_steps().max(), Some(110));
    }

    #[test]
    fn tier_costs_attribute_tested_pruned_and_time() {
        let mut p = Profiler::new();
        drive_one_query(&mut p);
        let kim = &p.tier_costs()[CascadeTier::Kim.index()];
        assert_eq!(kim.tested, 2);
        assert_eq!(kim.pruned, 1);
        let reduced = &p.tier_costs()[CascadeTier::Reduced.index()];
        assert_eq!(reduced.tested, 0);
    }

    #[test]
    fn mismatched_phase_end_is_dropped_not_fatal() {
        let mut p = Profiler::new();
        p.on_phase_start(ProfilePhase::Query, 0);
        p.on_phase_end(ProfilePhase::Distance, 5);
        p.on_phase_end(ProfilePhase::Query, 10);
        let query = p.tree().root("query").unwrap();
        assert_eq!(query.count(), 1);
        assert!(query.child("distance").is_none());
    }

    #[test]
    fn fork_join_merges_trees_and_histograms() {
        let mut parent = Profiler::new();
        drive_one_query(&mut parent);
        let mut child = parent.fork();
        assert!(child.tree().is_empty(), "fork starts empty");
        drive_one_query(&mut child);
        parent.join(child);
        assert_eq!(parent.tree().root("query").unwrap().count(), 2);
        assert_eq!(parent.query_latency_ns().count(), 2);
        assert_eq!(parent.tier_costs()[0].tested, 4);
    }

    #[test]
    fn chrome_trace_is_wellformed_and_nested() {
        let mut p = Profiler::new();
        drive_one_query(&mut p);
        let json = p.tree().to_chrome_trace();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"query\""));
        assert!(json.contains("\"name\":\"wedge_merge\""));
        assert!(json.contains("\"name\":\"tier.kim\""));
        assert!(json.contains("\"ph\":\"X\""));
        // Balanced braces/brackets — a structural well-formedness check
        // that catches a missing comma or truncated event.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn folded_stacks_use_self_time_paths() {
        let mut p = Profiler::new();
        drive_one_query(&mut p);
        let folded = p.tree().to_folded();
        assert!(folded.contains("query;wedge_merge;tier.kim "));
        assert!(folded.contains("query;wedge_merge;distance "));
        for line in folded.lines() {
            let (path, value) = line.rsplit_once(' ').expect("path value");
            assert!(!path.is_empty());
            value.parse::<u128>().expect("numeric weight");
        }
    }

    #[test]
    fn report_renders_tree_latency_and_tier_table() {
        let mut p = Profiler::new();
        drive_one_query(&mut p);
        let report = p.report();
        assert!(report.contains("query"));
        assert!(report.contains("latency p50"));
        assert!(report.contains("prunes/us"));
        assert!(report.contains("kim"));
    }

    #[test]
    fn export_to_registry_writes_rotind_metrics() {
        let mut p = Profiler::new();
        drive_one_query(&mut p);
        let mut reg = MetricsRegistry::new();
        p.export_to(&mut reg);
        assert_eq!(
            reg.log_histogram_get("rotind_query_latency_ns")
                .unwrap()
                .count(),
            1
        );
        assert_eq!(reg.counter("rotind_tier_tested_total{tier=\"kim\"}"), 2);
        assert_eq!(reg.counter("rotind_tier_pruned_total{tier=\"kim\"}"), 1);
    }

    #[test]
    fn empty_profiler_renders_without_panicking() {
        let p = Profiler::new();
        assert!(p.report().contains("no profile recorded"));
        assert_eq!(p.tree().to_folded(), "");
        assert!(p.tree().to_chrome_trace().contains("\"traceEvents\":[]"));
    }
}
