//! Reference `O(n²)` discrete Fourier transform.
//!
//! The unnormalised forward transform
//! `X_k = Σ_j x_j · e^{−2πi·jk/n}` and its inverse (with the `1/n`
//! factor). Deliberately naive — the FFT implementations are validated
//! against it for every length, including the paper's awkward `n = 251`.

use crate::complex::Complex;
use std::f64::consts::TAU;

/// Naive forward DFT (unnormalised).
pub fn dft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let mut out = vec![Complex::ZERO; n];
    for (k, slot) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (j, &x) in input.iter().enumerate() {
            let angle = -TAU * (j as f64) * (k as f64) / n as f64;
            acc += x * Complex::cis(angle);
        }
        *slot = acc;
    }
    out
}

/// Naive inverse DFT (applies the `1/n` normalisation).
pub fn idft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let mut out = vec![Complex::ZERO; n];
    for (j, slot) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (k, &x) in input.iter().enumerate() {
            let angle = TAU * (j as f64) * (k as f64) / n as f64;
            acc += x * Complex::cis(angle);
        }
        *slot = acc.scale(1.0 / n as f64);
    }
    out
}

/// Forward DFT of a real signal.
pub fn dft_real(input: &[f64]) -> Vec<Complex> {
    let cx: Vec<Complex> = input.iter().map(|&x| Complex::real(x)).collect();
    dft(&cx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[Complex], b: &[Complex], tol: f64) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol)
    }

    #[test]
    fn dc_signal() {
        let x = dft_real(&[1.0, 1.0, 1.0, 1.0]);
        assert!((x[0].re - 4.0).abs() < 1e-12);
        #[allow(clippy::needless_range_loop)] // index used across multiple slices
        for k in 1..4 {
            assert!(x[k].abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone() {
        // cos(2π·j/n) concentrates at bins 1 and n−1 with weight n/2.
        let n = 8;
        let xs: Vec<f64> = (0..n).map(|j| (TAU * j as f64 / n as f64).cos()).collect();
        let x = dft_real(&xs);
        assert!((x[1].re - 4.0).abs() < 1e-9);
        assert!((x[7].re - 4.0).abs() < 1e-9);
        assert!(x[2].abs() < 1e-9 && x[0].abs() < 1e-9);
    }

    #[test]
    fn round_trip() {
        let xs: Vec<Complex> = (0..7)
            .map(|j| Complex::new((j as f64).sin(), (j as f64 * 0.5).cos()))
            .collect();
        let back = idft(&dft(&xs));
        assert!(close(&xs, &back, 1e-10));
    }

    #[test]
    fn parseval_unnormalised() {
        let xs = [1.0, -2.0, 3.0, 0.5, -0.25];
        let spec = dft_real(&xs);
        let time: f64 = xs.iter().map(|x| x * x).sum();
        let freq: f64 = spec.iter().map(|z| z.norm_sq()).sum::<f64>() / xs.len() as f64;
        assert!((time - freq).abs() < 1e-9);
    }

    #[test]
    fn shift_preserves_magnitudes() {
        let xs = [1.0, 5.0, -2.0, 4.0, 0.0, 3.0];
        let shifted = rotind_ts::rotate::rotated(&xs, 2);
        let a = dft_real(&xs);
        let b = dft_real(&shifted);
        for k in 0..xs.len() {
            assert!((a[k].abs() - b[k].abs()).abs() < 1e-9, "bin {k}");
        }
    }
}
