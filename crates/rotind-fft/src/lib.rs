//! # rotind-fft — spectral substrate
//!
//! A self-contained FFT stack supporting two baselines from the paper's
//! evaluation and the reduced representation used by the disk index:
//!
//! * the **FFT lower bound** of Figures 19/21/22 — *"transforming the
//!   signal to the Fourier space and calculating the Euclidean distance
//!   between the magnitude of the coefficients produces a lower bound to
//!   any rotation"* (Section 4.2, citing \[4\] and \[38\]);
//! * the **convolution trick** of Section 2.4 — the astronomy community's
//!   `O(n log n)` exact minimum-shift Euclidean distance via circular
//!   cross-correlation;
//! * the first-`D` **magnitude coefficients** stored in the VP-tree
//!   (Table 7, Figure 24).
//!
//! Everything is built from scratch: [`complex`] arithmetic, an iterative
//! radix-2 transform ([`fft`]), Bluestein's chirp-z algorithm for
//! arbitrary lengths ([`bluestein`]) — the paper's series are length 251
//! and 1,024 — an `O(n²)` reference DFT for validation ([`dft`]),
//! Parseval-normalised spectra ([`spectrum`]), correlation
//! ([`convolution`]) and the admissible rotation lower bound
//! ([`lower_bound`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bluestein;
pub mod complex;
pub mod convolution;
pub mod dft;
pub mod fft;
pub mod lower_bound;
pub mod spectrum;

pub use complex::Complex;
pub use spectrum::{magnitude_features, magnitudes};
