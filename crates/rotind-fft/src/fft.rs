//! Iterative radix-2 Cooley–Tukey FFT.
//!
//! In-place, decimation-in-time, with an explicit bit-reversal pass and
//! per-stage twiddle recurrence. `O(n log n)` for power-of-two `n`;
//! arbitrary lengths are handled by [`crate::bluestein`], which reduces to
//! this transform.

use crate::complex::Complex;
use std::f64::consts::TAU;

/// `true` when `n` is a power of two (and nonzero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Smallest power of two `>= n`.
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}

/// In-place radix-2 FFT. `inverse = true` computes the inverse transform
/// *including* the `1/n` normalisation.
///
/// # Panics
///
/// Panics when `data.len()` is not a power of two.
pub fn fft_pow2(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(
        is_power_of_two(n),
        "fft_pow2: length {n} is not a power of two"
    );
    if n == 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            data.swap(i, j);
        }
    }

    // Butterfly stages.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * TAU / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2] * w;
                data[start + k] = a + b;
                data[start + k + len / 2] = a - b;
                w *= wlen;
            }
        }
        len <<= 1;
    }

    if inverse {
        let scale = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = z.scale(scale);
        }
    }
}

/// Out-of-place forward FFT of a power-of-two-length buffer.
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    fft_pow2(&mut buf, false);
    buf
}

/// Out-of-place inverse FFT (normalised) of a power-of-two-length buffer.
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    fft_pow2(&mut buf, true);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft, idft};

    fn close(a: &[Complex], b: &[Complex], tol: f64) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol)
    }

    fn random_signal(n: usize, seed: u64) -> Vec<Complex> {
        // Small deterministic LCG; no RNG dependency needed here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let re = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let im = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                Complex::new(re, im)
            })
            .collect()
    }

    #[test]
    fn power_of_two_predicate() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(1024));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(251));
        assert_eq!(next_power_of_two(251), 256);
        assert_eq!(next_power_of_two(256), 256);
    }

    #[test]
    fn matches_reference_dft() {
        for n in [1usize, 2, 4, 8, 16, 64, 128] {
            let x = random_signal(n, n as u64);
            assert!(close(&fft(&x), &dft(&x), 1e-8), "fft != dft at n = {n}");
        }
    }

    #[test]
    fn inverse_matches_reference() {
        let x = random_signal(32, 7);
        assert!(close(&ifft(&x), &idft(&x), 1e-8));
    }

    #[test]
    fn round_trip() {
        for n in [2usize, 16, 256, 1024] {
            let x = random_signal(n, 99 + n as u64);
            let back = ifft(&fft(&x));
            assert!(close(&x, &back, 1e-9), "round trip failed at n = {n}");
        }
    }

    #[test]
    fn linearity() {
        let a = random_signal(64, 1);
        let b = random_signal(64, 2);
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fsum = fft(&sum);
        let expect: Vec<Complex> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert!(close(&fsum, &expect, 1e-9));
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn rejects_non_power_of_two() {
        let mut x = vec![Complex::ZERO; 6];
        fft_pow2(&mut x, false);
    }

    #[test]
    fn impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 16];
        x[0] = Complex::ONE;
        for z in fft(&x) {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }
}
