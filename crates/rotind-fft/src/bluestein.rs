//! Bluestein's chirp-z algorithm: FFT for arbitrary lengths.
//!
//! The paper's canonical series lengths (251 for projectile points) are
//! not powers of two, so the spectral baselines need an arbitrary-`n`
//! transform. Bluestein rewrites `jk = (j² + k² − (k−j)²)/2`, turning the
//! DFT into a circular convolution of two *chirp* sequences, which is then
//! evaluated with the radix-2 transform at a padded power-of-two length
//! `≥ 2n − 1`.
//!
//! The chirp exponent `π·j²/n` is computed with `j² mod 2n` to keep the
//! angle argument small and the transform accurate for large `n`.

use crate::complex::Complex;
use crate::fft::{fft_pow2, is_power_of_two, next_power_of_two};
use std::f64::consts::PI;

/// Chirp term `e^{−iπ·j²/n}` evaluated stably via `j² mod 2n`.
#[inline]
fn chirp(j: usize, n: usize) -> Complex {
    // j² mod 2n in u128 to avoid overflow for large n.
    let m = (2 * n) as u128;
    let sq = (j as u128 * j as u128) % m;
    Complex::cis(-PI * sq as f64 / n as f64)
}

/// Forward DFT of arbitrary length via Bluestein (unnormalised,
/// identical convention to [`crate::dft::dft`]).
pub fn bluestein(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return input.to_vec();
    }
    if is_power_of_two(n) {
        let mut buf = input.to_vec();
        fft_pow2(&mut buf, false);
        return buf;
    }

    let m = next_power_of_two(2 * n - 1);

    // a_j = x_j · chirp(j);  b_j = conj(chirp(j)) mirrored for circular
    // convolution.
    let mut a = vec![Complex::ZERO; m];
    let mut b = vec![Complex::ZERO; m];
    for j in 0..n {
        let w = chirp(j, n);
        a[j] = input[j] * w;
        b[j] = w.conj();
    }
    for j in 1..n {
        b[m - j] = b[j];
    }

    fft_pow2(&mut a, false);
    fft_pow2(&mut b, false);
    for (x, y) in a.iter_mut().zip(&b) {
        *x *= *y;
    }
    fft_pow2(&mut a, true);

    (0..n).map(|k| a[k] * chirp(k, n)).collect()
}

/// Inverse DFT of arbitrary length (normalised by `1/n`).
pub fn inverse_bluestein(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    // IDFT(x) = conj(DFT(conj(x))) / n.
    let conj: Vec<Complex> = input.iter().map(|z| z.conj()).collect();
    bluestein(&conj)
        .into_iter()
        .map(|z| z.conj().scale(1.0 / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft, idft};

    fn close(a: &[Complex], b: &[Complex], tol: f64) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol)
    }

    fn signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|j| {
                Complex::new(
                    (j as f64 * 0.7).sin() + 0.2 * j as f64 / n as f64,
                    (j as f64 * 1.3).cos(),
                )
            })
            .collect()
    }

    #[test]
    fn matches_dft_for_awkward_lengths() {
        for n in [2usize, 3, 5, 6, 7, 12, 17, 100, 251] {
            let x = signal(n);
            assert!(
                close(&bluestein(&x), &dft(&x), 1e-7),
                "bluestein != dft at n = {n}"
            );
        }
    }

    #[test]
    fn power_of_two_fast_path() {
        let x = signal(64);
        assert!(close(&bluestein(&x), &dft(&x), 1e-8));
    }

    #[test]
    fn inverse_matches_reference() {
        for n in [3usize, 5, 11, 251] {
            let x = signal(n);
            assert!(
                close(&inverse_bluestein(&x), &idft(&x), 1e-7),
                "inverse failed at n = {n}"
            );
        }
    }

    #[test]
    fn round_trip_arbitrary_n() {
        for n in [3usize, 7, 30, 251, 500] {
            let x = signal(n);
            let back = inverse_bluestein(&bluestein(&x));
            assert!(close(&x, &back, 1e-7), "round trip failed at n = {n}");
        }
    }

    #[test]
    fn degenerate_lengths() {
        assert!(bluestein(&[]).is_empty());
        let one = [Complex::new(2.0, -3.0)];
        assert_eq!(bluestein(&one), one.to_vec());
        assert_eq!(inverse_bluestein(&one), one.to_vec());
    }

    #[test]
    fn parseval_holds_at_251() {
        let x = signal(251);
        let spec = bluestein(&x);
        let time: f64 = x.iter().map(|z| z.norm_sq()).sum();
        let freq: f64 = spec.iter().map(|z| z.norm_sq()).sum::<f64>() / 251.0;
        assert!((time - freq).abs() / time < 1e-9);
    }
}
