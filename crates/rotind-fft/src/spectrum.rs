//! Parseval-normalised spectra and magnitude features.
//!
//! Spectra here use the convention `X_k = (1/√n) Σ_j x_j e^{−2πi·jk/n}`,
//! under which Parseval's identity reads `Σ|x_j|² = Σ|X_k|²` with no
//! extra factors. Circularly shifting `x` multiplies `X_k` by a unit
//! phase, leaving `|X_k|` untouched — the key fact behind both the
//! Fourier lower bound and the magnitude feature vectors stored in the
//! disk index (Table 7 / Figure 24).

use crate::bluestein::bluestein;
use crate::complex::Complex;

/// Parseval-normalised spectrum of a real signal (arbitrary length).
pub fn spectrum(xs: &[f64]) -> Vec<Complex> {
    let n = xs.len();
    if n == 0 {
        return Vec::new();
    }
    let cx: Vec<Complex> = xs.iter().map(|&x| Complex::real(x)).collect();
    let scale = 1.0 / (n as f64).sqrt();
    bluestein(&cx).into_iter().map(|z| z.scale(scale)).collect()
}

/// All `n` magnitude coefficients `|X_k|` of the normalised spectrum.
pub fn magnitudes(xs: &[f64]) -> Vec<f64> {
    spectrum(xs).into_iter().map(|z| z.abs()).collect()
}

/// The first `d` magnitude coefficients (`k = 0..d`), the reduced
/// representation stored in the VP-tree. `d` is clamped to `n`.
///
/// Dropping coefficients drops non-negative terms from the magnitude
/// distance, so truncation preserves the lower-bounding property.
pub fn magnitude_features(xs: &[f64], d: usize) -> Vec<f64> {
    let mut m = magnitudes(xs);
    m.truncate(d.min(m.len()));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotind_ts::rotate::rotated;
    use rotind_ts::stats::sum_sq;

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|j| (j as f64 * 0.37).sin() + 0.4 * (j as f64 * 0.11).cos())
            .collect()
    }

    #[test]
    fn parseval_normalised() {
        for n in [8usize, 100, 251] {
            let xs = signal(n);
            let energy_time = sum_sq(&xs);
            let energy_freq: f64 = magnitudes(&xs).iter().map(|m| m * m).sum();
            assert!(
                (energy_time - energy_freq).abs() / energy_time < 1e-9,
                "Parseval violated at n = {n}"
            );
        }
    }

    #[test]
    fn magnitudes_are_shift_invariant() {
        let xs = signal(60);
        let base = magnitudes(&xs);
        for shift in [1usize, 7, 30, 59] {
            let shifted = magnitudes(&rotated(&xs, shift));
            for (k, (a, b)) in base.iter().zip(&shifted).enumerate() {
                assert!((a - b).abs() < 1e-9, "shift {shift}, bin {k}");
            }
        }
    }

    #[test]
    fn features_are_prefix() {
        let xs = signal(32);
        let all = magnitudes(&xs);
        let few = magnitude_features(&xs, 5);
        assert_eq!(few.len(), 5);
        assert_eq!(&all[..5], &few[..]);
        assert_eq!(magnitude_features(&xs, 1000).len(), 32, "d clamps to n");
    }

    #[test]
    fn empty_input() {
        assert!(spectrum(&[]).is_empty());
        assert!(magnitudes(&[]).is_empty());
    }

    #[test]
    fn dc_bin_carries_the_mean() {
        // X_0 = (1/√n) Σ x_j, so z-normalised data has (near-)zero DC.
        let xs = vec![2.0; 16];
        let m = magnitudes(&xs);
        assert!((m[0] - 8.0).abs() < 1e-9); // (1/4)·32
        let zn = rotind_ts::normalize::z_normalize(&signal(16)).unwrap();
        assert!(magnitudes(&zn)[0] < 1e-9);
    }
}
