//! Circular cross-correlation and the astronomy "convolution trick".
//!
//! Section 2.4 of the paper: the astronomical community mitigates the CPU
//! cost of circular-shift matching of star light curves *"by rediscovering
//! the convolution 'trick' long known to the shape matching community"*.
//! The identity
//!
//! ```text
//! ED²(Q, rot_s(C)) = ‖Q‖² + ‖C‖² − 2·r_s,   r_s = Σ_j q_j · c_{(j+s) mod n}
//! ```
//!
//! lets all `n` shift distances be computed at once from one circular
//! cross-correlation `r`, which the FFT evaluates in `O(n log n)`. This
//! gives an exact (not lower-bounding) `O(n log n)` minimum-shift
//! Euclidean distance — but only for the Euclidean metric, and it does not
//! reduce disk accesses (the paper's criticism), which is why the wedge
//! framework is still needed.

use crate::bluestein::{bluestein, inverse_bluestein};
use crate::complex::Complex;
use rotind_ts::stats::sum_sq;

/// Circular cross-correlation `r_s = Σ_j q_j · c_{(j+s) mod n}` for all
/// shifts `s`, in `O(n log n)`.
///
/// # Panics
///
/// Panics when the slices differ in length.
pub fn circular_cross_correlation(q: &[f64], c: &[f64]) -> Vec<f64> {
    let n = q.len();
    assert_eq!(n, c.len(), "circular_cross_correlation: length mismatch");
    if n == 0 {
        return Vec::new();
    }
    let qf = bluestein(&q.iter().map(|&x| Complex::real(x)).collect::<Vec<_>>());
    let cf = bluestein(&c.iter().map(|&x| Complex::real(x)).collect::<Vec<_>>());
    // r_s = IDFT( conj(Q_k) · C_k )_s  — verified against the naive sum in
    // the tests below.
    let prod: Vec<Complex> = qf.iter().zip(&cf).map(|(a, b)| a.conj() * *b).collect();
    inverse_bluestein(&prod).into_iter().map(|z| z.re).collect()
}

/// Naive `O(n²)` circular cross-correlation (reference implementation).
pub fn circular_cross_correlation_naive(q: &[f64], c: &[f64]) -> Vec<f64> {
    let n = q.len();
    assert_eq!(n, c.len());
    (0..n)
        .map(|s| (0..n).map(|j| q[j] * c[(j + s) % n]).sum())
        .collect()
}

/// Exact minimum-shift Euclidean distance via the convolution trick:
/// returns `(distance, best_shift)` such that `distance = ED(q,
/// rot_{best_shift}(c))` is minimal over all shifts. `O(n log n)`.
///
/// ```
/// use rotind_fft::convolution::min_shift_euclidean;
/// use rotind_ts::rotate::rotated;
/// let c: Vec<f64> = (0..32).map(|i| (i as f64 * 0.5).sin()).collect();
/// let q = rotated(&c, 11);
/// let (d, shift) = min_shift_euclidean(&q, &c);
/// assert!(d < 1e-6); // FFT round-off only
/// assert_eq!(shift, 11);
/// ```
pub fn min_shift_euclidean(q: &[f64], c: &[f64]) -> (f64, usize) {
    let n = q.len();
    assert_eq!(n, c.len(), "min_shift_euclidean: length mismatch");
    assert!(n > 0, "min_shift_euclidean: empty series");
    let qq = sum_sq(q);
    let cc = sum_sq(c);
    let corr = circular_cross_correlation(q, c);
    let mut best = (f64::INFINITY, 0usize);
    for (s, &r) in corr.iter().enumerate() {
        // Clamp tiny negative values caused by FP round-off.
        let d2 = (qq + cc - 2.0 * r).max(0.0);
        if d2 < best.0 {
            best = (d2, s);
        }
    }
    (best.0.sqrt(), best.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotind_ts::rotate::rotated;

    fn signal(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|j| (j as f64 * 0.41 + phase).sin() + 0.3 * (j as f64 * 0.97).cos())
            .collect()
    }

    #[test]
    fn fft_correlation_matches_naive() {
        for n in [4usize, 7, 16, 33, 251] {
            let q = signal(n, 0.0);
            let c = signal(n, 1.1);
            let fast = circular_cross_correlation(&q, &c);
            let slow = circular_cross_correlation_naive(&q, &c);
            for s in 0..n {
                assert!(
                    (fast[s] - slow[s]).abs() < 1e-7,
                    "n = {n}, shift = {s}: {} vs {}",
                    fast[s],
                    slow[s]
                );
            }
        }
    }

    #[test]
    fn min_shift_matches_brute_force() {
        use rotind_distance_shim::euclidean;
        for n in [5usize, 12, 64, 251] {
            let q = signal(n, 0.4);
            let c = signal(n, 2.0);
            let brute = (0..n)
                .map(|s| euclidean(&q, &rotated(&c, s)))
                .fold(f64::INFINITY, f64::min);
            let (fast, _) = min_shift_euclidean(&q, &c);
            assert!((fast - brute).abs() < 1e-7, "n = {n}: {fast} vs {brute}");
        }
    }

    #[test]
    fn recovers_planted_shift() {
        let c = signal(100, 0.0);
        let q = rotated(&c, 37);
        let (d, s) = min_shift_euclidean(&q, &c);
        assert!(d < 1e-7);
        // q = rot_37(c) so ED(q, rot_37(c)) = 0.
        assert_eq!(s, 37);
    }

    #[test]
    fn symmetric_in_arguments_up_to_shift_direction() {
        let a = signal(40, 0.3);
        let b = signal(40, 1.7);
        let (dab, _) = min_shift_euclidean(&a, &b);
        let (dba, _) = min_shift_euclidean(&b, &a);
        assert!((dab - dba).abs() < 1e-9, "min-shift ED is a pseudometric");
    }

    #[test]
    fn empty_correlation() {
        assert!(circular_cross_correlation(&[], &[]).is_empty());
    }

    /// Local shim so this crate does not depend on `rotind-distance`
    /// (which would be a dependency cycle in spirit — distance is a
    /// *user* of the FFT baselines, not the other way round).
    mod rotind_distance_shim {
        pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        }
    }
}
