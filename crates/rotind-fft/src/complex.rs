//! Minimal complex arithmetic for the FFT stack.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Construct from rectangular parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A purely real value.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²` (no square root).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Multiply by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12
    }

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex::ONE;
        z += Complex::I;
        z -= Complex::new(0.0, 0.5);
        z *= Complex::real(2.0);
        assert_eq!(z, Complex::new(2.0, 1.0));
    }

    #[test]
    fn conj_abs_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sq(), 25.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert!(close(z * z.conj(), Complex::real(25.0)));
    }

    #[test]
    fn cis_unit_circle() {
        assert!(close(Complex::cis(0.0), Complex::ONE));
        assert!(close(Complex::cis(std::f64::consts::FRAC_PI_2), Complex::I));
        assert!(close(
            Complex::cis(std::f64::consts::PI),
            Complex::real(-1.0)
        ));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex::I * Complex::I, Complex::real(-1.0)));
    }

    #[test]
    fn scale_and_from() {
        assert_eq!(Complex::new(1.0, -2.0).scale(3.0), Complex::new(3.0, -6.0));
        assert_eq!(Complex::from(2.5), Complex::new(2.5, 0.0));
    }
}
